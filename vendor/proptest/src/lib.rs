//! Offline stand-in for the subset of `proptest` this workspace uses:
//! the [`proptest!`] macro, range/tuple strategies, [`Strategy::prop_map`],
//! [`any`], `sample::Index` / `sample::select`, the `prop_assert*` macros,
//! and [`ProptestConfig::with_cases`].
//!
//! Differences from upstream: generation is derived from a fixed seed (so
//! every run explores the same cases — reproducibility over novelty) and
//! failing cases are reported but not shrunk. The build environment has no
//! crates.io access, so this path dependency shadows the real crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod sample;

/// Runner configuration. Only `cases` is meaningful here.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; these suites run whole healing schedules
        // per case, so a leaner default keeps `cargo test` quick while still
        // exploring a meaningful sample.
        ProptestConfig { cases: 64 }
    }
}

/// A failed (or rejected) test case.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property does not hold.
    Fail(String),
    /// The input was rejected (treated as a skip).
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Result type of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Drives value generation for one property. Deterministically seeded so
/// failures reproduce on re-run.
#[derive(Debug)]
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Creates a runner with the fixed generation seed.
    pub fn new(_config: &ProptestConfig) -> Self {
        TestRunner {
            rng: StdRng::seed_from_u64(0x5EED_CA5E),
        }
    }

    /// The generation RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn new_value(&self, runner: &mut TestRunner) -> T {
        (self.f)(self.inner.new_value(runner))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                runner.rng().random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                runner.rng().random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn new_value(&self, runner: &mut TestRunner) -> f64 {
        runner.rng().random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(runner),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(runner: &mut TestRunner) -> Self {
                // Keep the high bits: they carry the most state for the
                // narrow integer types.
                (runner.rng().random::<u64>() >> (64 - <$t>::BITS.min(64))) as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u64, usize, u32, u16, u8);

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.rng().random()
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<A> {
    _marker: std::marker::PhantomData<A>,
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn new_value(&self, runner: &mut TestRunner) -> A {
        A::arbitrary(runner)
    }
}

/// The whole-domain strategy for `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Everything a property module usually imports.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult, TestRunner,
    };
}

/// Asserts a condition inside a property, failing the case (not panicking)
/// when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::new(&config);
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::new_value(&($strategy), &mut runner);)*
                // A closure so `return Ok(())` and `?` inside the body
                // resolve against `TestCaseResult`, as in upstream proptest.
                #[allow(clippy::redundant_closure_call)]
                let outcome: $crate::TestCaseResult =
                    (move || { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("property {} failed at case {case}: {msg}", stringify!($name));
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
        }

        #[test]
        fn mapped_strategies_apply(x in arb_even()) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn tuples_and_any(t in (1usize..4, any::<u16>()), pick in any::<prop::sample::Index>()) {
            prop_assert!(t.0 >= 1 && t.0 < 4);
            let _ = t.1;
            prop_assert!(pick.index(5) < 5);
        }

        #[test]
        fn select_picks_members(k in prop::sample::select(vec![4usize, 6])) {
            prop_assert!(k == 4 || k == 6);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]

        #[test]
        fn config_is_honored(_x in 0u64..10) {
            // Three quick cases; reaching here at all is the assertion.
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failures_panic_with_context() {
        proptest! {
            #[allow(unused)]
            fn inner(x in 0usize..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        inner();
    }
}
