//! Sampling helpers: collection indices and element selection.

use crate::{Arbitrary, Strategy, TestRunner};
use rand::Rng;

/// An index into a collection whose length is unknown at generation time:
/// the raw draw is mapped into `0..len` at use time.
#[derive(Clone, Copy, Debug)]
pub struct Index {
    raw: usize,
}

impl Index {
    /// Projects the draw into `0..len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        self.raw % len
    }
}

impl Arbitrary for Index {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        Index {
            raw: runner.rng().random::<u64>() as usize,
        }
    }
}

/// Strategy returned by [`select`].
#[derive(Clone, Debug)]
pub struct Select<T> {
    items: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn new_value(&self, runner: &mut TestRunner) -> T {
        let i = runner.rng().random_range(0..self.items.len());
        self.items[i].clone()
    }
}

/// Uniformly selects one of `items`.
///
/// # Panics
///
/// The returned strategy panics on generation if `items` is empty.
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    Select { items }
}
