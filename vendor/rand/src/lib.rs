//! Offline stand-in for the subset of the `rand` 0.9 API this workspace
//! uses: [`Rng::random`], [`Rng::random_range`], [`Rng::random_bool`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom::shuffle`].
//!
//! The build environment has no access to crates.io, so this path
//! dependency shadows the real crate. The generator behind [`rngs::StdRng`]
//! is xoshiro256++ seeded through SplitMix64 — not ChaCha12 as in upstream
//! `rand` — so streams differ from upstream, but every consumer in this
//! workspace only relies on determinism for a fixed seed, which holds.
//!
//! ```
//! use rand::{rngs::StdRng, Rng, SeedableRng};
//!
//! let mut a = StdRng::seed_from_u64(7);
//! let mut b = StdRng::seed_from_u64(7);
//! assert_eq!(a.random_range(0..100usize), b.random_range(0..100usize));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from an RNG's raw output.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for u16 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl StandardSample for usize {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (upstream convention).
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                if lo == 0 && hi as u128 == <$t>::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let span = (hi - lo) as u64 + 1;
                lo + bounded_u64(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_from(rng) * (self.end - self.start)
    }
}

/// Uniform draw from `[0, bound)` by widening multiplication with rejection
/// (Lemire's method) — unbiased for every bound.
fn bounded_u64<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let low = m as u64;
        if low >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

/// A source of randomness.
///
/// Object safety is not provided (the sampling methods are generic), which
/// matches how this workspace uses the trait: always through generic
/// `R: Rng + ?Sized` bounds or the concrete [`rngs::StdRng`].
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` (uniform over the type's natural domain;
    /// `[0, 1)` for floats).
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_from(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++ seeded via
    /// SplitMix64. (Upstream `rand` uses ChaCha12 here; the streams differ
    /// but the contract — a fast, high-quality, seedable generator — is the
    /// same.)
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice utilities.
pub mod seq {
    use super::Rng;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Shuffles the slice uniformly (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.random_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.random_range(1..=4u64);
            assert!((1..=4).contains(&y));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn random_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_float_distribution_is_sane() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements stay sorted with prob ~1/50!");
    }

    #[test]
    fn works_through_unsized_bounds() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> usize {
            rng.random_range(0..10usize)
        }
        let mut rng = StdRng::seed_from_u64(5);
        assert!(draw(&mut rng) < 10);
    }
}
