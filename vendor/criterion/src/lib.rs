//! Offline stand-in for the subset of `criterion` this workspace uses:
//! benchmark groups, [`Bencher::iter`] / [`Bencher::iter_batched`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! It measures wall-clock means over a configurable number of samples and
//! prints one line per benchmark — no statistical analysis, plotting, or
//! result persistence. The build environment has no crates.io access, so
//! this path dependency shadows the real crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How batched inputs are sized. Only a hint upstream; ignored here beyond
/// API compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target total measurement time per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        run_bench(self, &id, f);
    }
}

/// A named group of benchmarks sharing the driver's configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Times `f` under the group's configuration.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_bench(self.criterion, &id, f);
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op for us).
    pub fn finish(self) {}
}

fn run_bench(config: &Criterion, id: &str, mut f: impl FnMut(&mut Bencher)) {
    // Warm-up pass.
    let warm_deadline = Instant::now() + config.warm_up_time;
    while Instant::now() < warm_deadline {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed.is_zero() {
            break; // routine too cheap to register; don't spin forever
        }
    }
    // Timed samples.
    let per_sample = config.measurement_time / config.sample_size as u32;
    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    for _ in 0..config.sample_size {
        let sample_deadline = Instant::now() + per_sample;
        loop {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            total += b.elapsed;
            iters += b.iters;
            if Instant::now() >= sample_deadline {
                break;
            }
        }
    }
    let mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
    println!("bench {id:<40} {:>14.1} ns/iter ({iters} iters)", mean_ns);
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        let out = routine();
        self.elapsed = start.elapsed();
        self.iters = 1;
        drop(out);
    }

    /// Times `routine` over inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        let out = routine(input);
        self.elapsed = start.elapsed();
        self.iters = 1;
        drop(out);
    }
}

/// Declares a benchmark group entry point, mirroring upstream's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.bench_function("iter", |b| b.iter(|| 1 + 1));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn harness_runs_quickly() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        trivial(&mut c);
    }
}
