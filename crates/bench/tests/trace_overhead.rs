//! The pay-for-what-you-use contract, measured with the counting global
//! allocator (`--features bench`): disabled hooks allocate nothing at all,
//! and an attached tracer's steady-state recording allocates nothing after
//! its preallocated ring warms up.
//!
//! The counter is process-global and the libtest harness allocates from
//! its own threads (progress lines, panic payloads), so each window is
//! measured best-of-N: harness noise is transient, while a real per-call
//! allocation would taint every attempt with >=10k counts.
#![cfg(feature = "bench")]

use xheal_bench::alloc_count;
use xheal_core::{Xheal, XhealConfig};
use xheal_graph::{generators, NodeId};
use xheal_trace::{hook, Layer, SharedTracer, Tracer};

const ATTEMPTS: usize = 8;

/// Smallest allocation delta of `ATTEMPTS` runs of `window`.
fn min_delta(mut window: impl FnMut()) -> u64 {
    (0..ATTEMPTS)
        .map(|_| {
            let before = alloc_count();
            window();
            alloc_count() - before
        })
        .min()
        .expect("at least one attempt")
}

#[test]
fn disabled_hooks_allocate_nothing() {
    let none: Option<SharedTracer> = None;
    // Warm any lazy allocator state before the measured windows.
    hook::begin(&none, Layer::Executor, "exec.repair", 1, 0);
    let delta = min_delta(|| {
        for i in 0..10_000u64 {
            hook::begin(&none, Layer::Executor, "exec.repair", i, 0);
            hook::instant(&none, Layer::Planner, "plan.case", i, 2);
            hook::begin_lane(&none, 3, Layer::Planner, "spec.component", i, 0);
            hook::end_lane(&none, 3, Layer::Planner, "spec.component", i, 0);
            hook::bump(&none, "repairs", 1);
            hook::end(&none, Layer::Executor, "exec.repair", i, 0);
        }
    });
    assert_eq!(delta, 0, "the disabled-tracer path must be branch-only");
}

#[test]
fn attached_tracer_records_without_steady_state_allocations() {
    let tracer = Tracer::shared(1 << 10);
    let handle = Some(tracer.clone());
    // Warm-up: touch every lane and the metrics counter once (first use
    // allocates their registry entries), and wrap the ring at least once.
    for i in 0..2_000u64 {
        hook::begin(&handle, Layer::Executor, "exec.repair", i, 0);
        hook::begin_lane(&handle, 1, Layer::Planner, "spec.component", i, 0);
        hook::end_lane(&handle, 1, Layer::Planner, "spec.component", i, 0);
        hook::bump(&handle, "repairs", 1);
        hook::end(&handle, Layer::Executor, "exec.repair", i, 0);
    }
    let delta = min_delta(|| {
        for i in 0..10_000u64 {
            hook::begin(&handle, Layer::Executor, "exec.repair", i, 0);
            hook::begin_lane(&handle, 1, Layer::Planner, "spec.component", i, 0);
            hook::end_lane(&handle, 1, Layer::Planner, "spec.component", i, 0);
            hook::bump(&handle, "repairs", 1);
            hook::end(&handle, Layer::Executor, "exec.repair", i, 0);
        }
    });
    assert_eq!(
        delta, 0,
        "steady-state recording must reuse the preallocated ring"
    );
    let t = hook::lock(&tracer);
    assert!(t.dropped() > 0, "the ring should have wrapped");
    assert_eq!(t.len(), t.capacity());
}

#[test]
fn untraced_engine_churn_is_alloc_identical_to_seed_behavior() {
    // The instrumented engine with no tracer attached must allocate
    // exactly as much as an identical run: the hooks contribute zero, so
    // two identical seeded schedules have identical allocation counts.
    let run = || {
        min_delta(|| {
            let g0 = generators::ring_with_chords(96);
            let mut eng = Xheal::new(&g0, XhealConfig::new(4).with_seed(11));
            for i in 0..24u64 {
                let v = NodeId::new((i * 7) % 96);
                if eng.graph().contains_node(v) {
                    eng.heal_delete(v).expect("victim is live");
                }
            }
        })
    };
    let (a, b) = (run(), run());
    assert!(a > 0, "engine churn should allocate (sanity)");
    assert_eq!(a, b);
}
