//! E4 — Theorem 2(4) + Corollary 1: the spectral gap survives healing.
//!
//! Start from a bounded-degree expander (6-regular random graph), delete
//! half the nodes, and compare λ (normalized Laplacian — the convention of
//! the paper's Cheeger inequality) of the healed graph with Theorem 2(4)'s
//! lower-bound formula
//! `λ(Gt) ≥ min(λ(G't)²·dmin / (8·κ²·dmax²), 1 / (2·(κ·dmax)²))`,
//! and show the baselines' spectral collapse (Corollary 1 fails for them).

use rand::{rngs::StdRng, SeedableRng};
use xheal_baselines::{BinaryTreeHeal, CycleHeal};
use xheal_bench::{f, header, row, srow, verdict};
use xheal_core::{HealingEngine, Xheal, XhealConfig};
use xheal_graph::{generators, Graph};
use xheal_spectral::normalized_algebraic_connectivity;
use xheal_workload::{run, DeleteOnly, Targeting};

fn degree_range(g: &Graph) -> (f64, f64) {
    let degs: Vec<usize> = g.nodes().filter_map(|v| g.degree(v)).collect();
    (
        degs.iter().copied().min().unwrap_or(0) as f64,
        degs.iter().copied().max().unwrap_or(0) as f64,
    )
}

fn main() {
    header(
        "E4",
        "spectral gap preserved: lambda(Gt) vs Theorem 2(4) bound; Corollary 1",
    );
    srow(&["n/healer", "l(G't)", "l(Gt)", "thm bound", "ok"]);
    let kappa = 6usize;
    let mut xheal_ok = true;
    let mut xheal_min_lambda = f64::INFINITY;
    let mut tree_min_lambda = f64::INFINITY;

    for n in [64usize, 128, 256, 512] {
        let mut rng = StdRng::seed_from_u64(n as u64 ^ 0xE4);
        let g0 = generators::random_regular(n, 6, &mut rng);

        let healers: Vec<Box<dyn HealingEngine>> = vec![
            Box::new(Xheal::new(&g0, XhealConfig::new(kappa).with_seed(2))),
            Box::new(CycleHeal::new(&g0)),
            Box::new(BinaryTreeHeal::new(&g0)),
        ];
        for mut healer in healers {
            let mut adv = DeleteOnly::new(Targeting::Random, n / 2);
            let summary = run(healer.as_mut(), &mut adv, n, 3);
            let l_gp = normalized_algebraic_connectivity(&summary.gprime);
            let l_gt = normalized_algebraic_connectivity(healer.graph());
            // Theorem 2(4) formula with the proof's constants, using G't's
            // degree range (dmax(Gt) <= kappa*dmax(G't) per Lemma 3).
            let (dmin, dmax) = degree_range(&summary.gprime);
            let term1 = l_gp * l_gp * dmin / (8.0 * (kappa as f64).powi(2) * dmax * dmax);
            let term2 = 1.0 / (2.0 * (kappa as f64 * dmax).powi(2));
            let bound = term1.min(term2);
            let ok = l_gt >= bound;
            if healer.name() == "xheal" {
                xheal_ok &= ok;
                xheal_min_lambda = xheal_min_lambda.min(l_gt);
            }
            if healer.name() == "binary-tree-heal" {
                tree_min_lambda = tree_min_lambda.min(l_gt);
            }
            row(&[
                format!("{n}/{}", healer.name()),
                f(l_gp),
                f(l_gt),
                f(bound),
                if ok { "yes".into() } else { "NO".into() },
            ]);
        }
    }
    verdict(
        xheal_ok && xheal_min_lambda > tree_min_lambda,
        &format!(
            "xheal meets the Thm 2(4) bound at every n; min lambda {} stays above \
             binary-tree-heal's {} (Corollary 1: expander stays an expander)",
            f(xheal_min_lambda),
            f(tree_min_lambda)
        ),
    );
}
