//! E2 — Theorem 2(2) / Lemma 4: stretch stays O(log n).
//!
//! Sparse connected G(n, 4/n) networks, half the nodes deleted at random;
//! the table reports max stretch (success metric 3) for Xheal and the
//! baselines, and the normalized column `stretch / log2 n` which Theorem
//! 2(2) says is O(1) for Xheal.

use rand::{rngs::StdRng, SeedableRng};
use xheal_baselines::{BinaryTreeHeal, CycleHeal, NoHeal};
use xheal_bench::{f, header, row, srow, verdict};
use xheal_core::{HealingEngine, Xheal, XhealConfig};
use xheal_graph::generators;
use xheal_metrics::stretch;
use xheal_workload::{run, DeleteOnly, Targeting};

fn main() {
    header("E2", "stretch <= O(log n) vs G' (Thm 2.2, Lemma 4)");
    srow(&["n/healer", "max stretch", "/log2(n)"]);
    let mut xheal_normalized_max: f64 = 0.0;
    let mut finite = true;

    for n in [50usize, 100, 200, 400, 800] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let g0 = generators::connected_erdos_renyi(n, 4.0 / n as f64, &mut rng);
        let log2n = (n as f64).log2();

        let healers: Vec<Box<dyn HealingEngine>> = vec![
            Box::new(Xheal::new(&g0, XhealConfig::new(6).with_seed(1))),
            Box::new(CycleHeal::new(&g0)),
            Box::new(BinaryTreeHeal::new(&g0)),
            Box::new(NoHeal::new(&g0)),
        ];
        for mut healer in healers {
            let mut adv = DeleteOnly::new(Targeting::Random, n / 2);
            let summary = run(healer.as_mut(), &mut adv, n, 9);
            let s = stretch(healer.graph(), &summary.gprime, 120, 10).unwrap_or(f64::INFINITY);
            if healer.name() == "xheal" {
                if s.is_infinite() {
                    finite = false;
                } else {
                    xheal_normalized_max = xheal_normalized_max.max(s / log2n);
                }
            }
            row(&[format!("{n}/{}", healer.name()), f(s), f(s / log2n)]);
        }
    }
    verdict(
        finite && xheal_normalized_max <= 3.0,
        &format!(
            "xheal stretch finite everywhere, max stretch/log2(n) = {} (O(1) constant)",
            f(xheal_normalized_max)
        ),
    );
}
