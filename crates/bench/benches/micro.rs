//! Criterion micro-benchmarks: heal-operation latency, H-graph splice
//! throughput, and the two eigensolvers.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::{rngs::StdRng, Rng, SeedableRng};
use xheal_core::{Xheal, XhealConfig};
use xheal_expander::HGraph;
use xheal_graph::{generators, NodeId};
use xheal_spectral::{algebraic_connectivity, jacobi_eigen, laplacian_dense, LaplacianOp};

fn bench_heal_delete(c: &mut Criterion) {
    let mut group = c.benchmark_group("heal_delete");
    for n in [100usize, 400] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let g0 = generators::random_regular(n, 6, &mut rng);
        let healer = Xheal::new(&g0, XhealConfig::new(6).with_seed(1));
        group.bench_function(format!("regular6_n{n}"), |b| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter_batched(
                || healer.clone(),
                |mut h| {
                    let nodes = h.graph().node_vec();
                    let victim = nodes[rng.random_range(0..nodes.len())];
                    h.heal_delete(victim).unwrap();
                    h
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_hgraph_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("hgraph");
    let mut rng = StdRng::seed_from_u64(3);
    let members: Vec<NodeId> = (0..512u64).map(NodeId::new).collect();
    let h = HGraph::random(&members, 3, &mut rng);
    group.bench_function("insert_delete_512", |b| {
        let mut rng = StdRng::seed_from_u64(9);
        let mut next = 1_000_000u64;
        b.iter_batched(
            || h.clone(),
            |mut h| {
                h.insert(NodeId::new(next), &mut rng);
                next += 1;
                let v = h.member_at(rng.random_range(0..h.len()));
                h.delete(v);
                h
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_eigensolvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("eigensolvers");
    let mut rng = StdRng::seed_from_u64(5);
    let g = generators::random_regular(120, 6, &mut rng);
    group.bench_function("jacobi_n120", |b| {
        let (_, m) = laplacian_dense(&g);
        b.iter(|| jacobi_eigen(&m).values[1])
    });
    group.bench_function("lanczos_n120", |b| {
        b.iter(|| {
            let op = LaplacianOp::new(&g);
            let ones = vec![1.0; 120];
            xheal_spectral::lanczos_deflated(&op, &ones, 119, 1)
                .unwrap()
                .ritz_values[0]
        })
    });
    let big = generators::random_regular(1000, 6, &mut rng);
    group.bench_function("lambda2_n1000", |b| b.iter(|| algebraic_connectivity(&big)));
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_heal_delete, bench_hgraph_ops, bench_eigensolvers
}
criterion_main!(benches);
