//! E6 — Theorems 3 and 4 (Law–Siu / Friedman): a random 2d-regular H-graph
//! is an expander w.h.p., and the INSERT/DELETE splices preserve that under
//! churn.
//!
//! Sweep d ∈ {2..5} and n ∈ {16..1024}: λ (normalized) of fresh H-graphs,
//! exact edge expansion at n = 16, and λ after 2n mixed splice operations.

use rand::{rngs::StdRng, Rng, SeedableRng};
use xheal_bench::{f, fo, header, row, srow, verdict};
use xheal_expander::HGraph;
use xheal_graph::{cuts, Graph, NodeId};
use xheal_spectral::normalized_algebraic_connectivity;

fn projection(h: &HGraph) -> Graph {
    let mut g = Graph::new();
    for &v in h.members() {
        g.add_node(v).unwrap();
    }
    for (u, v) in h.simple_edges() {
        g.add_black_edge(u, v).unwrap();
    }
    g
}

fn main() {
    header(
        "E6",
        "random H-graphs are expanders (Thm 4) and stay so under splices (Thm 3)",
    );
    srow(&["d", "n", "lambda fresh", "exact h", "lambda churned"]);
    let mut min_fresh: f64 = f64::INFINITY;
    let mut min_churned: f64 = f64::INFINITY;
    let mut by_d: Vec<(usize, f64)> = Vec::new();

    for d in [2usize, 3, 4, 5] {
        let mut lambda_at_256 = 0.0;
        for n in [16usize, 64, 256, 1024] {
            let mut rng = StdRng::seed_from_u64((d * 10_000 + n) as u64);
            let members: Vec<NodeId> = (0..n as u64).map(NodeId::new).collect();
            let mut h = HGraph::random(&members, d, &mut rng);
            let fresh = normalized_algebraic_connectivity(&projection(&h));
            let exact = if n == 16 {
                cuts::edge_expansion_exact(&projection(&h)).map(|c| c.value)
            } else {
                None
            };
            // Churn: 2n alternating splices.
            let mut next_id = n as u64;
            for round in 0..2 * n {
                if round % 2 == 0 {
                    h.insert(NodeId::new(next_id), &mut rng);
                    next_id += 1;
                } else {
                    let idx = rng.random_range(0..h.len());
                    let &v = h.members().iter().nth(idx).unwrap();
                    h.delete(v);
                }
            }
            let churned = normalized_algebraic_connectivity(&projection(&h));
            min_fresh = min_fresh.min(fresh);
            min_churned = min_churned.min(churned);
            if n == 256 {
                lambda_at_256 = fresh;
            }
            row(&[
                d.to_string(),
                n.to_string(),
                f(fresh),
                fo(exact),
                f(churned),
            ]);
        }
        by_d.push((d, lambda_at_256));
    }
    let monotone = by_d.windows(2).all(|w| w[1].1 >= w[0].1 - 0.02);
    verdict(
        min_fresh > 0.1 && min_churned > 0.1 && monotone,
        &format!(
            "min lambda fresh {} / churned {} stay bounded away from 0; gap grows with d",
            f(min_fresh),
            f(min_churned)
        ),
    );
}

// Exact expansion is only used at n = 16 (enumeration limit); the paper's
// Omega(d) expansion shows up there as h >= 1 for every d >= 2.
