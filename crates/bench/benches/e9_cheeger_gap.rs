//! E9 — the Preliminaries' Cheeger example: take a constant-degree expander,
//! split it in half and make each half a clique. Edge expansion stays
//! constant but conductance drops to O(1/n) — and mixing time blows up from
//! logarithmic to polynomial. This motivates why the paper tracks φ and λ
//! and not just h.

use rand::{rngs::StdRng, SeedableRng};
use xheal_bench::{f, fo, header, row, srow, verdict};
use xheal_graph::{cuts, generators, Graph};
use xheal_spectral::{mixing_time, normalized_algebraic_connectivity};

fn measure(name: &str, g: &Graph) -> (Option<f64>, Option<f64>, f64, Option<usize>) {
    let h = cuts::edge_expansion_exact(g).map(|c| c.value);
    let phi = cuts::conductance_exact(g).map(|c| c.value);
    let lambda = normalized_algebraic_connectivity(g);
    let tmix = mixing_time(g, 0.25, 200_000);
    row(&[
        name.to_string(),
        fo(h),
        fo(phi),
        f(lambda),
        tmix.map(|t| t.to_string()).unwrap_or_else(|| "-".into()),
    ]);
    (h, phi, lambda, tmix)
}

fn main() {
    header(
        "E9",
        "expansion vs conductance: bridged cliques have constant h but O(1/n) phi \
         and polynomial mixing (Preliminaries example)",
    );
    srow(&["graph", "exact h", "exact phi", "lambda", "t_mix"]);

    let mut rng = StdRng::seed_from_u64(0xE9);
    let expander = generators::random_regular(16, 6, &mut rng);
    let cliques = generators::clique_pair_with_expander_bridge(16, 4, &mut rng);

    let (he, phie, _le, _te) = measure("regular(16,6)", &expander);
    let (hc, phic, _lc, _tc) = measure("cliquepair(16,4)", &cliques);

    // The O(1/n) separation needs larger n; exact h/phi become infeasible,
    // but lambda and mixing time carry the comparison.
    let mut big: Vec<(f64, Option<usize>, f64, Option<usize>)> = Vec::new();
    for n in [64usize, 256] {
        let e = generators::random_regular(n, 6, &mut rng);
        let c = generators::clique_pair_with_expander_bridge(n, 4, &mut rng);
        let (_, _, le, te) = measure(&format!("regular({n},6)"), &e);
        let (_, _, lc, tc) = measure(&format!("cliquepair({n},4)"), &c);
        big.push((le, te, lc, tc));
    }

    // At n = 16 the halves are tiny and the gap is mild — report only.
    let h_comparable = match (he, hc) {
        (Some(a), Some(b)) => b >= a * 0.3,
        _ => false,
    };
    let _ = (phie, phic);
    // At n = 256: lambda gap and mixing gap are the paper's separation.
    let (le, te, lc, tc) = big[1];
    let lambda_gap = le / lc.max(1e-12) >= 4.0;
    let mix_gap = match (te, tc) {
        (Some(a), Some(b)) => b >= 2 * a,
        _ => false,
    };
    verdict(
        h_comparable && lambda_gap && mix_gap,
        "cliquepair keeps comparable (constant) h but its lambda is several times \
         smaller and mixing several times slower at n = 256 — h alone misses the \
         bottleneck, exactly the Preliminaries' point",
    );
}
