//! E8 — the paper's running example (Related Work / Figure 4): delete the
//! center of a star. Tree-style healers collapse the expansion to O(1/n);
//! Xheal installs an expander over the orphaned leaves and keeps it
//! constant.
//!
//! Exact `h` at n = 17 (enumeration limit); λ (normalized) everywhere.

use xheal_baselines::{BinaryTreeHeal, CycleHeal, ForgivingLike, StarHeal};
use xheal_bench::{f, fo, header, row, srow, verdict};
use xheal_core::{Event, HealingEngine, Xheal, XhealConfig};
use xheal_graph::{cuts, generators, NodeId};
use xheal_spectral::normalized_algebraic_connectivity;

fn main() {
    header(
        "E8",
        "star-center attack: tree repairs collapse expansion to O(1/n); Xheal stays constant",
    );
    srow(&["n/healer", "exact h", "lambda", "n*lambda"]);
    let mut xheal_lambda_min: f64 = f64::INFINITY;
    let mut tree_lambda_times_n_max: f64 = 0.0;

    for n in [17usize, 65, 257, 1025] {
        let g0 = generators::star(n);
        let healers: Vec<Box<dyn HealingEngine>> = vec![
            Box::new(Xheal::new(&g0, XhealConfig::new(6).with_seed(8))),
            Box::new(CycleHeal::new(&g0)),
            Box::new(BinaryTreeHeal::new(&g0)),
            Box::new(ForgivingLike::new(&g0)),
            Box::new(StarHeal::new(&g0)),
        ];
        for mut healer in healers {
            healer
                .apply(&Event::Delete {
                    node: NodeId::new(0),
                })
                .unwrap();
            let h = if n <= 18 {
                cuts::edge_expansion_exact(healer.graph()).map(|c| c.value)
            } else {
                None
            };
            let lambda = normalized_algebraic_connectivity(healer.graph());
            if healer.name() == "xheal" {
                xheal_lambda_min = xheal_lambda_min.min(lambda);
            }
            if healer.name() == "binary-tree-heal" && n >= 257 {
                tree_lambda_times_n_max = tree_lambda_times_n_max.max(lambda * (n - 1) as f64);
            }
            row(&[
                format!("{n}/{}", healer.name()),
                fo(h),
                f(lambda),
                f(lambda * (n - 1) as f64),
            ]);
        }
    }
    verdict(
        xheal_lambda_min > 0.1 && tree_lambda_times_n_max < 25.0,
        &format!(
            "xheal keeps lambda >= {} at every n while binary-tree lambda decays like \
             O(1/n) (n*lambda stays ~{} at large n)",
            f(xheal_lambda_min),
            f(tree_lambda_times_n_max)
        ),
    );
}
