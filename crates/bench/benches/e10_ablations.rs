//! E10 — ablations of the design choices DESIGN.md calls out:
//!
//! (a) **no secondary clouds** — every multi-cloud repair combines, the
//!     amortized path the secondary machinery exists to avoid (since
//!     `combine` splices members into the surviving cloud rather than
//!     dissolving and rebuilding, a single combine is cheap — what the
//!     machinery still buys is *fewer* forced merges and better structure);
//! (b) **no free-node sharing** — a cloud without its own free node forces
//!     combining;
//! (c) **κ sweep** — degree/cost trade-off.
//!
//! Measured over the distributed protocol so the message cost of combining
//! is real (BFS flood + convergecast + broadcast).

use rand::{rngs::StdRng, Rng, SeedableRng};
use xheal_bench::{f, header, row, srow, verdict};
use xheal_core::XhealConfig;
use xheal_dist::DistXheal;
use xheal_graph::generators;
use xheal_spectral::normalized_algebraic_connectivity;

struct Outcome {
    combines: usize,
    msgs_avg: f64,
    rounds_max: u64,
    lambda: f64,
}

fn run_one(cfg: XhealConfig, n: usize, seed: u64) -> Outcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let g0 = generators::random_regular(n, 6, &mut rng);
    let mut net = DistXheal::new(&g0, cfg);
    for _ in 0..n / 2 {
        let nodes = net.graph().node_vec();
        let victim = nodes[rng.random_range(0..nodes.len())];
        net.delete(victim).unwrap();
    }
    let costs = net.costs();
    Outcome {
        combines: costs.iter().filter(|c| c.combined).count(),
        msgs_avg: costs.iter().map(|c| c.messages as f64).sum::<f64>() / costs.len() as f64,
        rounds_max: costs.iter().map(|c| c.rounds).max().unwrap_or(0),
        lambda: normalized_algebraic_connectivity(net.graph()),
    }
}

fn main() {
    header("E10", "ablations: secondary clouds, sharing, and kappa");
    srow(&["variant", "combines", "msgs avg", "rounds max", "lambda"]);
    let n = 96usize;

    let variants: Vec<(&str, XhealConfig)> = vec![
        ("full (k=6)", XhealConfig::new(6).with_seed(10)),
        (
            "no-secondary",
            XhealConfig::new(6).with_seed(10).without_secondary_clouds(),
        ),
        (
            "no-sharing",
            XhealConfig::new(6).with_seed(10).without_sharing(),
        ),
        ("k=4", XhealConfig::new(4).with_seed(10)),
        ("k=8", XhealConfig::new(8).with_seed(10)),
    ];

    let mut results = Vec::new();
    for (name, cfg) in variants {
        let o = run_one(cfg, n, 0xE10);
        row(&[
            name.to_string(),
            o.combines.to_string(),
            f(o.msgs_avg),
            o.rounds_max.to_string(),
            f(o.lambda),
        ]);
        results.push((name, o));
    }

    let full = &results[0].1;
    let nosec = &results[1].1;
    // Splice-combine absorbs members into the surviving cloud instead of
    // dissolving and rebuilding, so one combine is no longer the dominant
    // message cost this ablation was first written around. The machinery's
    // measurable value is structural: fewer forced merges, tighter
    // worst-case rounds, better expansion.
    let ok = nosec.combines > full.combines
        && nosec.rounds_max >= full.rounds_max
        && nosec.lambda < full.lambda;
    verdict(
        ok,
        &format!(
            "disabling secondary clouds forces {:.2}x the combines and degrades \
             expansion lambda {} -> {} (rounds max {} -> {}); msgs avg {} -> {} — \
             splice-combine made single merges cheap, so secondaries now pay in \
             messages and pay back in structure",
            nosec.combines as f64 / full.combines.max(1) as f64,
            f(full.lambda),
            f(nosec.lambda),
            full.rounds_max,
            nosec.rounds_max,
            f(full.msgs_avg),
            f(nosec.msgs_avg)
        ),
    );
}
