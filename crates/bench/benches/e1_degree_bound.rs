//! E1 — Theorem 2(1) / Lemma 3: degree increase is bounded by
//! `deg_{G_t}(x) ≤ κ·deg_{G'_t}(x) + 2κ` for every node.
//!
//! Workloads: G(n,p), preferential attachment, and a star, under random and
//! max-degree-targeted deletion, for κ ∈ {4, 6, 8}. The table reports the
//! worst observed degree-increase ratio (success metric 1) and the worst
//! additive-slack witness `(deg - κ·deg')/κ`, which Lemma 3 bounds by 2
//! (our label-set strengthening allows up to 3 — DESIGN.md §3.1).

use rand::{rngs::StdRng, SeedableRng};
use xheal_bench::{f, header, row, srow, verdict};
use xheal_core::{Xheal, XhealConfig};
use xheal_graph::{generators, Graph};
use xheal_metrics::degree_increase;
use xheal_workload::{run, DeleteOnly, RandomChurn, Targeting};

fn workload_graphs(seed: u64) -> Vec<(&'static str, Graph)> {
    let mut rng = StdRng::seed_from_u64(seed);
    vec![
        (
            "er(120,0.05)",
            generators::connected_erdos_renyi(120, 0.05, &mut rng),
        ),
        (
            "pa(120,3)",
            generators::preferential_attachment(120, 3, &mut rng),
        ),
        ("star(120)", generators::star(120)),
    ]
}

fn main() {
    header(
        "E1",
        "degree bound: deg_Gt(x) <= kappa*deg_G't(x) + 2*kappa (Thm 2.1, Lemma 3)",
    );
    srow(&[
        "graph/adversary",
        "kappa",
        "max ratio",
        "max slack/k",
        "nodes left",
    ]);
    let mut all_ok = true;

    for kappa in [4usize, 6, 8] {
        for (gname, g0) in workload_graphs(1000 + kappa as u64) {
            for adv_name in ["random", "max-degree", "churn"] {
                let mut healer = Xheal::new(&g0, XhealConfig::new(kappa).with_seed(7));
                let keep = g0.node_count() * 2 / 5;
                let summary = match adv_name {
                    "random" => {
                        let mut adv = DeleteOnly::new(Targeting::Random, keep);
                        run(&mut healer, &mut adv, g0.node_count(), 42)
                    }
                    "max-degree" => {
                        let mut adv = DeleteOnly::new(Targeting::HighestDegree, keep);
                        run(&mut healer, &mut adv, g0.node_count(), 42)
                    }
                    _ => {
                        let mut adv = RandomChurn::new(0.3, 4, keep, &g0);
                        run(&mut healer, &mut adv, g0.node_count(), 42)
                    }
                };
                let gp = &summary.gprime;
                let ratio = degree_increase(healer.graph(), gp);
                // Additive-slack witness for Lemma 3's "+2k" term.
                let mut slack: f64 = 0.0;
                for v in healer.graph().nodes() {
                    let d = healer.graph().degree(v).unwrap_or(0) as f64;
                    let dp = gp.degree(v).unwrap_or(0) as f64;
                    slack = slack.max((d - kappa as f64 * dp) / kappa as f64);
                }
                let ok = slack <= 3.0 + 1e-9;
                all_ok &= ok;
                row(&[
                    format!("{gname}/{adv_name}"),
                    kappa.to_string(),
                    f(ratio),
                    f(slack),
                    healer.graph().node_count().to_string(),
                ]);
            }
        }
    }
    verdict(
        all_ok,
        "every node satisfies deg <= kappa*deg' + 3*kappa (paper bound + label-set slack)",
    );
}
