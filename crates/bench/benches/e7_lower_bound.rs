//! E7 — Lemma 5: any healing algorithm needs Θ(deg(v)) messages per
//! deletion; Xheal's measured cost divided by that lower bound is the
//! per-deletion overhead, which Theorem 5 bounds by O(κ·log n).
//!
//! The table shows the distribution (mean / p95 / max) of
//! `messages(v) / max(1, deg(v))` per deletion across workloads.

use rand::{rngs::StdRng, Rng, SeedableRng};
use xheal_bench::{f, header, row, srow, verdict};
use xheal_core::XhealConfig;
use xheal_dist::DistXheal;
use xheal_graph::generators;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    header(
        "E7",
        "per-deletion messages vs the Lemma 5 lower bound Theta(deg(v))",
    );
    srow(&[
        "workload",
        "n",
        "amortized",
        "ratio p95",
        "ratio max",
        "k*log2(n)",
    ]);
    let kappa = 6usize;
    let mut all_ok = true;

    for n in [64usize, 256] {
        let mut rng = StdRng::seed_from_u64(n as u64 ^ 0xE7);
        let workloads: Vec<(&str, xheal_graph::Graph)> = vec![
            ("regular(6)", generators::random_regular(n, 6, &mut rng)),
            ("pa(3)", generators::preferential_attachment(n, 3, &mut rng)),
        ];
        for (wname, g0) in workloads {
            let mut net = DistXheal::new(&g0, XhealConfig::new(kappa).with_seed(11));
            for _ in 0..n / 2 {
                let nodes = net.graph().node_vec();
                let victim = nodes[rng.random_range(0..nodes.len())];
                net.delete(victim).unwrap();
            }
            let mut ratios: Vec<f64> = net
                .costs()
                .iter()
                .map(|c| c.messages as f64 / (c.black_degree.max(1) as f64))
                .collect();
            ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let p95 = percentile(&ratios, 0.95);
            let max = *ratios.last().unwrap();
            // Theorem 5 is an *amortized* statement: total messages over
            // total degree (= mean msgs / A(p)), not a per-deletion ratio —
            // individual low-degree deletions carry fixed overheads that the
            // amortization absorbs (p95/max columns show that spread).
            let total_msgs: f64 = net.costs().iter().map(|c| c.messages as f64).sum();
            let total_deg: f64 = net
                .costs()
                .iter()
                .map(|c| c.black_degree.max(1) as f64)
                .sum();
            let amortized = total_msgs / total_deg;
            let budget = kappa as f64 * (n as f64).log2();
            // O(kappa log n) with an explicit constant of 2.
            all_ok &= amortized <= 2.0 * budget;
            row(&[
                wname.to_string(),
                n.to_string(),
                f(amortized),
                f(p95),
                f(max),
                f(budget),
            ]);
        }
    }
    verdict(
        all_ok,
        "amortized messages / total degree stays within 2*kappa*log2(n) (Thm 5's O(kappa log n))",
    );
}
