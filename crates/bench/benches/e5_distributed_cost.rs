//! E5 — Theorem 5: repairs take O(log n) rounds and amortized
//! O(κ·log n·A(p)) messages, where A(p) = (1/p)·Σ deg(v_i) is Lemma 5's
//! lower bound.
//!
//! The distributed protocol runs as per-node actor state machines with
//! real message envelopes. Part 1 measures it over the synchronous
//! LOCAL-model engine; part 2 re-runs the identical schedules over the
//! asynchronous event-queue engine with seeded per-link latency L ∈ [1, 3]
//! plus jitter, verifying the healed topology is bit-identical to the
//! synchronous run and that recovery time only dilates by the worst-case
//! delivery delay; part 3 measures burst (batch) deletions under latency.
//! Tables report measured mean/max rounds per repair, mean messages, A(p),
//! and the overhead ratio `messages / (κ·log2 n·A(p))` which Theorem 5
//! bounds by a constant.

use rand::{rngs::StdRng, Rng, SeedableRng};
use xheal_bench::{f, header, row, srow, verdict};
use xheal_core::XhealConfig;
use xheal_dist::{DistXheal, Msg, RepairCost};
use xheal_graph::{components, generators, Graph, NodeId};
use xheal_sim::{AsyncConfig, AsyncNetwork, NetworkEngine};
use xheal_workload::bfs_rack;

const KAPPA: usize = 6;

struct Measured {
    rounds_avg: f64,
    rounds_max: f64,
    msgs_avg: f64,
    a_p: f64,
    overhead: f64,
    repairs: usize,
}

fn measure(costs: &[RepairCost], n: usize) -> Measured {
    let p = costs.len() as f64;
    let rounds_avg = costs.iter().map(|c| c.rounds as f64).sum::<f64>() / p;
    let rounds_max = costs.iter().map(|c| c.rounds).max().unwrap_or(0) as f64;
    let msgs_avg = costs.iter().map(|c| c.messages as f64).sum::<f64>() / p;
    let a_p = costs.iter().map(|c| c.black_degree as f64).sum::<f64>() / p;
    let log2n = (n as f64).log2();
    Measured {
        rounds_avg,
        rounds_max,
        msgs_avg,
        a_p,
        overhead: msgs_avg / (KAPPA as f64 * log2n * a_p.max(1.0)),
        repairs: costs.len(),
    }
}

fn victims_for(n: u64, g0: &Graph, deletions: usize) -> Vec<NodeId> {
    // The shared deletion schedule of the sync and async runs: replayed
    // against a scratch healer so the surviving-node draws line up.
    let mut rng = StdRng::seed_from_u64(n ^ 0x5EED);
    let mut scratch = DistXheal::new(g0, XhealConfig::new(KAPPA).with_seed(4));
    let mut victims = Vec::with_capacity(deletions);
    for _ in 0..deletions {
        let nodes = scratch.graph().node_vec();
        let victim = nodes[rng.random_range(0..nodes.len())];
        scratch.delete(victim).unwrap();
        victims.push(victim);
    }
    victims
}

fn run_engine<N: NetworkEngine<Msg>>(g0: &Graph, victims: &[NodeId], engine: N) -> DistXheal<N> {
    let mut net = DistXheal::with_engine(g0, XhealConfig::new(KAPPA).with_seed(4), engine);
    for &v in victims {
        net.delete(v).unwrap();
    }
    net
}

fn main() {
    header(
        "E5",
        "distributed cost: O(log n) rounds, amortized O(kappa log n A(p)) messages (Thm 5)",
    );

    println!("\n-- part 1: synchronous LOCAL-model engine --");
    srow(&[
        "n",
        "del",
        "rounds avg",
        "rounds max",
        "msgs avg",
        "A(p)",
        "overhead",
    ]);
    let mut max_round_ratio: f64 = 0.0;
    let mut max_overhead: f64 = 0.0;
    // Per size: (n, initial graph, deletion schedule, healed sync topology).
    let mut sync_topologies: Vec<(usize, Graph, Vec<NodeId>, Graph)> = Vec::new();

    for n in [32usize, 64, 128, 256, 512] {
        let mut rng = StdRng::seed_from_u64(n as u64 ^ 0xE5);
        let g0 = generators::random_regular(n, 6, &mut rng);
        let victims = victims_for(n as u64, &g0, n * 2 / 5);
        let net = run_engine(&g0, &victims, xheal_sim::SyncNetwork::new());
        let m = measure(net.costs(), n);
        let log2n = (n as f64).log2();
        max_round_ratio = max_round_ratio.max(m.rounds_max / log2n);
        max_overhead = max_overhead.max(m.overhead);
        row(&[
            n.to_string(),
            m.repairs.to_string(),
            f(m.rounds_avg),
            f(m.rounds_max),
            f(m.msgs_avg),
            f(m.a_p),
            f(m.overhead),
        ]);
        sync_topologies.push((n, g0, victims, net.graph().clone()));
    }

    // Part 2: the same schedules over the async engine under latency.
    let lat = AsyncConfig::uniform(1, 3, 0xA5).with_jitter(1);
    let worst = lat.worst_case_delay();
    println!(
        "\n-- part 2: async event-queue engine, per-link latency in [1, 3] + jitter 1 \
         (worst delay L = {worst}) --"
    );
    srow(&[
        "n",
        "del",
        "rounds avg",
        "rounds max",
        "r/L*log2n",
        "identical",
    ]);
    let mut max_latency_ratio: f64 = 0.0;
    let mut all_identical = true;
    for &(n, ref g0, ref victims, ref sync_graph) in &sync_topologies {
        let net = run_engine(g0, victims, AsyncNetwork::<Msg>::new(lat));
        let m = measure(net.costs(), n);
        let ratio = m.rounds_max / (worst as f64 * (n as f64).log2());
        max_latency_ratio = max_latency_ratio.max(ratio);
        let identical = net.graph() == sync_graph;
        all_identical &= identical;
        row(&[
            n.to_string(),
            m.repairs.to_string(),
            f(m.rounds_avg),
            f(m.rounds_max),
            f(ratio),
            identical.to_string(),
        ]);
    }

    // Part 3: burst (batch) deletions under latency — per-stage costs.
    println!("\n-- part 3: burst deletions (batch) under the same latency model --");
    srow(&["n", "bursts", "stages", "rounds max", "connected"]);
    let mut bursts_ok = true;
    let mut burst_rounds_max = 0u64;
    for n in [128usize, 256] {
        let mut rng = StdRng::seed_from_u64(n as u64 ^ 0xB0);
        let g0 = generators::random_regular(n, 6, &mut rng);
        let mut net = DistXheal::with_engine(
            &g0,
            XhealConfig::new(KAPPA).with_seed(4),
            AsyncNetwork::<Msg>::new(lat),
        );
        let bursts = 8usize;
        for _ in 0..bursts {
            let nodes = net.graph().node_vec();
            let seed = nodes[rng.random_range(0..nodes.len())];
            let rack = bfs_rack(net.graph(), seed, 4);
            net.delete_batch(&rack).unwrap();
        }
        let connected = components::is_connected(net.graph());
        bursts_ok &= connected;
        let rounds_max = net.costs().iter().map(|c| c.rounds).max().unwrap_or(0);
        burst_rounds_max = burst_rounds_max.max(rounds_max);
        bursts_ok &= (rounds_max as f64) <= 4.0 * worst as f64 * (n as f64).log2();
        row(&[
            n.to_string(),
            bursts.to_string(),
            net.costs().len().to_string(),
            rounds_max.to_string(),
            connected.to_string(),
        ]);
    }

    verdict(
        max_round_ratio <= 4.0
            && max_overhead <= 2.0
            && all_identical
            && max_latency_ratio <= 4.0
            && bursts_ok,
        &format!(
            "sync: max rounds/log2(n) = {} (O(log n) recovery), message overhead vs \
             kappa*log(n)*A(p) = {} (constant); async: topologies bit-identical = \
             {all_identical}, max rounds/(L*log2 n) = {} (latency-scaled O(log n)); \
             bursts under latency stay connected within budget (max {} rounds)",
            f(max_round_ratio),
            f(max_overhead),
            f(max_latency_ratio),
            burst_rounds_max
        ),
    );
}
