//! E5 — Theorem 5: repairs take O(log n) rounds and amortized
//! O(κ·log n·A(p)) messages, where A(p) = (1/p)·Σ deg(v_i) is Lemma 5's
//! lower bound.
//!
//! The distributed protocol runs over the LOCAL-model engine with real
//! message envelopes; the table reports measured mean/max rounds per
//! deletion, mean messages, A(p), and the overhead ratio
//! `messages / (κ·log2 n·A(p))` which Theorem 5 bounds by a constant.

use rand::{rngs::StdRng, SeedableRng};
use xheal_bench::{f, header, row, srow, verdict};
use xheal_core::XhealConfig;
use xheal_dist::DistXheal;
use xheal_graph::generators;

fn main() {
    header(
        "E5",
        "distributed cost: O(log n) rounds, amortized O(kappa log n A(p)) messages (Thm 5)",
    );
    srow(&[
        "n",
        "del",
        "rounds avg",
        "rounds max",
        "msgs avg",
        "A(p)",
        "overhead",
    ]);
    let kappa = 6usize;
    let mut max_round_ratio: f64 = 0.0;
    let mut max_overhead: f64 = 0.0;

    for n in [32usize, 64, 128, 256, 512] {
        let mut rng = StdRng::seed_from_u64(n as u64 ^ 0xE5);
        let g0 = generators::random_regular(n, 6, &mut rng);
        let mut net = DistXheal::new(&g0, XhealConfig::new(kappa).with_seed(4));
        let deletions = n * 2 / 5;
        for _ in 0..deletions {
            let nodes = net.graph().node_vec();
            let victim = nodes[rng.random_range(0..nodes.len())];
            net.delete(victim).unwrap();
        }

        let costs = net.costs();
        let p = costs.len() as f64;
        let rounds_avg = costs.iter().map(|c| c.rounds as f64).sum::<f64>() / p;
        let rounds_max = costs.iter().map(|c| c.rounds).max().unwrap_or(0) as f64;
        let msgs_avg = costs.iter().map(|c| c.messages as f64).sum::<f64>() / p;
        let a_p = costs.iter().map(|c| c.black_degree as f64).sum::<f64>() / p;
        let log2n = (n as f64).log2();
        let overhead = msgs_avg / (kappa as f64 * log2n * a_p.max(1.0));
        max_round_ratio = max_round_ratio.max(rounds_max / log2n);
        max_overhead = max_overhead.max(overhead);
        row(&[
            n.to_string(),
            costs.len().to_string(),
            f(rounds_avg),
            f(rounds_max),
            f(msgs_avg),
            f(a_p),
            f(overhead),
        ]);
    }
    verdict(
        max_round_ratio <= 4.0 && max_overhead <= 2.0,
        &format!(
            "max rounds/log2(n) = {} (O(log n) recovery), amortized message overhead vs \
             kappa*log(n)*A(p) = {} (constant)",
            f(max_round_ratio),
            f(max_overhead)
        ),
    );
}

use rand::Rng;
