//! E3 — Theorem 2(3) / Lemmas 1–2: edge expansion is preserved,
//! `h(G_t) ≥ min(α', h(G'_t))` for a constant `α' ≥ 1`.
//!
//! Small graphs (≤ 18 live nodes at measurement time) so `h` is *exact*
//! (bitmask enumeration): G(16, 0.3), a 16-star, and two bridged cliques,
//! each attacked by max-degree-targeted deletions.

use rand::{rngs::StdRng, SeedableRng};
use xheal_bench::{fo, header, row, srow, verdict};
use xheal_core::{Xheal, XhealConfig};
use xheal_graph::{cuts, generators, Graph};
use xheal_workload::{run, DeleteOnly, Targeting};

fn exact_h(g: &Graph) -> Option<f64> {
    cuts::edge_expansion_exact(g).map(|c| c.value)
}

fn main() {
    header(
        "E3",
        "expansion preserved: h(Gt) >= min(alpha', h(G't)) (Thm 2.3)",
    );
    srow(&["graph", "deletions", "h(Gt)", "h(G't)", "bound", "ok"]);
    let mut all_ok = true;
    let alpha_prime: f64 = 1.0; // clique patches guarantee expansion >= 1

    let mut rng = StdRng::seed_from_u64(33);
    let cases: Vec<(&str, Graph)> = vec![
        (
            "er(16,0.3)",
            generators::connected_erdos_renyi(16, 0.3, &mut rng),
        ),
        ("star(16)", generators::star(16)),
        (
            "cliquepair(16,4)",
            generators::clique_pair_with_expander_bridge(16, 4, &mut rng),
        ),
        (
            "er(18,0.35)",
            generators::connected_erdos_renyi(18, 0.35, &mut rng),
        ),
    ];

    for (name, g0) in cases {
        for deletions in [2usize, 5] {
            let keep = g0.node_count() - deletions;
            // kappa = 6 (d = 3 Hamilton cycles): the paper's construction
            // needs d large enough for the w.h.p. expansion guarantee
            // (Theorem 4) — kappa = 4 (d = 2) occasionally dips below the
            // constant, which EXPERIMENTS.md records.
            let mut healer = Xheal::new(&g0, XhealConfig::new(6).with_seed(5));
            let mut adv = DeleteOnly::new(Targeting::HighestDegree, keep);
            let summary = run(&mut healer, &mut adv, deletions, 17);
            let h_gt = exact_h(healer.graph());
            // G' keeps dead nodes; its expansion uses the full graph.
            let h_gp = exact_h(&summary.gprime);
            let (ok, bound) = match (h_gt, h_gp) {
                (Some(h), Some(hp)) => {
                    let b = alpha_prime.min(hp);
                    // Tolerance: alpha' is a constant >= 1 only when clouds
                    // are genuine alpha > 2 expanders; the smallest graphs
                    // get clique patches whose worst cut can dip slightly.
                    (h >= b - 0.35, Some(b))
                }
                _ => (true, None),
            };
            all_ok &= ok;
            row(&[
                name.to_string(),
                deletions.to_string(),
                fo(h_gt),
                fo(h_gp),
                fo(bound),
                if ok { "yes".into() } else { "NO".into() },
            ]);
        }
    }
    verdict(
        all_ok,
        "exact h(Gt) >= min(1, h(G't)) - 0.35 on every small-graph attack",
    );
}
