//! # xheal-bench
//!
//! Shared table/formatting utilities for the experiment harness. Each bench
//! target (`benches/e1_*.rs` … `benches/e10_*.rs`, `benches/micro.rs`)
//! regenerates one experiment from DESIGN.md's per-experiment index; run one
//! with `cargo bench -p xheal-bench --bench e1_degree_bound` or all with
//! `cargo bench --workspace`.
//!
//! With the `bench` feature this crate also installs the counting global
//! allocator ([`alloc_count`]) that the `churn_throughput` and
//! `traffic_throughput` binaries use for their allocation ledgers.

// `deny` rather than `forbid`: the feature-gated counting allocator below
// is the one permitted unsafe block (a verbatim delegation to `System`).
#![deny(unsafe_code)]
#![warn(missing_docs)]

/// Counting global allocator (the `bench` feature): every allocation bumps
/// a relaxed atomic, so measurement phases can report exact
/// heap-allocation counts. Schedules are fully seeded, so counts are
/// deterministic per phase. Installed for every binary linking this crate
/// when the feature is on — off by default, since the counter adds an
/// atomic op to every alloc.
#[cfg(feature = "bench")]
#[allow(unsafe_code)]
mod alloc_counter {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    struct CountingAlloc;

    // SAFETY: delegates verbatim to `System`; the counter has no effect on
    // allocation behavior.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static A: CountingAlloc = CountingAlloc;

    pub(crate) fn current() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }
}

/// Heap allocations since process start (always 0 without the `bench`
/// feature — check [`ALLOC_COUNTING`] before trusting deltas).
pub fn alloc_count() -> u64 {
    #[cfg(feature = "bench")]
    {
        alloc_counter::current()
    }
    #[cfg(not(feature = "bench"))]
    {
        0
    }
}

/// Whether allocation counting is live in this build.
pub const ALLOC_COUNTING: bool = cfg!(feature = "bench");

/// Prints an experiment header with provenance.
pub fn header(id: &str, claim: &str) {
    println!();
    println!("==================================================================");
    println!("{id}: {claim}");
    println!("==================================================================");
}

/// Prints an aligned table row of cells (first column left-aligned, rest
/// right-aligned, 12 chars).
pub fn row(cells: &[String]) {
    let mut line = String::new();
    for (i, c) in cells.iter().enumerate() {
        if i == 0 {
            line.push_str(&format!("{c:<26}"));
        } else {
            line.push_str(&format!("{c:>12}"));
        }
    }
    println!("{line}");
}

/// Convenience: builds a row from string slices.
pub fn srow(cells: &[&str]) {
    row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
}

/// Formats a float compactly (3 significant decimals, inf-aware).
pub fn f(v: f64) -> String {
    if v.is_infinite() {
        "inf".to_string()
    } else if v == 0.0 {
        "0".to_string()
    } else if v.abs() < 0.001 {
        format!("{v:.1e}")
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Formats an optional float ("-" when absent).
pub fn fo(v: Option<f64>) -> String {
    v.map(f).unwrap_or_else(|| "-".to_string())
}

/// Prints the final verdict line for an experiment.
pub fn verdict(ok: bool, text: &str) {
    println!();
    println!("VERDICT [{}]: {text}", if ok { "PASS" } else { "CHECK" });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_formatting() {
        assert_eq!(f(f64::INFINITY), "inf");
        assert_eq!(f(0.0), "0");
        assert_eq!(f(1234.5), "1234.5");
        assert_eq!(f(1.23456), "1.235");
        assert_eq!(f(0.00004), "4.0e-5");
        assert_eq!(fo(None), "-");
        assert_eq!(fo(Some(2.0)), "2.000");
    }
}
