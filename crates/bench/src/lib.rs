//! # xheal-bench
//!
//! Shared table/formatting utilities for the experiment harness. Each bench
//! target (`benches/e1_*.rs` … `benches/e10_*.rs`, `benches/micro.rs`)
//! regenerates one experiment from DESIGN.md's per-experiment index; run one
//! with `cargo bench -p xheal-bench --bench e1_degree_bound` or all with
//! `cargo bench --workspace`.
//!
//! With the `bench` feature this crate also installs the counting global
//! allocator ([`alloc_count`]) that the `churn_throughput` and
//! `traffic_throughput` binaries use for their allocation ledgers.

// `deny` rather than `forbid`: the feature-gated counting allocator below
// is the one permitted unsafe block (a verbatim delegation to `System`).
#![deny(unsafe_code)]
#![warn(missing_docs)]

/// Counting global allocator (the `bench` feature): every allocation bumps
/// a relaxed atomic, so measurement phases can report exact
/// heap-allocation counts. Schedules are fully seeded, so counts are
/// deterministic per phase. Installed for every binary linking this crate
/// when the feature is on — off by default, since the counter adds an
/// atomic op to every alloc.
#[cfg(feature = "bench")]
#[allow(unsafe_code)]
mod alloc_counter {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    struct CountingAlloc;

    // SAFETY: delegates verbatim to `System`; the counter has no effect on
    // allocation behavior.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static A: CountingAlloc = CountingAlloc;

    pub(crate) fn current() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }
}

/// Heap allocations since process start (always 0 without the `bench`
/// feature — check [`ALLOC_COUNTING`] before trusting deltas).
pub fn alloc_count() -> u64 {
    #[cfg(feature = "bench")]
    {
        alloc_counter::current()
    }
    #[cfg(not(feature = "bench"))]
    {
        0
    }
}

/// Whether allocation counting is live in this build.
pub const ALLOC_COUNTING: bool = cfg!(feature = "bench");

/// Shared `--trace <path>` implementation for the bench binaries: drives a
/// compact, fully instrumented cross-layer repair scenario — the repair
/// planner, the centralized executors (Xheal and DEX), the distributed
/// actor protocol, the message transport, and the invariant monitor all
/// recording into one tracer — then writes the chrome://tracing JSON to
/// `path` and prints the per-phase summary, the metrics frame, and the
/// repair-forensics ledger to stderr.
///
/// The measured benchmark loops stay untraced on purpose: instrumenting
/// the timed hot paths would perturb the numbers the binaries exist to
/// record, so `--trace` captures a representative companion run instead
/// (same engines, same layers, bench-scale sizes).
pub fn capture_trace(path: &str, seed: u64) {
    use std::cell::RefCell;
    use std::rc::Rc;

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use xheal_core::{Event, HealingEngine, Xheal, XhealConfig};
    use xheal_dex::{Dex, DexConfig};
    use xheal_dist::DistXheal;
    use xheal_graph::{generators, NodeId};
    use xheal_monitor::{HealthPolicy, Monitor, MonitorConfig};
    use xheal_trace::{hook, Layer, Tracer};

    let tracer = Tracer::shared(1 << 15);
    let handle = Some(tracer.clone());
    hook::begin(&handle, Layer::Harness, "bench.capture", 0, seed);

    // Distributed segment: planner + protocol + transport + monitor. A
    // tight degree-increase budget makes the monitor's band machine move,
    // so health transitions land in the trace too.
    let g0 = generators::ring_with_chords(96);
    let mut net = DistXheal::new(&g0, XhealConfig::new(4).with_seed(seed));
    let monitor = Rc::new(RefCell::new(Monitor::new(
        net.graph(),
        MonitorConfig {
            policy: HealthPolicy {
                max_degree_increase: Some(2.0),
                warn_degree_increase: Some(1.5),
                ..HealthPolicy::default()
            },
            ..MonitorConfig::default()
        },
    )));
    monitor.borrow_mut().set_tracer(Some(tracer.clone()));
    net.subscribe(Box::new(Rc::clone(&monitor)));
    net.set_tracer(Some(tracer.clone()));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live: Vec<NodeId> = g0.nodes().collect();
    for i in 0..10 {
        let v = live.swap_remove(rng.random_range(0..live.len()));
        net.delete(v).expect("victim is live");
        hook::bump(&handle, "capture.deletes", 1);
        if i % 4 == 3 {
            monitor.borrow_mut().checkpoint();
        }
    }
    let victims: Vec<NodeId> = (0..6)
        .map(|_| live.swap_remove(rng.random_range(0..live.len())))
        .collect();
    net.delete_batch(&victims).expect("victims are live");
    hook::bump(&handle, "capture.batches", 1);
    let contact = live[0];
    net.insert(NodeId::new(10_000), &[contact])
        .expect("contact is live");
    monitor.borrow_mut().checkpoint();

    // Centralized executor segment: exec.repair / exec.apply spans.
    let g1 = generators::ring_with_chords(64);
    let mut xheal = Xheal::new(&g1, XhealConfig::new(4).with_seed(seed ^ 1));
    xheal.set_tracer(Some(tracer.clone()));
    let mut live: Vec<NodeId> = g1.nodes().collect();
    for _ in 0..6 {
        let v = live.swap_remove(rng.random_range(0..live.len()));
        xheal.heal_delete(v).expect("victim is live");
        hook::bump(&handle, "capture.deletes", 1);
    }
    let victims: Vec<NodeId> = (0..4)
        .map(|_| live.swap_remove(rng.random_range(0..live.len())))
        .collect();
    xheal
        .apply(&Event::DeleteBatch { nodes: victims })
        .expect("victims are live");
    hook::bump(&handle, "capture.batches", 1);

    // DEX segment: exec.insert instants carrying the reconfiguration cost.
    let mut dex = Dex::new(&generators::cycle(32), DexConfig::default());
    HealingEngine::set_tracer(&mut dex, Some(tracer.clone()));
    dex.apply(&Event::Insert {
        node: NodeId::new(900),
        neighbors: vec![NodeId::new(3)],
    })
    .expect("contact is live");
    dex.apply(&Event::Delete {
        node: NodeId::new(5),
    })
    .expect("victim is live");

    hook::end(&handle, Layer::Harness, "bench.capture", 0, 0);

    let t = hook::lock(&tracer);
    std::fs::write(path, t.chrome_trace_json()).expect("write chrome trace");
    eprintln!("\n--- trace phase summary ({path}) ---");
    eprint!("{}", t.phase_summary());
    eprint!("{}", t.metrics_ref().frame().render());
    eprint!("{}", t.forensics().render());
    eprintln!("wrote {path} ({} trace events)", t.len());
}

/// Parses `--trace <path>` from the argument list.
pub fn trace_arg(args: &[String]) -> Option<String> {
    args.iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Prints an experiment header with provenance.
pub fn header(id: &str, claim: &str) {
    println!();
    println!("==================================================================");
    println!("{id}: {claim}");
    println!("==================================================================");
}

/// Prints an aligned table row of cells (first column left-aligned, rest
/// right-aligned, 12 chars).
pub fn row(cells: &[String]) {
    let mut line = String::new();
    for (i, c) in cells.iter().enumerate() {
        if i == 0 {
            line.push_str(&format!("{c:<26}"));
        } else {
            line.push_str(&format!("{c:>12}"));
        }
    }
    println!("{line}");
}

/// Convenience: builds a row from string slices.
pub fn srow(cells: &[&str]) {
    row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
}

/// Formats a float compactly (3 significant decimals, inf-aware).
pub fn f(v: f64) -> String {
    if v.is_infinite() {
        "inf".to_string()
    } else if v == 0.0 {
        "0".to_string()
    } else if v.abs() < 0.001 {
        format!("{v:.1e}")
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Formats an optional float ("-" when absent).
pub fn fo(v: Option<f64>) -> String {
    v.map(f).unwrap_or_else(|| "-".to_string())
}

/// Prints the final verdict line for an experiment.
pub fn verdict(ok: bool, text: &str) {
    println!();
    println!("VERDICT [{}]: {text}", if ok { "PASS" } else { "CHECK" });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_formatting() {
        assert_eq!(f(f64::INFINITY), "inf");
        assert_eq!(f(0.0), "0");
        assert_eq!(f(1234.5), "1234.5");
        assert_eq!(f(1.23456), "1.235");
        assert_eq!(f(0.00004), "4.0e-5");
        assert_eq!(fo(None), "-");
        assert_eq!(fo(Some(2.0)), "2.000");
    }
}
