//! The self-healing-algorithm arena: every engine in the workspace driven
//! through identical seeded adversary schedules, scored live by the
//! monitoring subsystem, one trade-off matrix out.
//!
//! For each of the ten registry engines (`xheal`, `xheal-par`, the two
//! distributed substrates, DEX, and the five baselines) and each of the
//! three standard schedules (uniform churn, clustered `DeleteBatch`
//! bursts, insert-heavy growth), a fresh engine runs the schedule with an
//! [`xheal_monitor::Monitor`] subscribed to its delta stream. The scorer
//! checkpoints the expensive invariants periodically during the run and
//! once at the end, so every cell reports healing *cost* (rounds,
//! messages, edge operations, wall time) against invariant *quality*
//! (degree increase, sampled stretch, sweep-cut expansion, spectral gap
//! λ₂ and λ₃, components, alert counts).
//!
//! DEX's hard constant-degree bound (`max_load × degree`) is asserted
//! **in-process after every applied event**, not just on the final graph —
//! a transient breach anywhere in the schedule aborts the run.
//!
//! Output is `BENCH_arena.json` (schema `xheal-bench-arena/v1`, override
//! the path with `--out`); `--smoke` shrinks sizes for CI. Run the full
//! measurement with:
//!
//! ```text
//! cargo run --release -p xheal-bench --bin arena
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use xheal_core::{Event, HealingEngine, Outcome};
use xheal_dex::DexConfig;
use xheal_graph::{generators, Graph};
use xheal_monitor::{Monitor, MonitorConfig, MonitorHook};
use xheal_workload::{
    run_arena, standard_registry, ArenaMatrix, ArenaQuality, ArenaSchedule, ArenaScorer,
    HealthNote, RunObserver, RunSummary, Severity,
};

const KAPPA: usize = 4;
const ARENA_SEED: u64 = 0xA12E4A;

/// The monitor-backed [`ArenaScorer`]: one fresh [`Monitor`] per cell,
/// subscribed to the engine's delta stream at attach time, checkpointed
/// through a [`MonitorHook`] during the run and once more at finish.
struct MonitorScorer {
    monitor: Rc<RefCell<Monitor>>,
    hook: MonitorHook,
    /// In-process hard degree cap (DEX cells): checked after every event.
    degree_cap: Option<usize>,
    label: String,
}

impl MonitorScorer {
    /// Builds the scorer over the engine's post-construction graph — for
    /// DEX that is its bootstrap projection, which is exactly the
    /// reference its degree-increase and stretch should be judged against.
    fn new(label: String, initial: &Graph, checkpoint_every: usize, cap: Option<usize>) -> Self {
        let config = MonitorConfig {
            track_lambda3: true,
            ..MonitorConfig::default()
        };
        let monitor = Rc::new(RefCell::new(Monitor::new(initial, config)));
        let hook = MonitorHook::new(Rc::clone(&monitor), checkpoint_every);
        MonitorScorer {
            monitor,
            hook,
            degree_cap: cap,
            label,
        }
    }
}

impl RunObserver for MonitorScorer {
    fn on_event(&mut self, step: usize, event: &Event, outcome: &Outcome, graph: &Graph) {
        self.hook.on_event(step, event, outcome, graph);
        if let Some(cap) = self.degree_cap {
            let worst = self.monitor.borrow().degrees().max();
            assert!(
                worst <= cap,
                "{}: degree bound violated at step {step}: {worst} > {cap}",
                self.label
            );
        }
    }

    fn drain_notes(&mut self) -> Vec<HealthNote> {
        self.hook.drain_notes()
    }
}

impl ArenaScorer for MonitorScorer {
    fn attach(&mut self, engine: &mut dyn HealingEngine) {
        engine.subscribe(Box::new(Rc::clone(&self.monitor)));
    }

    fn finish(&mut self, graph: &Graph, summary: &RunSummary) -> ArenaQuality {
        let mut m = self.monitor.borrow_mut();
        assert_eq!(
            (m.node_count(), m.edge_count()),
            (graph.node_count(), graph.edge_count()),
            "{}: monitor drifted from the engine graph",
            self.label
        );
        let report = m.checkpoint();
        // An engine whose reference shadow never saw a black edge (DEX
        // rebuilds its overlay from membership alone) has no meaningful
        // reference-relative metrics: report null, not a vacuous zero.
        let has_reference = m.gprime().edge_count() > 0;
        ArenaQuality {
            max_degree: report.max_degree,
            degree_increase: has_reference.then_some(report.degree_increase),
            stretch: report.stretch.filter(|_| has_reference),
            expansion: report.expansion,
            spectral_gap: Some(report.spectral_gap.lambda),
            lambda3: report.lambda3,
            components: report.components,
            warn_notes: summary
                .health
                .iter()
                .filter(|n| n.severity == Severity::Warning)
                .count(),
            critical_notes: summary
                .health
                .iter()
                .filter(|n| n.severity == Severity::Critical)
                .count(),
        }
    }
}

fn fmt_opt(x: Option<f64>) -> String {
    match x {
        Some(v) if v.is_finite() => format!("{v:.6}"),
        _ => "null".to_string(),
    }
}

fn json(matrix: &ArenaMatrix, smoke: bool, steps: usize, dex_bound: usize) -> String {
    let engines = matrix
        .engines()
        .iter()
        .map(|e| format!("\"{e}\""))
        .collect::<Vec<_>>()
        .join(", ");
    let schedules = matrix
        .schedules()
        .iter()
        .map(|s| format!("\"{s}\""))
        .collect::<Vec<_>>()
        .join(", ");
    let mut cells = String::new();
    for (i, c) in matrix.cells.iter().enumerate() {
        let q = &c.quality;
        cells.push_str(&format!(
            "    {{\"engine\": \"{}\", \"schedule\": \"{}\", \
             \"steps_applied\": {}, \"insertions\": {}, \"deletions\": {}, \
             \"edges_added\": {}, \"edges_removed\": {}, \
             \"rounds\": {}, \"messages\": {}, \
             \"insert_rounds\": {}, \"insert_messages\": {}, \
             \"nodes\": {}, \"edges\": {}, \"wall_ms\": {:.3}, \
             \"max_degree\": {}, \"degree_increase\": {}, \"stretch\": {}, \
             \"expansion\": {}, \"spectral_gap\": {}, \"lambda3\": {}, \
             \"components\": {}, \"warn_notes\": {}, \"critical_notes\": {}}}{}\n",
            c.engine,
            c.schedule,
            c.steps_applied,
            c.insertions,
            c.deletions,
            c.edges_added,
            c.edges_removed,
            c.rounds,
            c.messages,
            c.insert_rounds,
            c.insert_messages,
            c.nodes,
            c.edges,
            c.wall_nanos as f64 / 1e6,
            q.max_degree,
            fmt_opt(q.degree_increase),
            fmt_opt(q.stretch),
            fmt_opt(q.expansion),
            fmt_opt(q.spectral_gap),
            fmt_opt(q.lambda3),
            q.components,
            q.warn_notes,
            q.critical_notes,
            if i + 1 == matrix.cells.len() { "" } else { "," },
        ));
    }
    format!(
        "{{\n  \"schema\": \"xheal-bench-arena/v1\",\n  \"smoke\": {smoke},\n  \
         \"kappa\": {KAPPA},\n  \"n0\": {},\n  \"steps\": {steps},\n  \
         \"seed\": {},\n  \"dex_degree_bound\": {dex_bound},\n  \
         \"engines\": [{engines}],\n  \"schedules\": [{schedules}],\n  \
         \"cells\": [\n{cells}  ]\n}}\n",
        matrix.n0, matrix.seed,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_arena.json".to_string());

    let (n0, steps, checkpoint_every) = if smoke {
        (60usize, 40usize, 8usize)
    } else {
        (512, 480, 32)
    };
    let dex_bound = DexConfig::default().degree * DexConfig::default().max_load;

    println!("arena: all engines x all schedules, monitor-scored");
    println!(
        "mode: {}, n0 = {n0}, steps = {steps}, kappa = {KAPPA}, \
         checkpoint every {checkpoint_every} events",
        if smoke { "smoke" } else { "full" }
    );

    let g0 = generators::ring_with_chords(n0);
    let registry = standard_registry(KAPPA);
    let schedules = ArenaSchedule::standard(steps);
    let matrix = run_arena(&registry, &schedules, &g0, ARENA_SEED, |key, sched, g| {
        let cap = (key == "dex").then_some(dex_bound);
        MonitorScorer::new(format!("{key}/{}", sched.name), g, checkpoint_every, cap)
    });

    assert!(matrix.is_complete(), "arena matrix has holes");
    assert_eq!(
        matrix.cells.len(),
        registry.len() * schedules.len(),
        "expected one cell per engine per schedule"
    );

    for sched in matrix.schedules() {
        println!("\n=== {sched} ===");
        println!(
            "{:<18} {:>7} {:>9} {:>9} {:>6} {:>8} {:>9} {:>9} {:>5} {:>5}",
            "engine",
            "rounds",
            "messages",
            "edge-ops",
            "maxdeg",
            "deg-inc",
            "stretch",
            "gap",
            "comps",
            "crit"
        );
        for engine in matrix.engines() {
            let c = matrix.cell(engine, sched).expect("complete");
            let q = &c.quality;
            println!(
                "{:<18} {:>7} {:>9} {:>9} {:>6} {:>8} {:>9} {:>9} {:>5} {:>5}",
                c.engine,
                c.rounds,
                c.messages,
                c.edges_added + c.edges_removed,
                q.max_degree,
                q.degree_increase
                    .map_or("n/a".into(), |v| format!("{v:.2}")),
                q.stretch.map_or("n/a".into(), |v| format!("{v:.2}")),
                q.spectral_gap.map_or("n/a".into(), |v| format!("{v:.4}")),
                q.components,
                q.critical_notes,
            );
        }
    }

    // Cross-cell acceptance gates: the Xheal family and DEX keep every
    // schedule connected; DEX additionally respects its hard degree cap on
    // the final graph (the per-event assertion already covered the run).
    for sched in matrix.schedules() {
        for engine in ["xheal", "xheal-par", "xheal-dist-sync", "xheal-dist-async"] {
            let c = matrix.cell(engine, sched).expect("complete");
            assert_eq!(c.quality.components, 1, "{engine}/{sched} disconnected");
        }
        let dex = matrix.cell("dex", sched).expect("complete");
        assert_eq!(dex.quality.components, 1, "dex/{sched} disconnected");
        assert!(
            dex.quality.max_degree <= dex_bound,
            "dex/{sched}: {} > {dex_bound}",
            dex.quality.max_degree
        );
    }

    let out = json(&matrix, smoke, steps, dex_bound);
    std::fs::write(&out_path, &out).expect("write arena report");
    println!("\nwrote {out_path}");

    if let Some(trace_path) = xheal_bench::trace_arg(&args) {
        xheal_bench::capture_trace(&trace_path, ARENA_SEED);
    }
}
