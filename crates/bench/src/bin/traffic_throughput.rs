//! Routed-traffic throughput harness: millions of seeded request routings
//! over the healed overlay, driven through the `xheal-sim` message
//! substrate under churn.
//!
//! Two measurements:
//!
//! - **substrate microbench** — the calendar-wheel + mailbox-arena engine
//!   ([`AsyncNetwork`]) against a frozen replica of the pre-PR-8 scheduler
//!   (`BinaryHeap` ordered by `(due, seq)` over `BTreeMap` inboxes), both
//!   driven through identical seeded send/step schedules at ≥ 100k
//!   messages in flight, reporting ns/send and ns/delivery for each and
//!   the speedup (acceptance gate: ≥ 2× on sends);
//! - **routed traffic run** — a `generators::ring_with_chords` overlay of `n`
//!   processors, greedy ring-distance routing
//!   ([`xheal_workload::greedy_next_hop`]) forwarded hop-by-hop as real
//!   engine messages under per-link latency + jitter, while a seeded
//!   adversary deletes processors mid-flight and Xheal heals around them
//!   (CSR snapshot refreshed per churn event). Reports messages/sec,
//!   effective ns/send, steady-state allocations per step (the
//!   zero-alloc ledger), hop and stretch distributions, per-request
//!   tick-latency percentiles (p50/p95/p99 of injection-to-delivery
//!   engine rounds), and delivered/lost accounting.
//!
//! A third section drives the distributed repair protocol over the async
//! substrate and reports its per-kind message breakdown
//! (`DistXheal::message_breakdown`), so the JSON records *where* the
//! communication budget goes, not just its total.
//!
//! Output is `BENCH_traffic.json` (schema `xheal-bench-traffic/v3`,
//! override the path with `--out`); `--smoke` shrinks sizes for CI. With
//! the `bench` feature the shared counting allocator records the
//! allocation ledger. `--trace <path>` additionally captures a fully
//! instrumented cross-layer companion run as chrome://tracing JSON (see
//! `xheal_bench::capture_trace`). Run the full measurement with:
//!
//! ```text
//! cargo run --release -p xheal-bench --features bench --bin traffic_throughput
//! ```

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xheal_bench::{alloc_count, ALLOC_COUNTING};
use xheal_core::{Xheal, XhealConfig};
use xheal_dist::{DistXheal, Msg};
use xheal_graph::{generators, CsrView, NodeId};
use xheal_sim::{AsyncConfig, AsyncNetwork, Counters, Envelope, NetworkEngine};
use xheal_workload::{
    bfs_distance, greedy_next_hop, route_hops, BfsScratch, RoutingRequest, TrafficGen,
};

const KAPPA: usize = 4;
const PLANNER_SEED: u64 = 7;
const TRAFFIC_SEED: u64 = 0x007A_FF1C;
const LINK_SEED: u64 = 42;

// ---------------------------------------------------------------------------
// Frozen baseline: the pre-calendar-queue scheduler, kept verbatim so the
// speedup is measured against the real predecessor, not a strawman.
// ---------------------------------------------------------------------------

struct Scheduled<M> {
    due: u64,
    seq: u64,
    doomed: bool,
    env: Envelope<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        (self.due, self.seq) == (other.due, other.seq)
    }
}

impl<M> Eq for Scheduled<M> {}

impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.due, other.seq).cmp(&(self.due, self.seq))
    }
}

/// The old heap+BTreeMap engine (pre-PR-8 `AsyncNetwork` internals).
struct HeapNet<M> {
    nodes: BTreeSet<NodeId>,
    queue: BinaryHeap<Scheduled<M>>,
    inboxes: BTreeMap<NodeId, Vec<Envelope<M>>>,
    dropped: Vec<Envelope<M>>,
    now: u64,
    seq: u64,
    rng: StdRng,
    config: AsyncConfig,
    counters: Counters,
}

impl<M> HeapNet<M> {
    fn new(config: AsyncConfig) -> Self {
        HeapNet {
            nodes: BTreeSet::new(),
            queue: BinaryHeap::new(),
            inboxes: BTreeMap::new(),
            dropped: Vec::new(),
            now: 0,
            seq: 0,
            rng: StdRng::seed_from_u64(config.seed),
            config,
            counters: Counters::default(),
        }
    }
}

impl<M> NetworkEngine<M> for HeapNet<M> {
    fn add_node(&mut self, v: NodeId) {
        self.nodes.insert(v);
    }

    fn remove_node(&mut self, v: NodeId) {
        self.nodes.remove(&v);
        self.inboxes.remove(&v);
    }

    fn contains(&self, v: NodeId) -> bool {
        self.nodes.contains(&v)
    }

    fn len(&self) -> usize {
        self.nodes.len()
    }

    fn send(&mut self, from: NodeId, to: NodeId, payload: M) {
        assert!(self.nodes.contains(&from), "sender {from} not registered");
        let mut delay = if self.config.min_latency == self.config.max_latency {
            self.config.min_latency
        } else {
            // The per-link latency hash is private to xheal-sim; a seeded
            // per-message draw costs the same and keeps both engines on
            // identical delay distributions (each consumes its own RNG).
            self.rng
                .random_range(self.config.min_latency..=self.config.max_latency)
        };
        if self.config.jitter > 0 {
            delay += self.rng.random_range(0..=self.config.jitter);
        }
        let doomed = self.config.drop_prob > 0.0 && self.rng.random_bool(self.config.drop_prob);
        self.seq += 1;
        self.queue.push(Scheduled {
            due: self.now + delay,
            seq: self.seq,
            doomed,
            env: Envelope { from, to, payload },
        });
    }

    fn step(&mut self) -> usize {
        self.now += 1;
        self.counters.rounds += 1;
        let mut delivered = 0;
        while self.queue.peek().is_some_and(|s| s.due <= self.now) {
            let s = self.queue.pop().expect("peeked");
            if s.doomed || !self.nodes.contains(&s.env.to) {
                self.counters.dropped += 1;
                self.dropped.push(s.env);
            } else {
                self.inboxes.entry(s.env.to).or_default().push(s.env);
                delivered += 1;
            }
        }
        self.counters.messages += delivered as u64;
        delivered
    }

    fn has_pending(&self) -> bool {
        !self.queue.is_empty()
    }

    fn nodes_with_mail_into(&self, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend(self.inboxes.keys().copied());
    }

    fn drain_inbox_into(&mut self, v: NodeId, out: &mut Vec<Envelope<M>>) {
        out.clear();
        if let Some(mut inbox) = self.inboxes.remove(&v) {
            out.append(&mut inbox);
        }
    }

    fn drain_dropped_into(&mut self, out: &mut Vec<Envelope<M>>) {
        out.clear();
        out.append(&mut self.dropped);
    }

    fn counters(&self) -> Counters {
        self.counters
    }
}

// ---------------------------------------------------------------------------
// Substrate microbench
// ---------------------------------------------------------------------------

struct MicroResult {
    ns_per_send: f64,
    ns_per_delivery: f64,
    delivered: u64,
}

/// Times `timed` sends at ≥ `preload` messages already in flight, then the
/// full drain (step + inbox sweeps), on any engine.
fn micro<E: NetworkEngine<RoutingRequest>>(
    net: &mut E,
    k: u64,
    preload: usize,
    timed: usize,
) -> MicroResult {
    for i in 0..k {
        net.add_node(NodeId::new(i));
    }
    let mut rng = StdRng::seed_from_u64(0x1417);
    let mut pairs = Vec::with_capacity(preload + timed);
    for _ in 0..preload + timed {
        let a = rng.random_range(0..k);
        let mut b = rng.random_range(0..k - 1);
        if b >= a {
            b += 1;
        }
        pairs.push((NodeId::new(a), NodeId::new(b)));
    }
    let req = RoutingRequest {
        dst: NodeId::new(0),
        hops: 0,
        ttl: 0,
        born: 0,
    };
    for &(a, b) in &pairs[..preload] {
        net.send(a, b, req);
    }
    let t0 = Instant::now();
    for &(a, b) in &pairs[preload..] {
        net.send(a, b, req);
    }
    let ns_per_send = t0.elapsed().as_nanos() as f64 / timed as f64;

    let mut with_mail = Vec::new();
    let mut mail = Vec::new();
    let mut delivered = 0u64;
    let t1 = Instant::now();
    while net.has_pending() {
        net.step();
        net.nodes_with_mail_into(&mut with_mail);
        for &v in &with_mail {
            net.drain_inbox_into(v, &mut mail);
            delivered += mail.len() as u64;
        }
    }
    let ns_per_delivery = t1.elapsed().as_nanos() as f64 / delivered.max(1) as f64;
    MicroResult {
        ns_per_send,
        ns_per_delivery,
        delivered,
    }
}

// ---------------------------------------------------------------------------
// Routed traffic run
// ---------------------------------------------------------------------------

const HIST: usize = 256;
/// Tick-latency histogram width: TTL hops × worst-case per-link delay
/// stays well inside this; the last bucket absorbs any tail.
const LAT_HIST: usize = 4096;

#[derive(Default)]
struct Stats {
    completed: u64,
    lost: u64,
    hops_hist: Vec<u64>,
    lat_hist: Vec<u64>,
}

/// The smallest value whose cumulative count reaches quantile `q` of
/// `total` (histogram bucket index = value).
fn hist_quantile(hist: &[u64], total: u64, q: f64) -> u64 {
    let target = ((total as f64 * q).ceil() as u64).max(1);
    let mut seen = 0u64;
    for (v, &cnt) in hist.iter().enumerate() {
        seen += cnt;
        if seen >= target {
            return v as u64;
        }
    }
    hist.len().saturating_sub(1) as u64
}

struct TrafficRun {
    engine: AsyncNetwork<RoutingRequest>,
    csr: CsrView,
    ring: u64,
    ttl: u32,
    gen: TrafficGen,
    stats: Stats,
    with_mail: Vec<NodeId>,
    mail: Vec<Envelope<RoutingRequest>>,
    dropbuf: Vec<Envelope<RoutingRequest>>,
    open: u64,
    injected: u64,
    steps: u64,
}

impl TrafficRun {
    fn inject_one(&mut self) {
        let (si, di) = self.gen.pair(&self.csr);
        self.injected += 1;
        match greedy_next_hop(&self.csr, si, di, self.ring, 1) {
            Some(next) => {
                self.engine.send(
                    self.csr.node(si),
                    self.csr.node(next),
                    RoutingRequest {
                        dst: self.csr.node(di),
                        hops: 1,
                        ttl: self.ttl,
                        born: self.steps,
                    },
                );
                self.open += 1;
            }
            None => self.stats.lost += 1, // isolated source: never, post-heal
        }
    }

    /// One engine round: deliver, then complete/forward/lose every message.
    fn drive_step(&mut self) {
        self.engine.step();
        self.steps += 1;
        self.engine.nodes_with_mail_into(&mut self.with_mail);
        for i in 0..self.with_mail.len() {
            let at = self.with_mail[i];
            let mut mail = std::mem::take(&mut self.mail);
            self.engine.drain_inbox_into(at, &mut mail);
            for env in mail.drain(..) {
                let req = env.payload;
                if env.to == req.dst {
                    self.stats.completed += 1;
                    self.stats.hops_hist[(req.hops as usize).min(HIST - 1)] += 1;
                    let latency = (self.steps - req.born) as usize;
                    self.stats.lat_hist[latency.min(LAT_HIST - 1)] += 1;
                    self.open -= 1;
                } else {
                    self.forward(env.to, req);
                }
            }
            self.mail = mail;
        }
        let mut dropbuf = std::mem::take(&mut self.dropbuf);
        self.engine.drain_dropped_into(&mut dropbuf);
        self.stats.lost += dropbuf.len() as u64;
        self.open -= dropbuf.len() as u64;
        dropbuf.clear();
        self.dropbuf = dropbuf;
    }

    fn forward(&mut self, at: NodeId, req: RoutingRequest) {
        if req.ttl == 0 {
            self.stats.lost += 1;
            self.open -= 1;
            return;
        }
        let (Some(ai), Some(di)) = (self.csr.index_of(at), self.csr.index_of(req.dst)) else {
            // The destination was deleted while the request was in flight.
            self.stats.lost += 1;
            self.open -= 1;
            return;
        };
        match greedy_next_hop(&self.csr, ai, di, self.ring, u64::from(req.hops)) {
            Some(next) => self.engine.send(
                at,
                self.csr.node(next),
                RoutingRequest {
                    dst: req.dst,
                    hops: req.hops + 1,
                    ttl: req.ttl - 1,
                    born: req.born,
                },
            ),
            None => {
                self.stats.lost += 1;
                self.open -= 1;
            }
        }
    }

    /// Deletes one random live processor, heals around it, refreshes the
    /// CSR snapshot, and settles the worst-case delay so in-flight traffic
    /// to the victim drains (allocation-attributed to churn, not steady
    /// state).
    fn churn_one(&mut self, healer: &mut Xheal, rng: &mut StdRng) {
        let victim = self.csr.node(rng.random_range(0..self.csr.len()));
        healer.heal_delete(victim).expect("victim is live");
        self.engine.remove_node(victim);
        self.csr = healer.graph().csr_view();
        for _ in 0..self.engine.config().worst_case_delay() {
            self.drive_step();
        }
    }
}

struct TrafficReport {
    nodes: usize,
    requests: u64,
    completed: u64,
    lost: u64,
    churn_events: u64,
    steps: u64,
    sends: u64,
    wall_seconds: f64,
    messages_per_sec: f64,
    ns_per_send_effective: f64,
    steady_steps: u64,
    steady_allocs: u64,
    hops_mean: f64,
    hops_p99: u64,
    latency_mean: f64,
    latency_p50: u64,
    latency_p95: u64,
    latency_p99: u64,
    stretch_samples: usize,
    stretch_mean: f64,
    stretch_p99: f64,
    stretch_unreachable: usize,
}

#[allow(clippy::too_many_arguments)]
fn traffic(
    n: usize,
    requests: u64,
    window: u64,
    ttl: u32,
    churn_events: u64,
    stretch_samples: usize,
) -> TrafficReport {
    println!("\nbuilding ring+chords overlay: n = {n} ...");
    let g0 = generators::ring_with_chords(n);
    let mut healer = Xheal::new(&g0, XhealConfig::new(KAPPA).with_seed(PLANNER_SEED));
    let mut engine: AsyncNetwork<RoutingRequest> =
        AsyncNetwork::new(AsyncConfig::uniform(1, 2, LINK_SEED).with_jitter(1));
    for v in g0.nodes() {
        engine.add_node(v);
    }
    // Pre-warm sweep: every inbox buffer allocates lazily on its first-ever
    // delivery, so without this the coupon-collector tail of
    // never-yet-mailed processors would trickle one-time allocations deep
    // into the measured phase. One self-addressed broadcast, drained and
    // discarded, touches every slot (and sizes the drain buffers) before
    // the clock starts.
    let mut with_mail = Vec::new();
    let mut mail = Vec::new();
    let warm = RoutingRequest {
        dst: NodeId::new(u64::MAX),
        hops: 0,
        ttl: 0,
        born: 0,
    };
    for v in g0.nodes() {
        engine.send(v, v, warm);
    }
    for _ in 0..engine.config().worst_case_delay() {
        engine.step();
        engine.nodes_with_mail_into(&mut with_mail);
        let warmed = std::mem::take(&mut with_mail);
        for &v in &warmed {
            engine.drain_inbox_into(v, &mut mail);
        }
        with_mail = warmed;
    }
    assert!(!engine.has_pending(), "warm sweep failed to drain");
    // The sweep leaves the per-round drain buffer sized for one message;
    // give the bench-side buffers real headroom while setup may allocate.
    mail.reserve(1024);
    let dropbuf = Vec::with_capacity(1024);
    let c0 = engine.counters();
    let mut run = TrafficRun {
        engine,
        csr: healer.graph().csr_view(),
        ring: n as u64,
        ttl,
        gen: TrafficGen::new(TRAFFIC_SEED),
        stats: Stats {
            hops_hist: vec![0; HIST],
            lat_hist: vec![0; LAT_HIST],
            ..Stats::default()
        },
        with_mail,
        mail,
        dropbuf,
        open: 0,
        injected: 0,
        steps: 0,
    };
    let mut churn_rng = StdRng::seed_from_u64(0xC4u64);
    let churn_every = (requests / (churn_events + 1)).max(1);
    let warmup = requests / 10;
    let mut churned = 0u64;
    let mut steady_allocs = 0u64;
    let mut steady_steps = 0u64;

    println!(
        "routing {requests} requests (window {window}, ttl {ttl}, \
         {churn_events} churn deletions) ..."
    );
    let t0 = Instant::now();
    loop {
        let steady = run.injected >= warmup;
        let a0 = alloc_count();
        while run.injected < requests && run.open < window {
            run.inject_one();
        }
        run.drive_step();
        if steady {
            steady_allocs += alloc_count() - a0;
            steady_steps += 1;
        }
        if churned < churn_events && run.injected >= (churned + 1) * churn_every {
            run.churn_one(&mut healer, &mut churn_rng);
            churned += 1;
        }
        if run.injected == requests && run.open == 0 {
            break;
        }
    }
    let wall = t0.elapsed().as_secs_f64();

    let c = run.engine.counters();
    let sends = (c.messages - c0.messages) + (c.dropped - c0.dropped);
    assert_eq!(
        run.stats.completed + run.stats.lost,
        requests,
        "request accounting leaked"
    );

    // Observed hop distribution of completed requests.
    let hops_total: u64 = run
        .stats
        .hops_hist
        .iter()
        .enumerate()
        .map(|(h, &cnt)| h as u64 * cnt)
        .sum();
    let hops_mean = hops_total as f64 / run.stats.completed.max(1) as f64;
    let p99_target = run.stats.completed - run.stats.completed / 100;
    let mut seen = 0u64;
    let mut hops_p99 = 0u64;
    for (h, &cnt) in run.stats.hops_hist.iter().enumerate() {
        seen += cnt;
        if seen >= p99_target {
            hops_p99 = h as u64;
            break;
        }
    }

    // Per-request tick latency of completed requests (injection to
    // delivery, engine rounds: link delays included, unlike the hop
    // count).
    let lat_total: u64 = run
        .stats
        .lat_hist
        .iter()
        .enumerate()
        .map(|(l, &cnt)| l as u64 * cnt)
        .sum();
    let latency_mean = lat_total as f64 / run.stats.completed.max(1) as f64;
    let latency_p50 = hist_quantile(&run.stats.lat_hist, run.stats.completed, 0.50);
    let latency_p95 = hist_quantile(&run.stats.lat_hist, run.stats.completed, 0.95);
    let latency_p99 = hist_quantile(&run.stats.lat_hist, run.stats.completed, 0.99);

    // Stretch on the final healed snapshot: greedy hops vs BFS shortest
    // path over a fresh request sample.
    let mut sgen = TrafficGen::new(TRAFFIC_SEED ^ 0x57);
    let mut scratch = BfsScratch::default();
    let mut ratios = Vec::with_capacity(stretch_samples);
    let mut unreachable = 0usize;
    for _ in 0..stretch_samples {
        let (s, d) = sgen.pair(&run.csr);
        match (
            route_hops(&run.csr, s, d, run.ring, ttl),
            bfs_distance(&run.csr, s, d, &mut scratch),
        ) {
            (Some(h), Some(b)) => ratios.push(f64::from(h) / f64::from(b.max(1))),
            _ => unreachable += 1,
        }
    }
    ratios.sort_unstable_by(f64::total_cmp);
    let stretch_mean = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
    let stretch_p99 = ratios
        .get(ratios.len().saturating_sub(1 + ratios.len() / 100))
        .copied()
        .unwrap_or(f64::NAN);

    TrafficReport {
        nodes: n,
        requests,
        completed: run.stats.completed,
        lost: run.stats.lost,
        churn_events: churned,
        steps: run.steps,
        sends,
        wall_seconds: wall,
        messages_per_sec: sends as f64 / wall,
        ns_per_send_effective: wall * 1e9 / sends as f64,
        steady_steps,
        steady_allocs,
        hops_mean,
        hops_p99,
        latency_mean,
        latency_p50,
        latency_p95,
        latency_p99,
        stretch_samples: ratios.len(),
        stretch_mean,
        stretch_p99,
        stretch_unreachable: unreachable,
    }
}

// ---------------------------------------------------------------------------
// Protocol message breakdown
// ---------------------------------------------------------------------------

struct ProtocolReport {
    nodes: usize,
    deletions: u64,
    batch_victims: u64,
    rounds: u64,
    messages: u64,
    kinds: Vec<(&'static str, u64)>,
}

/// Drives the distributed repair protocol over the async substrate through
/// a seeded deletion schedule (singles plus `DeleteBatch` bursts) and
/// breaks its communication complexity down by message kind — the
/// per-phase counters behind [`DistXheal::message_breakdown`], showing
/// where the budget goes (probe/grant fan-out vs. splice gossip).
fn protocol_breakdown(n: usize, deletions: usize, batches: usize) -> ProtocolReport {
    let g0 = generators::ring_with_chords(n);
    let mut net = DistXheal::builder()
        .kappa(KAPPA)
        .seed(PLANNER_SEED)
        .engine(AsyncNetwork::<Msg>::new(AsyncConfig::uniform(
            1, 3, LINK_SEED,
        )))
        .build(&g0);
    let mut rng = StdRng::seed_from_u64(0xB4EAD);
    let mut live: Vec<NodeId> = g0.nodes().collect();
    for _ in 0..deletions {
        let v = live.swap_remove(rng.random_range(0..live.len()));
        net.delete(v).expect("victim is live");
    }
    let mut batch_victims = 0u64;
    for _ in 0..batches {
        let victims: Vec<NodeId> = (0..8)
            .map(|_| live.swap_remove(rng.random_range(0..live.len())))
            .collect();
        batch_victims += victims.len() as u64;
        net.delete_batch(&victims).expect("victims are live");
    }
    let c = net.counters();
    let (labels, counts) = net.message_breakdown();
    ProtocolReport {
        nodes: n,
        deletions: deletions as u64,
        batch_victims,
        rounds: c.rounds,
        messages: c.messages,
        kinds: labels.iter().copied().zip(counts.iter().copied()).collect(),
    }
}

// ---------------------------------------------------------------------------
// main
// ---------------------------------------------------------------------------

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_traffic.json".to_string());

    let (micro_nodes, preload, timed) = if smoke {
        (2_000u64, 5_000usize, 40_000usize)
    } else {
        (100_000, 120_000, 1_000_000)
    };
    let (n, requests, window, ttl, churn_events, stretch_samples) = if smoke {
        (2_000usize, 2_500u64, 256u64, 64u32, 6u64, 40usize)
    } else {
        (100_000, 1_200_000, 8_192, 128, 48, 200)
    };

    println!("traffic_throughput: substrate microbench + routed traffic run");
    println!(
        "mode: {}, alloc counting: {ALLOC_COUNTING}",
        if smoke { "smoke" } else { "full" }
    );

    // Substrate microbench: identical configs, each engine consumes its
    // own seeded RNG through an identical send schedule.
    let cfg = AsyncConfig::uniform(1, 8, LINK_SEED).with_jitter(4);
    println!(
        "\nsubstrate microbench: {micro_nodes} processors, {preload} preloaded \
         in flight, {timed} timed sends"
    );
    let mut calendar: AsyncNetwork<RoutingRequest> = AsyncNetwork::new(cfg);
    let new_r = micro(&mut calendar, micro_nodes, preload, timed);
    let mut heap: HeapNet<RoutingRequest> = HeapNet::new(cfg);
    let old_r = micro(&mut heap, micro_nodes, preload, timed);
    assert_eq!(
        new_r.delivered, old_r.delivered,
        "schedulers disagree on delivery count"
    );
    let send_speedup = old_r.ns_per_send / new_r.ns_per_send;
    let delivery_speedup = old_r.ns_per_delivery / new_r.ns_per_delivery;
    println!(
        "  calendar wheel : {:8.1} ns/send  {:8.1} ns/delivery",
        new_r.ns_per_send, new_r.ns_per_delivery
    );
    println!(
        "  heap baseline  : {:8.1} ns/send  {:8.1} ns/delivery",
        old_r.ns_per_send, old_r.ns_per_delivery
    );
    println!("  speedup        : {send_speedup:8.2}x send   {delivery_speedup:8.2}x delivery");

    let (proto_nodes, proto_dels, proto_batches) = if smoke {
        (200usize, 12usize, 2usize)
    } else {
        (2_000, 60, 6)
    };
    let proto = protocol_breakdown(proto_nodes, proto_dels, proto_batches);
    println!(
        "\nprotocol message breakdown: {} processors, {} deletions + {} victims batched",
        proto.nodes, proto.deletions, proto.batch_victims
    );
    println!(
        "  totals         : {} messages over {} rounds",
        proto.messages, proto.rounds
    );
    let sent_total: u64 = proto.kinds.iter().map(|&(_, c)| c).sum();
    for &(label, count) in &proto.kinds {
        println!(
            "  {label:<15}: {count:>8}  ({:.1}%)",
            count as f64 * 100.0 / sent_total.max(1) as f64
        );
    }

    let t = traffic(n, requests, window, ttl, churn_events, stretch_samples);
    let allocs_per_step = t.steady_allocs as f64 / t.steady_steps.max(1) as f64;
    let allocs_per_million = t.steady_allocs as f64 * 1e6 / t.sends.max(1) as f64;
    println!("\nrouted traffic over the healed overlay:");
    println!("  requests       : {} ({} lost)", t.requests, t.lost);
    println!(
        "  engine traffic : {} sends over {} rounds in {:.2}s",
        t.sends, t.steps, t.wall_seconds
    );
    println!(
        "  throughput     : {:.0} messages/sec  ({:.1} ns/send effective, \
         full routing loop)",
        t.messages_per_sec, t.ns_per_send_effective
    );
    println!(
        "  steady state   : {} allocs over {} steps ({:.4} allocs/step)",
        t.steady_allocs, t.steady_steps, allocs_per_step
    );
    println!(
        "  hops           : mean {:.2}, p99 {}",
        t.hops_mean, t.hops_p99
    );
    println!(
        "  tick latency   : mean {:.2}, p50 {}, p95 {}, p99 {}",
        t.latency_mean, t.latency_p50, t.latency_p95, t.latency_p99
    );
    println!(
        "  stretch        : mean {:.3}, p99 {:.3} over {} samples \
         ({} unreachable)",
        t.stretch_mean, t.stretch_p99, t.stretch_samples, t.stretch_unreachable
    );

    // Acceptance gates (full mode; smoke sizes are too small to be fair).
    if !smoke {
        assert!(
            t.requests >= 1_000_000,
            "full run must route at least 1M requests"
        );
        assert!(
            send_speedup >= 2.0,
            "calendar queue only {send_speedup:.2}x faster than the heap baseline"
        );
        assert!(
            t.completed as f64 >= 0.99 * t.requests as f64,
            "delivery rate collapsed: {} of {}",
            t.completed,
            t.requests
        );
        if ALLOC_COUNTING {
            assert_eq!(
                t.steady_allocs, 0,
                "steady-state stepping allocated ({allocs_per_step:.4}/step)"
            );
        }
    }

    let kinds_json = proto
        .kinds
        .iter()
        .map(|&(label, count)| format!("\"{label}\": {count}"))
        .collect::<Vec<_>>()
        .join(", ");
    let proto_json = format!(
        "{{\"nodes\": {}, \"deletions\": {}, \"batch_victims\": {}, \"rounds\": {}, \
         \"messages\": {}, \"kinds\": {{{kinds_json}}}}}",
        proto.nodes, proto.deletions, proto.batch_victims, proto.rounds, proto.messages,
    );
    let json = format!(
        "{{\n  \"schema\": \"xheal-bench-traffic/v3\",\n  \"smoke\": {smoke},\n  \
         \"protocol\": {proto_json},\n  \
         \"alloc_counting\": {ALLOC_COUNTING},\n  \"substrate\": {{\n    \
         \"nodes\": {micro_nodes},\n    \"preload_in_flight\": {preload},\n    \
         \"timed_sends\": {timed},\n    \"calendar\": {{\"ns_per_send\": {:.2}, \
         \"ns_per_delivery\": {:.2}}},\n    \"heap_baseline\": {{\"ns_per_send\": {:.2}, \
         \"ns_per_delivery\": {:.2}}},\n    \"send_speedup\": {:.3},\n    \
         \"delivery_speedup\": {:.3}\n  }},\n  \"traffic\": {{\n    \
         \"nodes\": {},\n    \"requests\": {},\n    \"completed\": {},\n    \
         \"lost\": {},\n    \"churn_events\": {},\n    \"rounds\": {},\n    \
         \"messages_sent\": {},\n    \"wall_seconds\": {:.3},\n    \
         \"messages_per_sec\": {:.0},\n    \"ns_per_send_effective\": {:.2},\n    \
         \"steady\": {{\"steps\": {}, \"allocs\": {}, \"allocs_per_step\": {:.4}, \
         \"allocs_per_million_messages\": {:.2}}},\n    \
         \"hops\": {{\"mean\": {:.3}, \"p99\": {}}},\n    \
         \"latency_ticks\": {{\"mean\": {:.3}, \"p50\": {}, \"p95\": {}, \
         \"p99\": {}}},\n    \
         \"stretch\": {{\"samples\": {}, \"mean\": {:.4}, \"p99\": {:.4}, \
         \"unreachable\": {}}}\n  }}\n}}\n",
        new_r.ns_per_send,
        new_r.ns_per_delivery,
        old_r.ns_per_send,
        old_r.ns_per_delivery,
        send_speedup,
        delivery_speedup,
        t.nodes,
        t.requests,
        t.completed,
        t.lost,
        t.churn_events,
        t.steps,
        t.sends,
        t.wall_seconds,
        t.messages_per_sec,
        t.ns_per_send_effective,
        t.steady_steps,
        t.steady_allocs,
        allocs_per_step,
        allocs_per_million,
        t.hops_mean,
        t.hops_p99,
        t.latency_mean,
        t.latency_p50,
        t.latency_p95,
        t.latency_p99,
        t.stretch_samples,
        t.stretch_mean,
        t.stretch_p99,
        t.stretch_unreachable,
    );
    std::fs::write(&out_path, &json).expect("write traffic report");
    println!("\nwrote {out_path}");

    if let Some(trace_path) = xheal_bench::trace_arg(&args) {
        xheal_bench::capture_trace(&trace_path, PLANNER_SEED);
    }
}
