//! Churn-throughput harness: the measured seed-vs-arena comparison.
//!
//! Drives the *same* seeded [`RepairPlanner`] repair schedule through two
//! graph backends — the arena-backed [`xheal_graph::Graph`] and the seed
//! `BTreeMap` representation ([`xheal_graph::baseline::BaselineGraph`]) —
//! over large random-regular networks under mixed insert/delete adversaries,
//! and records:
//!
//! - **heal-delete micro**: per-deletion latency on a delete-only schedule,
//!   split into the *graph-side* cost (node removal + repair-plan edge
//!   application — the part the representation owns) and the full operation
//!   including the shared planner;
//! - **end-to-end churn**: events/sec over a mixed insert/delete schedule,
//!   with p50/p99 heal latency and peak live edges;
//! - **topology fingerprints** proving both backends walked through
//!   bit-identical edge sets (the determinism guarantee of the rewrite).
//!
//! - **component-parallel cores axis**: end-to-end batch healing through
//!   sequential [`xheal_core::Xheal`] vs [`xheal_core::ParallelXheal`] at
//!   each requested thread count (`--threads 1,2,4` or `XHEAL_THREADS`),
//!   under both scattered-uniform and clustered-outage failure models,
//!   with fingerprints asserted bit-identical at every thread count.
//!
//! Output is `BENCH_throughput.json` (override with `--out`); `--smoke`
//! shrinks sizes for CI; `--trace <path>` additionally captures a fully
//! instrumented cross-layer companion run as chrome://tracing JSON (see
//! `xheal_bench::capture_trace`). With the `bench` feature a counting global
//! allocator additionally records heap allocations per measurement phase
//! (`"allocs"` fields, `"alloc_counting": true`), so regressions in the
//! zero-alloc hot paths fail loudly. Run the full measurement with:
//!
//! ```text
//! cargo run --release -p xheal-bench --features bench --bin churn_throughput
//! ```

use std::time::{Duration, Instant};

use xheal_bench::{alloc_count, ALLOC_COUNTING};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xheal_core::{
    ApplyScratch, BatchVictim, Event, HealingEngine, ParallelXheal, RepairPlanner, SinkRegistry,
    Xheal, XhealConfig,
};
use xheal_graph::baseline::BaselineGraph;
use xheal_graph::{generators, CloudColor, EdgeLabels, Graph, NodeId};

const KAPPA: usize = 6;
const PLANNER_SEED: u64 = 11;
const ADVERSARY_SEED: u64 = 0x5EED_CAFE;

/// The graph operations a repair executor needs, implemented by both
/// representations so one driver measures both.
trait Backend {
    fn from_initial(g0: &Graph) -> Self;
    fn degree(&self, v: NodeId) -> usize;
    fn edge_count(&self) -> usize;
    fn add_node(&mut self, v: NodeId);
    fn add_black_edge(&mut self, u: NodeId, v: NodeId);
    /// Removes `v`, appending its incident `(neighbor, labels)` pairs
    /// (ascending by neighbor) to `out`.
    fn remove_node_into(&mut self, v: NodeId, out: &mut Vec<(NodeId, EdgeLabels)>);
    fn strip_color(&mut self, u: NodeId, v: NodeId, c: CloudColor);
    fn add_colored_edge(&mut self, u: NodeId, v: NodeId, c: CloudColor);
    /// Order-sensitive hash over the full `edges()` enumeration: equal
    /// fingerprints mean identical topology *and* identical iteration order.
    fn edge_fingerprint(&self) -> u64;
}

impl Backend for Graph {
    fn from_initial(g0: &Graph) -> Self {
        g0.clone()
    }
    fn degree(&self, v: NodeId) -> usize {
        Graph::degree(self, v).expect("victim is live")
    }
    fn edge_count(&self) -> usize {
        Graph::edge_count(self)
    }
    fn add_node(&mut self, v: NodeId) {
        Graph::add_node(self, v).expect("fresh id");
    }
    fn add_black_edge(&mut self, u: NodeId, v: NodeId) {
        Graph::add_black_edge(self, u, v).expect("live endpoints");
    }
    fn remove_node_into(&mut self, v: NodeId, out: &mut Vec<(NodeId, EdgeLabels)>) {
        Graph::remove_node_into(self, v, out).expect("victim is live");
    }
    fn strip_color(&mut self, u: NodeId, v: NodeId, c: CloudColor) {
        Graph::strip_color(self, u, v, c);
    }
    fn add_colored_edge(&mut self, u: NodeId, v: NodeId, c: CloudColor) {
        Graph::add_colored_edge(self, u, v, c).expect("cloud members are live");
    }
    fn edge_fingerprint(&self) -> u64 {
        Graph::edge_fingerprint(self)
    }
}

impl Backend for BaselineGraph {
    fn from_initial(g0: &Graph) -> Self {
        let mut m = BaselineGraph::new();
        for v in g0.nodes() {
            m.add_node(v).expect("fresh id");
        }
        for (u, v, _) in g0.edges() {
            m.add_black_edge(u, v).expect("live endpoints");
        }
        m
    }
    fn degree(&self, v: NodeId) -> usize {
        BaselineGraph::degree(self, v).expect("victim is live")
    }
    fn edge_count(&self) -> usize {
        BaselineGraph::edge_count(self)
    }
    fn add_node(&mut self, v: NodeId) {
        BaselineGraph::add_node(self, v).expect("fresh id");
    }
    fn add_black_edge(&mut self, u: NodeId, v: NodeId) {
        BaselineGraph::add_black_edge(self, u, v).expect("live endpoints");
    }
    fn remove_node_into(&mut self, v: NodeId, out: &mut Vec<(NodeId, EdgeLabels)>) {
        out.extend(BaselineGraph::remove_node(self, v).expect("victim is live"));
    }
    fn strip_color(&mut self, u: NodeId, v: NodeId, c: CloudColor) {
        BaselineGraph::strip_color(self, u, v, c);
    }
    fn add_colored_edge(&mut self, u: NodeId, v: NodeId, c: CloudColor) {
        BaselineGraph::add_colored_edge(self, u, v, c).expect("cloud members are live");
    }
    fn edge_fingerprint(&self) -> u64 {
        BaselineGraph::edge_fingerprint(self)
    }
}

/// Applies one planned repair to a backend, returning nothing; the planner
/// already advanced. Mirrors `RepairPlan::apply_to`.
fn apply_plan<B: Backend>(backend: &mut B, plan: &xheal_core::RepairPlan) {
    for action in &plan.actions {
        let color = action.color();
        let delta = action.delta();
        for &(u, w) in &delta.removed {
            backend.strip_color(u, w, color);
        }
        for &(u, w) in &delta.added {
            backend.add_colored_edge(u, w, color);
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Quantiles {
    p50: u64,
    p99: u64,
    mean: u64,
}

fn quantiles(samples: &mut [u64]) -> Quantiles {
    assert!(!samples.is_empty(), "no latency samples recorded");
    samples.sort_unstable();
    let q = |p: f64| samples[((samples.len() - 1) as f64 * p) as usize];
    Quantiles {
        p50: q(0.50),
        p99: q(0.99),
        mean: samples.iter().sum::<u64>() / samples.len() as u64,
    }
}

/// Result of the delete-only microbench over one backend.
struct MicroResult {
    deletes: usize,
    graph: Quantiles,
    op: Quantiles,
    /// Heap allocations across the measurement loop (0 without `bench`).
    allocs: u64,
    fingerprint: u64,
}

/// Delete-only schedule over a prepared random-regular network: the
/// heal-delete microbench. Victim choice and planner randomness are seeded,
/// so both backends replay the identical repair schedule.
fn run_micro<B: Backend>(g0: &Graph, deletes: usize) -> MicroResult {
    let mut backend = B::from_initial(g0);
    let mut planner =
        RepairPlanner::new(g0.nodes(), XhealConfig::new(KAPPA).with_seed(PLANNER_SEED));
    let mut adv = StdRng::seed_from_u64(ADVERSARY_SEED);
    let mut live: Vec<NodeId> = g0.nodes().collect();
    let mut incident: Vec<(NodeId, EdgeLabels)> = Vec::new();
    let mut graph_ns: Vec<u64> = Vec::with_capacity(deletes);
    let mut op_ns: Vec<u64> = Vec::with_capacity(deletes);
    let allocs_before = alloc_count();

    for _ in 0..deletes {
        let v = live.swap_remove(adv.random_range(0..live.len()));
        incident.clear();
        let t_op = Instant::now();
        let degree = backend.degree(v);
        let t_graph = Instant::now();
        backend.remove_node_into(v, &mut incident);
        let mut spent_graph = t_graph.elapsed();
        let plan = planner.plan_deletion(v, &incident, degree);
        let t_apply = Instant::now();
        apply_plan(&mut backend, &plan);
        spent_graph += t_apply.elapsed();
        op_ns.push(t_op.elapsed().as_nanos() as u64);
        graph_ns.push(spent_graph.as_nanos() as u64);
    }

    let allocs = alloc_count() - allocs_before;
    MicroResult {
        deletes,
        graph: quantiles(&mut graph_ns),
        op: quantiles(&mut op_ns),
        allocs,
        fingerprint: backend.edge_fingerprint(),
    }
}

/// Result of the mixed-churn end-to-end run over one backend.
struct ChurnResult {
    events: usize,
    inserts: usize,
    deletes: usize,
    /// Heap allocations across the measurement loop (0 without `bench`).
    allocs: u64,
    elapsed: Duration,
    heal: Quantiles,
    peak_edges: usize,
    final_edges: usize,
    fingerprint: u64,
}

/// Mixed insert/delete adversary at 50/50, inserts wiring 1..=3 black edges
/// to random live nodes — the DEX-style sustained-churn workload. The whole
/// pipeline (adversary bookkeeping aside) is timed: graph ops + planner.
fn run_churn<B: Backend>(g0: &Graph, events: usize) -> ChurnResult {
    let mut backend = B::from_initial(g0);
    let mut planner =
        RepairPlanner::new(g0.nodes(), XhealConfig::new(KAPPA).with_seed(PLANNER_SEED));
    let mut adv = StdRng::seed_from_u64(ADVERSARY_SEED ^ 0xC0FFEE);
    let mut live: Vec<NodeId> = g0.nodes().collect();
    let mut next_id = live.iter().map(|v| v.as_u64() + 1).max().unwrap_or(0);
    let mut incident: Vec<(NodeId, EdgeLabels)> = Vec::new();
    let mut heal_ns: Vec<u64> = Vec::new();
    let mut inserts = 0usize;
    let mut deletes = 0usize;
    let mut peak_edges = 0usize;
    let mut elapsed = Duration::ZERO;
    let allocs_before = alloc_count();

    for _ in 0..events {
        if live.len() < 8 || adv.random::<f64>() < 0.5 {
            // Insert: fresh node, 1..=3 black edges to random live nodes.
            let v = NodeId::new(next_id);
            next_id += 1;
            let wanted = adv.random_range(1..=3usize.min(live.len()));
            let mut nbrs = [NodeId::new(0); 3];
            for slot in nbrs.iter_mut().take(wanted) {
                *slot = live[adv.random_range(0..live.len())];
            }
            let t = Instant::now();
            backend.add_node(v);
            for &u in nbrs.iter().take(wanted) {
                if u != v {
                    backend.add_black_edge(v, u);
                }
            }
            planner.note_insert(v);
            elapsed += t.elapsed();
            live.push(v);
            inserts += 1;
        } else {
            let v = live.swap_remove(adv.random_range(0..live.len()));
            incident.clear();
            let t = Instant::now();
            let degree = backend.degree(v);
            backend.remove_node_into(v, &mut incident);
            let plan = planner.plan_deletion(v, &incident, degree);
            apply_plan(&mut backend, &plan);
            let spent = t.elapsed();
            elapsed += spent;
            heal_ns.push(spent.as_nanos() as u64);
            deletes += 1;
        }
        peak_edges = peak_edges.max(backend.edge_count());
    }

    let allocs = alloc_count() - allocs_before;
    ChurnResult {
        events,
        inserts,
        deletes,
        allocs,
        elapsed,
        heal: quantiles(&mut heal_ns),
        peak_edges,
        final_edges: backend.edge_count(),
        fingerprint: backend.edge_fingerprint(),
    }
}

/// Result of one plan-application run (per-edge or grouped) on the arena
/// backend: apply-phase latency only, the part `Graph::apply_delta` owns.
struct PlanApplyResult {
    deletes: usize,
    apply: Quantiles,
    /// Heap allocations across the measurement loop (0 without `bench`).
    allocs: u64,
    fingerprint: u64,
}

/// Victims per batch-deletion event in the grouped-vs-per-edge comparison —
/// the batch-stage workload the bulk path targets (one flush covers the
/// detach prologue plus every component stage of the batch plan).
const APPLY_BATCH: usize = 16;

/// Victims per event in the *clustered-outage* variant: one BFS ball — a
/// "rack" of topologically adjacent nodes dying together, the correlated
/// failure `examples/datacenter_outage.rs` models. Clustered victims
/// concentrate the batch plan's mutations on the hole's boundary and on
/// cloud leaders, so per-slot groups grow past singletons and the merge
/// pass in `Graph::apply_delta` does real work.
const CLUSTER_BATCH: usize = 64;

/// Collects a BFS ball of up to `k` live nodes around a random live
/// center (deterministic: neighbor lists iterate sorted ascending).
fn bfs_ball(graph: &Graph, n: usize, adv: &mut StdRng, k: usize, out: &mut Vec<NodeId>) {
    out.clear();
    let center = loop {
        let id = NodeId::new(adv.random_range(0..n as u64));
        if graph.degree(id).is_some() {
            break id;
        }
    };
    out.push(center);
    let mut qi = 0;
    'fill: while qi < out.len() && out.len() < k {
        let v = out[qi];
        qi += 1;
        for u in graph.neighbors(v) {
            if !out.contains(&u) {
                out.push(u);
                if out.len() == k {
                    break 'fill;
                }
            }
        }
    }
}

/// Batched delete-only schedule (seeded), applying each batch repair plan
/// through one of the two live application paths and timing **only the
/// apply phase**:
///
/// - `grouped = false`: the sequential reference — one
///   `PlanAction::apply_streamed` per action (two binary searches and a
///   list edit per edge);
/// - `grouped = true`: `BatchRepairPlan::apply_streamed_with` — the whole
///   batch plan (prologue + all component stages) flushed as one grouped
///   mutation batch through `Graph::apply_delta`, with the executor-style
///   persistent [`ApplyScratch`].
///
/// `clustered = false` draws [`APPLY_BATCH`] victims uniformly (scattered
/// independent failures — the no-group-overlap worst case for the bulk
/// path); `clustered = true` kills a [`CLUSTER_BATCH`]-node BFS ball per
/// event (a correlated rack-style outage).
///
/// No sinks are registered, so the grouped path also exercises the
/// registry fast path (no delta materialization at all).
fn run_plan_apply(g0: &Graph, deletes: usize, grouped: bool, clustered: bool) -> PlanApplyResult {
    let batch = if clustered {
        CLUSTER_BATCH
    } else {
        APPLY_BATCH
    };
    let events = deletes.div_ceil(batch);
    let n = g0.node_count();
    let mut graph = g0.clone();
    let mut planner =
        RepairPlanner::new(g0.nodes(), XhealConfig::new(KAPPA).with_seed(PLANNER_SEED));
    let mut adv = StdRng::seed_from_u64(ADVERSARY_SEED);
    let mut live: Vec<NodeId> = if clustered {
        Vec::new()
    } else {
        g0.nodes().collect()
    };
    let mut victims: Vec<NodeId> = Vec::with_capacity(batch);
    let mut sinks = SinkRegistry::default();
    let mut scratch = ApplyScratch::default();
    let mut apply_ns: Vec<u64> = Vec::with_capacity(events);
    let mut applied = 0usize;
    let allocs_before = alloc_count();

    for _ in 0..events {
        if clustered {
            bfs_ball(&graph, n, &mut adv, batch, &mut victims);
        } else {
            victims.clear();
            for _ in 0..batch {
                victims.push(live.swap_remove(adv.random_range(0..live.len())));
            }
        }
        applied += victims.len();
        let ctx = BatchVictim::capture(&graph, &victims).expect("victims are live");
        for bv in &ctx {
            let _ = graph.remove_node(bv.node);
        }
        let plan = planner.plan_batch_deletion(&ctx);
        let t = Instant::now();
        if grouped {
            plan.apply_streamed_with(&mut graph, &mut sinks, &mut scratch);
        } else {
            for action in plan.actions() {
                action.apply_streamed(&mut graph, &mut sinks);
            }
        }
        apply_ns.push(t.elapsed().as_nanos() as u64);
    }

    let allocs = alloc_count() - allocs_before;
    PlanApplyResult {
        deletes: applied,
        apply: quantiles(&mut apply_ns),
        allocs,
        fingerprint: graph.edge_fingerprint(),
    }
}

/// Measures the grouped-vs-per-edge plan application comparison on the
/// arena backend, returning the JSON fragment and the mean apply-phase
/// speedup. Both paths must land on the same topology fingerprint.
fn measure_grouped_apply(
    g0: &Graph,
    deletes: usize,
    trials: usize,
    clustered: bool,
) -> (String, f64, u64) {
    // Interleave the two paths' trials so slow drift in machine load hits
    // both comparably, keeping best-of-trials per path.
    let mut runs: Vec<PlanApplyResult> = (0..trials)
        .flat_map(|_| {
            [
                run_plan_apply(g0, deletes, false, clustered),
                run_plan_apply(g0, deletes, true, clustered),
            ]
        })
        .collect();
    let grouped = runs.drain(..).enumerate().fold(
        (None::<PlanApplyResult>, None::<PlanApplyResult>),
        |acc, (i, r)| {
            let (mut pe, mut gr) = acc;
            let best = if i % 2 == 0 { &mut pe } else { &mut gr };
            if best.as_ref().is_none_or(|b| r.apply.mean < b.apply.mean) {
                *best = Some(r);
            }
            (pe, gr)
        },
    );
    let (per_edge, grouped) = (
        grouped.0.expect("at least one trial"),
        grouped.1.expect("at least one trial"),
    );
    assert_eq!(
        per_edge.fingerprint, grouped.fingerprint,
        "grouped and per-edge application must produce bit-identical topologies"
    );
    let speedup = ratio(per_edge.apply.mean, grouped.apply.mean);
    eprintln!(
        "[n={} {}] grouped apply {speedup:.2}x over per-edge ({} vs {} mean ns/batch-plan)",
        g0.node_count(),
        if clustered { "clustered" } else { "uniform" },
        grouped.apply.mean,
        per_edge.apply.mean,
    );
    let path = |r: &PlanApplyResult| {
        format!(
            "{{\"apply\": {}, \"allocs\": {}}}",
            json_quantiles(&r.apply),
            r.allocs,
        )
    };
    let json = format!(
        "{{\"deletes\": {}, \"batch\": {}, \"per_edge\": {}, \"grouped\": {}, \"speedup_apply_mean\": {:.3}, \"topology_match\": true}}",
        per_edge.deletes,
        if clustered { CLUSTER_BATCH } else { APPLY_BATCH },
        path(&per_edge),
        path(&grouped),
        speedup,
    );
    (json, speedup, grouped.allocs)
}

/// Runs the grouped-vs-per-edge comparison under both failure models —
/// uniform scattered victims and clustered BFS-ball outages — returning
/// the combined JSON object plus both mean speedups and the grouped
/// path's uniform-schedule allocation count.
fn measure_grouped_pair(g0: &Graph, deletes: usize, trials: usize) -> (String, f64, f64, u64) {
    let (uniform_json, uniform_speedup, grouped_allocs) =
        measure_grouped_apply(g0, deletes, trials, false);
    let (clustered_json, clustered_speedup, _) = measure_grouped_apply(g0, deletes, trials, true);
    let json = format!("{{\"uniform\": {uniform_json}, \"clustered_outage\": {clustered_json}}}");
    (json, uniform_speedup, clustered_speedup, grouped_allocs)
}

/// Victims per event on the component-parallel cores axis: large enough
/// that a uniform draw dies in ~dozens of independent components (phase-2
/// parallelism to harvest), and matching [`CLUSTER_BATCH`] so the clustered
/// row measures the honest worst case (one BFS ball ≈ one component ≈ no
/// phase-2 parallelism at all).
const PAR_BATCH: usize = 64;

/// Result of one batch-heal run (sequential engine or the parallel engine
/// at a fixed thread count): the **whole** heal is timed — victim capture,
/// node removal, planning, and grouped application — because that is the
/// end-to-end number the cores axis claims to scale.
struct ParBatchResult {
    deletes: usize,
    heal: Quantiles,
    elapsed: Duration,
    fingerprint: u64,
}

/// Batched delete-only schedule through a [`HealingEngine`]: `threads:
/// None` drives sequential [`Xheal`] (the baseline), `Some(t)` drives
/// [`ParallelXheal`] with a `t`-thread pool. Identical seeds, so every
/// configuration replays the same victim schedule and must land on the
/// same topology fingerprint — that assert *is* the determinism claim.
fn run_parallel_batch(
    g0: &Graph,
    deletes: usize,
    threads: Option<usize>,
    clustered: bool,
) -> ParBatchResult {
    let n = g0.node_count();
    let config = XhealConfig::new(KAPPA).with_seed(PLANNER_SEED);
    let mut seq: Option<Xheal> = None;
    let mut par: Option<ParallelXheal> = None;
    let engine: &mut dyn HealingEngine = match threads {
        None => seq.insert(Xheal::new(g0, config)),
        Some(t) => par.insert(ParallelXheal::new(g0, config, t)),
    };
    let events = deletes.div_ceil(PAR_BATCH);
    let mut adv = StdRng::seed_from_u64(ADVERSARY_SEED ^ 0xBA7C4);
    let mut live: Vec<NodeId> = if clustered {
        Vec::new()
    } else {
        g0.nodes().collect()
    };
    let mut victims: Vec<NodeId> = Vec::with_capacity(PAR_BATCH);
    let mut heal_ns: Vec<u64> = Vec::with_capacity(events);
    let mut elapsed = Duration::ZERO;
    let mut applied = 0usize;

    for _ in 0..events {
        if clustered {
            bfs_ball(engine.graph(), n, &mut adv, PAR_BATCH, &mut victims);
        } else {
            victims.clear();
            for _ in 0..PAR_BATCH {
                victims.push(live.swap_remove(adv.random_range(0..live.len())));
            }
        }
        applied += victims.len();
        let event = Event::DeleteBatch {
            nodes: victims.clone(),
        };
        let t = Instant::now();
        engine.apply(&event).expect("victims are live");
        let spent = t.elapsed();
        elapsed += spent;
        heal_ns.push(spent.as_nanos() as u64);
    }

    ParBatchResult {
        deletes: applied,
        heal: quantiles(&mut heal_ns),
        elapsed,
        fingerprint: engine.graph().edge_fingerprint(),
    }
}

/// The cores axis under one failure model: sequential baseline, then the
/// parallel engine at every requested thread count, best-of-trials each,
/// fingerprints asserted identical throughout. Returns the JSON fragment
/// and the best parallel speedup observed.
fn measure_parallel_axis(
    g0: &Graph,
    deletes: usize,
    trials: usize,
    threads_list: &[usize],
    clustered: bool,
) -> (String, f64) {
    let label = if clustered { "clustered" } else { "uniform" };
    let best = |threads: Option<usize>| {
        (0..trials)
            .map(|_| run_parallel_batch(g0, deletes, threads, clustered))
            .min_by_key(|r| r.elapsed)
            .expect("at least one trial")
    };
    let seq = best(None);
    let mut best_speedup = 0.0f64;
    let mut rows: Vec<String> = Vec::with_capacity(threads_list.len());
    for &t in threads_list {
        let par = best(Some(t));
        assert_eq!(
            seq.fingerprint, par.fingerprint,
            "parallel batch healing must be bit-identical to sequential (threads={t})"
        );
        let speedup = seq.elapsed.as_secs_f64() / par.elapsed.as_secs_f64().max(1e-9);
        best_speedup = best_speedup.max(speedup);
        eprintln!(
            "[n={} {label}] parallel batch heal x{t}: {speedup:.2}x over sequential ({} vs {} mean ns/event)",
            g0.node_count(),
            par.heal.mean,
            seq.heal.mean,
        );
        rows.push(format!(
            "{{\"threads\": {t}, \"heal\": {}, \"total_ms\": {:.3}, \"speedup\": {speedup:.3}, \"fingerprint_match\": true}}",
            json_quantiles(&par.heal),
            par.elapsed.as_secs_f64() * 1e3,
        ));
    }
    let json = format!(
        "{{\"deletes\": {}, \"batch\": {PAR_BATCH}, \"sequential\": {{\"heal\": {}, \"total_ms\": {:.3}}}, \"cores\": [{}]}}",
        seq.deletes,
        json_quantiles(&seq.heal),
        seq.elapsed.as_secs_f64() * 1e3,
        rows.join(", "),
    );
    (json, best_speedup)
}

/// Runs the cores axis under both failure models (scattered uniform — many
/// dead components, real phase-2 parallelism — and clustered BFS-ball —
/// one component, prologue-only parallelism), returning the combined JSON
/// object plus the best uniform speedup.
fn measure_parallel_batch(
    g0: &Graph,
    deletes: usize,
    trials: usize,
    threads_list: &[usize],
) -> (String, f64) {
    let (uniform_json, uniform_speedup) =
        measure_parallel_axis(g0, deletes, trials, threads_list, false);
    let (clustered_json, _) = measure_parallel_axis(g0, deletes, trials, threads_list, true);
    let json = format!("{{\"uniform\": {uniform_json}, \"clustered_outage\": {clustered_json}}}");
    (json, uniform_speedup)
}

/// The memory-level-parallelism probe: one 64-bit-index pointer-chase ring
/// (a Sattolo single-cycle permutation), walked two ways over the same
/// total loads — a single dependent chain (each load's address depends on
/// the previous load, so the memory system sees one outstanding miss) and
/// `MLP_LANES` interleaved independent chains (the batched pointer-chase,
/// many outstanding misses). The ratio is how much latency the dependent
/// walk leaves on the table — the headroom grouped application harvests.
struct MlpProbe {
    elements: usize,
    lanes: usize,
    loads: usize,
    dependent_ns_per_load: f64,
    batched_ns_per_load: f64,
    ratio: f64,
}

const MLP_LANES: usize = 16;

fn run_mlp_probe(elements: usize) -> MlpProbe {
    assert!(elements >= MLP_LANES * 2 && elements.is_power_of_two());
    let mut next: Vec<u32> = (0..elements as u32).collect();
    let mut rng = StdRng::seed_from_u64(0x4D4C_5042);
    // Sattolo's algorithm: a uniform single-cycle permutation, so every
    // walk visits all elements and never shortcuts.
    for i in (1..elements).rev() {
        let j = rng.random_range(0..i);
        next.swap(i, j);
    }
    let loads = elements - (elements % MLP_LANES);

    // Dependent chain: one pointer, `loads` serial cache misses.
    let t = Instant::now();
    let mut p = 0u32;
    for _ in 0..loads {
        p = next[p as usize];
    }
    std::hint::black_box(p);
    let dependent_ns = t.elapsed().as_nanos() as f64;

    // Batched: MLP_LANES independent pointers advanced round-robin — the
    // same total loads, but the memory system overlaps them.
    let mut ptrs = [0u32; MLP_LANES];
    for (k, ptr) in ptrs.iter_mut().enumerate() {
        *ptr = (k * (elements / MLP_LANES)) as u32;
    }
    let t = Instant::now();
    for _ in 0..loads / MLP_LANES {
        for ptr in &mut ptrs {
            *ptr = next[*ptr as usize];
        }
    }
    std::hint::black_box(ptrs);
    let batched_ns = t.elapsed().as_nanos() as f64;

    let probe = MlpProbe {
        elements,
        lanes: MLP_LANES,
        loads,
        dependent_ns_per_load: dependent_ns / loads as f64,
        batched_ns_per_load: batched_ns / loads as f64,
        ratio: dependent_ns / batched_ns.max(1.0),
    };
    eprintln!(
        "[mlp] {} elements: dependent {:.2} ns/load vs batched {:.2} ns/load ({:.2}x)",
        probe.elements, probe.dependent_ns_per_load, probe.batched_ns_per_load, probe.ratio
    );
    probe
}

fn ratio(seed_ns: u64, arena_ns: u64) -> f64 {
    seed_ns as f64 / arena_ns.max(1) as f64
}

fn json_quantiles(q: &Quantiles) -> String {
    format!(
        "{{\"p50_ns\": {}, \"p99_ns\": {}, \"mean_ns\": {}}}",
        q.p50, q.p99, q.mean
    )
}

struct SizeReport {
    n: usize,
    micro_json: String,
    churn_json: String,
    grouped_json: String,
    micro_graph_speedup: f64,
    micro_op_speedup: f64,
    churn_speedup: f64,
    grouped_speedup: f64,
    clustered_speedup: f64,
    topology_match: bool,
}

fn measure_size(n: usize, micro_deletes: usize, churn_events: usize, trials: usize) -> SizeReport {
    let mut rng = StdRng::seed_from_u64(n as u64);
    let g0 = generators::random_regular(n, 6, &mut rng);

    // Best-of-N per backend: the schedule is identical across trials
    // (everything is seeded), so the minimum isolates machine noise.
    let best_micro = |r: &MicroResult| r.op.mean;
    let best_churn = |r: &ChurnResult| r.elapsed;

    eprintln!("[n={n}] heal-delete micro: {micro_deletes} deletes × {trials} trial(s) per backend");
    let micro_arena = (0..trials)
        .map(|_| run_micro::<Graph>(&g0, micro_deletes))
        .min_by_key(best_micro)
        .expect("at least one trial");
    let micro_seed = (0..trials)
        .map(|_| run_micro::<BaselineGraph>(&g0, micro_deletes))
        .min_by_key(best_micro)
        .expect("at least one trial");
    assert_eq!(
        micro_arena.fingerprint, micro_seed.fingerprint,
        "micro schedules must produce bit-identical topologies"
    );

    eprintln!("[n={n}] grouped vs per-edge plan application: {micro_deletes} deletes × {trials} trial(s) per path");
    let (grouped_json, grouped_speedup, clustered_speedup, _) =
        measure_grouped_pair(&g0, micro_deletes, trials);

    eprintln!("[n={n}] end-to-end churn: {churn_events} events × {trials} trial(s) per backend");
    let churn_arena = (0..trials)
        .map(|_| run_churn::<Graph>(&g0, churn_events))
        .min_by_key(best_churn)
        .expect("at least one trial");
    let churn_seed = (0..trials)
        .map(|_| run_churn::<BaselineGraph>(&g0, churn_events))
        .min_by_key(best_churn)
        .expect("at least one trial");
    let topology_match = churn_arena.fingerprint == churn_seed.fingerprint
        && churn_arena.peak_edges == churn_seed.peak_edges
        && churn_arena.final_edges == churn_seed.final_edges;
    assert!(
        topology_match,
        "churn schedules must produce bit-identical topologies"
    );

    let micro_graph_speedup = ratio(micro_seed.graph.mean, micro_arena.graph.mean);
    let micro_op_speedup = ratio(micro_seed.op.mean, micro_arena.op.mean);
    let eps = |r: &ChurnResult| r.events as f64 / r.elapsed.as_secs_f64();
    let churn_speedup = eps(&churn_arena) / eps(&churn_seed);

    eprintln!(
        "[n={n}] micro graph-side {:.2}x (op {:.2}x), churn {:.2}x ({:.0} vs {:.0} events/sec)",
        micro_graph_speedup,
        micro_op_speedup,
        churn_speedup,
        eps(&churn_arena),
        eps(&churn_seed),
    );

    let micro_backend = |r: &MicroResult| {
        format!(
            "{{\"graph_side\": {}, \"full_op\": {}, \"allocs\": {}}}",
            json_quantiles(&r.graph),
            json_quantiles(&r.op),
            r.allocs,
        )
    };
    let micro_json = format!(
        "{{\"deletes\": {}, \"arena\": {}, \"seed\": {}, \"speedup_graph_side_mean\": {:.3}, \"speedup_full_op_mean\": {:.3}}}",
        micro_arena.deletes,
        micro_backend(&micro_arena),
        micro_backend(&micro_seed),
        micro_graph_speedup,
        micro_op_speedup,
    );
    let churn_backend = |r: &ChurnResult| {
        format!(
            "{{\"events_per_sec\": {:.1}, \"heal_latency\": {}, \"peak_edges\": {}, \"final_edges\": {}, \"inserts\": {}, \"deletes\": {}, \"allocs\": {}}}",
            eps(r),
            json_quantiles(&r.heal),
            r.peak_edges,
            r.final_edges,
            r.inserts,
            r.deletes,
            r.allocs,
        )
    };
    let churn_json = format!(
        "{{\"events\": {}, \"insert_ratio\": 0.5, \"arena\": {}, \"seed\": {}, \"speedup_events_per_sec\": {:.3}, \"topology_match\": {}}}",
        churn_events,
        churn_backend(&churn_arena),
        churn_backend(&churn_seed),
        churn_speedup,
        topology_match,
    );

    SizeReport {
        n,
        micro_json,
        churn_json,
        grouped_json,
        micro_graph_speedup,
        micro_op_speedup,
        churn_speedup,
        grouped_speedup,
        clustered_speedup,
        topology_match,
    }
}

/// The memory-wall row: an arena-only grouped-vs-per-edge comparison at a
/// size where the seed backend is infeasible (the full seed run at n=50k
/// already takes ~25 minutes; 1M would take days). Returns the JSON entry
/// and the grouped apply-phase speedup.
fn measure_size_arena_only(
    n: usize,
    deletes: usize,
    trials: usize,
    threads_list: &[usize],
) -> (String, f64, f64, f64) {
    eprintln!("[n={n}] arena-only memory-wall row: generating 6-regular network…");
    let mut rng = StdRng::seed_from_u64(n as u64);
    let g0 = generators::random_regular(n, 6, &mut rng);
    eprintln!("[n={n}] grouped vs per-edge plan application: {deletes} deletes × {trials} trial(s) per path");
    let (grouped_json, grouped_speedup, clustered_speedup, _) =
        measure_grouped_pair(&g0, deletes, trials);
    eprintln!(
        "[n={n}] component-parallel batch healing: {deletes} deletes × {trials} trial(s), threads {threads_list:?}"
    );
    let (parallel_json, parallel_speedup) =
        measure_parallel_batch(&g0, deletes, trials, threads_list);
    let entry = format!(
        "    {{\"n\": {n}, \"arena_only\": true, \"grouped_apply\": {grouped_json}, \"parallel_batch\": {parallel_json}}}"
    );
    (entry, grouped_speedup, clustered_speedup, parallel_speedup)
}

/// Thread counts for the cores axis: `--threads 1,2,4` beats the
/// `XHEAL_THREADS` env var beats the default — {1, 2, 4, 8} clipped to
/// twice the host's cores (one oversubscribed point stays in, so
/// single-core hosts still record the pool's overhead honestly), and
/// always at least {1, 2} so the determinism cross-check runs everywhere.
fn thread_axis(args: &[String]) -> Vec<usize> {
    let spec = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .or_else(|| std::env::var("XHEAL_THREADS").ok());
    if let Some(spec) = spec {
        let parsed: Vec<usize> = spec
            .split(',')
            .filter_map(|t| t.trim().parse().ok())
            .filter(|&t| t >= 1)
            .collect();
        assert!(!parsed.is_empty(), "no valid thread counts in {spec:?}");
        return parsed;
    }
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&t| t <= (2 * cores).max(2))
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_throughput.json".to_string());
    let threads_list = thread_axis(&args);

    // (n, micro deletes, churn events) per size. Churn runs 2 events per
    // node at 1k/10k so those sizes reach the sustained-churn regime
    // (clouds mature, repairs dominate) instead of measuring a cold-start
    // transient; the 50k schedule is capped at 1 event per node because the
    // *seed* backend's mature-regime repairs are slow enough to push the
    // recorded run past 25 minutes — itself a data point.
    let sizes: Vec<(usize, usize, usize)> = if smoke {
        vec![(200, 80, 400)]
    } else {
        vec![
            (1_000, 600, 2_000),
            (10_000, 6_000, 20_000),
            (50_000, 6_000, 50_000),
        ]
    };

    // Arena-only rows (n, deletes): the seed backend is infeasible here, so
    // only the arena hot path runs. Full mode records the 1M-node row plus
    // an 8M-node row whose slot arena (~1.6 GB) overflows even this host's
    // 260 MB L3 — the only regime on this machine where delta application
    // is genuinely DRAM-latency-bound. Smoke keeps a liveness-sized row.
    let large_rows: Vec<(usize, usize)> = if smoke {
        vec![(1_000, 200)]
    } else {
        vec![(1_000_000, 2_000), (8_000_000, 2_000)]
    };
    // MLP probe ring size: 128M × 4B = 512 MiB in full mode — past even a
    // server-class LLC (this host has 260 MB of L3), so every load is a
    // genuine memory access.
    let mlp_elements = if smoke { 1 << 16 } else { 1 << 27 };

    let trials = if smoke { 1 } else { 2 };
    let reports: Vec<SizeReport> = sizes
        .iter()
        .map(|&(n, d, e)| measure_size(n, d, e, trials))
        .collect();
    let large_reports: Vec<(String, f64, f64, f64)> = large_rows
        .iter()
        .map(|&(n, d)| measure_size_arena_only(n, d, trials, &threads_list))
        .collect();
    let mlp = run_mlp_probe(mlp_elements);

    let min_micro = reports
        .iter()
        .map(|r| r.micro_graph_speedup)
        .fold(f64::INFINITY, f64::min);
    let max_micro = reports
        .iter()
        .map(|r| r.micro_graph_speedup)
        .fold(0.0, f64::max);
    let min_churn = reports
        .iter()
        .map(|r| r.churn_speedup)
        .fold(f64::INFINITY, f64::min);
    let max_churn = reports.iter().map(|r| r.churn_speedup).fold(0.0, f64::max);
    let all_match = reports.iter().all(|r| r.topology_match);

    let mut size_entries: Vec<String> = reports
        .iter()
        .map(|r| {
            format!(
                "    {{\"n\": {}, \"micro_heal_delete\": {}, \"churn\": {}, \"grouped_apply\": {}}}",
                r.n, r.micro_json, r.churn_json, r.grouped_json
            )
        })
        .collect();
    size_entries.extend(large_reports.iter().map(|(entry, _, _, _)| entry.clone()));
    let grouped_speedups: Vec<f64> = reports
        .iter()
        .map(|r| r.grouped_speedup)
        .chain(large_reports.iter().map(|&(_, s, _, _)| s))
        .collect();
    let clustered_speedups: Vec<f64> = reports
        .iter()
        .map(|r| r.clustered_speedup)
        .chain(large_reports.iter().map(|&(_, _, s, _)| s))
        .collect();
    let parallel_speedups: Vec<f64> = large_reports.iter().map(|&(_, _, _, s)| s).collect();
    let parallel_speedup_max = parallel_speedups.iter().copied().fold(0.0, f64::max);
    let host_cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let min_grouped = grouped_speedups
        .iter()
        .chain(clustered_speedups.iter())
        .copied()
        .fold(f64::INFINITY, f64::min);
    let max_grouped = grouped_speedups
        .iter()
        .chain(clustered_speedups.iter())
        .copied()
        .fold(0.0, f64::max);
    let mlp_json = format!(
        "{{\"elements\": {}, \"lanes\": {}, \"loads\": {}, \"dependent_ns_per_load\": {:.3}, \"batched_ns_per_load\": {:.3}, \"mlp_ratio\": {:.3}}}",
        mlp.elements, mlp.lanes, mlp.loads, mlp.dependent_ns_per_load, mlp.batched_ns_per_load, mlp.ratio,
    );
    let json = format!(
        "{{\n  \"schema\": \"xheal-churn-throughput/v3\",\n  \"smoke\": {smoke},\n  \"alloc_counting\": {ALLOC_COUNTING},\n  \"kappa\": {KAPPA},\n  \"planner_seed\": {PLANNER_SEED},\n  \"adversary_seed\": {ADVERSARY_SEED},\n  \"host_cores\": {host_cores},\n  \"parallel_threads\": [{}],\n  \"mlp_probe\": {mlp_json},\n  \"sizes\": [\n{}\n  ],\n  \"summary\": {{\n    \"micro_graph_side_speedup_min\": {min_micro:.3},\n    \"micro_graph_side_speedup_max\": {max_micro:.3},\n    \"churn_events_per_sec_speedup_min\": {min_churn:.3},\n    \"churn_events_per_sec_speedup_max\": {max_churn:.3},\n    \"grouped_apply_speedup_min\": {min_grouped:.3},\n    \"grouped_apply_speedup_max\": {max_grouped:.3},\n    \"parallel_batch_speedup_max\": {parallel_speedup_max:.3},\n    \"micro_full_op_speedups\": [{}],\n    \"grouped_apply_speedups\": [{}],\n    \"clustered_apply_speedups\": [{}],\n    \"parallel_batch_speedups\": [{}],\n    \"topology_match\": {all_match}\n  }}\n}}\n",
        threads_list
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        size_entries.join(",\n"),
        reports
            .iter()
            .map(|r| format!("{:.3}", r.micro_op_speedup))
            .collect::<Vec<_>>()
            .join(", "),
        grouped_speedups
            .iter()
            .map(|s| format!("{s:.3}"))
            .collect::<Vec<_>>()
            .join(", "),
        clustered_speedups
            .iter()
            .map(|s| format!("{s:.3}"))
            .collect::<Vec<_>>()
            .join(", "),
        parallel_speedups
            .iter()
            .map(|s| format!("{s:.3}"))
            .collect::<Vec<_>>()
            .join(", "),
    );

    std::fs::write(&out_path, &json).expect("write throughput report");
    println!("{json}");
    eprintln!("wrote {out_path}");

    if let Some(trace_path) = xheal_bench::trace_arg(&args) {
        xheal_bench::capture_trace(&trace_path, PLANNER_SEED);
    }
}
