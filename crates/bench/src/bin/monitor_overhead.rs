//! Monitor-overhead harness: incremental metric maintenance vs per-event
//! fresh rebuild, plus warm-started vs from-scratch spectral checkpoints.
//!
//! Drives a seeded mixed insert/delete/batch churn schedule through
//! [`xheal_core::Xheal`] and, for every event:
//!
//! - **incremental**: feeds the event's [`TopologyDelta`]s into an
//!   [`xheal_monitor::Monitor`] (the in-place CSR patch + O(1) trackers);
//! - **fresh rebuild**: what a non-streaming monitor would do instead —
//!   rebuild `Graph::csr_view()`, rebuild the normalized-Laplacian
//!   operator, and recount the degree/black-degree histograms and the
//!   degree increase against `G'` from scratch.
//!
//! At checkpoints it additionally compares the monitor's **warm-started**
//! spectral gap against a from-scratch `normalized_algebraic_connectivity`
//! solve (the two must agree within 1e-6) and cross-checks the incremental
//! CSR against the fresh one field-by-field.
//!
//! Output is `BENCH_monitor.json` (override with `--out`); `--smoke`
//! shrinks sizes for CI. Full run:
//!
//! ```text
//! cargo run --release -p xheal-bench --bin monitor_overhead
//! ```

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xheal_core::{Event, HealingEngine, TopologyDelta, TopologySink, Xheal, XhealConfig};
use xheal_graph::{generators, Graph, NodeId};
use xheal_metrics::{degree_increase, GPrime};
use xheal_monitor::{Monitor, MonitorConfig};
use xheal_spectral::{normalized_algebraic_connectivity, NormalizedLaplacianOp};

const KAPPA: usize = 6;
const HEALER_SEED: u64 = 17;
const ADVERSARY_SEED: u64 = 0x5EED_BEEF;
const SPECTRAL_TOL: f64 = 1e-6;

/// Buffers one event's deltas so monitor ingestion can be timed apart from
/// the engine's own work.
#[derive(Default)]
struct Recorder {
    deltas: Vec<TopologyDelta>,
}

impl TopologySink for Recorder {
    fn on_delta(&mut self, delta: &TopologyDelta) {
        self.deltas.push(*delta);
    }
}

#[derive(Clone, Copy, Debug)]
struct Quantiles {
    p50: u64,
    p99: u64,
    mean: u64,
}

fn quantiles(samples: &mut [u64]) -> Quantiles {
    assert!(!samples.is_empty(), "no samples recorded");
    samples.sort_unstable();
    let q = |p: f64| samples[((samples.len() - 1) as f64 * p) as usize];
    Quantiles {
        p50: q(0.50),
        p99: q(0.99),
        mean: samples.iter().sum::<u64>() / samples.len() as u64,
    }
}

fn json_quantiles(q: &Quantiles) -> String {
    format!(
        "{{\"p50_ns\": {}, \"p99_ns\": {}, \"mean_ns\": {}}}",
        q.p50, q.p99, q.mean
    )
}

/// The fresh-rebuild comparator: everything a monitor without the delta
/// stream would redo per event.
fn fresh_rebuild_pass(graph: &Graph, gprime: &GPrime) -> (usize, f64) {
    let csr = graph.csr_view();
    // The operator build the spectral stack would need per query.
    let op = NormalizedLaplacianOp::new(graph);
    // Histogram recounts.
    let mut degs: Vec<u64> = Vec::new();
    let mut blacks: Vec<u64> = Vec::new();
    for i in 0..csr.len() {
        let d = csr.degree_of(i);
        if d >= degs.len() {
            degs.resize(d + 1, 0);
        }
        degs[d] += 1;
    }
    for v in graph.nodes() {
        let b = graph.black_degree(v).expect("live node");
        if b >= blacks.len() {
            blacks.resize(b + 1, 0);
        }
        blacks[b] += 1;
    }
    let di = degree_increase(graph, gprime.graph());
    // Return values derived from every rebuilt structure so nothing is
    // optimized away.
    (op.nodes().len() + degs.len() + blacks.len(), di)
}

/// Population-stable mixed churn: ~0.5 inserts vs ~0.52 expected victims
/// per event (single deletions plus occasional 2–3 victim bursts) — the
/// sustained regime a long-running monitor actually watches, not a
/// shrink-to-combine-storm death spiral.
fn next_event(graph: &Graph, rng: &mut StdRng, next_id: &mut u64) -> Event {
    let nodes = graph.node_vec();
    let roll = rng.random_range(0..12u32);
    if nodes.len() < 16 || roll < 6 {
        let node = NodeId::new(*next_id);
        *next_id += 1;
        let wanted = rng.random_range(1..=3usize.min(nodes.len()));
        let mut neighbors = Vec::with_capacity(wanted);
        for _ in 0..wanted {
            neighbors.push(nodes[rng.random_range(0..nodes.len())]);
        }
        neighbors.dedup();
        Event::Insert { node, neighbors }
    } else if roll < 11 {
        Event::Delete {
            node: nodes[rng.random_range(0..nodes.len())],
        }
    } else {
        let mut victims: Vec<NodeId> = Vec::new();
        for _ in 0..rng.random_range(2..=3usize) {
            let v = nodes[rng.random_range(0..nodes.len())];
            if !victims.contains(&v) {
                victims.push(v);
            }
        }
        Event::DeleteBatch { nodes: victims }
    }
}

struct CheckpointRow {
    event: usize,
    generation: u64,
    warm_gap: f64,
    cold_gap: f64,
    abs_diff: f64,
    warm_restarts: usize,
    warm_ns: u64,
    cold_ns: u64,
}

struct SizeReport {
    n: usize,
    events: usize,
    inc_json: String,
    fresh_json: String,
    speedup: f64,
    speedup_p50: f64,
    checkpoints: Vec<CheckpointRow>,
    spectral_max_abs_diff: f64,
    consistency_ok: bool,
    alerts: usize,
}

fn measure_size(n: usize, events: usize, checkpoint_every: usize) -> SizeReport {
    let mut rng = StdRng::seed_from_u64(n as u64 ^ 0xA11CE);
    let g0 = generators::random_regular(n, 6, &mut rng);

    let recorder = std::rc::Rc::new(std::cell::RefCell::new(Recorder::default()));
    let mut net = Xheal::builder()
        .config(XhealConfig::new(KAPPA).with_seed(HEALER_SEED))
        .sink(Box::new(std::rc::Rc::clone(&recorder)))
        .build(&g0);
    let mut monitor = Monitor::new(&g0, MonitorConfig::default());
    let mut gprime = GPrime::new(&g0);

    let mut adv = StdRng::seed_from_u64(ADVERSARY_SEED);
    let mut next_id = n as u64 + 1;
    let mut inc_ns: Vec<u64> = Vec::with_capacity(events);
    let mut fresh_ns: Vec<u64> = Vec::with_capacity(events);
    let mut delta_count = 0u64;
    let mut checkpoints: Vec<CheckpointRow> = Vec::new();
    let mut consistency_ok = true;
    let mut sink_blackhole = 0usize;

    eprintln!("[n={n}] {events} churn events, checkpoint every {checkpoint_every}");
    for step in 0..events {
        let event = next_event(net.graph(), &mut adv, &mut next_id);
        if let Event::Insert { node, neighbors } = &event {
            gprime.record_insert(*node, neighbors).expect("fresh node");
        }
        recorder.borrow_mut().deltas.clear();
        net.apply(&event).expect("valid adversary event");

        // Incremental side: replay this event's deltas into the monitor.
        let deltas = std::mem::take(&mut recorder.borrow_mut().deltas);
        delta_count += deltas.len() as u64;
        let t = Instant::now();
        for d in &deltas {
            monitor.on_delta(d);
        }
        inc_ns.push(t.elapsed().as_nanos() as u64);

        // Fresh-rebuild side: the same metrics recomputed from the graph.
        let t = Instant::now();
        let (blackhole, fresh_di) = fresh_rebuild_pass(net.graph(), &gprime);
        fresh_ns.push(t.elapsed().as_nanos() as u64);
        sink_blackhole = sink_blackhole.wrapping_add(blackhole);

        // Not timed: the maintained metric must equal the recount.
        assert!(
            (monitor.degree_increase() - fresh_di).abs() < 1e-12,
            "step {step}: maintained degree increase {} != recount {fresh_di}",
            monitor.degree_increase()
        );

        if (step + 1) % checkpoint_every == 0 {
            // Spectral head-to-head first (warm vs cold, solver time only),
            // then the full checkpoint (components/expansion/stretch +
            // policy) untimed.
            let t = Instant::now();
            let warm = monitor.spectral_gap();
            let warm_ns = t.elapsed().as_nanos() as u64;
            let t = Instant::now();
            let cold_gap = normalized_algebraic_connectivity(net.graph());
            let cold_ns = t.elapsed().as_nanos() as u64;
            let report = monitor.checkpoint();
            let warm_gap = warm.lambda;
            let abs_diff = (warm_gap - cold_gap).abs();
            eprintln!(
                "[n={n}] checkpoint @{}: warm {warm_gap:.9} ({} restarts, {:.1}ms) vs cold {cold_gap:.9} ({:.1}ms), |diff| {abs_diff:.2e}",
                step + 1,
                warm.restarts,
                warm_ns as f64 / 1e6,
                cold_ns as f64 / 1e6,
            );
            // Field-by-field CSR cross-check (the runtime consistency proof).
            let inc = monitor.csr().snapshot();
            let fresh = net.graph().csr_view();
            consistency_ok &= inc.nodes() == fresh.nodes()
                && inc.offsets() == fresh.offsets()
                && inc.neighbors_flat() == fresh.neighbors_flat();
            assert_eq!(report.generation, monitor.generation());
            checkpoints.push(CheckpointRow {
                event: step + 1,
                generation: report.generation,
                warm_gap,
                cold_gap,
                abs_diff,
                warm_restarts: warm.restarts,
                warm_ns,
                cold_ns,
            });
        }
    }
    // Keep the blackhole live so the fresh pass is not dead code.
    assert!(sink_blackhole > 0);

    let inc_q = quantiles(&mut inc_ns);
    let fresh_q = quantiles(&mut fresh_ns);
    let speedup = fresh_q.mean as f64 / inc_q.mean.max(1) as f64;
    // The typical-event ratio: the mean is dominated by rare combine
    // storms whose delta volume scales with cloud size, not n.
    let speedup_p50 = fresh_q.p50 as f64 / inc_q.p50.max(1) as f64;
    let spectral_max_abs_diff = checkpoints
        .iter()
        .map(|c| c.abs_diff)
        .fold(0.0f64, f64::max);
    eprintln!(
        "[n={n}] incremental {}ns/event vs fresh {}ns/event: {speedup:.1}x cheaper (p50 {speedup_p50:.1}x); spectral max |diff| {spectral_max_abs_diff:.2e}",
        inc_q.mean, fresh_q.mean
    );

    let inc_json = format!(
        "{{\"per_event\": {}, \"deltas_per_event_mean\": {:.2}, \"tombstones\": {}, \"compactions\": {}}}",
        json_quantiles(&inc_q),
        delta_count as f64 / events as f64,
        monitor.csr().tombstones(),
        monitor.csr().compactions(),
    );
    let fresh_json = format!("{{\"per_event\": {}}}", json_quantiles(&fresh_q));
    SizeReport {
        n,
        events,
        inc_json,
        fresh_json,
        speedup,
        speedup_p50,
        checkpoints,
        spectral_max_abs_diff,
        consistency_ok,
        alerts: monitor.alerts().len(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_monitor.json".to_string());

    // (n, events, checkpoint interval). The acceptance target is the
    // n = 10k row: incremental maintenance ≥ 10× cheaper than per-event
    // fresh rebuild, warm spectral gap within 1e-6 of the cold solve.
    let sizes: Vec<(usize, usize, usize)> = if smoke {
        vec![(200, 240, 80)]
    } else {
        vec![(1_000, 1_000, 250), (10_000, 2_000, 500)]
    };

    let reports: Vec<SizeReport> = sizes
        .iter()
        .map(|&(n, e, c)| measure_size(n, e, c))
        .collect();

    let speedup_min = reports
        .iter()
        .map(|r| r.speedup)
        .fold(f64::INFINITY, f64::min);
    let speedup_at_largest = reports.last().expect("at least one size").speedup;
    let spectral_worst = reports
        .iter()
        .map(|r| r.spectral_max_abs_diff)
        .fold(0.0f64, f64::max);
    let within_tol = spectral_worst < SPECTRAL_TOL;
    let consistency = reports.iter().all(|r| r.consistency_ok);
    assert!(
        within_tol,
        "warm spectral gap drifted {spectral_worst:.2e} from the cold solve (tolerance {SPECTRAL_TOL:.0e})"
    );
    assert!(consistency, "incremental CSR diverged from csr_view()");
    // The acceptance target: at the full n = 10k scale, incremental
    // maintenance must be at least 10x cheaper than per-event rebuild
    // (smoke sizes are too small for the rebuild cost to dominate).
    assert!(
        smoke || speedup_at_largest >= 10.0,
        "incremental maintenance only {speedup_at_largest:.1}x cheaper at the largest size"
    );

    let size_entries: Vec<String> = reports
        .iter()
        .map(|r| {
            let rows: Vec<String> = r
                .checkpoints
                .iter()
                .map(|c| {
                    format!(
                        "        {{\"event\": {}, \"generation\": {}, \"warm_gap\": {:.12}, \"cold_gap\": {:.12}, \"abs_diff\": {:.3e}, \"warm_restarts\": {}, \"warm_ns\": {}, \"cold_ns\": {}}}",
                        c.event,
                        c.generation,
                        c.warm_gap,
                        c.cold_gap,
                        c.abs_diff,
                        c.warm_restarts,
                        c.warm_ns,
                        c.cold_ns
                    )
                })
                .collect();
            format!(
                "    {{\"n\": {}, \"events\": {}, \"incremental\": {}, \"fresh_rebuild\": {}, \"speedup_mean\": {:.3}, \"speedup_p50\": {:.3}, \"spectral_max_abs_diff\": {:.3e}, \"consistency_ok\": {}, \"alerts\": {}, \"checkpoints\": [\n{}\n      ]}}",
                r.n,
                r.events,
                r.inc_json,
                r.fresh_json,
                r.speedup,
                r.speedup_p50,
                r.spectral_max_abs_diff,
                r.consistency_ok,
                r.alerts,
                rows.join(",\n")
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"schema\": \"xheal-monitor-overhead/v1\",\n  \"smoke\": {smoke},\n  \"kappa\": {KAPPA},\n  \"healer_seed\": {HEALER_SEED},\n  \"adversary_seed\": {ADVERSARY_SEED},\n  \"spectral_tolerance\": {SPECTRAL_TOL:e},\n  \"sizes\": [\n{}\n  ],\n  \"summary\": {{\n    \"speedup_min\": {speedup_min:.3},\n    \"speedup_at_largest\": {speedup_at_largest:.3},\n    \"spectral_max_abs_diff\": {spectral_worst:.3e},\n    \"spectral_within_tol\": {within_tol},\n    \"consistency_ok\": {consistency}\n  }}\n}}\n",
        size_entries.join(",\n"),
    );

    std::fs::write(&out_path, &json).expect("write monitor report");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
