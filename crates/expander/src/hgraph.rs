//! Law–Siu H-graphs: unions of `d` independent random Hamilton cycles.
//!
//! Section 5 of the paper builds every expander cloud from the randomized
//! construction of Law and Siu [INFOCOM 2003]: an *H-graph* is a 2d-regular
//! multigraph whose edge set is the union of `d` Hamilton cycles over the
//! member set. Theorem 3 (Law–Siu) shows the INSERT/DELETE splice operations
//! below preserve the "uniformly random H-graph" distribution, and Theorem 4
//! (Friedman / Law–Siu) shows a random H-graph is an expander with high
//! probability.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use rand::seq::SliceRandom;
use rand::Rng;

use xheal_graph::NodeId;

/// One Hamilton cycle stored as successor/predecessor maps.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Cycle {
    next: BTreeMap<NodeId, NodeId>,
    prev: BTreeMap<NodeId, NodeId>,
}

impl Cycle {
    fn from_order(order: &[NodeId]) -> Self {
        let mut next = BTreeMap::new();
        let mut prev = BTreeMap::new();
        let n = order.len();
        for i in 0..n {
            let a = order[i];
            let b = order[(i + 1) % n];
            next.insert(a, b);
            prev.insert(b, a);
        }
        Cycle { next, prev }
    }

    /// Splice `u` between `v` and `next(v)`.
    fn insert_after(&mut self, v: NodeId, u: NodeId) {
        let w = self.next[&v];
        self.next.insert(v, u);
        self.next.insert(u, w);
        self.prev.insert(w, u);
        self.prev.insert(u, v);
    }

    /// Remove `u`, connecting `prev(u)` to `next(u)`.
    fn remove(&mut self, u: NodeId) {
        let p = self.prev.remove(&u).expect("member");
        let n = self.next.remove(&u).expect("member");
        if p == u {
            // u was the last member; nothing to reconnect.
            return;
        }
        self.next.insert(p, n);
        self.prev.insert(n, p);
    }

    /// Undirected simple edges of this cycle (excluding self-pairs).
    fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.next.iter().filter_map(|(&a, &b)| {
            if a == b {
                None
            } else if a < b {
                Some((a, b))
            } else {
                Some((b, a))
            }
        })
    }

    /// Checks the cycle is a single closed tour over `members`.
    fn validate(&self, members: &BTreeSet<NodeId>) -> Result<(), String> {
        if self.next.len() != members.len() || self.prev.len() != members.len() {
            return Err("cycle membership mismatch".into());
        }
        let Some(&start) = members.first() else {
            return Ok(());
        };
        let mut seen = 1usize;
        let mut cur = self.next[&start];
        while cur != start {
            if seen > members.len() {
                return Err("cycle does not close".into());
            }
            if !members.contains(&cur) {
                return Err(format!("cycle visits non-member {cur}"));
            }
            cur = self.next[&cur];
            seen += 1;
        }
        if seen != members.len() {
            return Err(format!("cycle covers {seen} of {} members", members.len()));
        }
        Ok(())
    }
}

/// A 2d-regular multigraph formed by `d` random Hamilton cycles, with the
/// Law–Siu INSERT/DELETE maintenance operations.
///
/// The *projected simple edge set* ([`HGraph::simple_edges`]) is what gets
/// installed into the network graph — the paper notes that multi-edges are
/// simply not duplicated ("similar high probabilistic guarantees hold in case
/// we make the multi-edges simple").
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use xheal_expander::HGraph;
/// use xheal_graph::NodeId;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let members: Vec<NodeId> = (0..10).map(NodeId::new).collect();
/// let mut h = HGraph::random(&members, 3, &mut rng); // 6-regular
/// assert_eq!(h.len(), 10);
/// h.delete(NodeId::new(4));
/// assert_eq!(h.len(), 9);
/// h.validate().unwrap();
/// ```
#[derive(Clone, Debug)]
pub struct HGraph {
    d: usize,
    members: BTreeSet<NodeId>,
    cycles: Vec<Cycle>,
}

impl HGraph {
    /// Samples a random H-graph with `d` Hamilton cycles over `members`.
    ///
    /// # Panics
    ///
    /// Panics if `members` has fewer than 3 distinct nodes ("we start with 3
    /// nodes, because there is only one possible H-graph of size 3") or
    /// `d == 0`.
    pub fn random<R: Rng + ?Sized>(members: &[NodeId], d: usize, rng: &mut R) -> Self {
        let set: BTreeSet<NodeId> = members.iter().copied().collect();
        assert!(set.len() >= 3, "H-graphs need at least 3 distinct nodes");
        assert!(d >= 1, "need at least one Hamilton cycle");
        let mut order: Vec<NodeId> = set.iter().copied().collect();
        let cycles = (0..d)
            .map(|_| {
                order.shuffle(rng);
                Cycle::from_order(&order)
            })
            .collect();
        HGraph {
            d,
            members: set,
            cycles,
        }
    }

    /// Number of Hamilton cycles (`κ = 2d`).
    pub fn cycle_count(&self) -> usize {
        self.d
    }

    /// Target multigraph degree `κ = 2d`.
    pub fn kappa(&self) -> usize {
        2 * self.d
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when no members remain.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Is `v` a member?
    pub fn contains(&self, v: NodeId) -> bool {
        self.members.contains(&v)
    }

    /// The member set.
    pub fn members(&self) -> &BTreeSet<NodeId> {
        &self.members
    }

    /// Law–Siu INSERT: splice `u` into each cycle at an independently random
    /// position.
    ///
    /// # Panics
    ///
    /// Panics if `u` is already a member.
    pub fn insert<R: Rng + ?Sized>(&mut self, u: NodeId, rng: &mut R) {
        assert!(!self.members.contains(&u), "{u} already a member");
        let positions: Vec<NodeId> = self.members.iter().copied().collect();
        for cycle in &mut self.cycles {
            let v = positions[rng.random_range(0..positions.len())];
            cycle.insert_after(v, u);
        }
        self.members.insert(u);
    }

    /// Law–Siu DELETE: remove `u` from each cycle, connecting its
    /// predecessor and successor.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not a member.
    pub fn delete(&mut self, u: NodeId) {
        assert!(self.members.remove(&u), "{u} not a member");
        for cycle in &mut self.cycles {
            cycle.remove(u);
        }
    }

    /// The projected simple edge set (union of cycle edges, deduplicated,
    /// self-pairs dropped), each pair with `u < v`.
    pub fn simple_edges(&self) -> BTreeSet<(NodeId, NodeId)> {
        self.cycles.iter().flat_map(|c| c.edges()).collect()
    }

    /// Multigraph degree of `v` counting duplicate cycle edges (2 per cycle
    /// while at least 3 members exist).
    pub fn multi_degree(&self, v: NodeId) -> usize {
        if !self.members.contains(&v) {
            return 0;
        }
        match self.members.len() {
            1 => 0,
            2 => self.d, // each cycle degenerates to a single doubled edge
            _ => 2 * self.d,
        }
    }

    /// Structural self-check: every cycle is a single closed tour over the
    /// member set.
    pub fn validate(&self) -> Result<(), String> {
        for (i, c) in self.cycles.iter().enumerate() {
            c.validate(&self.members)
                .map_err(|e| format!("cycle {i}: {e}"))?;
        }
        Ok(())
    }
}

impl fmt::Display for HGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "H-graph: {} members, {} cycles ({} simple edges)",
            self.members.len(),
            self.d,
            self.simple_edges().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn ids(range: std::ops::Range<u64>) -> Vec<NodeId> {
        range.map(NodeId::new).collect()
    }

    #[test]
    fn random_hgraph_is_valid_and_spans_members() {
        let mut rng = StdRng::seed_from_u64(1);
        let h = HGraph::random(&ids(0..12), 3, &mut rng);
        h.validate().unwrap();
        assert_eq!(h.len(), 12);
        assert_eq!(h.kappa(), 6);
        // Every member appears in the simple edge set.
        let edges = h.simple_edges();
        for v in ids(0..12) {
            assert!(edges.iter().any(|&(a, b)| a == v || b == v), "{v} isolated");
        }
    }

    #[test]
    fn simple_degree_at_most_kappa() {
        let mut rng = StdRng::seed_from_u64(2);
        for d in 1..=4usize {
            let h = HGraph::random(&ids(0..20), d, &mut rng);
            let edges = h.simple_edges();
            for v in ids(0..20) {
                let deg = edges.iter().filter(|&&(a, b)| a == v || b == v).count();
                assert!(deg <= 2 * d, "degree {deg} above kappa {}", 2 * d);
                assert!(deg >= 2, "cycle guarantees degree >= 2");
            }
        }
    }

    #[test]
    fn insert_keeps_validity_and_membership() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut h = HGraph::random(&ids(0..5), 2, &mut rng);
        for i in 5..30 {
            h.insert(NodeId::new(i), &mut rng);
            h.validate().unwrap();
        }
        assert_eq!(h.len(), 30);
    }

    #[test]
    fn delete_keeps_validity_down_to_small_sizes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut h = HGraph::random(&ids(0..20), 3, &mut rng);
        for i in 0..17 {
            h.delete(NodeId::new(i));
            h.validate().unwrap();
        }
        assert_eq!(h.len(), 3);
        // Three remaining members still form cycles.
        assert_eq!(h.simple_edges().len(), 3);
    }

    #[test]
    fn connectivity_of_projection() {
        // A single Hamilton cycle connects everything, so any H-graph's
        // simple projection is connected.
        let mut rng = StdRng::seed_from_u64(5);
        let h = HGraph::random(&ids(0..40), 2, &mut rng);
        let edges = h.simple_edges();
        let mut g = xheal_graph::Graph::new();
        for v in ids(0..40) {
            g.add_node(v).unwrap();
        }
        for (u, v) in edges {
            g.add_black_edge(u, v).unwrap();
        }
        assert!(xheal_graph::components::is_connected(&g));
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn too_few_members_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = HGraph::random(&ids(0..2), 2, &mut rng);
    }

    #[test]
    #[should_panic(expected = "already a member")]
    fn duplicate_insert_panics() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut h = HGraph::random(&ids(0..4), 2, &mut rng);
        h.insert(NodeId::new(0), &mut rng);
    }

    #[test]
    fn insert_then_delete_roundtrip_preserves_membership() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut h = HGraph::random(&ids(0..10), 2, &mut rng);
        let before = h.members().clone();
        h.insert(NodeId::new(99), &mut rng);
        h.delete(NodeId::new(99));
        assert_eq!(h.members(), &before);
        h.validate().unwrap();
    }
}
