//! Law–Siu H-graphs: unions of `d` independent random Hamilton cycles.
//!
//! Section 5 of the paper builds every expander cloud from the randomized
//! construction of Law and Siu [INFOCOM 2003]: an *H-graph* is a 2d-regular
//! multigraph whose edge set is the union of `d` Hamilton cycles over the
//! member set. Theorem 3 (Law–Siu) shows the INSERT/DELETE splice operations
//! below preserve the "uniformly random H-graph" distribution, and Theorem 4
//! (Friedman / Law–Siu) shows a random H-graph is an expander with high
//! probability.

use std::collections::BTreeSet;
use std::fmt;

use rand::seq::SliceRandom;
use rand::Rng;

use xheal_graph::{FxHashMap, NodeId};

/// The `(added, removed)` change a splice makes to the projected simple
/// edge set, both sorted ascending.
pub type SpliceDelta = (Vec<(NodeId, NodeId)>, Vec<(NodeId, NodeId)>);

/// Canonical `u < v` orientation of an undirected edge pair.
fn norm(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// One Hamilton cycle stored as successor/predecessor maps.
///
/// The maps are point-lookup-only (splices, incident queries); every
/// enumeration that reaches output or randomness goes through a sorted
/// collection, so the unordered FxHash maps stay deterministic-safe while
/// making large-cloud rebuilds several times cheaper than tree maps.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Cycle {
    next: FxHashMap<NodeId, NodeId>,
    prev: FxHashMap<NodeId, NodeId>,
}

impl Cycle {
    fn from_order(order: &[NodeId]) -> Self {
        let n = order.len();
        let mut next = FxHashMap::default();
        let mut prev = FxHashMap::default();
        next.reserve(n);
        prev.reserve(n);
        for i in 0..n {
            let a = order[i];
            let b = order[(i + 1) % n];
            next.insert(a, b);
            prev.insert(b, a);
        }
        Cycle { next, prev }
    }

    /// Splice `u` between `v` and `next(v)`.
    fn insert_after(&mut self, v: NodeId, u: NodeId) {
        let w = self.next[&v];
        self.next.insert(v, u);
        self.next.insert(u, w);
        self.prev.insert(w, u);
        self.prev.insert(u, v);
    }

    /// Remove `u`, connecting `prev(u)` to `next(u)`.
    fn remove(&mut self, u: NodeId) {
        let p = self.prev.remove(&u).expect("member");
        let n = self.next.remove(&u).expect("member");
        if p == u {
            // u was the last member; nothing to reconnect.
            return;
        }
        self.next.insert(p, n);
        self.prev.insert(n, p);
    }

    /// Undirected simple edges of this cycle (excluding self-pairs).
    fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.next.iter().filter_map(|(&a, &b)| {
            if a == b {
                None
            } else if a < b {
                Some((a, b))
            } else {
                Some((b, a))
            }
        })
    }

    /// Checks the cycle is a single closed tour over `members`.
    fn validate(&self, members: &BTreeSet<NodeId>) -> Result<(), String> {
        if self.next.len() != members.len() || self.prev.len() != members.len() {
            return Err("cycle membership mismatch".into());
        }
        let Some(&start) = members.first() else {
            return Ok(());
        };
        let mut seen = 1usize;
        let mut cur = self.next[&start];
        while cur != start {
            if seen > members.len() {
                return Err("cycle does not close".into());
            }
            if !members.contains(&cur) {
                return Err(format!("cycle visits non-member {cur}"));
            }
            cur = self.next[&cur];
            seen += 1;
        }
        if seen != members.len() {
            return Err(format!("cycle covers {seen} of {} members", members.len()));
        }
        Ok(())
    }
}

/// A 2d-regular multigraph formed by `d` random Hamilton cycles, with the
/// Law–Siu INSERT/DELETE maintenance operations.
///
/// The *projected simple edge set* ([`HGraph::simple_edges`]) is what gets
/// installed into the network graph — the paper notes that multi-edges are
/// simply not duplicated ("similar high probabilistic guarantees hold in case
/// we make the multi-edges simple").
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use xheal_expander::HGraph;
/// use xheal_graph::NodeId;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let members: Vec<NodeId> = (0..10).map(NodeId::new).collect();
/// let mut h = HGraph::random(&members, 3, &mut rng); // 6-regular
/// assert_eq!(h.len(), 10);
/// h.delete(NodeId::new(4));
/// assert_eq!(h.len(), 9);
/// h.validate().unwrap();
/// ```
#[derive(Clone, Debug)]
pub struct HGraph {
    d: usize,
    members: BTreeSet<NodeId>,
    cycles: Vec<Cycle>,
    /// Members in an arbitrary-but-deterministic enumeration order backing
    /// the O(1) [`HGraph::member_at`] accessor (swap-removal on delete).
    order: Vec<NodeId>,
    /// Position of each member in `order`.
    pos: FxHashMap<NodeId, usize>,
}

impl HGraph {
    /// Samples a random H-graph with `d` Hamilton cycles over `members`.
    ///
    /// # Panics
    ///
    /// Panics if `members` has fewer than 3 distinct nodes ("we start with 3
    /// nodes, because there is only one possible H-graph of size 3") or
    /// `d == 0`.
    pub fn random<R: Rng + ?Sized>(members: &[NodeId], d: usize, rng: &mut R) -> Self {
        let set: BTreeSet<NodeId> = members.iter().copied().collect();
        assert!(set.len() >= 3, "H-graphs need at least 3 distinct nodes");
        assert!(d >= 1, "need at least one Hamilton cycle");
        let mut order: Vec<NodeId> = set.iter().copied().collect();
        let cycles = (0..d)
            .map(|_| {
                order.shuffle(rng);
                Cycle::from_order(&order)
            })
            .collect();
        let enumeration: Vec<NodeId> = set.iter().copied().collect();
        let pos: FxHashMap<NodeId, usize> = enumeration.iter().copied().zip(0..).collect();
        HGraph {
            d,
            members: set,
            cycles,
            order: enumeration,
            pos,
        }
    }

    /// Number of Hamilton cycles (`κ = 2d`).
    pub fn cycle_count(&self) -> usize {
        self.d
    }

    /// Target multigraph degree `κ = 2d`.
    pub fn kappa(&self) -> usize {
        2 * self.d
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when no members remain.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Is `v` a member?
    pub fn contains(&self, v: NodeId) -> bool {
        self.members.contains(&v)
    }

    /// The member set.
    pub fn members(&self) -> &BTreeSet<NodeId> {
        &self.members
    }

    /// The member at position `idx` of the internal enumeration order — an
    /// O(1) indexed accessor for samplers that pick uniform members (the
    /// `BTreeSet` alternative, `members().iter().nth(idx)`, is O(n)).
    ///
    /// The order is deterministic across identical operation sequences but
    /// otherwise unspecified (deletions swap-remove), so treat `idx` as an
    /// opaque sampling coordinate, not a sorted rank.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.len()`.
    pub fn member_at(&self, idx: usize) -> NodeId {
        self.order[idx]
    }

    /// Law–Siu INSERT: splice `u` into each cycle at an independently random
    /// position.
    ///
    /// # Panics
    ///
    /// Panics if `u` is already a member.
    pub fn insert<R: Rng + ?Sized>(&mut self, u: NodeId, rng: &mut R) {
        let _ = self.insert_with_delta(u, rng);
    }

    /// [`HGraph::insert`], additionally returning the change to the
    /// *projected simple edge set* as `(added, removed)`, both sorted.
    ///
    /// The splice is O(d²): each cycle contributes at most two new incident
    /// edges and one broken edge, and broken candidates are membership-checked
    /// against the other cycles — no full projection rebuild. Consumes
    /// exactly the same randomness as [`HGraph::insert`].
    ///
    /// # Panics
    ///
    /// Panics if `u` is already a member.
    pub fn insert_with_delta<R: Rng + ?Sized>(&mut self, u: NodeId, rng: &mut R) -> SpliceDelta {
        assert!(!self.members.contains(&u), "{u} already a member");
        let positions: Vec<NodeId> = self.members.iter().copied().collect();
        let mut added: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
        let mut broken: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
        for cycle in &mut self.cycles {
            let v = positions[rng.random_range(0..positions.len())];
            let w = cycle.next[&v];
            cycle.insert_after(v, u);
            added.insert(norm(v, u));
            if v != w {
                added.insert(norm(u, w));
                broken.insert(norm(v, w));
            }
        }
        self.members.insert(u);
        self.pos.insert(u, self.order.len());
        self.order.push(u);
        // A broken (v, w) leaves the projection only if no cycle still walks
        // it after all splices.
        let removed: Vec<(NodeId, NodeId)> = broken
            .into_iter()
            .filter(|&(a, b)| !self.contains_edge(a, b))
            .collect();
        (added.into_iter().collect(), removed)
    }

    /// Law–Siu DELETE: remove `u` from each cycle, connecting its
    /// predecessor and successor.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not a member.
    pub fn delete(&mut self, u: NodeId) {
        let _ = self.delete_with_delta(u);
    }

    /// [`HGraph::delete`], additionally returning the change to the
    /// *projected simple edge set* as `(added, removed)`, both sorted.
    ///
    /// O(d²) like [`HGraph::insert_with_delta`]: the removed edges are
    /// exactly `u`'s projected incident edges; the healed `(prev, next)`
    /// pairs count as added only when absent from the pre-splice projection.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not a member.
    pub fn delete_with_delta(&mut self, u: NodeId) -> SpliceDelta {
        assert!(self.members.contains(&u), "{u} not a member");
        // Read phase: collect incident and healed pairs before any splice so
        // "present before" checks see the pre-op cycles.
        let mut removed: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
        let mut healed: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
        for cycle in &self.cycles {
            let p = cycle.prev[&u];
            let n = cycle.next[&u];
            if p == u {
                continue; // u was the cycle's last member
            }
            removed.insert(norm(p, u));
            removed.insert(norm(u, n));
            if p != n {
                healed.insert(norm(p, n));
            }
        }
        let added: Vec<(NodeId, NodeId)> = healed
            .into_iter()
            .filter(|&(a, b)| !self.contains_edge(a, b))
            .collect();
        self.members.remove(&u);
        for cycle in &mut self.cycles {
            cycle.remove(u);
        }
        let p = self.pos.remove(&u).expect("member position tracked");
        self.order.swap_remove(p);
        if let Some(&moved) = self.order.get(p) {
            self.pos.insert(moved, p);
        }
        (added, removed.into_iter().collect())
    }

    /// Does any cycle currently walk the edge `(a, b)` (either direction)?
    pub fn contains_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.cycles
            .iter()
            .any(|c| c.next.get(&a) == Some(&b) || c.next.get(&b) == Some(&a))
    }

    /// The projected simple edge set (union of cycle edges, deduplicated,
    /// self-pairs dropped), each pair with `u < v`.
    pub fn simple_edges(&self) -> BTreeSet<(NodeId, NodeId)> {
        self.cycles.iter().flat_map(|c| c.edges()).collect()
    }

    /// Multigraph degree of `v` counting duplicate cycle edges (2 per cycle
    /// while at least 3 members exist).
    pub fn multi_degree(&self, v: NodeId) -> usize {
        if !self.members.contains(&v) {
            return 0;
        }
        match self.members.len() {
            1 => 0,
            2 => self.d, // each cycle degenerates to a single doubled edge
            _ => 2 * self.d,
        }
    }

    /// Structural self-check: every cycle is a single closed tour over the
    /// member set, and the indexed enumeration covers it exactly.
    pub fn validate(&self) -> Result<(), String> {
        for (i, c) in self.cycles.iter().enumerate() {
            c.validate(&self.members)
                .map_err(|e| format!("cycle {i}: {e}"))?;
        }
        if self.order.len() != self.members.len() || self.pos.len() != self.members.len() {
            return Err("enumeration order out of sync with member set".into());
        }
        for (i, &v) in self.order.iter().enumerate() {
            if !self.members.contains(&v) {
                return Err(format!("enumeration lists non-member {v}"));
            }
            if self.pos.get(&v) != Some(&i) {
                return Err(format!("position index stale for {v}"));
            }
        }
        Ok(())
    }
}

impl fmt::Display for HGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "H-graph: {} members, {} cycles ({} simple edges)",
            self.members.len(),
            self.d,
            self.simple_edges().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn ids(range: std::ops::Range<u64>) -> Vec<NodeId> {
        range.map(NodeId::new).collect()
    }

    #[test]
    fn random_hgraph_is_valid_and_spans_members() {
        let mut rng = StdRng::seed_from_u64(1);
        let h = HGraph::random(&ids(0..12), 3, &mut rng);
        h.validate().unwrap();
        assert_eq!(h.len(), 12);
        assert_eq!(h.kappa(), 6);
        // Every member appears in the simple edge set.
        let edges = h.simple_edges();
        for v in ids(0..12) {
            assert!(edges.iter().any(|&(a, b)| a == v || b == v), "{v} isolated");
        }
    }

    #[test]
    fn simple_degree_at_most_kappa() {
        let mut rng = StdRng::seed_from_u64(2);
        for d in 1..=4usize {
            let h = HGraph::random(&ids(0..20), d, &mut rng);
            let edges = h.simple_edges();
            for v in ids(0..20) {
                let deg = edges.iter().filter(|&&(a, b)| a == v || b == v).count();
                assert!(deg <= 2 * d, "degree {deg} above kappa {}", 2 * d);
                assert!(deg >= 2, "cycle guarantees degree >= 2");
            }
        }
    }

    #[test]
    fn insert_keeps_validity_and_membership() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut h = HGraph::random(&ids(0..5), 2, &mut rng);
        for i in 5..30 {
            h.insert(NodeId::new(i), &mut rng);
            h.validate().unwrap();
        }
        assert_eq!(h.len(), 30);
    }

    #[test]
    fn delete_keeps_validity_down_to_small_sizes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut h = HGraph::random(&ids(0..20), 3, &mut rng);
        for i in 0..17 {
            h.delete(NodeId::new(i));
            h.validate().unwrap();
        }
        assert_eq!(h.len(), 3);
        // Three remaining members still form cycles.
        assert_eq!(h.simple_edges().len(), 3);
    }

    #[test]
    fn connectivity_of_projection() {
        // A single Hamilton cycle connects everything, so any H-graph's
        // simple projection is connected.
        let mut rng = StdRng::seed_from_u64(5);
        let h = HGraph::random(&ids(0..40), 2, &mut rng);
        let edges = h.simple_edges();
        let mut g = xheal_graph::Graph::new();
        for v in ids(0..40) {
            g.add_node(v).unwrap();
        }
        for (u, v) in edges {
            g.add_black_edge(u, v).unwrap();
        }
        assert!(xheal_graph::components::is_connected(&g));
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn too_few_members_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = HGraph::random(&ids(0..2), 2, &mut rng);
    }

    #[test]
    #[should_panic(expected = "already a member")]
    fn duplicate_insert_panics() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut h = HGraph::random(&ids(0..4), 2, &mut rng);
        h.insert(NodeId::new(0), &mut rng);
    }

    #[test]
    fn splice_deltas_match_recomputed_projection() {
        // The local O(d²) deltas must track the full projection exactly,
        // edge for edge, across long mixed churn.
        let mut rng = StdRng::seed_from_u64(31);
        let mut h = HGraph::random(&ids(0..10), 3, &mut rng);
        let mut mirror = h.simple_edges();
        let mut next = 100u64;
        for round in 0..300 {
            if h.len() <= 4 || round % 3 != 0 {
                let (added, removed) = h.insert_with_delta(NodeId::new(next), &mut rng);
                next += 1;
                for e in &removed {
                    assert!(mirror.remove(e), "round {round}: removed {e:?} absent");
                }
                for &e in &added {
                    assert!(mirror.insert(e), "round {round}: added {e:?} present");
                }
            } else {
                let v = h.member_at(rng.random_range(0..h.len()));
                let (added, removed) = h.delete_with_delta(v);
                for e in &removed {
                    assert!(mirror.remove(e), "round {round}: removed {e:?} absent");
                }
                for &e in &added {
                    assert!(mirror.insert(e), "round {round}: added {e:?} present");
                }
            }
            assert_eq!(mirror, h.simple_edges(), "round {round}: projection drift");
            h.validate().unwrap();
        }
    }

    #[test]
    fn member_at_enumerates_exactly_the_members_under_churn() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut h = HGraph::random(&ids(0..12), 2, &mut rng);
        for i in 12..20 {
            h.insert(NodeId::new(i), &mut rng);
        }
        for i in (0..12).step_by(3) {
            h.delete(NodeId::new(i));
        }
        h.validate().unwrap();
        let enumerated: BTreeSet<NodeId> = (0..h.len()).map(|i| h.member_at(i)).collect();
        assert_eq!(&enumerated, h.members());
    }

    #[test]
    fn insert_then_delete_roundtrip_preserves_membership() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut h = HGraph::random(&ids(0..10), 2, &mut rng);
        let before = h.members().clone();
        h.insert(NodeId::new(99), &mut rng);
        h.delete(NodeId::new(99));
        assert_eq!(h.members(), &before);
        h.validate().unwrap();
    }
}
