//! # xheal-expander
//!
//! The distributed-expander building block of Xheal: Law–Siu random
//! *H-graphs* (unions of `d` random Hamilton cycles, giving 2d-regular
//! expanders with high probability) plus the maintenance policy every Xheal
//! cloud follows (clique below `κ + 1` members, H-graph above, full rebuild
//! after losing half the membership).
//!
//! - [`HGraph`]: the raw construction with Law–Siu INSERT/DELETE splices
//!   (Theorems 3 and 4 of the paper's Section 5);
//! - [`MaintainedExpander`]: the clique/H-graph hybrid with the rebuild
//!   amortization rule, reporting every change as an [`EdgeDelta`].
//!
//! # Examples
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use xheal_expander::MaintainedExpander;
//! use xheal_graph::NodeId;
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let members: Vec<NodeId> = (0..20).map(NodeId::new).collect();
//! let (mut exp, edges) = MaintainedExpander::new(&members, 6, &mut rng);
//! assert!(!exp.is_clique());
//! assert!(edges.len() <= 20 * 6 / 2);
//! let delta = exp.remove(NodeId::new(3), &mut rng);
//! assert!(!delta.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hgraph;
mod maintain;

pub use hgraph::HGraph;
pub use maintain::{EdgeDelta, EdgePair, MaintainedExpander};
