//! Maintained expanders: the clique/H-graph hybrid each Xheal cloud uses.
//!
//! `MakeCloud` in the paper (Algorithm 3.2) builds a clique when the member
//! set is at most `κ + 1` nodes and a κ-regular expander otherwise; Section 5
//! adds the amortization rule "reconstruct the H-graph after any cloud has
//! lost half of its nodes". [`MaintainedExpander`] packages those rules and
//! reports every mutation as an [`EdgeDelta`] so the caller can mirror the
//! cloud's edges (with its color) into the network graph.

use std::collections::BTreeSet;

use rand::Rng;

use xheal_graph::NodeId;

use crate::HGraph;

/// Undirected edge pair with the canonical `u < v` orientation.
pub type EdgePair = (NodeId, NodeId);

/// The edges added/removed by one maintenance operation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeDelta {
    /// Edges that must be added (colored with the cloud's color).
    pub added: Vec<EdgePair>,
    /// Edges whose cloud color must be stripped.
    pub removed: Vec<EdgePair>,
}

impl EdgeDelta {
    /// Diff of two **sorted, duplicate-free** edge lists: `added` is
    /// `new − old`, `removed` is `old − new`, both ascending. One merge
    /// walk — no set structures, no per-element searches.
    pub fn between(old: &[EdgePair], new: &[EdgePair]) -> Self {
        debug_assert!(old.windows(2).all(|w| w[0] < w[1]), "old edges unsorted");
        debug_assert!(new.windows(2).all(|w| w[0] < w[1]), "new edges unsorted");
        let mut added = Vec::new();
        let mut removed = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < old.len() && j < new.len() {
            match old[i].cmp(&new[j]) {
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => {
                    removed.push(old[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    added.push(new[j]);
                    j += 1;
                }
            }
        }
        removed.extend_from_slice(&old[i..]);
        added.extend_from_slice(&new[j..]);
        EdgeDelta { added, removed }
    }

    /// True when the operation changed nothing.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

#[derive(Clone, Debug)]
enum Topology {
    /// All-pairs edges; used while `members <= kappa + 1`.
    Clique,
    /// Law–Siu H-graph with `d = kappa / 2` Hamilton cycles.
    HGraph(HGraph),
}

/// A self-maintaining expander over a dynamic member set.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use xheal_expander::MaintainedExpander;
/// use xheal_graph::NodeId;
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let members: Vec<NodeId> = (0..4).map(NodeId::new).collect();
/// // kappa = 4, so 4 members form a clique.
/// let (exp, edges) = MaintainedExpander::new(&members, 4, &mut rng);
/// assert_eq!(edges.len(), 6);
/// assert!(exp.is_clique());
/// ```
#[derive(Clone, Debug)]
pub struct MaintainedExpander {
    kappa: usize,
    members: BTreeSet<NodeId>,
    topology: Topology,
    /// Size at the last full (re)build — drives the rebuild-at-half rule.
    peak_size: usize,
    /// Projected simple edges currently installed, sorted ascending —
    /// a plain sorted `Vec` so rebuild diffs are one allocation-free merge
    /// walk instead of `BTreeSet` difference traversals.
    edges: Vec<EdgePair>,
    /// Count of full rebuilds (exposed for the amortization experiments).
    rebuilds: usize,
}

/// All-pairs edges over a sorted member set, emitted ascending (the
/// lexicographic pair order of sorted members is already sorted).
fn clique_edges(members: &BTreeSet<NodeId>) -> Vec<EdgePair> {
    let v: Vec<NodeId> = members.iter().copied().collect();
    let mut out = Vec::with_capacity(v.len() * v.len().saturating_sub(1) / 2);
    for i in 0..v.len() {
        for j in (i + 1)..v.len() {
            out.push((v[i], v[j]));
        }
    }
    out
}

impl MaintainedExpander {
    /// Builds an expander over `members` with target degree `kappa`
    /// (clique if `members.len() <= kappa + 1`), returning the initial edge
    /// set to install.
    ///
    /// # Panics
    ///
    /// Panics if `kappa` is not a positive even number (H-graphs are
    /// 2d-regular) or `members` is empty.
    pub fn new<R: Rng + ?Sized>(
        members: &[NodeId],
        kappa: usize,
        rng: &mut R,
    ) -> (Self, Vec<EdgePair>) {
        assert!(kappa >= 2 && kappa % 2 == 0, "kappa must be even and >= 2");
        let set: BTreeSet<NodeId> = members.iter().copied().collect();
        assert!(!set.is_empty(), "expander needs at least one member");
        let (topology, edges) = if set.len() <= kappa + 1 {
            (Topology::Clique, clique_edges(&set))
        } else {
            let order: Vec<NodeId> = set.iter().copied().collect();
            let h = HGraph::random(&order, kappa / 2, rng);
            let e: Vec<EdgePair> = h.simple_edges().into_iter().collect();
            (Topology::HGraph(h), e)
        };
        let initial = edges.clone();
        let me = MaintainedExpander {
            kappa,
            peak_size: set.len(),
            members: set,
            topology,
            edges,
            rebuilds: 0,
        };
        (me, initial)
    }

    /// Target degree κ.
    pub fn kappa(&self) -> usize {
        self.kappa
    }

    /// Member count.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when no members remain.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Is `v` a member?
    pub fn contains(&self, v: NodeId) -> bool {
        self.members.contains(&v)
    }

    /// The member set.
    pub fn members(&self) -> &BTreeSet<NodeId> {
        &self.members
    }

    /// Currently installed projected edges, sorted ascending.
    pub fn edges(&self) -> &[EdgePair] {
        &self.edges
    }

    /// Is the current topology a clique?
    pub fn is_clique(&self) -> bool {
        matches!(self.topology, Topology::Clique)
    }

    /// Number of full rebuilds performed so far.
    pub fn rebuild_count(&self) -> usize {
        self.rebuilds
    }

    fn rebuild<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Vec<EdgePair> {
        self.rebuilds += 1;
        self.peak_size = self.members.len();
        if self.members.len() <= self.kappa + 1 {
            self.topology = Topology::Clique;
            clique_edges(&self.members)
        } else {
            let order: Vec<NodeId> = self.members.iter().copied().collect();
            let h = HGraph::random(&order, self.kappa / 2, rng);
            let e: Vec<EdgePair> = h.simple_edges().into_iter().collect();
            self.topology = Topology::HGraph(h);
            e
        }
    }

    /// Applies a locally-computed splice delta to the maintained projection
    /// and packages it as an [`EdgeDelta`]. Splice deltas are O(d²) small,
    /// so per-element binary-search edits keep the sorted order cheaply.
    fn apply_local_delta(&mut self, added: Vec<EdgePair>, removed: Vec<EdgePair>) -> EdgeDelta {
        for e in &removed {
            if let Ok(pos) = self.edges.binary_search(e) {
                self.edges.remove(pos);
            }
        }
        for e in &added {
            if let Err(pos) = self.edges.binary_search(e) {
                self.edges.insert(pos, *e);
            }
        }
        EdgeDelta { added, removed }
    }

    /// Adds `v` to the expander, returning the edge delta to apply.
    ///
    /// H-graph splices compute their delta locally (O(d²) via
    /// [`HGraph::insert_with_delta`]) instead of re-projecting the whole
    /// edge set; only rebuilds pay a full edge-set diff. Note the insert
    /// path still materializes the member list once to draw the splice
    /// positions (required to keep the RNG stream bit-identical to the
    /// original implementation), so inserts remain O(m) in cloud size —
    /// just without the former O(d·m log m) projection rebuild.
    ///
    /// # Panics
    ///
    /// Panics if `v` is already a member.
    pub fn insert<R: Rng + ?Sized>(&mut self, v: NodeId, rng: &mut R) -> EdgeDelta {
        assert!(self.members.insert(v), "{v} already a member");
        match &mut self.topology {
            Topology::Clique => {
                if self.members.len() > self.kappa + 1 {
                    // Clique outgrew its bound: promote to an H-graph.
                    let old = std::mem::take(&mut self.edges);
                    let new = self.rebuild(rng);
                    let delta = EdgeDelta::between(&old, &new);
                    self.edges = new;
                    delta
                } else {
                    // Clique insert: exactly the new node's pairs appear.
                    let added: Vec<EdgePair> = self
                        .members
                        .iter()
                        .filter(|&&u| u != v)
                        .map(|&u| if u < v { (u, v) } else { (v, u) })
                        .collect();
                    let mut added = added;
                    added.sort_unstable();
                    self.apply_local_delta(added, Vec::new())
                }
            }
            Topology::HGraph(h) => {
                let (added, removed) = h.insert_with_delta(v, rng);
                if self.members.len() > self.peak_size {
                    self.peak_size = self.members.len();
                }
                self.apply_local_delta(added, removed)
            }
        }
    }

    /// Removes `v`, returning the edge delta to apply. Applies the paper's
    /// rules: fall back to a clique at `κ + 1` members, rebuild the H-graph
    /// once half of the membership since the last build is gone. Like
    /// [`MaintainedExpander::insert`], non-rebuild splices are O(d²).
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a member.
    pub fn remove<R: Rng + ?Sized>(&mut self, v: NodeId, rng: &mut R) -> EdgeDelta {
        assert!(self.members.remove(&v), "{v} not a member");
        match &mut self.topology {
            Topology::Clique => {
                // Clique removal: exactly the node's pairs disappear.
                let mut removed: Vec<EdgePair> = self
                    .members
                    .iter()
                    .map(|&u| if u < v { (u, v) } else { (v, u) })
                    .collect();
                removed.sort_unstable();
                self.apply_local_delta(Vec::new(), removed)
            }
            Topology::HGraph(h) => {
                if self.members.len() <= self.kappa + 1 || self.members.len() * 2 <= self.peak_size
                {
                    h.delete(v);
                    let old = std::mem::take(&mut self.edges);
                    let new = self.rebuild(rng);
                    let delta = EdgeDelta::between(&old, &new);
                    self.edges = new;
                    delta
                } else {
                    let (added, removed) = h.delete_with_delta(v);
                    self.apply_local_delta(added, removed)
                }
            }
        }
    }

    /// Forces a full rebuild (fresh random topology), returning the delta.
    pub fn force_rebuild<R: Rng + ?Sized>(&mut self, rng: &mut R) -> EdgeDelta {
        let old = std::mem::take(&mut self.edges);
        let new = self.rebuild(rng);
        let delta = EdgeDelta::between(&old, &new);
        self.edges = new;
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn ids(range: std::ops::Range<u64>) -> Vec<NodeId> {
        range.map(NodeId::new).collect()
    }

    fn apply(edges: &mut BTreeSet<EdgePair>, delta: &EdgeDelta) {
        for e in &delta.removed {
            assert!(edges.remove(e), "removed edge {e:?} not present");
        }
        for e in &delta.added {
            assert!(edges.insert(*e), "added edge {e:?} already present");
        }
    }

    #[test]
    fn small_set_is_clique() {
        let mut rng = StdRng::seed_from_u64(1);
        let (e, edges) = MaintainedExpander::new(&ids(0..5), 4, &mut rng);
        assert!(e.is_clique());
        assert_eq!(edges.len(), 10);
    }

    #[test]
    fn large_set_is_hgraph_with_bounded_degree() {
        let mut rng = StdRng::seed_from_u64(2);
        let (e, edges) = MaintainedExpander::new(&ids(0..30), 6, &mut rng);
        assert!(!e.is_clique());
        for v in ids(0..30) {
            let deg = edges.iter().filter(|&&(a, b)| a == v || b == v).count();
            assert!(deg <= 6, "degree {deg} exceeds kappa");
        }
    }

    #[test]
    fn deltas_track_edge_set_exactly() {
        let mut rng = StdRng::seed_from_u64(3);
        let (mut e, initial) = MaintainedExpander::new(&ids(0..12), 4, &mut rng);
        let mut mirror: BTreeSet<EdgePair> = initial.into_iter().collect();
        let check = |mirror: &BTreeSet<EdgePair>, e: &MaintainedExpander| {
            let sorted: Vec<EdgePair> = mirror.iter().copied().collect();
            assert_eq!(sorted, e.edges(), "edge list drift (or lost sort order)");
        };
        for i in 12..20 {
            let d = e.insert(NodeId::new(i), &mut rng);
            apply(&mut mirror, &d);
            check(&mirror, &e);
        }
        for i in 0..15 {
            let d = e.remove(NodeId::new(i), &mut rng);
            apply(&mut mirror, &d);
            check(&mirror, &e);
        }
        assert_eq!(e.len(), 5);
        assert!(e.is_clique(), "shrunk below kappa+1, must be clique");
    }

    #[test]
    fn clique_promotes_to_hgraph_on_growth() {
        let mut rng = StdRng::seed_from_u64(4);
        let (mut e, _) = MaintainedExpander::new(&ids(0..5), 4, &mut rng);
        assert!(e.is_clique());
        e.insert(NodeId::new(100), &mut rng);
        // 6 members > kappa+1 = 5 -> H-graph.
        assert!(!e.is_clique());
        assert_eq!(e.rebuild_count(), 1);
    }

    #[test]
    fn rebuild_at_half_triggers() {
        let mut rng = StdRng::seed_from_u64(5);
        let (mut e, _) = MaintainedExpander::new(&ids(0..40), 4, &mut rng);
        let mut rebuilds = e.rebuild_count();
        let mut seen_half_rebuild = false;
        for i in 0..20 {
            e.remove(NodeId::new(i), &mut rng);
            if e.rebuild_count() > rebuilds {
                rebuilds = e.rebuild_count();
                if e.len() >= e.kappa() + 2 {
                    seen_half_rebuild = true;
                }
            }
        }
        assert!(seen_half_rebuild, "no half-loss rebuild observed");
    }

    #[test]
    fn force_rebuild_changes_topology_but_not_members() {
        let mut rng = StdRng::seed_from_u64(6);
        let (mut e, _) = MaintainedExpander::new(&ids(0..25), 4, &mut rng);
        let members = e.members().clone();
        let delta = e.force_rebuild(&mut rng);
        assert_eq!(e.members(), &members);
        assert!(!delta.is_empty(), "a fresh random H-graph differs w.h.p.");
    }

    #[test]
    fn kappa_must_be_even() {
        let mut rng = StdRng::seed_from_u64(7);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            MaintainedExpander::new(&ids(0..5), 3, &mut rng)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn expander_projection_stays_connected_under_churn() {
        let mut rng = StdRng::seed_from_u64(8);
        let (mut e, _) = MaintainedExpander::new(&ids(0..24), 4, &mut rng);
        let mut next_id = 24u64;
        for round in 0..60 {
            if round % 3 == 0 {
                e.insert(NodeId::new(next_id), &mut rng);
                next_id += 1;
            } else {
                let &v = e.members().first().unwrap();
                e.remove(v, &mut rng);
            }
            // Check connectivity of the projection.
            let mut g = xheal_graph::Graph::new();
            for &v in e.members() {
                g.add_node(v).unwrap();
            }
            for &(a, b) in e.edges() {
                g.add_black_edge(a, b).unwrap();
            }
            assert!(
                xheal_graph::components::is_connected(&g),
                "round {round}: projection disconnected"
            );
        }
    }
}
