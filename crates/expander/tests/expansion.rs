//! Empirical validation of Theorems 3 and 4: random H-graphs are expanders
//! with high probability, and the INSERT/DELETE splices preserve that.

use rand::{rngs::StdRng, SeedableRng};
use xheal_expander::HGraph;
use xheal_graph::{cuts, Graph, NodeId};
use xheal_spectral::algebraic_connectivity;

fn projection(h: &HGraph) -> Graph {
    let mut g = Graph::new();
    for &v in h.members() {
        g.add_node(v).unwrap();
    }
    for (u, v) in h.simple_edges() {
        g.add_black_edge(u, v).unwrap();
    }
    g
}

#[test]
fn fresh_hgraphs_have_positive_spectral_gap() {
    let mut rng = StdRng::seed_from_u64(1);
    for n in [16u64, 64, 128] {
        let members: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        let h = HGraph::random(&members, 3, &mut rng);
        let lambda = algebraic_connectivity(&projection(&h));
        assert!(lambda > 0.5, "n={n}: lambda2 = {lambda}");
    }
}

#[test]
fn small_hgraph_exact_edge_expansion_is_strong() {
    let mut rng = StdRng::seed_from_u64(2);
    let members: Vec<NodeId> = (0..16).map(NodeId::new).collect();
    // d = 3 (kappa = 6): Theorem 4 promises expansion Omega(d) w.h.p.
    let mut ok = 0;
    const TRIALS: usize = 10;
    for _ in 0..TRIALS {
        let h = HGraph::random(&members, 3, &mut rng);
        let exact = cuts::edge_expansion_exact(&projection(&h)).unwrap();
        if exact.value >= 1.0 {
            ok += 1;
        }
    }
    assert!(ok >= TRIALS - 1, "only {ok}/{TRIALS} trials had h >= 1");
}

#[test]
fn churned_hgraph_remains_an_expander() {
    let mut rng = StdRng::seed_from_u64(3);
    let members: Vec<NodeId> = (0..64).map(NodeId::new).collect();
    let mut h = HGraph::random(&members, 3, &mut rng);
    let mut next = 64u64;
    // Heavy churn: interleave 200 inserts/deletes.
    for round in 0..200 {
        if round % 2 == 0 {
            h.insert(NodeId::new(next), &mut rng);
            next += 1;
        } else {
            let &v = h.members().iter().nth(round % h.len()).unwrap();
            h.delete(v);
        }
    }
    h.validate().unwrap();
    let lambda = algebraic_connectivity(&projection(&h));
    assert!(lambda > 0.4, "post-churn lambda2 = {lambda}");
}

#[test]
fn expansion_grows_with_d() {
    // Theorem 4: edge expansion Omega(d). Larger d should give a larger
    // spectral gap on average.
    let mut rng = StdRng::seed_from_u64(4);
    let members: Vec<NodeId> = (0..96).map(NodeId::new).collect();
    let avg = |d: usize, rng: &mut StdRng| {
        let mut total = 0.0;
        for _ in 0..3 {
            let h = HGraph::random(&members, d, rng);
            total += algebraic_connectivity(&projection(&h));
        }
        total / 3.0
    };
    let l2 = avg(2, &mut rng);
    let l5 = avg(5, &mut rng);
    assert!(l5 > l2, "lambda2 should grow with d: d=2 {l2} vs d=5 {l5}");
}
