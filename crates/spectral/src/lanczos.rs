//! Lanczos iteration with full reorthogonalization for large sparse
//! symmetric operators (here: graph Laplacians).
//!
//! The Laplacian's smallest eigenvalue is 0 with eigenvector **1**; the
//! algebraic connectivity λ₂ is the smallest eigenvalue on the orthogonal
//! complement of **1**, so the driver deflates **1** from every Krylov
//! vector. Full reorthogonalization keeps the basis numerically orthogonal
//! at the modest dimensions the experiments use (n ≤ a few thousand).

use crate::tridiag::{tridiagonal_eigenvalues, tridiagonal_eigenvector};

/// A symmetric linear operator given matrix-free.
pub trait LinOp {
    /// Dimension of the (square) operator.
    fn dim(&self) -> usize;
    /// Computes `y = A x`.
    fn apply(&self, x: &[f64], y: &mut [f64]);
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

fn axpy(y: &mut [f64], alpha: f64, x: &[f64]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Deterministic pseudo-random start vector (splitmix64-driven).
fn seeded_vector(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    (0..n)
        .map(|_| (next() >> 11) as f64 / (1u64 << 53) as f64 - 0.5)
        .collect()
}

/// Result of a deflated Lanczos run.
#[derive(Clone, Debug)]
pub struct LanczosResult {
    /// Ritz values (ascending) of the operator restricted to the deflated
    /// subspace.
    pub ritz_values: Vec<f64>,
    /// The Ritz vector corresponding to the smallest Ritz value.
    pub smallest_vector: Vec<f64>,
}

/// Orthonormalizes `vs` by (twice-repeated) Gram–Schmidt, dropping vectors
/// that are numerically dependent on earlier ones or zero.
fn orthonormalize(vs: &[&[f64]]) -> Vec<Vec<f64>> {
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(vs.len());
    for v in vs {
        let mut u = v.to_vec();
        for _ in 0..2 {
            for b in &basis {
                let c = dot(&u, b);
                axpy(&mut u, -c, b);
            }
        }
        let nu = norm(&u);
        if nu > 1e-12 {
            for x in &mut u {
                *x /= nu;
            }
            basis.push(u);
        }
    }
    basis
}

/// Runs Lanczos on `op` restricted to the orthogonal complement of
/// `deflate` (typically the all-ones vector for a Laplacian), for at most
/// `max_steps` iterations, starting from seeded noise.
///
/// Returns `None` when the effective dimension is zero (e.g. `dim < 2`).
pub fn lanczos_deflated(
    op: &dyn LinOp,
    deflate: &[f64],
    max_steps: usize,
    seed: u64,
) -> Option<LanczosResult> {
    lanczos_multi_deflated(op, &[deflate], max_steps, seed)
}

/// Like [`lanczos_deflated`], but **warm-started**: the first Krylov vector
/// is `start` (deflated and normalized) instead of seeded noise. With a
/// start vector close to the target eigenvector — e.g. the previous Fiedler
/// estimate of a slightly perturbed graph — the smallest Ritz value
/// converges in a handful of iterations instead of from scratch.
///
/// A `start` that deflates to (numerically) zero returns `None`, exactly as
/// a degenerate dimension does; callers should fall back to the seeded
/// entry point.
pub fn lanczos_deflated_from(
    op: &dyn LinOp,
    deflate: &[f64],
    start: &[f64],
    max_steps: usize,
) -> Option<LanczosResult> {
    lanczos_multi_deflated_from(op, &[deflate], start, max_steps)
}

/// [`lanczos_deflated`] against a whole deflation *set*: the iteration runs
/// on the orthogonal complement of `span(deflates)`, so with the kernel and
/// the Fiedler vector deflated the smallest Ritz value is λ₃ — the
/// second-order drift signal the monitor's tracker chases. Starts from
/// seeded noise.
pub fn lanczos_multi_deflated(
    op: &dyn LinOp,
    deflates: &[&[f64]],
    max_steps: usize,
    seed: u64,
) -> Option<LanczosResult> {
    if op.dim() < 2 {
        return None;
    }
    let start = seeded_vector(op.dim(), seed);
    lanczos_multi_deflated_from(op, deflates, &start, max_steps)
}

/// The warm-started multi-vector twin of [`lanczos_deflated_from`]:
/// deflates every vector in `deflates` (orthonormalized internally;
/// dependent or zero vectors are dropped) and starts the Krylov basis from
/// `start`.
pub fn lanczos_multi_deflated_from(
    op: &dyn LinOp,
    deflates: &[&[f64]],
    start: &[f64],
    max_steps: usize,
) -> Option<LanczosResult> {
    let n = op.dim();
    if n < 2 {
        return None;
    }
    for d in deflates {
        assert_eq!(d.len(), n, "deflation vector dimension mismatch");
    }
    assert_eq!(start.len(), n, "start vector dimension mismatch");
    let deflate_basis = orthonormalize(deflates);
    let project = |v: &mut [f64]| {
        for u in &deflate_basis {
            let c = dot(v, u);
            axpy(v, -c, u);
        }
    };

    let steps = max_steps.min(n).max(1);
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(steps);
    let mut alphas: Vec<f64> = Vec::with_capacity(steps);
    let mut betas: Vec<f64> = Vec::with_capacity(steps);

    // Start vector: caller-supplied, deflated, normalized.
    let mut v = start.to_vec();
    project(&mut v);
    let nv = norm(&v);
    if nv < 1e-30 {
        return None;
    }
    for x in &mut v {
        *x /= nv;
    }
    basis.push(v);

    let mut w = vec![0.0f64; n];
    for j in 0..steps {
        op.apply(&basis[j], &mut w);
        project(&mut w);
        let alpha = dot(&w, &basis[j]);
        alphas.push(alpha);
        // w -= alpha * v_j + beta_{j-1} * v_{j-1}
        axpy(&mut w, -alpha, &basis[j]);
        if j > 0 {
            let b = betas[j - 1];
            axpy(&mut w, -b, &basis[j - 1]);
        }
        // Full reorthogonalization (twice for numerical safety).
        for _ in 0..2 {
            for q in &basis {
                let c = dot(&w, q);
                axpy(&mut w, -c, q);
            }
            project(&mut w);
        }
        let beta = norm(&w);
        if beta < 1e-12 || j + 1 == steps {
            break;
        }
        betas.push(beta);
        let next: Vec<f64> = w.iter().map(|x| x / beta).collect();
        basis.push(next);
    }

    let k = alphas.len();
    let ritz_values = tridiagonal_eigenvalues(&alphas, &betas[..k - 1]);
    let smallest = ritz_values[0];
    let coeffs = tridiagonal_eigenvector(&alphas, &betas[..k - 1], smallest);
    let mut vec = vec![0.0f64; n];
    for (c, q) in coeffs.iter().zip(&basis) {
        axpy(&mut vec, *c, q);
    }
    let nv = norm(&vec);
    if nv > 0.0 {
        for x in &mut vec {
            *x /= nv;
        }
    }
    Some(LanczosResult {
        ritz_values,
        smallest_vector: vec,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SymMatrix;

    impl LinOp for SymMatrix {
        fn dim(&self) -> usize {
            SymMatrix::dim(self)
        }
        fn apply(&self, x: &[f64], y: &mut [f64]) {
            SymMatrix::apply(self, x, y)
        }
    }

    #[test]
    fn recovers_second_eigenvalue_of_diagonal() {
        // Operator diag(0, 1, 5) with deflation of e0 (its 0-eigenvector):
        // smallest remaining eigenvalue is 1.
        let mut m = SymMatrix::zeros(3);
        m.set(1, 1, 1.0);
        m.set(2, 2, 5.0);
        let deflate = vec![1.0, 0.0, 0.0];
        let r = lanczos_deflated(&m, &deflate, 10, 7).unwrap();
        assert!((r.ritz_values[0] - 1.0).abs() < 1e-9, "{:?}", r.ritz_values);
    }

    #[test]
    fn smallest_vector_is_deflation_orthogonal() {
        let mut m = SymMatrix::zeros(4);
        for i in 0..4 {
            m.set(i, i, (i * i) as f64);
        }
        let deflate = vec![0.5; 4];
        let r = lanczos_deflated(&m, &deflate, 10, 3).unwrap();
        let d = dot(&r.smallest_vector, &deflate);
        assert!(d.abs() < 1e-8, "dot with deflation vector = {d}");
    }

    #[test]
    fn multi_deflation_recovers_third_eigenvalue() {
        // diag(0, 1, 5, 9): deflating e0 and e1 leaves 5 as the smallest.
        let mut m = SymMatrix::zeros(4);
        m.set(1, 1, 1.0);
        m.set(2, 2, 5.0);
        m.set(3, 3, 9.0);
        let d0 = vec![1.0, 0.0, 0.0, 0.0];
        let d1 = vec![0.0, 1.0, 0.0, 0.0];
        let r = lanczos_multi_deflated(&m, &[&d0, &d1], 10, 11).unwrap();
        assert!((r.ritz_values[0] - 5.0).abs() < 1e-9, "{:?}", r.ritz_values);
    }

    #[test]
    fn dependent_deflation_vectors_are_dropped() {
        // Both deflation vectors span the same line; only one component is
        // removed, so the smallest remaining eigenvalue is 1, not 5.
        let mut m = SymMatrix::zeros(3);
        m.set(1, 1, 1.0);
        m.set(2, 2, 5.0);
        let d0 = vec![1.0, 0.0, 0.0];
        let d1 = vec![2.0, 0.0, 0.0];
        let r = lanczos_multi_deflated(&m, &[&d0, &d1], 10, 13).unwrap();
        assert!((r.ritz_values[0] - 1.0).abs() < 1e-9, "{:?}", r.ritz_values);
    }

    #[test]
    fn tiny_dimension_returns_none() {
        let m = SymMatrix::zeros(1);
        assert!(lanczos_deflated(&m, &[1.0], 5, 1).is_none());
    }

    #[test]
    fn zero_deflation_vector_is_tolerated() {
        let mut m = SymMatrix::zeros(3);
        m.set(0, 0, 2.0);
        m.set(1, 1, 3.0);
        m.set(2, 2, 4.0);
        let r = lanczos_deflated(&m, &[0.0; 3], 10, 5).unwrap();
        assert!((r.ritz_values[0] - 2.0).abs() < 1e-9);
    }
}
