//! Minimal dense symmetric-matrix support for the eigensolvers.

use std::fmt;

/// A dense symmetric `n × n` matrix stored row-major.
///
/// Only the operations the eigensolvers need are provided; this is an
/// internal numerical workhorse, not a general linear-algebra library.
///
/// # Examples
///
/// ```
/// use xheal_spectral::SymMatrix;
/// let mut m = SymMatrix::zeros(2);
/// m.set(0, 1, 3.0);
/// assert_eq!(m.get(1, 0), 3.0); // symmetry maintained
/// ```
#[derive(Clone, PartialEq)]
pub struct SymMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SymMatrix {
    /// Creates the `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        SymMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Dimension `n`.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of bounds");
        self.data[i * self.n + j]
    }

    /// Sets entries `(i, j)` and `(j, i)` to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.n && j < self.n, "index out of bounds");
        self.data[i * self.n + j] = v;
        self.data[j * self.n + i] = v;
    }

    /// Adds `v` to entries `(i, j)` and `(j, i)` (only once on the diagonal).
    pub fn add(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.n && j < self.n, "index out of bounds");
        self.data[i * self.n + j] += v;
        if i != j {
            self.data[j * self.n + i] += v;
        }
    }

    /// Matrix–vector product `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n` or `y.len() != n`.
    pub fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        for (i, out) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.n..(i + 1) * self.n];
            *out = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
    }

    /// Largest absolute off-diagonal entry (Jacobi convergence measure).
    pub fn max_offdiag(&self) -> f64 {
        let mut best = 0.0f64;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                best = best.max(self.get(i, j).abs());
            }
        }
        best
    }
}

impl fmt::Debug for SymMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "SymMatrix {}x{}", self.n, self.n)?;
        for i in 0..self.n.min(8) {
            let row: Vec<String> = (0..self.n.min(8))
                .map(|j| format!("{:8.3}", self.get(i, j)))
                .collect();
            writeln!(f, "  [{}]", row.join(", "))?;
        }
        if self.n > 8 {
            writeln!(f, "  ...")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_maintains_symmetry() {
        let mut m = SymMatrix::zeros(3);
        m.set(0, 2, 5.0);
        assert_eq!(m.get(2, 0), 5.0);
        assert_eq!(m.get(0, 2), 5.0);
        assert_eq!(m.dim(), 3);
    }

    #[test]
    fn add_on_diagonal_applies_once() {
        let mut m = SymMatrix::zeros(2);
        m.add(1, 1, 2.0);
        assert_eq!(m.get(1, 1), 2.0);
        m.add(0, 1, 3.0);
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn apply_matches_manual_product() {
        let mut m = SymMatrix::zeros(2);
        m.set(0, 0, 2.0);
        m.set(0, 1, 1.0);
        m.set(1, 1, 3.0);
        let mut y = vec![0.0; 2];
        m.apply(&[1.0, 2.0], &mut y);
        assert_eq!(y, vec![4.0, 7.0]);
    }

    #[test]
    fn max_offdiag_finds_largest() {
        let mut m = SymMatrix::zeros(3);
        m.set(0, 1, -4.0);
        m.set(1, 2, 2.0);
        assert_eq!(m.max_offdiag(), 4.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let m = SymMatrix::zeros(2);
        let _ = m.get(2, 0);
    }
}
