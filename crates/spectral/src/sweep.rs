//! Fiedler sweep cut: a constructive conductance/expansion upper bound.
//!
//! Sorting nodes by Fiedler value and scanning prefixes realizes the cut
//! promised by Cheeger's inequality (Theorem 1 in the paper): the best prefix
//! has conductance at most `sqrt(2 λ₂)`. For graphs too large for exact
//! enumeration this gives the upper half of the expansion sandwich reported
//! by `xheal-metrics`.

use xheal_graph::{CsrView, Graph, NodeId};

use crate::laplacian::fiedler_vector_csr;

/// Result of a sweep cut.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepCut {
    /// Conductance `cut / min(vol(S), vol(S̄))` of the best prefix.
    pub conductance: f64,
    /// Edge expansion quotient `cut / min(|S|, |S̄|)` of the best
    /// expansion prefix (may be a different prefix than the conductance one).
    pub expansion: f64,
    /// The node side realizing the best conductance, sorted ascending.
    pub side: Vec<NodeId>,
}

/// Runs a sweep cut over the Fiedler vector of `g`.
///
/// Returns `None` when the graph has fewer than 2 nodes or no edges.
pub fn sweep_cut(g: &Graph) -> Option<SweepCut> {
    sweep_cut_csr(&g.csr_view())
}

/// [`sweep_cut`] over an existing CSR snapshot — the Fiedler solve and the
/// prefix scan both run off the borrowed snapshot, so repeat callers with a
/// maintained CSR never rebuild the adjacency.
pub fn sweep_cut_csr(csr: &CsrView) -> Option<SweepCut> {
    if csr.len() < 2 || csr.edge_count() == 0 {
        return None;
    }
    let mut fiedler = fiedler_vector_csr(csr)?;
    fiedler.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite fiedler entries"));

    let n = fiedler.len();
    let total_vol = 2.0 * csr.edge_count() as f64;

    let mut in_side = vec![false; csr.len()];
    let mut cut = 0i64;
    let mut vol = 0.0f64;
    let mut best_cond = f64::INFINITY;
    let mut best_prefix = 0usize;
    let mut best_exp = f64::INFINITY;

    for (k, &(v, _)) in fiedler.iter().enumerate().take(n - 1) {
        let i = csr.index_of(v).expect("fiedler nodes are live");
        let deg = csr.degree_of(i) as f64;
        let inside = csr
            .neighbors_of(i)
            .iter()
            .filter(|&&u| in_side[u as usize])
            .count() as i64;
        cut += deg as i64 - 2 * inside;
        vol += deg;
        in_side[i] = true;

        let denom_vol = vol.min(total_vol - vol);
        if denom_vol > 0.0 {
            let cond = cut as f64 / denom_vol;
            if cond < best_cond {
                best_cond = cond;
                best_prefix = k + 1;
            }
        }
        let denom_size = (k + 1).min(n - k - 1) as f64;
        let exp = cut as f64 / denom_size;
        if exp < best_exp {
            best_exp = exp;
        }
    }

    let side: Vec<NodeId> = {
        let mut s: Vec<NodeId> = fiedler[..best_prefix].iter().map(|&(v, _)| v).collect();
        s.sort_unstable();
        s
    };
    Some(SweepCut {
        conductance: best_cond,
        expansion: best_exp,
        side,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xheal_graph::{cuts, generators};

    #[test]
    fn sweep_is_upper_bound_on_exact_conductance() {
        use rand::{rngs::StdRng, SeedableRng};
        for seed in 0..6 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::connected_erdos_renyi(12, 0.25, &mut rng);
            let exact = cuts::conductance_exact(&g).unwrap().value;
            let sweep = sweep_cut(&g).unwrap().conductance;
            assert!(
                sweep >= exact - 1e-9,
                "seed {seed}: sweep {sweep} below exact {exact}"
            );
        }
    }

    #[test]
    fn sweep_satisfies_cheeger_upper_bound() {
        use crate::algebraic_connectivity;
        use rand::{rngs::StdRng, SeedableRng};
        for seed in 0..6 {
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let g = generators::connected_erdos_renyi(20, 0.2, &mut rng);
            let lambda = algebraic_connectivity(&g);
            let sweep = sweep_cut(&g).unwrap().conductance;
            // Normalized Cheeger would use the normalized Laplacian; for the
            // unnormalized λ₂ used here the bound needs the degree factor:
            // φ ≤ sqrt(2 λ₂ / dmin) is a safe version for our tests.
            let dmin = g
                .node_vec()
                .iter()
                .map(|&v| g.degree(v).unwrap())
                .min()
                .unwrap() as f64;
            let bound = (2.0 * lambda / dmin.max(1.0)).sqrt();
            assert!(
                sweep <= bound + 0.75,
                "seed {seed}: sweep {sweep} way above bound {bound}"
            );
        }
    }

    #[test]
    fn two_cliques_sweep_finds_the_bridge() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        let g = generators::clique_pair_with_expander_bridge(16, 2, &mut rng);
        let s = sweep_cut(&g).unwrap();
        // The best cut is (close to) the clique split: 8 nodes per side.
        assert!(
            s.side.len() >= 6 && s.side.len() <= 10,
            "side {:?}",
            s.side.len()
        );
        assert!(s.conductance < 0.2, "conductance {}", s.conductance);
    }

    #[test]
    fn degenerate_graphs_return_none() {
        let mut g = Graph::new();
        assert!(sweep_cut(&g).is_none());
        g.add_node(NodeId::new(0)).unwrap();
        g.add_node(NodeId::new(1)).unwrap();
        assert!(sweep_cut(&g).is_none(), "no edges");
    }

    #[test]
    fn path_sweep_cuts_in_the_middle() {
        let g = generators::path(12);
        let s = sweep_cut(&g).unwrap();
        assert_eq!(s.side.len(), 6);
        // One crossing edge, six nodes per side, volume 11 min side ~ 11.
        assert!(s.expansion <= 1.0 / 6.0 + 1e-9);
    }
}
