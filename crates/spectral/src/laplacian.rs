//! Graph Laplacians and algebraic connectivity (the paper's λ(G)).
//!
//! Theorem 2(4) of the paper bounds λ(G_t), the second-smallest eigenvalue of
//! the Laplacian, and Corollary 1 ("if G'_t is a bounded-degree expander then
//! so is G_t") is stated through λ. This module computes λ₂ exactly (dense
//! Jacobi) for small graphs and via deflated Lanczos above that, plus the
//! Fiedler vector used by the sweep cut.

use xheal_graph::{CsrView, Graph, NodeId};

use crate::jacobi::jacobi_eigen;
use crate::lanczos::{lanczos_deflated, LinOp};
use crate::SymMatrix;

/// Node-count threshold below which the dense O(n³) Jacobi path is used.
pub const DENSE_CUTOFF: usize = 220;

/// Dense Laplacian of `g` over the sorted node order; returns the node order
/// alongside so eigenvector entries can be mapped back to nodes.
pub fn laplacian_dense(g: &Graph) -> (Vec<NodeId>, SymMatrix) {
    let csr = g.csr_view();
    let m = laplacian_dense_csr(&csr);
    (csr.nodes().to_vec(), m)
}

/// Dense Laplacian over an existing CSR snapshot (no per-call rebuild; row
/// `i` is dense node `i` of the view).
pub fn laplacian_dense_csr(csr: &CsrView) -> SymMatrix {
    let n = csr.len();
    let mut m = SymMatrix::zeros(n);
    for i in 0..n {
        m.set(i, i, csr.degree_of(i) as f64);
        for &j in csr.neighbors_of(i) {
            let j = j as usize;
            if i < j {
                m.set(i, j, -1.0);
            }
        }
    }
    m
}

/// Matrix-free Laplacian over a **borrowed** CSR snapshot: no owned copy of
/// the adjacency, so repeat callers (long-running monitors patching one CSR
/// incrementally) pay nothing per operator construction.
#[derive(Clone, Copy, Debug)]
pub struct CsrLaplacian<'a> {
    csr: &'a CsrView,
}

impl<'a> CsrLaplacian<'a> {
    /// Borrows `csr` as a Laplacian operator.
    pub fn new(csr: &'a CsrView) -> Self {
        CsrLaplacian { csr }
    }
}

impl LinOp for CsrLaplacian<'_> {
    fn dim(&self) -> usize {
        self.csr.len()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        for i in 0..self.csr.len() {
            let mut acc = self.csr.degree_of(i) as f64 * x[i];
            for &j in self.csr.neighbors_of(i) {
                acc -= x[j as usize];
            }
            y[i] = acc;
        }
    }
}

/// Matrix-free *normalized* Laplacian over a borrowed CSR snapshot. Only the
/// O(n) `D^{-1/2}` diagonal is owned; the adjacency stays borrowed.
#[derive(Clone, Debug)]
pub struct CsrNormalizedLaplacian<'a> {
    csr: &'a CsrView,
    inv_sqrt_deg: Vec<f64>,
}

impl<'a> CsrNormalizedLaplacian<'a> {
    /// Borrows `csr` as a normalized-Laplacian operator.
    pub fn new(csr: &'a CsrView) -> Self {
        let inv_sqrt_deg = (0..csr.len())
            .map(|i| {
                let d = csr.degree_of(i) as f64;
                if d > 0.0 {
                    1.0 / d.sqrt()
                } else {
                    0.0
                }
            })
            .collect();
        CsrNormalizedLaplacian { csr, inv_sqrt_deg }
    }

    /// The kernel direction `D^{1/2}·1` to deflate.
    pub fn kernel(&self) -> Vec<f64> {
        self.inv_sqrt_deg
            .iter()
            .map(|&s| if s > 0.0 { 1.0 / s } else { 0.0 })
            .collect()
    }
}

impl LinOp for CsrNormalizedLaplacian<'_> {
    fn dim(&self) -> usize {
        self.csr.len()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        for i in 0..self.csr.len() {
            if self.inv_sqrt_deg[i] == 0.0 {
                y[i] = 0.0;
                continue;
            }
            let mut acc = x[i];
            for &j in self.csr.neighbors_of(i) {
                let j = j as usize;
                acc -= self.inv_sqrt_deg[i] * self.inv_sqrt_deg[j] * x[j];
            }
            y[i] = acc;
        }
    }
}

/// Matrix-free Laplacian operator (CSR-style) for the Lanczos path.
#[derive(Clone, Debug)]
pub struct LaplacianOp {
    nodes: Vec<NodeId>,
    offsets: Vec<usize>,
    neighbors: Vec<usize>,
    degrees: Vec<f64>,
}

impl LaplacianOp {
    /// Builds the operator from a graph snapshot (one [`Graph::csr_view`]
    /// pass; no per-neighbor index searches).
    pub fn new(g: &Graph) -> Self {
        let csr = g.csr_view();
        let n = csr.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(2 * g.edge_count());
        let mut degrees = Vec::with_capacity(n);
        offsets.push(0);
        for i in 0..n {
            neighbors.extend(csr.neighbors_of(i).iter().map(|&j| j as usize));
            offsets.push(neighbors.len());
            degrees.push(csr.degree_of(i) as f64);
        }
        LaplacianOp {
            nodes: csr.nodes().to_vec(),
            offsets,
            neighbors,
            degrees,
        }
    }

    /// The node order backing the operator's coordinates.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }
}

impl LinOp for LaplacianOp {
    fn dim(&self) -> usize {
        self.nodes.len()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        for i in 0..self.nodes.len() {
            let mut acc = self.degrees[i] * x[i];
            for &j in &self.neighbors[self.offsets[i]..self.offsets[i + 1]] {
                acc -= x[j];
            }
            y[i] = acc;
        }
    }
}

/// Algebraic connectivity λ₂ of `g` (0 for graphs with fewer than 2 nodes or
/// disconnected graphs).
///
/// Uses exact dense Jacobi below [`DENSE_CUTOFF`] nodes and deflated Lanczos
/// above; values are clamped at 0 (tiny negative round-off is squashed).
///
/// # Examples
///
/// ```
/// use xheal_graph::generators;
/// use xheal_spectral::algebraic_connectivity;
/// // Complete graph K5 has λ₂ = 5.
/// let l = algebraic_connectivity(&generators::complete(5));
/// assert!((l - 5.0).abs() < 1e-9);
/// ```
pub fn algebraic_connectivity(g: &Graph) -> f64 {
    algebraic_connectivity_csr(&g.csr_view())
}

/// [`algebraic_connectivity`] over an existing CSR snapshot — repeat
/// callers with a maintained CSR skip the per-call rebuild.
pub fn algebraic_connectivity_csr(csr: &CsrView) -> f64 {
    let n = csr.len();
    if n < 2 {
        return 0.0;
    }
    if n <= DENSE_CUTOFF {
        let m = laplacian_dense_csr(csr);
        let eig = jacobi_eigen(&m);
        return eig.values[1].max(0.0);
    }
    let op = CsrLaplacian::new(csr);
    let ones = vec![1.0; n];
    let steps = 260.min(n - 1);
    match lanczos_deflated(&op, &ones, steps, 0x5EED) {
        Some(r) => r.ritz_values[0].max(0.0),
        None => 0.0,
    }
}

/// The Fiedler vector of `g` (eigenvector for λ₂) as `(node, value)` pairs.
///
/// Returns `None` for graphs with fewer than 2 nodes.
pub fn fiedler_vector(g: &Graph) -> Option<Vec<(NodeId, f64)>> {
    fiedler_vector_csr(&g.csr_view())
}

/// [`fiedler_vector`] over an existing CSR snapshot.
pub fn fiedler_vector_csr(csr: &CsrView) -> Option<Vec<(NodeId, f64)>> {
    let n = csr.len();
    if n < 2 {
        return None;
    }
    if n <= DENSE_CUTOFF {
        let m = laplacian_dense_csr(csr);
        let eig = jacobi_eigen(&m);
        let vec = &eig.vectors[1];
        return Some(
            csr.nodes()
                .iter()
                .copied()
                .zip(vec.iter().copied())
                .collect(),
        );
    }
    let op = CsrLaplacian::new(csr);
    let ones = vec![1.0; n];
    let steps = 260.min(n - 1);
    let r = lanczos_deflated(&op, &ones, steps, 0x5EED)?;
    Some(
        csr.nodes()
            .iter()
            .copied()
            .zip(r.smallest_vector.iter().copied())
            .collect(),
    )
}

/// Dense *normalized* Laplacian `I - D^{-1/2} A D^{-1/2}` of `g`.
///
/// This is the Laplacian convention under which the paper's Theorem 1
/// (Cheeger: `2φ ≥ λ > φ²/2`, citing Chung) holds; its kernel vector is
/// `D^{1/2}·1`. Isolated nodes contribute zero rows (extra 0 eigenvalues),
/// which is correct: such a graph is disconnected.
pub fn normalized_laplacian_dense(g: &Graph) -> (Vec<NodeId>, SymMatrix) {
    let csr = g.csr_view();
    let m = normalized_laplacian_dense_csr(&csr);
    (csr.nodes().to_vec(), m)
}

/// Dense normalized Laplacian over an existing CSR snapshot.
pub fn normalized_laplacian_dense_csr(csr: &CsrView) -> SymMatrix {
    let n = csr.len();
    let mut m = SymMatrix::zeros(n);
    for i in 0..n {
        let di = csr.degree_of(i);
        if di > 0 {
            m.set(i, i, 1.0);
        }
        for &j in csr.neighbors_of(i) {
            let j = j as usize;
            if i < j {
                let dj = csr.degree_of(j);
                m.set(i, j, -1.0 / ((di * dj) as f64).sqrt());
            }
        }
    }
    m
}

/// Matrix-free normalized Laplacian operator for the Lanczos path.
#[derive(Clone, Debug)]
pub struct NormalizedLaplacianOp {
    nodes: Vec<NodeId>,
    offsets: Vec<usize>,
    neighbors: Vec<usize>,
    inv_sqrt_deg: Vec<f64>,
}

impl NormalizedLaplacianOp {
    /// Builds the operator from a graph snapshot (one [`Graph::csr_view`]
    /// pass; no per-neighbor index searches).
    pub fn new(g: &Graph) -> Self {
        let csr = g.csr_view();
        let n = csr.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(2 * g.edge_count());
        let mut inv_sqrt_deg = Vec::with_capacity(n);
        offsets.push(0);
        for i in 0..n {
            neighbors.extend(csr.neighbors_of(i).iter().map(|&j| j as usize));
            offsets.push(neighbors.len());
            let d = csr.degree_of(i) as f64;
            inv_sqrt_deg.push(if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 });
        }
        NormalizedLaplacianOp {
            nodes: csr.nodes().to_vec(),
            offsets,
            neighbors,
            inv_sqrt_deg,
        }
    }

    /// The node order backing the operator's coordinates.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The kernel direction `D^{1/2}·1` to deflate.
    pub fn kernel(&self) -> Vec<f64> {
        self.inv_sqrt_deg
            .iter()
            .map(|&s| if s > 0.0 { 1.0 / s } else { 0.0 })
            .collect()
    }
}

impl LinOp for NormalizedLaplacianOp {
    fn dim(&self) -> usize {
        self.nodes.len()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        for i in 0..self.nodes.len() {
            if self.inv_sqrt_deg[i] == 0.0 {
                y[i] = 0.0;
                continue;
            }
            let mut acc = x[i];
            for &j in &self.neighbors[self.offsets[i]..self.offsets[i + 1]] {
                acc -= self.inv_sqrt_deg[i] * self.inv_sqrt_deg[j] * x[j];
            }
            y[i] = acc;
        }
    }
}

/// Second-smallest eigenvalue of the *normalized* Laplacian (the λ of the
/// paper's Cheeger inequality). 0 for disconnected or trivial graphs.
///
/// # Examples
///
/// ```
/// use xheal_graph::generators;
/// use xheal_spectral::normalized_algebraic_connectivity;
/// // K_n has normalized lambda_2 = n / (n - 1).
/// let l = normalized_algebraic_connectivity(&generators::complete(8));
/// assert!((l - 8.0 / 7.0).abs() < 1e-9);
/// ```
pub fn normalized_algebraic_connectivity(g: &Graph) -> f64 {
    normalized_algebraic_connectivity_csr(&g.csr_view())
}

/// [`normalized_algebraic_connectivity`] over an existing CSR snapshot.
pub fn normalized_algebraic_connectivity_csr(csr: &CsrView) -> f64 {
    let n = csr.len();
    if n < 2 || csr.edge_count() == 0 {
        return 0.0;
    }
    if n <= DENSE_CUTOFF {
        let m = normalized_laplacian_dense_csr(csr);
        let eig = jacobi_eigen(&m);
        return eig.values[1].max(0.0);
    }
    let op = CsrNormalizedLaplacian::new(csr);
    let kernel = op.kernel();
    let steps = 260.min(n - 1);
    match lanczos_deflated(&op, &kernel, steps, 0x5EED) {
        Some(r) => r.ritz_values[0].max(0.0),
        None => 0.0,
    }
}

/// Full Laplacian spectrum (ascending) — dense path only.
///
/// # Panics
///
/// Panics if the graph has more than [`DENSE_CUTOFF`] nodes.
pub fn laplacian_spectrum(g: &Graph) -> Vec<f64> {
    assert!(
        g.node_count() <= DENSE_CUTOFF,
        "full spectrum restricted to dense-size graphs"
    );
    let (_, m) = laplacian_dense(g);
    jacobi_eigen(&m).values
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;
    use xheal_graph::generators;

    #[test]
    fn complete_graph_lambda_is_n() {
        for n in [3usize, 5, 8] {
            let g = generators::complete(n);
            let l = algebraic_connectivity(&g);
            assert!((l - n as f64).abs() < 1e-8, "K{n}: {l}");
        }
    }

    #[test]
    fn star_lambda_is_one() {
        let g = generators::star(9);
        let l = algebraic_connectivity(&g);
        assert!((l - 1.0).abs() < 1e-8, "{l}");
    }

    #[test]
    fn path_lambda_matches_closed_form() {
        for n in [4usize, 9, 16] {
            let g = generators::path(n);
            let expect = 2.0 * (1.0 - (PI / n as f64).cos());
            let l = algebraic_connectivity(&g);
            assert!((l - expect).abs() < 1e-8, "P{n}: {l} vs {expect}");
        }
    }

    #[test]
    fn cycle_lambda_matches_closed_form() {
        for n in [4usize, 7, 12] {
            let g = generators::cycle(n);
            let expect = 2.0 * (1.0 - (2.0 * PI / n as f64).cos());
            let l = algebraic_connectivity(&g);
            assert!((l - expect).abs() < 1e-8, "C{n}: {l} vs {expect}");
        }
    }

    #[test]
    fn disconnected_graph_has_zero_lambda() {
        let mut g = generators::path(4);
        g.add_node(NodeId::new(50)).unwrap();
        assert!(algebraic_connectivity(&g) < 1e-10);
    }

    #[test]
    fn lanczos_path_agrees_with_jacobi() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        // Build a graph above nothing — force both paths on the same graph.
        let g = generators::random_regular(60, 4, &mut rng);
        let (_, m) = laplacian_dense(&g);
        let exact = jacobi_eigen(&m).values[1];
        let op = LaplacianOp::new(&g);
        let ones = vec![1.0; 60];
        let r = lanczos_deflated(&op, &ones, 59, 1).unwrap();
        assert!(
            (r.ritz_values[0] - exact).abs() < 1e-7,
            "lanczos {} vs jacobi {}",
            r.ritz_values[0],
            exact
        );
    }

    #[test]
    fn large_graph_uses_lanczos_and_is_positive_for_expander() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::random_regular(400, 6, &mut rng);
        let l = algebraic_connectivity(&g);
        // 6-regular random graphs are expanders: lambda2 comfortably > 0.5.
        assert!(l > 0.5, "lambda2 = {l}");
    }

    #[test]
    fn fiedler_vector_is_orthogonal_to_ones_and_nontrivial() {
        let g = generators::path(10);
        let f = fiedler_vector(&g).unwrap();
        let sum: f64 = f.iter().map(|(_, v)| v).sum();
        assert!(sum.abs() < 1e-8);
        let norm: f64 = f.iter().map(|(_, v)| v * v).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-6);
        // Path Fiedler vector is monotone along the path.
        let vals: Vec<f64> = f.iter().map(|&(_, v)| v).collect();
        let increasing = vals.windows(2).all(|w| w[0] <= w[1]);
        let decreasing = vals.windows(2).all(|w| w[0] >= w[1]);
        assert!(increasing || decreasing, "{vals:?}");
    }

    #[test]
    fn normalized_lambda_known_values() {
        // K_n: n/(n-1). Cycle C_n: 1 - cos(2 pi / n).
        let l = normalized_algebraic_connectivity(&generators::complete(5));
        assert!((l - 5.0 / 4.0).abs() < 1e-9, "{l}");
        let c = normalized_algebraic_connectivity(&generators::cycle(8));
        let expect = 1.0 - (2.0 * PI / 8.0).cos();
        assert!((c - expect).abs() < 1e-9, "{c} vs {expect}");
    }

    #[test]
    fn normalized_lambda_zero_for_disconnected() {
        let mut g = generators::complete(4);
        g.add_node(NodeId::new(50)).unwrap();
        assert!(normalized_algebraic_connectivity(&g) < 1e-10);
    }

    #[test]
    fn normalized_lanczos_agrees_with_dense() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(21);
        let g = generators::random_regular(80, 4, &mut rng);
        let (_, m) = normalized_laplacian_dense(&g);
        let exact = jacobi_eigen(&m).values[1];
        let op = NormalizedLaplacianOp::new(&g);
        let kernel = op.kernel();
        let r = lanczos_deflated(&op, &kernel, 79, 2).unwrap();
        assert!(
            (r.ritz_values[0] - exact).abs() < 1e-7,
            "lanczos {} vs dense {}",
            r.ritz_values[0],
            exact
        );
    }

    #[test]
    fn spectrum_of_k4() {
        let g = generators::complete(4);
        let s = laplacian_spectrum(&g);
        let expect = [0.0, 4.0, 4.0, 4.0];
        for (a, b) in s.iter().zip(expect) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
