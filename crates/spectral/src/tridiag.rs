//! Symmetric tridiagonal eigenvalues via the implicit QL method with shifts
//! (the classic EISPACK `tql1` recurrence), plus inverse iteration for a
//! single eigenvector. Used by the Lanczos driver.

/// Eigenvalues (ascending) of the symmetric tridiagonal matrix with diagonal
/// `d` and off-diagonal `e` (`e[i]` couples rows `i` and `i+1`;
/// `e.len() == d.len() - 1`, or both empty).
///
/// # Panics
///
/// Panics if the lengths are inconsistent or the iteration fails to converge
/// (30 iterations per eigenvalue, which in practice never triggers).
pub fn tridiagonal_eigenvalues(d: &[f64], e: &[f64]) -> Vec<f64> {
    let n = d.len();
    if n == 0 {
        return Vec::new();
    }
    assert_eq!(e.len(), n.saturating_sub(1), "off-diagonal length mismatch");
    let mut d = d.to_vec();
    // Working copy of off-diagonals, padded with trailing zero.
    let mut e: Vec<f64> = e.iter().copied().chain(std::iter::once(0.0)).collect();

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find small off-diagonal element to split at.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            assert!(iter <= 50, "tridiagonal QL failed to converge");

            // Form implicit shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            let sign_r = if g >= 0.0 { r.abs() } else { -r.abs() };
            g = d[m] - d[l] + e[l] / (g + sign_r);
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            let mut underflow = false;
            for i in (l..m).rev() {
                let f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    // Recover from underflow: deflate and retry.
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    d.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    d
}

/// One unit eigenvector of the tridiagonal `(d, e)` for eigenvalue `lambda`,
/// via two rounds of inverse iteration with a slightly perturbed shift.
pub fn tridiagonal_eigenvector(d: &[f64], e: &[f64], lambda: f64) -> Vec<f64> {
    let n = d.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![1.0];
    }
    assert_eq!(e.len(), n - 1, "off-diagonal length mismatch");
    // Shift slightly off the eigenvalue so the system is solvable.
    let scale = d.iter().map(|x| x.abs()).fold(1.0f64, f64::max);
    let shift = lambda + scale * 1e-12;

    let mut x = vec![1.0 / (n as f64).sqrt(); n];
    for _ in 0..3 {
        // Solve (T - shift I) y = x by the Thomas algorithm (with pivots
        // regularized away from zero).
        let mut diag: Vec<f64> = d.iter().map(|&v| v - shift).collect();
        let mut rhs = x.clone();
        for i in 0..n - 1 {
            if diag[i].abs() < 1e-300 {
                diag[i] = 1e-300;
            }
            let w = e[i] / diag[i];
            diag[i + 1] -= w * e[i];
            rhs[i + 1] -= w * rhs[i];
        }
        if diag[n - 1].abs() < 1e-300 {
            diag[n - 1] = 1e-300;
        }
        let mut y = vec![0.0; n];
        y[n - 1] = rhs[n - 1] / diag[n - 1];
        for i in (0..n - 1).rev() {
            y[i] = (rhs[i] - e[i] * y[i + 1]) / diag[i];
        }
        let norm = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        if !norm.is_finite() || norm == 0.0 {
            break;
        }
        for v in &mut y {
            *v /= norm;
        }
        x = y;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{jacobi_eigen, SymMatrix};

    #[test]
    fn empty_and_singleton() {
        assert!(tridiagonal_eigenvalues(&[], &[]).is_empty());
        assert_eq!(tridiagonal_eigenvalues(&[4.0], &[]), vec![4.0]);
    }

    #[test]
    fn matches_jacobi_on_random_tridiagonal() {
        let n = 16;
        let mut state = 99u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let d: Vec<f64> = (0..n).map(|_| next() * 3.0).collect();
        let e: Vec<f64> = (0..n - 1).map(|_| next()).collect();

        let mut m = SymMatrix::zeros(n);
        for (i, &di) in d.iter().enumerate() {
            m.set(i, i, di);
        }
        for (i, &ei) in e.iter().enumerate() {
            m.set(i, i + 1, ei);
        }
        let expect = jacobi_eigen(&m).values;
        let got = tridiagonal_eigenvalues(&d, &e);
        for (a, b) in expect.iter().zip(&got) {
            assert!((a - b).abs() < 1e-9, "expected {a}, got {b}");
        }
    }

    #[test]
    fn known_laplacian_of_path3() {
        // Path P3 Laplacian is tridiagonal diag [1,2,1], off-diag [-1,-1];
        // eigenvalues 0, 1, 3.
        let vals = tridiagonal_eigenvalues(&[1.0, 2.0, 1.0], &[-1.0, -1.0]);
        let expect = [0.0, 1.0, 3.0];
        for (a, b) in vals.iter().zip(expect) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn eigenvector_satisfies_definition() {
        let d = [1.0, 2.0, 1.0];
        let e = [-1.0, -1.0];
        for lambda in [0.0, 1.0, 3.0] {
            let v = tridiagonal_eigenvector(&d, &e, lambda);
            // Compute T v - lambda v.
            let n = 3;
            let mut r = vec![0.0; n];
            for i in 0..n {
                r[i] = d[i] * v[i] - lambda * v[i];
                if i > 0 {
                    r[i] += e[i - 1] * v[i - 1];
                }
                if i + 1 < n {
                    r[i] += e[i] * v[i + 1];
                }
            }
            let res: f64 = r.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!(res < 1e-6, "lambda={lambda} residual={res}");
        }
    }
}
