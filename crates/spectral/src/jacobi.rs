//! Cyclic Jacobi eigensolver for dense symmetric matrices.
//!
//! Exact (to machine precision), O(n³) per sweep; used for graphs up to a few
//! hundred nodes and as the ground truth the Lanczos path is tested against.

use crate::SymMatrix;

/// Eigendecomposition result: eigenvalues ascending, with matching
/// eigenvectors as rows of `vectors` (i.e. `vectors[k]` is the unit
/// eigenvector for `values[k]`).
#[derive(Clone, Debug)]
pub struct EigenDecomposition {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// `vectors[k][i]` is component `i` of the eigenvector for `values[k]`.
    pub vectors: Vec<Vec<f64>>,
}

/// Computes all eigenvalues (and eigenvectors) of a symmetric matrix with the
/// cyclic Jacobi method.
///
/// # Examples
///
/// ```
/// use xheal_spectral::{jacobi_eigen, SymMatrix};
/// let mut m = SymMatrix::zeros(2);
/// m.set(0, 0, 2.0);
/// m.set(1, 1, 2.0);
/// m.set(0, 1, 1.0);
/// let e = jacobi_eigen(&m);
/// assert!((e.values[0] - 1.0).abs() < 1e-12);
/// assert!((e.values[1] - 3.0).abs() < 1e-12);
/// ```
pub fn jacobi_eigen(m: &SymMatrix) -> EigenDecomposition {
    let n = m.dim();
    if n == 0 {
        return EigenDecomposition {
            values: Vec::new(),
            vectors: Vec::new(),
        };
    }
    let mut a = m.clone();
    // v holds the accumulated rotations: columns are eigenvectors.
    let mut v = vec![vec![0.0f64; n]; n];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }

    const MAX_SWEEPS: usize = 100;
    let tol = 1e-14 * (0..n).map(|i| a.get(i, i).abs()).fold(1.0f64, f64::max);

    for _ in 0..MAX_SWEEPS {
        if a.max_offdiag() <= tol.max(1e-300) {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a.get(p, q);
                if apq.abs() <= tol * 1e-2 {
                    continue;
                }
                let app = a.get(p, p);
                let aqq = a.get(q, q);
                // Rotation angle.
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply rotation to A from both sides.
                for k in 0..n {
                    if k != p && k != q {
                        let akp = a.get(k, p);
                        let akq = a.get(k, q);
                        a.set(k, p, c * akp - s * akq);
                        a.set(k, q, s * akp + c * akq);
                    }
                }
                let new_pp = c * c * app - 2.0 * s * c * apq + s * s * aqq;
                let new_qq = s * s * app + 2.0 * s * c * apq + c * c * aqq;
                a.set(p, p, new_pp);
                a.set(q, q, new_qq);
                a.set(p, q, 0.0);

                // Accumulate eigenvectors.
                for row in v.iter_mut() {
                    let vp = row[p];
                    let vq = row[q];
                    row[p] = c * vp - s * vq;
                    row[q] = s * vp + c * vq;
                }
            }
        }
    }

    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (a.get(i, i), i)).collect();
    pairs.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("finite eigenvalues"));

    let values: Vec<f64> = pairs.iter().map(|&(val, _)| val).collect();
    let vectors: Vec<Vec<f64>> = pairs
        .iter()
        .map(|&(_, col)| v.iter().map(|row| row[col]).collect())
        .collect();
    EigenDecomposition { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(m: &SymMatrix, val: f64, vec: &[f64]) -> f64 {
        let n = m.dim();
        let mut y = vec![0.0; n];
        m.apply(vec, &mut y);
        (0..n)
            .map(|i| (y[i] - val * vec[i]).powi(2))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn diagonal_matrix_eigenvalues_are_entries() {
        let mut m = SymMatrix::zeros(3);
        m.set(0, 0, 3.0);
        m.set(1, 1, -1.0);
        m.set(2, 2, 2.0);
        let e = jacobi_eigen(&m);
        assert_eq!(e.values, vec![-1.0, 2.0, 3.0]);
    }

    #[test]
    fn two_by_two_known_spectrum() {
        let mut m = SymMatrix::zeros(2);
        m.set(0, 0, 0.0);
        m.set(1, 1, 0.0);
        m.set(0, 1, 1.0);
        let e = jacobi_eigen(&m);
        assert!((e.values[0] + 1.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eigenpairs_satisfy_definition() {
        // Pseudo-random symmetric matrix.
        let n = 12;
        let mut m = SymMatrix::zeros(n);
        let mut state = 1234u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for i in 0..n {
            for j in i..n {
                m.set(i, j, next());
            }
        }
        let e = jacobi_eigen(&m);
        for k in 0..n {
            assert!(
                residual(&m, e.values[k], &e.vectors[k]) < 1e-9,
                "eigenpair {k} residual too large"
            );
        }
        // Trace equals sum of eigenvalues.
        let trace: f64 = (0..n).map(|i| m.get(i, i)).sum();
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-9);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let mut m = SymMatrix::zeros(4);
        for i in 0..4 {
            for j in i..4 {
                m.set(i, j, ((i + 1) * (j + 2)) as f64 % 5.0);
            }
        }
        let e = jacobi_eigen(&m);
        for a in 0..4 {
            for b in 0..4 {
                let dot: f64 = e.vectors[a]
                    .iter()
                    .zip(&e.vectors[b])
                    .map(|(x, y)| x * y)
                    .sum();
                let expect = if a == b { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-9, "({a},{b}) dot={dot}");
            }
        }
    }

    #[test]
    fn empty_matrix_is_fine() {
        let e = jacobi_eigen(&SymMatrix::zeros(0));
        assert!(e.values.is_empty());
    }
}
