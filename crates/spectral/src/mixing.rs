//! Random-walk mixing time estimation.
//!
//! The paper's Preliminaries motivate the Cheeger constant through mixing
//! time: "while the expander has logarithmic mixing time, the modified graph
//! [two bridged cliques] has polynomial mixing time". Experiment E9
//! regenerates that separation with this estimator.

use xheal_graph::{CsrView, Graph, NodeId};

/// Default total-variation threshold declaring the walk "mixed".
pub const DEFAULT_TV_THRESHOLD: f64 = 0.25;

/// Estimates the mixing time of the lazy random walk started at `start`:
/// the number of steps until the total-variation distance to the stationary
/// distribution (π(v) ∝ deg(v)) drops below `threshold`.
///
/// Returns `None` if the graph is empty, `start` is absent, the graph is
/// disconnected (the walk cannot mix), or `max_steps` is exhausted.
pub fn mixing_time_from(
    g: &Graph,
    start: NodeId,
    threshold: f64,
    max_steps: usize,
) -> Option<usize> {
    mixing_time_from_csr(&g.csr_view(), start, threshold, max_steps)
}

/// [`mixing_time_from`] over an existing CSR snapshot — repeat callers
/// (the worst-case sweep below, long-running monitors) reuse one snapshot
/// instead of rebuilding the adjacency per start node.
pub fn mixing_time_from_csr(
    csr: &CsrView,
    start: NodeId,
    threshold: f64,
    max_steps: usize,
) -> Option<usize> {
    if csr.edge_count() == 0 {
        return None;
    }
    let start = csr.index_of(start)?;
    let n = csr.len();
    let total_vol = 2.0 * csr.edge_count() as f64;
    let pi: Vec<f64> = (0..n)
        .map(|i| csr.degree_of(i) as f64 / total_vol)
        .collect();

    let mut p = vec![0.0f64; n];
    p[start] = 1.0;
    let mut next = vec![0.0f64; n];

    for step in 0..=max_steps {
        let tv: f64 = 0.5 * p.iter().zip(&pi).map(|(a, b)| (a - b).abs()).sum::<f64>();
        if tv <= threshold {
            return Some(step);
        }
        // Lazy walk: stay with probability 1/2, else move to uniform neighbor.
        next.iter_mut().for_each(|x| *x = 0.0);
        for (i, mass) in p.iter().copied().enumerate() {
            if mass == 0.0 {
                continue;
            }
            let deg = csr.degree_of(i);
            if deg == 0 {
                next[i] += mass;
                continue;
            }
            next[i] += 0.5 * mass;
            let share = 0.5 * mass / deg as f64;
            for &u in csr.neighbors_of(i) {
                next[u as usize] += share;
            }
        }
        std::mem::swap(&mut p, &mut next);
    }
    None
}

/// Worst-case mixing time over all start nodes.
///
/// Builds the CSR snapshot **once** and sweeps every start over it (the
/// seed implementation rebuilt the adjacency per start node — O(n) CSR
/// builds per call).
pub fn mixing_time(g: &Graph, threshold: f64, max_steps: usize) -> Option<usize> {
    mixing_time_csr(&g.csr_view(), threshold, max_steps)
}

/// [`mixing_time`] over an existing CSR snapshot.
pub fn mixing_time_csr(csr: &CsrView, threshold: f64, max_steps: usize) -> Option<usize> {
    let mut worst = 0usize;
    for &v in csr.nodes() {
        worst = worst.max(mixing_time_from_csr(csr, v, threshold, max_steps)?);
    }
    Some(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xheal_graph::generators;

    #[test]
    fn complete_graph_mixes_almost_instantly() {
        let g = generators::complete(10);
        let t = mixing_time(&g, DEFAULT_TV_THRESHOLD, 100).unwrap();
        assert!(t <= 4, "mixing time {t}");
    }

    #[test]
    fn path_mixes_slowly() {
        let fast = mixing_time(&generators::complete(16), 0.25, 10_000).unwrap();
        let slow = mixing_time(&generators::path(16), 0.25, 10_000).unwrap();
        assert!(slow > 4 * fast, "path {slow} vs complete {fast}");
    }

    #[test]
    fn disconnected_graph_never_mixes() {
        let mut g = generators::complete(4);
        g.add_node(NodeId::new(77)).unwrap();
        assert_eq!(mixing_time(&g, 0.25, 500), None);
    }

    #[test]
    fn missing_start_is_none() {
        let g = generators::complete(4);
        assert_eq!(mixing_time_from(&g, NodeId::new(99), 0.25, 10), None);
    }

    #[test]
    fn expander_beats_bridged_cliques() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        let expander = generators::random_regular(64, 6, &mut rng);
        let cliques = generators::clique_pair_with_expander_bridge(64, 2, &mut rng);
        let te = mixing_time(&expander, 0.25, 50_000).unwrap();
        let tc = mixing_time(&cliques, 0.25, 50_000).unwrap();
        assert!(
            tc > 2 * te,
            "bridged cliques should mix much slower: {tc} vs {te}"
        );
    }
}
