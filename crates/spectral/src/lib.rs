//! # xheal-spectral
//!
//! Spectral graph machinery for the Xheal reproduction: Laplacians, the
//! algebraic connectivity λ₂ that Theorem 2(4) of the paper bounds, Fiedler
//! sweep cuts (constructive Cheeger upper bounds), and random-walk mixing
//! times.
//!
//! Two eigensolvers are implemented from scratch and cross-validated:
//!
//! - [`jacobi_eigen`]: dense cyclic Jacobi — exact, O(n³), used below
//!   [`DENSE_CUTOFF`] nodes and as ground truth in tests;
//! - [`lanczos_deflated`]: matrix-free Lanczos with full reorthogonalization
//!   and deflation of the Laplacian's all-ones kernel, used for larger
//!   graphs.
//!
//! # Examples
//!
//! ```
//! use xheal_graph::generators;
//! use xheal_spectral::{algebraic_connectivity, sweep_cut};
//!
//! let g = generators::cycle(24);
//! let lambda = algebraic_connectivity(&g);
//! assert!(lambda > 0.0); // connected
//! let cut = sweep_cut(&g).expect("non-degenerate graph");
//! // Cheeger: the sweep conductance is sandwiched by lambda.
//! assert!(cut.conductance >= lambda / 2.0 - 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dense;
mod jacobi;
mod lanczos;
mod laplacian;
mod mixing;
mod sweep;
mod tridiag;

pub use dense::SymMatrix;
pub use jacobi::{jacobi_eigen, EigenDecomposition};
pub use lanczos::{
    lanczos_deflated, lanczos_deflated_from, lanczos_multi_deflated, lanczos_multi_deflated_from,
    LanczosResult, LinOp,
};
pub use laplacian::{
    algebraic_connectivity, algebraic_connectivity_csr, fiedler_vector, fiedler_vector_csr,
    laplacian_dense, laplacian_dense_csr, laplacian_spectrum, normalized_algebraic_connectivity,
    normalized_algebraic_connectivity_csr, normalized_laplacian_dense,
    normalized_laplacian_dense_csr, CsrLaplacian, CsrNormalizedLaplacian, LaplacianOp,
    NormalizedLaplacianOp, DENSE_CUTOFF,
};
pub use mixing::{
    mixing_time, mixing_time_csr, mixing_time_from, mixing_time_from_csr, DEFAULT_TV_THRESHOLD,
};
pub use sweep::{sweep_cut, sweep_cut_csr, SweepCut};
pub use tridiag::{tridiagonal_eigenvalues, tridiagonal_eigenvector};
