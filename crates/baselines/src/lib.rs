//! # xheal-baselines
//!
//! Baseline self-healing strategies the paper's Related Work section compares
//! Xheal against, all implementing the unified [`xheal_core::HealingEngine`]
//! API (and the older [`xheal_core::Healer`] trait), so every workload,
//! bench, and cross-validation driver accepts them interchangeably with
//! Xheal:
//!
//! - [`NoHeal`]: deletion removes the node and nothing else (the network may
//!   disconnect — this is the "do nothing" control);
//! - [`CycleHeal`]: connect the deleted node's ex-neighbors in a cycle
//!   (constant degree increase, linear worst-case stretch and `O(1/n)`
//!   expansion on the star attack);
//! - [`StarHeal`]: attach all ex-neighbors to one survivor (best stretch,
//!   unbounded degree increase — the paper's star-topology cautionary tale in
//!   reverse);
//! - [`BinaryTreeHeal`]: replace the deleted node with a balanced binary tree
//!   of its ex-neighbors — the real-node simplification of *Forgiving Tree*
//!   [PODC 2008];
//! - [`ForgivingLike`]: the same tree patch but ordered by current degree
//!   (low-degree nodes near the root), approximating *Forgiving Graph*
//!   [PODC 2009]'s degree-balancing. See DESIGN.md §6 for why these
//!   simplifications preserve the comparison the paper makes (tree-shaped
//!   patches produce poor cuts regardless of virtual-node bookkeeping).
//!
//! # Examples
//!
//! ```
//! use xheal_baselines::CycleHeal;
//! use xheal_core::Healer;
//! use xheal_graph::{components, generators, NodeId};
//!
//! let mut h = CycleHeal::new(&generators::star(10));
//! h.on_delete(NodeId::new(0))?; // hub dies
//! assert!(components::is_connected(h.graph()));
//! # Ok::<(), xheal_core::HealError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use xheal_core::{
    BatchReport, BatchVictim, DeletionReport, Event, HealCase, HealError, Healer, HealingEngine,
    Outcome, SinkRegistry, TopologyDelta, TopologySink,
};
use xheal_graph::{Graph, NodeId};

/// Shared adversary-event plumbing for the baselines.
#[derive(Clone, Debug)]
struct BaseState {
    graph: Graph,
    /// Topology-delta subscribers (cloning a baseline drops them).
    sinks: SinkRegistry,
    /// Patch edges added by the repair currently executing.
    op_edges_added: usize,
}

impl BaseState {
    fn new(initial: &Graph) -> Self {
        BaseState {
            graph: initial.clone(),
            sinks: SinkRegistry::default(),
            op_edges_added: 0,
        }
    }

    fn insert(&mut self, v: NodeId, neighbors: &[NodeId]) -> Result<(), HealError> {
        if self.graph.contains_node(v) {
            return Err(HealError::NodeExists(v));
        }
        for &u in neighbors {
            if !self.graph.contains_node(u) {
                return Err(HealError::NeighborMissing(u));
            }
        }
        self.graph.add_node(v).expect("fresh");
        if !self.sinks.is_empty() {
            self.sinks.emit(TopologyDelta::NodeAdded(v));
        }
        for &u in neighbors {
            if u != v {
                let created = self.graph.add_black_edge(v, u).unwrap_or(false);
                if created && !self.sinks.is_empty() {
                    self.sinks.emit(TopologyDelta::EdgeAdded {
                        a: v,
                        b: u,
                        color: None,
                    });
                }
            }
        }
        Ok(())
    }

    /// Removes `v`, returning its ex-neighbors sorted ascending, and resets
    /// the per-repair patch-edge counter.
    fn delete(&mut self, v: NodeId) -> Result<Vec<NodeId>, HealError> {
        if !self.graph.contains_node(v) {
            return Err(HealError::NodeMissing(v));
        }
        let incident = self.graph.remove_node(v).expect("checked");
        if !self.sinks.is_empty() {
            self.sinks.emit(TopologyDelta::NodeRemoved(v));
        }
        self.op_edges_added = 0;
        Ok(incident.into_iter().map(|(u, _)| u).collect())
    }

    /// Adds one black repair edge, counting and streaming it. Duplicate
    /// edges are tolerated (and neither counted nor emitted).
    fn patch_edge(&mut self, u: NodeId, v: NodeId) {
        if u == v {
            return;
        }
        let created = self.graph.add_black_edge(u, v).unwrap_or(false);
        if created {
            self.op_edges_added += 1;
            if !self.sinks.is_empty() {
                self.sinks.emit(TopologyDelta::EdgeAdded {
                    a: u,
                    b: v,
                    color: None,
                });
            }
        }
    }

    /// The [`DeletionReport`] of the repair that just ran. Baseline edges
    /// are all black, so a deletion is the model's all-black Case 1
    /// (degree ≤ 1 victims are simply dropped, as in Xheal).
    fn deletion_report(&self, degree: usize) -> DeletionReport {
        DeletionReport {
            case: if degree <= 1 {
                HealCase::Dropped
            } else {
                HealCase::AllBlack
            },
            edges_added: self.op_edges_added,
            edges_removed: 0,
            combined: false,
            shares: 0,
            black_degree: degree,
            degree,
        }
    }
}

macro_rules! baseline_common {
    ($ty:ident, $name:literal) => {
        impl $ty {
            /// Wraps an initial network.
            pub fn new(initial: &Graph) -> Self {
                $ty {
                    base: BaseState::new(initial),
                }
            }

            /// Human-readable strategy name (used in experiment tables).
            pub fn name(&self) -> &'static str {
                $name
            }

            /// The current healed network graph `G_t`.
            pub fn graph(&self) -> &Graph {
                &self.base.graph
            }

            /// Deletes `v` and runs this strategy's patch, reporting the
            /// repair like any other engine.
            fn heal_one(&mut self, v: NodeId) -> Result<DeletionReport, HealError> {
                let nbrs = self.base.delete(v)?;
                self.patch(&nbrs);
                Ok(self.base.deletion_report(nbrs.len()))
            }
        }

        impl Healer for $ty {
            fn name(&self) -> &'static str {
                $name
            }

            fn graph(&self) -> &Graph {
                &self.base.graph
            }

            fn on_insert(&mut self, v: NodeId, neighbors: &[NodeId]) -> Result<(), HealError> {
                self.base.insert(v, neighbors)
            }

            fn on_delete(&mut self, v: NodeId) -> Result<(), HealError> {
                self.heal_one(v).map(|_| ())
            }
        }

        impl HealingEngine for $ty {
            fn name(&self) -> &'static str {
                $name
            }

            fn graph(&self) -> &Graph {
                &self.base.graph
            }

            fn apply(&mut self, event: &Event) -> Result<Outcome, HealError> {
                match event {
                    Event::Insert { node, neighbors } => {
                        self.base.insert(*node, neighbors)?;
                        Ok(Outcome::Inserted { cost: None })
                    }
                    Event::Delete { node } => Ok(Outcome::Healed {
                        report: self.heal_one(*node)?,
                        cost: None,
                    }),
                    // Baselines have no simultaneous-deletion repair: the
                    // batch is healed victim-by-victim (the sequential
                    // approximation of `Healer::on_delete_batch`), with each
                    // victim its own "component".
                    Event::DeleteBatch { nodes } => {
                        BatchVictim::validate(&self.base.graph, nodes)?;
                        let mut edges_added = 0;
                        for &v in nodes.iter() {
                            edges_added += self.heal_one(v)?.edges_added;
                        }
                        Ok(Outcome::Batch {
                            report: BatchReport {
                                victims: nodes.len(),
                                components: nodes.len(),
                                secondaries_built: 0,
                                combines: 0,
                                edges_added,
                                edges_removed: 0,
                            },
                            cost: None,
                        })
                    }
                }
            }

            fn subscribe(&mut self, sink: Box<dyn TopologySink>) {
                self.base.sinks.register(sink);
            }
        }
    };
}

/// The "do nothing" control: deletions are not repaired at all.
#[derive(Clone, Debug)]
pub struct NoHeal {
    base: BaseState,
}

impl NoHeal {
    fn patch(&mut self, _nbrs: &[NodeId]) {}
}

baseline_common!(NoHeal, "no-heal");

/// Repairs by connecting the ex-neighbors in a cycle (+2 degree max).
#[derive(Clone, Debug)]
pub struct CycleHeal {
    base: BaseState,
}

impl CycleHeal {
    fn patch(&mut self, nbrs: &[NodeId]) {
        if nbrs.len() < 2 {
            return;
        }
        if nbrs.len() == 2 {
            self.base.patch_edge(nbrs[0], nbrs[1]);
            return;
        }
        for i in 0..nbrs.len() {
            let a = nbrs[i];
            let b = nbrs[(i + 1) % nbrs.len()];
            self.base.patch_edge(a, b);
        }
    }
}

baseline_common!(CycleHeal, "cycle-heal");

/// Repairs by attaching every ex-neighbor to the smallest-id survivor.
#[derive(Clone, Debug)]
pub struct StarHeal {
    base: BaseState,
}

impl StarHeal {
    fn patch(&mut self, nbrs: &[NodeId]) {
        if nbrs.len() < 2 {
            return;
        }
        let hub = nbrs[0];
        for &u in &nbrs[1..] {
            self.base.patch_edge(hub, u);
        }
    }
}

baseline_common!(StarHeal, "star-heal");

fn tree_patch(base: &mut BaseState, ordered: &[NodeId]) {
    // Heap-indexed balanced binary tree: node i links to children 2i+1, 2i+2.
    for i in 0..ordered.len() {
        for c in [2 * i + 1, 2 * i + 2] {
            if c < ordered.len() {
                base.patch_edge(ordered[i], ordered[c]);
            }
        }
    }
}

/// Repairs with a balanced binary tree over the ex-neighbors in id order —
/// the real-node simplification of Forgiving Tree [PODC 2008].
#[derive(Clone, Debug)]
pub struct BinaryTreeHeal {
    base: BaseState,
}

impl BinaryTreeHeal {
    fn patch(&mut self, nbrs: &[NodeId]) {
        if nbrs.len() < 2 {
            return;
        }
        tree_patch(&mut self.base, nbrs);
    }
}

baseline_common!(BinaryTreeHeal, "binary-tree-heal");

/// Repairs with a balanced binary tree ordered by current degree (lowest
/// degree closest to the root), approximating Forgiving Graph [PODC 2009]'s
/// degree balancing.
#[derive(Clone, Debug)]
pub struct ForgivingLike {
    base: BaseState,
}

impl ForgivingLike {
    fn patch(&mut self, nbrs: &[NodeId]) {
        if nbrs.len() < 2 {
            return;
        }
        let mut ordered: Vec<NodeId> = nbrs.to_vec();
        ordered.sort_by_key(|&v| (self.base.graph.degree(v).unwrap_or(0), v));
        tree_patch(&mut self.base, &ordered);
    }
}

baseline_common!(ForgivingLike, "forgiving-like");

/// All baseline constructors boxed behind the [`Healer`] trait, for
/// experiment sweeps.
pub fn all_baselines(initial: &Graph) -> Vec<Box<dyn Healer>> {
    vec![
        Box::new(NoHeal::new(initial)),
        Box::new(CycleHeal::new(initial)),
        Box::new(StarHeal::new(initial)),
        Box::new(BinaryTreeHeal::new(initial)),
        Box::new(ForgivingLike::new(initial)),
    ]
}

/// All baseline constructors boxed behind the unified [`HealingEngine`]
/// trait, for event-driven experiment sweeps.
pub fn all_engines(initial: &Graph) -> Vec<Box<dyn HealingEngine>> {
    vec![
        Box::new(NoHeal::new(initial)),
        Box::new(CycleHeal::new(initial)),
        Box::new(StarHeal::new(initial)),
        Box::new(BinaryTreeHeal::new(initial)),
        Box::new(ForgivingLike::new(initial)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use xheal_graph::{components, generators, traversal};

    fn n(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    #[test]
    fn noheal_disconnects_on_star_center() {
        let mut h = NoHeal::new(&generators::star(6));
        h.on_delete(n(0)).unwrap();
        assert!(!components::is_connected(h.graph()));
        assert_eq!(h.graph().edge_count(), 0);
    }

    #[test]
    fn cycle_heal_reconnects_star() {
        let mut h = CycleHeal::new(&generators::star(6));
        h.on_delete(n(0)).unwrap();
        assert!(components::is_connected(h.graph()));
        // Every ex-leaf has degree exactly 2.
        for i in 1..6 {
            assert_eq!(h.graph().degree(n(i)), Some(2));
        }
    }

    #[test]
    fn cycle_heal_two_neighbors_single_edge() {
        let mut h = CycleHeal::new(&generators::path(3));
        h.on_delete(n(1)).unwrap();
        assert!(h.graph().has_edge(n(0), n(2)));
        assert_eq!(h.graph().edge_count(), 1);
    }

    #[test]
    fn star_heal_concentrates_degree() {
        let mut h = StarHeal::new(&generators::star(8));
        h.on_delete(n(0)).unwrap();
        assert!(components::is_connected(h.graph()));
        assert_eq!(h.graph().degree(n(1)), Some(6), "hub absorbs everyone");
        assert_eq!(traversal::diameter(h.graph()), Some(2));
    }

    #[test]
    fn binary_tree_heal_logarithmic_diameter() {
        let mut h = BinaryTreeHeal::new(&generators::star(64));
        h.on_delete(n(0)).unwrap();
        assert!(components::is_connected(h.graph()));
        let diam = traversal::diameter(h.graph()).unwrap();
        assert!(diam <= 12, "diameter {diam} not logarithmic");
        // Max degree 3 (parent + two children).
        let max_deg = h
            .graph()
            .node_vec()
            .iter()
            .map(|&v| h.graph().degree(v).unwrap())
            .max();
        assert_eq!(max_deg, Some(3));
    }

    #[test]
    fn forgiving_like_puts_low_degree_at_root() {
        let mut g = generators::star(6);
        // Give node 5 extra degree so it sinks to the leaves.
        g.add_node(n(50)).unwrap();
        g.add_node(n(51)).unwrap();
        g.add_black_edge(n(5), n(50)).unwrap();
        g.add_black_edge(n(5), n(51)).unwrap();
        let mut h = ForgivingLike::new(&g);
        h.on_delete(n(0)).unwrap();
        assert!(components::is_connected(h.graph()));
        // Node 5 (pre-patch degree 3) must be a leaf of the patch: at most
        // one patch edge added to it.
        assert!(h.graph().degree(n(5)).unwrap() <= 3 + 1);
    }

    #[test]
    fn insert_semantics_shared() {
        for mut h in all_baselines(&generators::cycle(4)) {
            h.on_insert(n(100), &[n(0), n(2)]).unwrap();
            assert_eq!(h.graph().degree(n(100)), Some(2), "{}", h.name());
            assert!(h.on_insert(n(100), &[]).is_err());
            assert!(h.on_delete(n(999)).is_err());
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<&str> = all_baselines(&generators::cycle(4))
            .iter()
            .map(|h| h.name())
            .collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(names.len(), 5);
        assert_eq!(dedup.len(), 5);
    }

    #[test]
    fn engines_apply_and_report_outcomes() {
        use xheal_core::Event;
        for mut h in all_engines(&generators::star(8)) {
            let name = h.name();
            let out = h
                .apply(&Event::Delete {
                    node: NodeId::new(0),
                })
                .unwrap();
            let xheal_core::Outcome::Healed { report, cost: None } = &out else {
                panic!("{name}: expected Healed outcome, got {out:?}");
            };
            assert_eq!(report.degree, 7, "{name}");
            assert_eq!(report.black_degree, 7, "{name}");
            assert_eq!(out.edges_added(), report.edges_added, "{name}");
            if name != "no-heal" {
                assert!(report.edges_added > 0, "{name} patched nothing");
                assert!(components::is_connected(h.graph()), "{name}");
            }
            // Batch = sequential approximation, one component per victim.
            let out = h
                .apply(&Event::DeleteBatch {
                    nodes: vec![NodeId::new(1), NodeId::new(2)],
                })
                .unwrap();
            let xheal_core::Outcome::Batch { report, .. } = &out else {
                panic!("{name}: expected Batch outcome");
            };
            assert_eq!((report.victims, report.components), (2, 2), "{name}");
            // Invalid events are rejected without mutation.
            let nodes_before = h.graph().node_count();
            assert!(h
                .apply(&Event::DeleteBatch {
                    nodes: vec![NodeId::new(3), NodeId::new(3)],
                })
                .is_err());
            assert!(h
                .apply(&Event::Delete {
                    node: NodeId::new(999),
                })
                .is_err());
            assert_eq!(h.graph().node_count(), nodes_before, "{name}");
        }
    }

    #[test]
    fn baseline_deltas_feed_a_mirror() {
        use std::cell::RefCell;
        use std::rc::Rc;
        use xheal_core::{DeltaMirror, Event};

        let g0 = generators::star(10);
        for mut h in all_engines(&g0) {
            let mirror = Rc::new(RefCell::new(DeltaMirror::new(&g0)));
            h.subscribe(Box::new(Rc::clone(&mirror)));
            let events = [
                Event::Delete {
                    node: NodeId::new(0),
                },
                Event::Insert {
                    node: NodeId::new(77),
                    neighbors: vec![NodeId::new(1), NodeId::new(2)],
                },
                Event::DeleteBatch {
                    nodes: vec![NodeId::new(2), NodeId::new(5)],
                },
            ];
            for e in &events {
                h.apply(e).unwrap();
                assert_eq!(
                    h.graph(),
                    mirror.borrow().graph(),
                    "{} diverged from its mirror on {e:?}",
                    HealingEngine::name(h.as_ref())
                );
            }
        }
    }
}
