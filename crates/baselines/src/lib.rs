//! # xheal-baselines
//!
//! Baseline self-healing strategies the paper's Related Work section compares
//! Xheal against, all implementing [`xheal_core::Healer`]:
//!
//! - [`NoHeal`]: deletion removes the node and nothing else (the network may
//!   disconnect — this is the "do nothing" control);
//! - [`CycleHeal`]: connect the deleted node's ex-neighbors in a cycle
//!   (constant degree increase, linear worst-case stretch and `O(1/n)`
//!   expansion on the star attack);
//! - [`StarHeal`]: attach all ex-neighbors to one survivor (best stretch,
//!   unbounded degree increase — the paper's star-topology cautionary tale in
//!   reverse);
//! - [`BinaryTreeHeal`]: replace the deleted node with a balanced binary tree
//!   of its ex-neighbors — the real-node simplification of *Forgiving Tree*
//!   [PODC 2008];
//! - [`ForgivingLike`]: the same tree patch but ordered by current degree
//!   (low-degree nodes near the root), approximating *Forgiving Graph*
//!   [PODC 2009]'s degree-balancing. See DESIGN.md §6 for why these
//!   simplifications preserve the comparison the paper makes (tree-shaped
//!   patches produce poor cuts regardless of virtual-node bookkeeping).
//!
//! # Examples
//!
//! ```
//! use xheal_baselines::CycleHeal;
//! use xheal_core::Healer;
//! use xheal_graph::{components, generators, NodeId};
//!
//! let mut h = CycleHeal::new(&generators::star(10));
//! h.on_delete(NodeId::new(0))?; // hub dies
//! assert!(components::is_connected(h.graph()));
//! # Ok::<(), xheal_core::HealError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use xheal_core::{HealError, Healer};
use xheal_graph::{Graph, NodeId};

/// Shared adversary-event plumbing for the baselines.
#[derive(Clone, Debug)]
struct BaseState {
    graph: Graph,
}

impl BaseState {
    fn new(initial: &Graph) -> Self {
        BaseState {
            graph: initial.clone(),
        }
    }

    fn insert(&mut self, v: NodeId, neighbors: &[NodeId]) -> Result<(), HealError> {
        if self.graph.contains_node(v) {
            return Err(HealError::NodeExists(v));
        }
        for &u in neighbors {
            if !self.graph.contains_node(u) {
                return Err(HealError::NeighborMissing(u));
            }
        }
        self.graph.add_node(v).expect("fresh");
        for &u in neighbors {
            if u != v {
                let _ = self.graph.add_black_edge(v, u);
            }
        }
        Ok(())
    }

    /// Removes `v`, returning its ex-neighbors sorted ascending.
    fn delete(&mut self, v: NodeId) -> Result<Vec<NodeId>, HealError> {
        if !self.graph.contains_node(v) {
            return Err(HealError::NodeMissing(v));
        }
        let incident = self.graph.remove_node(v).expect("checked");
        Ok(incident.into_iter().map(|(u, _)| u).collect())
    }
}

macro_rules! baseline_common {
    ($ty:ident, $name:literal) => {
        impl $ty {
            /// Wraps an initial network.
            pub fn new(initial: &Graph) -> Self {
                $ty {
                    base: BaseState::new(initial),
                }
            }
        }

        impl Healer for $ty {
            fn name(&self) -> &'static str {
                $name
            }

            fn graph(&self) -> &Graph {
                &self.base.graph
            }

            fn on_insert(&mut self, v: NodeId, neighbors: &[NodeId]) -> Result<(), HealError> {
                self.base.insert(v, neighbors)
            }

            fn on_delete(&mut self, v: NodeId) -> Result<(), HealError> {
                let nbrs = self.base.delete(v)?;
                self.patch(&nbrs);
                Ok(())
            }
        }
    };
}

/// The "do nothing" control: deletions are not repaired at all.
#[derive(Clone, Debug)]
pub struct NoHeal {
    base: BaseState,
}

impl NoHeal {
    fn patch(&mut self, _nbrs: &[NodeId]) {}
}

baseline_common!(NoHeal, "no-heal");

/// Repairs by connecting the ex-neighbors in a cycle (+2 degree max).
#[derive(Clone, Debug)]
pub struct CycleHeal {
    base: BaseState,
}

impl CycleHeal {
    fn patch(&mut self, nbrs: &[NodeId]) {
        if nbrs.len() < 2 {
            return;
        }
        if nbrs.len() == 2 {
            let _ = self.base.graph.add_black_edge(nbrs[0], nbrs[1]);
            return;
        }
        for i in 0..nbrs.len() {
            let a = nbrs[i];
            let b = nbrs[(i + 1) % nbrs.len()];
            let _ = self.base.graph.add_black_edge(a, b);
        }
    }
}

baseline_common!(CycleHeal, "cycle-heal");

/// Repairs by attaching every ex-neighbor to the smallest-id survivor.
#[derive(Clone, Debug)]
pub struct StarHeal {
    base: BaseState,
}

impl StarHeal {
    fn patch(&mut self, nbrs: &[NodeId]) {
        if nbrs.len() < 2 {
            return;
        }
        let hub = nbrs[0];
        for &u in &nbrs[1..] {
            let _ = self.base.graph.add_black_edge(hub, u);
        }
    }
}

baseline_common!(StarHeal, "star-heal");

fn tree_patch(graph: &mut Graph, ordered: &[NodeId]) {
    // Heap-indexed balanced binary tree: node i links to children 2i+1, 2i+2.
    for i in 0..ordered.len() {
        for c in [2 * i + 1, 2 * i + 2] {
            if c < ordered.len() && ordered[i] != ordered[c] {
                let _ = graph.add_black_edge(ordered[i], ordered[c]);
            }
        }
    }
}

/// Repairs with a balanced binary tree over the ex-neighbors in id order —
/// the real-node simplification of Forgiving Tree [PODC 2008].
#[derive(Clone, Debug)]
pub struct BinaryTreeHeal {
    base: BaseState,
}

impl BinaryTreeHeal {
    fn patch(&mut self, nbrs: &[NodeId]) {
        if nbrs.len() < 2 {
            return;
        }
        tree_patch(&mut self.base.graph, nbrs);
    }
}

baseline_common!(BinaryTreeHeal, "binary-tree-heal");

/// Repairs with a balanced binary tree ordered by current degree (lowest
/// degree closest to the root), approximating Forgiving Graph [PODC 2009]'s
/// degree balancing.
#[derive(Clone, Debug)]
pub struct ForgivingLike {
    base: BaseState,
}

impl ForgivingLike {
    fn patch(&mut self, nbrs: &[NodeId]) {
        if nbrs.len() < 2 {
            return;
        }
        let mut ordered: Vec<NodeId> = nbrs.to_vec();
        ordered.sort_by_key(|&v| (self.base.graph.degree(v).unwrap_or(0), v));
        tree_patch(&mut self.base.graph, &ordered);
    }
}

baseline_common!(ForgivingLike, "forgiving-like");

/// All baseline constructors boxed behind the [`Healer`] trait, for
/// experiment sweeps.
pub fn all_baselines(initial: &Graph) -> Vec<Box<dyn Healer>> {
    vec![
        Box::new(NoHeal::new(initial)),
        Box::new(CycleHeal::new(initial)),
        Box::new(StarHeal::new(initial)),
        Box::new(BinaryTreeHeal::new(initial)),
        Box::new(ForgivingLike::new(initial)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use xheal_graph::{components, generators, traversal};

    fn n(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    #[test]
    fn noheal_disconnects_on_star_center() {
        let mut h = NoHeal::new(&generators::star(6));
        h.on_delete(n(0)).unwrap();
        assert!(!components::is_connected(h.graph()));
        assert_eq!(h.graph().edge_count(), 0);
    }

    #[test]
    fn cycle_heal_reconnects_star() {
        let mut h = CycleHeal::new(&generators::star(6));
        h.on_delete(n(0)).unwrap();
        assert!(components::is_connected(h.graph()));
        // Every ex-leaf has degree exactly 2.
        for i in 1..6 {
            assert_eq!(h.graph().degree(n(i)), Some(2));
        }
    }

    #[test]
    fn cycle_heal_two_neighbors_single_edge() {
        let mut h = CycleHeal::new(&generators::path(3));
        h.on_delete(n(1)).unwrap();
        assert!(h.graph().has_edge(n(0), n(2)));
        assert_eq!(h.graph().edge_count(), 1);
    }

    #[test]
    fn star_heal_concentrates_degree() {
        let mut h = StarHeal::new(&generators::star(8));
        h.on_delete(n(0)).unwrap();
        assert!(components::is_connected(h.graph()));
        assert_eq!(h.graph().degree(n(1)), Some(6), "hub absorbs everyone");
        assert_eq!(traversal::diameter(h.graph()), Some(2));
    }

    #[test]
    fn binary_tree_heal_logarithmic_diameter() {
        let mut h = BinaryTreeHeal::new(&generators::star(64));
        h.on_delete(n(0)).unwrap();
        assert!(components::is_connected(h.graph()));
        let diam = traversal::diameter(h.graph()).unwrap();
        assert!(diam <= 12, "diameter {diam} not logarithmic");
        // Max degree 3 (parent + two children).
        let max_deg = h
            .graph()
            .node_vec()
            .iter()
            .map(|&v| h.graph().degree(v).unwrap())
            .max();
        assert_eq!(max_deg, Some(3));
    }

    #[test]
    fn forgiving_like_puts_low_degree_at_root() {
        let mut g = generators::star(6);
        // Give node 5 extra degree so it sinks to the leaves.
        g.add_node(n(50)).unwrap();
        g.add_node(n(51)).unwrap();
        g.add_black_edge(n(5), n(50)).unwrap();
        g.add_black_edge(n(5), n(51)).unwrap();
        let mut h = ForgivingLike::new(&g);
        h.on_delete(n(0)).unwrap();
        assert!(components::is_connected(h.graph()));
        // Node 5 (pre-patch degree 3) must be a leaf of the patch: at most
        // one patch edge added to it.
        assert!(h.graph().degree(n(5)).unwrap() <= 3 + 1);
    }

    #[test]
    fn insert_semantics_shared() {
        for mut h in all_baselines(&generators::cycle(4)) {
            h.on_insert(n(100), &[n(0), n(2)]).unwrap();
            assert_eq!(h.graph().degree(n(100)), Some(2), "{}", h.name());
            assert!(h.on_insert(n(100), &[]).is_err());
            assert!(h.on_delete(n(999)).is_err());
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<&str> = all_baselines(&generators::cycle(4))
            .iter()
            .map(|h| h.name())
            .collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(names.len(), 5);
        assert_eq!(dedup.len(), 5);
    }
}
