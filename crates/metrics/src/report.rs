//! The success metrics of the paper's model (Figure 1, "Success metrics").

use xheal_graph::{cuts, traversal, Graph, NodeId};
use xheal_spectral::{algebraic_connectivity, normalized_algebraic_connectivity, sweep_cut};

/// Success metric 1: `max_v degree(v, G_t) / degree(v, G'_t)` over live
/// nodes with nonzero `G'` degree. Returns 0 for an empty graph.
pub fn degree_increase(g: &Graph, gprime: &Graph) -> f64 {
    let mut worst = 0.0f64;
    for v in g.nodes() {
        let d = g.degree(v).unwrap_or(0) as f64;
        let dp = gprime.degree(v).unwrap_or(0) as f64;
        if dp > 0.0 {
            worst = worst.max(d / dp);
        }
    }
    worst
}

/// Success metric 3: `max_{x,y} dist(x, y, G_t) / dist(x, y, G'_t)` over
/// live pairs connected in `G'_t`.
///
/// Exact all-pairs when the graph has at most `exact_limit` nodes; above
/// that, the maximum over `sample` deterministic source nodes (every node's
/// BFS costs O(m), so sampled sources keep this linear-ish).
///
/// Returns `None` if no comparable pair exists, `Some(f64::INFINITY)` if a
/// pair connected in `G'` is disconnected in `G` (a healing failure).
pub fn stretch(g: &Graph, gprime: &Graph, exact_limit: usize, sample: usize) -> Option<f64> {
    let live: Vec<NodeId> = g.node_vec();
    if live.len() < 2 {
        return None;
    }
    let sources: Vec<NodeId> = if live.len() <= exact_limit {
        live.clone()
    } else {
        // Deterministic spread: every ceil(n/sample)-th node.
        let step = live.len().div_ceil(sample.max(1));
        live.iter().copied().step_by(step.max(1)).collect()
    };

    let mut worst: Option<f64> = None;
    for &s in &sources {
        let dg = traversal::bfs_distances(g, s);
        let dp = traversal::bfs_distances(gprime, s);
        for &t in &live {
            if t <= s {
                continue;
            }
            match (dg.get(&t), dp.get(&t)) {
                (Some(&a), Some(&b)) if b > 0 => {
                    let r = a as f64 / b as f64;
                    worst = Some(worst.map_or(r, |w: f64| w.max(r)));
                }
                (None, Some(&b)) if b > 0 => return Some(f64::INFINITY),
                _ => {}
            }
        }
    }
    worst
}

/// Expansion measurements for a graph: exact where feasible, spectral
/// bounds otherwise.
#[derive(Clone, Debug)]
pub struct ExpansionReport {
    /// Exact edge expansion `h(G)` (subset enumeration, small graphs only).
    pub exact_h: Option<f64>,
    /// Exact conductance `φ(G)` (small graphs only).
    pub exact_phi: Option<f64>,
    /// Algebraic connectivity λ₂ of the unnormalized Laplacian.
    pub lambda: f64,
    /// λ₂ of the *normalized* Laplacian — the convention under which the
    /// paper's Theorem 1 (Cheeger) holds.
    pub lambda_norm: f64,
    /// Sweep-cut conductance (upper bound on φ).
    pub sweep_phi: Option<f64>,
    /// Sweep-cut expansion quotient (upper bound on h).
    pub sweep_h: Option<f64>,
    /// Lower bound on h from Cheeger + the paper's inequality (1):
    /// `h ≥ φ·dmin ≥ (λ_norm/2)·dmin`.
    pub h_lower: f64,
}

/// Success metric 2 machinery: measures expansion every way available.
pub fn expansion_report(g: &Graph) -> ExpansionReport {
    let lambda = algebraic_connectivity(g);
    let lambda_norm = normalized_algebraic_connectivity(g);
    let dmin = g.nodes().filter_map(|v| g.degree(v)).min().unwrap_or(0) as f64;
    let (exact_h, exact_phi) = if g.node_count() <= cuts::MAX_EXACT_NODES {
        (
            cuts::edge_expansion_exact(g).map(|c| c.value),
            cuts::conductance_exact(g).map(|c| c.value),
        )
    } else {
        (None, None)
    };
    let sweep = sweep_cut(g);
    ExpansionReport {
        exact_h,
        exact_phi,
        lambda,
        lambda_norm,
        sweep_phi: sweep.as_ref().map(|s| s.conductance),
        sweep_h: sweep.as_ref().map(|s| s.expansion),
        h_lower: lambda_norm / 2.0 * dmin,
    }
}

/// Best available estimate of `h(G)`: exact when present, else the sweep-cut
/// upper bound (a constructive cut, hence a true upper bound on `h`).
pub fn expansion_estimate(g: &Graph) -> Option<f64> {
    let r = expansion_report(g);
    r.exact_h.or(r.sweep_h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xheal_graph::generators;

    #[test]
    fn degree_increase_identity_is_one() {
        let g = generators::cycle(8);
        assert_eq!(degree_increase(&g, &g), 1.0);
    }

    #[test]
    fn degree_increase_detects_growth() {
        let gp = generators::path(4); // degrees 1,2,2,1
        let mut g = gp.clone();
        g.add_black_edge(NodeId::new(0), NodeId::new(2)).unwrap();
        g.add_black_edge(NodeId::new(0), NodeId::new(3)).unwrap();
        // Node 0: degree 3 vs 1 in G'.
        assert_eq!(degree_increase(&g, &gp), 3.0);
    }

    #[test]
    fn stretch_identity_is_one() {
        let g = generators::grid(4, 4);
        assert_eq!(stretch(&g, &g, 100, 4), Some(1.0));
    }

    #[test]
    fn stretch_detects_detours() {
        // G' is a cycle of 6; G lost edge (0,5) but kept the path.
        let gp = generators::cycle(6);
        let mut g = gp.clone();
        g.remove_edge(NodeId::new(0), NodeId::new(5)).unwrap();
        // dist(0,5): G' = 1, G = 5.
        assert_eq!(stretch(&g, &gp, 100, 4), Some(5.0));
    }

    #[test]
    fn stretch_disconnection_is_infinite() {
        let gp = generators::path(4);
        let mut g = gp.clone();
        g.remove_edge(NodeId::new(1), NodeId::new(2)).unwrap();
        assert_eq!(stretch(&g, &gp, 100, 4), Some(f64::INFINITY));
    }

    #[test]
    fn stretch_through_dead_nodes_counts_gprime_distance() {
        // G' = star (center 0); G = center deleted, leaves re-wired in a
        // path. dist in G' between leaves = 2 (through dead center).
        let gp = generators::star(5);
        let mut g = gp.clone();
        g.remove_node(NodeId::new(0)).unwrap();
        for i in 1..4 {
            g.add_black_edge(NodeId::new(i), NodeId::new(i + 1))
                .unwrap();
        }
        // Worst pair (1,4): G' distance 2, G distance 3 => 1.5.
        assert_eq!(stretch(&g, &gp, 100, 4), Some(1.5));
    }

    #[test]
    fn expansion_report_on_empty_graph_is_all_degenerate() {
        let g = xheal_graph::Graph::new();
        let r = expansion_report(&g);
        assert_eq!(r.exact_h, None);
        assert_eq!(r.exact_phi, None);
        assert_eq!((r.lambda, r.lambda_norm, r.h_lower), (0.0, 0.0, 0.0));
        assert_eq!(r.sweep_phi, None);
        assert_eq!(r.sweep_h, None);
        assert_eq!(expansion_estimate(&g), None);
    }

    #[test]
    fn expansion_report_on_single_node_is_degenerate() {
        let mut g = xheal_graph::Graph::new();
        g.add_node(NodeId::new(7)).unwrap();
        let r = expansion_report(&g);
        assert_eq!(r.exact_h, None, "no 2-subset to cut");
        assert_eq!((r.lambda, r.lambda_norm), (0.0, 0.0));
        assert_eq!(r.sweep_h, None);
        assert_eq!(r.h_lower, 0.0);
        assert_eq!(expansion_estimate(&g), None);
    }

    #[test]
    fn expansion_report_on_disconnected_graph_is_zero() {
        // A graph with an isolated node: h = phi = lambda = 0.
        let mut g = generators::complete(5);
        g.add_node(NodeId::new(50)).unwrap();
        let r = expansion_report(&g);
        assert_eq!(r.exact_h, Some(0.0));
        assert!(r.lambda < 1e-10);
        assert!(r.lambda_norm < 1e-10);
        assert!(r.h_lower.abs() < 1e-10, "dmin = 0 kills the lower bound");
        assert_eq!(expansion_estimate(&g), Some(0.0));

        // Two separate components (no isolated node): still 0 expansion.
        let mut two = generators::complete(4);
        two.add_node(NodeId::new(60)).unwrap();
        two.add_node(NodeId::new(61)).unwrap();
        two.add_black_edge(NodeId::new(60), NodeId::new(61))
            .unwrap();
        let r2 = expansion_report(&two);
        assert_eq!(r2.exact_h, Some(0.0));
        assert!(r2.lambda < 1e-10);
        assert_eq!(expansion_estimate(&two), Some(0.0));
    }

    #[test]
    fn expansion_report_on_complete_graph() {
        let g = generators::complete(8);
        let r = expansion_report(&g);
        assert_eq!(r.exact_h, Some(4.0));
        assert!((r.lambda - 8.0).abs() < 1e-8);
        assert!(r.sweep_h.unwrap() >= r.exact_h.unwrap() - 1e-9);
        assert!(r.h_lower <= r.exact_h.unwrap() + 1e-9);
    }

    #[test]
    fn expansion_estimate_prefers_exact() {
        let g = generators::path(10);
        let est = expansion_estimate(&g).unwrap();
        assert!((est - 0.2).abs() < 1e-12);
        // Large graph: estimate falls back to the sweep bound.
        let big = generators::cycle(64);
        let est_big = expansion_estimate(&big).unwrap();
        // Cycle expansion is 2/(n/2) = 1/16.
        assert!(est_big >= 1.0 / 16.0 - 1e-9);
        assert!(est_big <= 0.25);
    }

    use xheal_graph::NodeId;
}
