//! # xheal-metrics
//!
//! The success metrics of the paper's node insert/delete/repair model
//! (its Figure 1): degree increase, edge expansion, network stretch — all
//! measured against the insertion-only reference graph `G'_t` tracked by
//! [`GPrime`]. Recovery time and message complexity (metrics 4 and 5) are
//! measured by `xheal-dist`, which runs the actual distributed protocol.
//!
//! # Examples
//!
//! ```
//! use xheal_graph::{generators, NodeId};
//! use xheal_metrics::{degree_increase, stretch, GPrime};
//!
//! let g0 = generators::cycle(8);
//! let gp = GPrime::new(&g0);
//! assert_eq!(degree_increase(&g0, gp.graph()), 1.0);
//! assert_eq!(stretch(&g0, gp.graph(), 100, 4), Some(1.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gprime;
mod report;

pub use gprime::GPrime;
pub use report::{degree_increase, expansion_estimate, expansion_report, stretch, ExpansionReport};
