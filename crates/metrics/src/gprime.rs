//! The insertion-only reference graph `G'_t`.
//!
//! The paper's success metrics (its Figure 1) compare the healed graph `G_t`
//! against `G'_t`, "the graph consisting solely of the original nodes and
//! insertions without regard to deletions and healings". Deleted nodes stay
//! in `G'_t` — a shortest path there may run through dead nodes.

use xheal_graph::{Graph, GraphError, NodeId};

/// Tracker for `G'_t`: feed it the same insertions the healer sees and never
/// tell it about deletions.
///
/// # Examples
///
/// ```
/// use xheal_graph::{generators, NodeId};
/// use xheal_metrics::GPrime;
///
/// let mut gp = GPrime::new(&generators::cycle(4));
/// gp.record_insert(NodeId::new(9), &[NodeId::new(0)])?;
/// assert_eq!(gp.graph().node_count(), 5);
/// # Ok::<(), xheal_graph::GraphError>(())
/// ```
#[derive(Clone, Debug)]
pub struct GPrime {
    graph: Graph,
}

impl GPrime {
    /// Starts tracking from the initial network `G_0`.
    pub fn new(initial: &Graph) -> Self {
        GPrime {
            graph: initial.clone(),
        }
    }

    /// Records an adversarial insertion.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] on duplicate nodes; unknown neighbors are
    /// an error too (the adversary can only connect to nodes that existed at
    /// some point, all of which `G'` retains).
    pub fn record_insert(&mut self, v: NodeId, neighbors: &[NodeId]) -> Result<(), GraphError> {
        self.graph.add_node(v)?;
        for &u in neighbors {
            if u != v {
                let _ = self.graph.add_black_edge(v, u);
            }
        }
        Ok(())
    }

    /// The current `G'_t`.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xheal_graph::generators;

    #[test]
    fn deletions_never_reach_gprime() {
        let gp = GPrime::new(&generators::star(5));
        // There is no delete API at all; the graph is append-only.
        assert_eq!(gp.graph().node_count(), 5);
    }

    #[test]
    fn insert_appends() {
        let mut gp = GPrime::new(&generators::star(3));
        gp.record_insert(NodeId::new(10), &[NodeId::new(0), NodeId::new(1)])
            .unwrap();
        assert_eq!(gp.graph().degree(NodeId::new(10)), Some(2));
        assert!(gp.record_insert(NodeId::new(10), &[]).is_err());
    }
}
