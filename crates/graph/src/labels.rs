//! Edge labels: the black/colored edge algebra of Section 3 of the paper.
//!
//! The paper colors every edge either *black* (original or adversary-inserted)
//! or with the color of exactly one expander cloud. Two clouds can in practice
//! demand the same edge, and a recolored black edge that its cloud later drops
//! would silently erase an adversary-inserted edge, so this reproduction keeps
//! a small *set* of labels per edge instead: a black flag plus a set of cloud
//! colors (see DESIGN.md §3.1). An edge exists while at least one label does.

use std::fmt;

/// Identifier (the paper's "color") of an expander cloud.
///
/// The paper suggests using the id of the deleted node as the color; we use a
/// dedicated counter so that repeatedly rebuilt clouds get distinct colors.
///
/// # Examples
///
/// ```
/// use xheal_graph::CloudColor;
/// let c = CloudColor::new(3);
/// assert_eq!(c.as_u64(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CloudColor(u64);

impl CloudColor {
    /// Creates a color from a raw integer.
    pub const fn new(raw: u64) -> Self {
        CloudColor(raw)
    }

    /// Returns the raw integer backing this color.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for CloudColor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for CloudColor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Whether a cloud is *primary* ("shades of red") or *secondary* ("shades of
/// orange") in the paper's terminology.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CloudKind {
    /// Built among the neighbors of a deleted node (Case 1 / Case 2.1 fixes).
    Primary,
    /// Built among bridge nodes of several primary clouds (Case 2.1/2.2).
    Secondary,
}

impl fmt::Display for CloudKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloudKind::Primary => write!(f, "primary"),
            CloudKind::Secondary => write!(f, "secondary"),
        }
    }
}

/// Colors carried inline before spilling to the heap. Virtually every edge
/// carries 0–2 colors, so the common case allocates nothing — edge churn is
/// the hottest loop in the system and malloc was its dominant cost.
const INLINE_COLORS: usize = 2;

/// Sorted, duplicate-free color storage with a small inline buffer.
///
/// Canonical-form invariant (required for the derived `Eq`/`Hash`): the
/// `Heap` variant holds strictly more than [`INLINE_COLORS`] entries, and
/// unused inline slots are zeroed.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum ColorSet {
    Inline(u8, [CloudColor; INLINE_COLORS]),
    Heap(Vec<CloudColor>),
}

impl Default for ColorSet {
    fn default() -> Self {
        ColorSet::Inline(0, [CloudColor::new(0); INLINE_COLORS])
    }
}

impl ColorSet {
    fn as_slice(&self) -> &[CloudColor] {
        match self {
            ColorSet::Inline(len, buf) => &buf[..*len as usize],
            ColorSet::Heap(v) => v,
        }
    }

    fn insert(&mut self, c: CloudColor) -> bool {
        match self {
            ColorSet::Inline(len, buf) => {
                let n = *len as usize;
                match buf[..n].binary_search(&c) {
                    Ok(_) => false,
                    Err(pos) if n < INLINE_COLORS => {
                        buf.copy_within(pos..n, pos + 1);
                        buf[pos] = c;
                        *len += 1;
                        true
                    }
                    Err(pos) => {
                        let mut v = Vec::with_capacity(n + 1);
                        v.extend_from_slice(&buf[..pos]);
                        v.push(c);
                        v.extend_from_slice(&buf[pos..n]);
                        *self = ColorSet::Heap(v);
                        true
                    }
                }
            }
            ColorSet::Heap(v) => match v.binary_search(&c) {
                Ok(_) => false,
                Err(pos) => {
                    v.insert(pos, c);
                    true
                }
            },
        }
    }

    fn remove(&mut self, c: CloudColor) -> bool {
        match self {
            ColorSet::Inline(len, buf) => {
                let n = *len as usize;
                match buf[..n].binary_search(&c) {
                    Ok(pos) => {
                        buf.copy_within(pos + 1..n, pos);
                        buf[n - 1] = CloudColor::new(0);
                        *len -= 1;
                        true
                    }
                    Err(_) => false,
                }
            }
            ColorSet::Heap(v) => match v.binary_search(&c) {
                Ok(pos) => {
                    v.remove(pos);
                    if v.len() <= INLINE_COLORS {
                        let mut buf = [CloudColor::new(0); INLINE_COLORS];
                        buf[..v.len()].copy_from_slice(v);
                        *self = ColorSet::Inline(v.len() as u8, buf);
                    }
                    true
                }
                Err(_) => false,
            },
        }
    }
}

/// The label set attached to one undirected edge.
///
/// Invariant: the color set is sorted and duplicate-free (and stored inline
/// for up to two colors — the common case never touches the heap); an
/// `EdgeLabels` stored in a graph is never empty (no black flag and no
/// colors means the edge is removed).
///
/// # Examples
///
/// ```
/// use xheal_graph::{CloudColor, EdgeLabels};
/// let mut l = EdgeLabels::black();
/// l.add_color(CloudColor::new(1));
/// assert!(l.is_black());
/// assert!(l.has_color(CloudColor::new(1)));
/// l.clear_black();
/// l.remove_color(CloudColor::new(1));
/// assert!(l.is_empty());
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct EdgeLabels {
    black: bool,
    colors: ColorSet,
}

impl EdgeLabels {
    /// A label set containing only the black flag.
    pub fn black() -> Self {
        EdgeLabels {
            black: true,
            colors: ColorSet::default(),
        }
    }

    /// A label set containing a single cloud color.
    pub fn colored(color: CloudColor) -> Self {
        let mut colors = ColorSet::default();
        colors.insert(color);
        EdgeLabels {
            black: false,
            colors,
        }
    }

    /// An empty label set (an edge with these labels must be removed).
    pub fn empty() -> Self {
        EdgeLabels::default()
    }

    /// Does the edge carry the black (original/inserted) label?
    pub fn is_black(&self) -> bool {
        self.black
    }

    /// Does the edge carry any cloud color?
    pub fn is_colored(&self) -> bool {
        !self.colors.as_slice().is_empty()
    }

    /// True when no label remains.
    pub fn is_empty(&self) -> bool {
        !self.black && self.colors.as_slice().is_empty()
    }

    /// Does the edge carry `color`?
    pub fn has_color(&self, color: CloudColor) -> bool {
        self.colors.as_slice().binary_search(&color).is_ok()
    }

    /// The sorted slice of cloud colors on this edge.
    pub fn colors(&self) -> &[CloudColor] {
        self.colors.as_slice()
    }

    /// Sets the black flag.
    pub fn set_black(&mut self) {
        self.black = true;
    }

    /// Clears the black flag.
    pub fn clear_black(&mut self) {
        self.black = false;
    }

    /// Adds a cloud color; returns `true` if it was not already present.
    pub fn add_color(&mut self, color: CloudColor) -> bool {
        self.colors.insert(color)
    }

    /// Removes a cloud color; returns `true` if it was present.
    pub fn remove_color(&mut self, color: CloudColor) -> bool {
        self.colors.remove(color)
    }

    /// Merges all labels from `other` into `self`.
    pub fn merge(&mut self, other: &EdgeLabels) {
        if other.black {
            self.black = true;
        }
        for &c in other.colors.as_slice() {
            self.add_color(c);
        }
    }
}

impl fmt::Display for EdgeLabels {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        if self.black {
            write!(f, "black")?;
            first = false;
        }
        for c in self.colors.as_slice() {
            if !first {
                write!(f, "+")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        if first {
            write!(f, "(none)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn color_roundtrip() {
        let c = CloudColor::new(9);
        assert_eq!(c.as_u64(), 9);
        assert_eq!(format!("{c}"), "c9");
    }

    #[test]
    fn labels_add_remove_colors_stay_sorted() {
        let mut l = EdgeLabels::empty();
        assert!(l.add_color(CloudColor::new(5)));
        assert!(l.add_color(CloudColor::new(2)));
        assert!(l.add_color(CloudColor::new(7)));
        assert!(!l.add_color(CloudColor::new(5)));
        let raw: Vec<u64> = l.colors().iter().map(|c| c.as_u64()).collect();
        assert_eq!(raw, vec![2, 5, 7]);
        assert!(l.remove_color(CloudColor::new(5)));
        assert!(!l.remove_color(CloudColor::new(5)));
        assert!(l.has_color(CloudColor::new(2)));
        assert!(!l.has_color(CloudColor::new(5)));
    }

    #[test]
    fn emptiness_tracks_black_and_colors() {
        let mut l = EdgeLabels::black();
        assert!(!l.is_empty());
        l.clear_black();
        assert!(l.is_empty());
        l.add_color(CloudColor::new(1));
        assert!(!l.is_empty());
        l.remove_color(CloudColor::new(1));
        assert!(l.is_empty());
    }

    #[test]
    fn color_set_spills_and_unspills_canonically() {
        // Cross the inline/heap boundary in both directions and check that
        // equality (and therefore the canonical form) survives.
        let mut spilled = EdgeLabels::empty();
        for c in [5u64, 1, 9, 3, 7] {
            assert!(spilled.add_color(CloudColor::new(c)));
        }
        let raw: Vec<u64> = spilled.colors().iter().map(|c| c.as_u64()).collect();
        assert_eq!(raw, vec![1, 3, 5, 7, 9]);
        for c in [1u64, 9, 3] {
            assert!(spilled.remove_color(CloudColor::new(c)));
        }
        let mut inline = EdgeLabels::empty();
        inline.add_color(CloudColor::new(7));
        inline.add_color(CloudColor::new(5));
        assert_eq!(spilled, inline, "heap->inline must restore canonical form");
    }

    #[test]
    fn merge_unions_labels() {
        let mut a = EdgeLabels::colored(CloudColor::new(1));
        let mut b = EdgeLabels::black();
        b.add_color(CloudColor::new(2));
        a.merge(&b);
        assert!(a.is_black());
        assert!(a.has_color(CloudColor::new(1)));
        assert!(a.has_color(CloudColor::new(2)));
    }

    #[test]
    fn display_formats() {
        let mut l = EdgeLabels::black();
        l.add_color(CloudColor::new(3));
        assert_eq!(format!("{l}"), "black+c3");
        assert_eq!(format!("{}", EdgeLabels::empty()), "(none)");
    }
}
