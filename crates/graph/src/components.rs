//! Connectivity: components and articulation points.
//!
//! Connectivity is the paper's first invariant ("the algorithm's goal is to
//! maintain connectivity"); articulation points power the omniscient
//! adversary's nastiest strategy (deleting cut vertices, which maximally
//! stresses the healer).

use crate::{Graph, NodeId};

/// The connected components, each sorted ascending; components sorted by
/// their smallest node.
pub fn components(g: &Graph) -> Vec<Vec<NodeId>> {
    let csr = g.csr_view();
    let mut seen = vec![false; csr.len()];
    let mut out = Vec::new();
    let mut stack: Vec<u32> = Vec::new();
    for root in 0..csr.len() {
        if seen[root] {
            continue;
        }
        let mut comp = Vec::new();
        seen[root] = true;
        stack.push(root as u32);
        while let Some(x) = stack.pop() {
            comp.push(csr.node(x as usize));
            for &y in csr.neighbors_of(x as usize) {
                if !seen[y as usize] {
                    seen[y as usize] = true;
                    stack.push(y);
                }
            }
        }
        comp.sort_unstable();
        out.push(comp);
    }
    out
}

/// Is the graph connected? The empty graph counts as connected.
pub fn is_connected(g: &Graph) -> bool {
    let csr = g.csr_view();
    if csr.len() <= 1 {
        return true;
    }
    // Single BFS over the dense view; no need to materialize components.
    let mut seen = vec![false; csr.len()];
    let mut stack: Vec<u32> = vec![0];
    seen[0] = true;
    let mut visited = 1usize;
    while let Some(x) = stack.pop() {
        for &y in csr.neighbors_of(x as usize) {
            if !seen[y as usize] {
                seen[y as usize] = true;
                visited += 1;
                stack.push(y);
            }
        }
    }
    visited == csr.len()
}

/// Size of the largest connected component (0 for an empty graph).
pub fn largest_component_size(g: &Graph) -> usize {
    components(g).iter().map(Vec::len).max().unwrap_or(0)
}

/// Articulation points (cut vertices) via iterative Tarjan low-link.
///
/// A node is an articulation point if removing it increases the number of
/// connected components. Returned sorted ascending.
pub fn articulation_points(g: &Graph) -> Vec<NodeId> {
    const NIL: u32 = u32::MAX;
    let csr = g.csr_view();
    let n = csr.len();
    let mut disc = vec![NIL; n];
    let mut low = vec![0u32; n];
    let mut parent = vec![NIL; n];
    let mut children = vec![0u32; n];
    let mut is_cut = vec![false; n];
    let mut timer = 0u32;
    // Iterative DFS with an explicit neighbor cursor per frame.
    let mut stack: Vec<(u32, u32)> = Vec::new();

    for root in 0..n {
        if disc[root] != NIL {
            continue;
        }
        disc[root] = timer;
        low[root] = timer;
        timer += 1;
        stack.push((root as u32, 0));

        while let Some(frame) = stack.last_mut() {
            let v = frame.0 as usize;
            let nbrs = csr.neighbors_of(v);
            if (frame.1 as usize) < nbrs.len() {
                let u = nbrs[frame.1 as usize] as usize;
                frame.1 += 1;
                if disc[u] != NIL {
                    // Back edge (ignore the tree edge to the parent).
                    if parent[v] != u as u32 && disc[u] < low[v] {
                        low[v] = disc[u];
                    }
                } else {
                    disc[u] = timer;
                    low[u] = timer;
                    timer += 1;
                    parent[u] = v as u32;
                    children[v] += 1;
                    stack.push((u as u32, 0));
                }
            } else {
                // Finished v: propagate low-link to parent.
                stack.pop();
                let p = parent[v];
                if p != NIL {
                    let p = p as usize;
                    if low[v] < low[p] {
                        low[p] = low[v];
                    }
                    // Non-root parent is a cut vertex if no back edge from
                    // v's subtree climbs above p.
                    if parent[p] != NIL && low[v] >= disc[p] {
                        is_cut[p] = true;
                    }
                }
            }
        }

        // Root rule: cut vertex iff it has >= 2 DFS children.
        if children[root] >= 2 {
            is_cut[root] = true;
        }
    }

    // Dense order is ascending NodeId, so the result is already sorted.
    (0..n).filter(|&i| is_cut[i]).map(|i| csr.node(i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn n(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    #[test]
    fn empty_graph_is_connected() {
        assert!(is_connected(&Graph::new()));
        assert_eq!(largest_component_size(&Graph::new()), 0);
    }

    #[test]
    fn path_is_connected_until_split() {
        let mut g = generators::path(5);
        assert!(is_connected(&g));
        g.remove_node(n(2)).unwrap();
        assert!(!is_connected(&g));
        let comps = components(&g);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![n(0), n(1)]);
        assert_eq!(comps[1], vec![n(3), n(4)]);
        assert_eq!(largest_component_size(&g), 2);
    }

    #[test]
    fn path_interior_nodes_are_articulation_points() {
        let g = generators::path(5);
        assert_eq!(
            articulation_points(&g),
            vec![n(1), n(2), n(3)],
            "interior path nodes are cut vertices"
        );
    }

    #[test]
    fn cycle_has_no_articulation_points() {
        let g = generators::cycle(6);
        assert!(articulation_points(&g).is_empty());
    }

    #[test]
    fn star_center_is_the_only_articulation_point() {
        let g = generators::star(7);
        assert_eq!(articulation_points(&g), vec![n(0)]);
    }

    #[test]
    fn two_triangles_joined_at_a_node() {
        // 0-1-2-0 and 2-3-4-2: node 2 is the cut vertex.
        let mut g = Graph::new();
        for i in 0..5 {
            g.add_node(n(i)).unwrap();
        }
        for (a, b) in [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)] {
            g.add_black_edge(n(a), n(b)).unwrap();
        }
        assert_eq!(articulation_points(&g), vec![n(2)]);
    }

    #[test]
    fn complete_graph_has_no_cut_vertices() {
        let g = generators::complete(6);
        assert!(articulation_points(&g).is_empty());
    }

    #[test]
    fn articulation_points_match_bruteforce_on_random_graphs() {
        use rand::{rngs::StdRng, SeedableRng};
        for seed in 0..8 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::erdos_renyi(12, 0.2, &mut rng);
            let fast = articulation_points(&g);
            // Brute force: a node with neighbors is a cut vertex iff its
            // removal strictly increases the component count.
            let base = components(&g).len();
            let mut slow = Vec::new();
            for v in g.node_vec() {
                if g.degree(v) == Some(0) {
                    continue;
                }
                let mut h = g.clone();
                h.remove_node(v).unwrap();
                if components(&h).len() > base {
                    slow.push(v);
                }
            }
            assert_eq!(fast, slow, "seed {seed}");
        }
    }
}
