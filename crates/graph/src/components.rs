//! Connectivity: components and articulation points.
//!
//! Connectivity is the paper's first invariant ("the algorithm's goal is to
//! maintain connectivity"); articulation points power the omniscient
//! adversary's nastiest strategy (deleting cut vertices, which maximally
//! stresses the healer).

use std::collections::BTreeMap;

use crate::{Graph, NodeId};

/// The connected components, each sorted ascending; components sorted by
/// their smallest node.
pub fn components(g: &Graph) -> Vec<Vec<NodeId>> {
    let mut seen: BTreeMap<NodeId, bool> = g.nodes().map(|v| (v, false)).collect();
    let mut out = Vec::new();
    for v in g.nodes() {
        if seen[&v] {
            continue;
        }
        let mut comp = Vec::new();
        let mut stack = vec![v];
        seen.insert(v, true);
        while let Some(x) = stack.pop() {
            comp.push(x);
            for y in g.neighbors(x) {
                if !seen[&y] {
                    seen.insert(y, true);
                    stack.push(y);
                }
            }
        }
        comp.sort_unstable();
        out.push(comp);
    }
    out
}

/// Is the graph connected? The empty graph counts as connected.
pub fn is_connected(g: &Graph) -> bool {
    components(g).len() <= 1
}

/// Size of the largest connected component (0 for an empty graph).
pub fn largest_component_size(g: &Graph) -> usize {
    components(g).iter().map(Vec::len).max().unwrap_or(0)
}

/// Articulation points (cut vertices) via iterative Tarjan low-link.
///
/// A node is an articulation point if removing it increases the number of
/// connected components. Returned sorted ascending.
pub fn articulation_points(g: &Graph) -> Vec<NodeId> {
    #[derive(Clone)]
    struct Info {
        disc: u32,
        low: u32,
        parent: Option<NodeId>,
        children: u32,
        is_cut: bool,
    }

    let mut info: BTreeMap<NodeId, Info> = BTreeMap::new();
    let mut timer = 0u32;

    for root in g.node_vec() {
        if info.contains_key(&root) {
            continue;
        }
        // Iterative DFS with an explicit neighbor cursor per frame.
        let mut stack: Vec<(NodeId, Vec<NodeId>, usize)> = Vec::new();
        info.insert(
            root,
            Info {
                disc: timer,
                low: timer,
                parent: None,
                children: 0,
                is_cut: false,
            },
        );
        timer += 1;
        stack.push((root, g.neighbors(root).collect(), 0));

        while let Some((v, nbrs, cursor)) = stack.last_mut() {
            let v = *v;
            if *cursor < nbrs.len() {
                let u = nbrs[*cursor];
                *cursor += 1;
                if let Some(iu) = info.get(&u) {
                    // Back edge (ignore the tree edge to the parent).
                    if info[&v].parent != Some(u) {
                        let du = iu.disc;
                        let iv = info.get_mut(&v).expect("on stack");
                        if du < iv.low {
                            iv.low = du;
                        }
                    }
                } else {
                    info.insert(
                        u,
                        Info {
                            disc: timer,
                            low: timer,
                            parent: Some(v),
                            children: 0,
                            is_cut: false,
                        },
                    );
                    timer += 1;
                    info.get_mut(&v).expect("on stack").children += 1;
                    stack.push((u, g.neighbors(u).collect(), 0));
                }
            } else {
                // Finished v: propagate low-link to parent.
                stack.pop();
                let iv = info[&v].clone();
                if let Some(p) = iv.parent {
                    let low_v = iv.low;
                    let ip = info.get_mut(&p).expect("parent visited");
                    if low_v < ip.low {
                        ip.low = low_v;
                    }
                    // Non-root parent is a cut vertex if no back edge from
                    // v's subtree climbs above p.
                    if ip.parent.is_some() && low_v >= ip.disc {
                        ip.is_cut = true;
                    }
                }
            }
        }

        // Root rule: cut vertex iff it has >= 2 DFS children.
        if info[&root].children >= 2 {
            info.get_mut(&root).expect("root").is_cut = true;
        }
    }

    info.into_iter()
        .filter(|(_, i)| i.is_cut)
        .map(|(v, _)| v)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn n(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    #[test]
    fn empty_graph_is_connected() {
        assert!(is_connected(&Graph::new()));
        assert_eq!(largest_component_size(&Graph::new()), 0);
    }

    #[test]
    fn path_is_connected_until_split() {
        let mut g = generators::path(5);
        assert!(is_connected(&g));
        g.remove_node(n(2)).unwrap();
        assert!(!is_connected(&g));
        let comps = components(&g);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![n(0), n(1)]);
        assert_eq!(comps[1], vec![n(3), n(4)]);
        assert_eq!(largest_component_size(&g), 2);
    }

    #[test]
    fn path_interior_nodes_are_articulation_points() {
        let g = generators::path(5);
        assert_eq!(
            articulation_points(&g),
            vec![n(1), n(2), n(3)],
            "interior path nodes are cut vertices"
        );
    }

    #[test]
    fn cycle_has_no_articulation_points() {
        let g = generators::cycle(6);
        assert!(articulation_points(&g).is_empty());
    }

    #[test]
    fn star_center_is_the_only_articulation_point() {
        let g = generators::star(7);
        assert_eq!(articulation_points(&g), vec![n(0)]);
    }

    #[test]
    fn two_triangles_joined_at_a_node() {
        // 0-1-2-0 and 2-3-4-2: node 2 is the cut vertex.
        let mut g = Graph::new();
        for i in 0..5 {
            g.add_node(n(i)).unwrap();
        }
        for (a, b) in [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)] {
            g.add_black_edge(n(a), n(b)).unwrap();
        }
        assert_eq!(articulation_points(&g), vec![n(2)]);
    }

    #[test]
    fn complete_graph_has_no_cut_vertices() {
        let g = generators::complete(6);
        assert!(articulation_points(&g).is_empty());
    }

    #[test]
    fn articulation_points_match_bruteforce_on_random_graphs() {
        use rand::{rngs::StdRng, SeedableRng};
        for seed in 0..8 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::erdos_renyi(12, 0.2, &mut rng);
            let fast = articulation_points(&g);
            // Brute force: a node with neighbors is a cut vertex iff its
            // removal strictly increases the component count.
            let base = components(&g).len();
            let mut slow = Vec::new();
            for v in g.node_vec() {
                if g.degree(v) == Some(0) {
                    continue;
                }
                let mut h = g.clone();
                h.remove_node(v).unwrap();
                if components(&h).len() > base {
                    slow.push(v);
                }
            }
            assert_eq!(fast, slow, "seed {seed}");
        }
    }
}
