//! Graph generators used as initial topologies and workload substrates.
//!
//! All generators number nodes `0..n` via [`NodeId::new`] and produce only
//! black edges (the adversary's and original edges are black in the paper).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::{Graph, NodeId};

fn base(n: usize) -> Graph {
    let mut g = Graph::with_node_capacity(n);
    for i in 0..n {
        g.add_node(NodeId::new(i as u64)).expect("fresh id");
    }
    g
}

fn id(i: usize) -> NodeId {
    NodeId::new(i as u64)
}

/// Path `0 - 1 - ... - (n-1)`.
pub fn path(n: usize) -> Graph {
    let mut g = base(n);
    for i in 1..n {
        g.add_black_edge(id(i - 1), id(i)).expect("valid");
    }
    g
}

/// Cycle on `n >= 3` nodes (falls back to [`path`] for smaller `n`).
pub fn cycle(n: usize) -> Graph {
    let mut g = path(n);
    if n >= 3 {
        g.add_black_edge(id(n - 1), id(0)).expect("valid");
    }
    g
}

/// Chord-augmented ring: the cycle `0 - 1 - ... - (n-1) - 0` plus, for
/// every node `i` and every power of two `2^k < n/2` (k ≥ 1), the chord
/// `i — (i + 2^k) mod n`.
///
/// This is the classic greedy-routable overlay (Chord's finger graph made
/// undirected): greedy forwarding by clockwise ring distance reaches any
/// destination in O(log n) hops, and degrees are Θ(log n). The routed
/// traffic benchmark uses it as the substrate whose healed descendants
/// are still greedily routable.
pub fn ring_with_chords(n: usize) -> Graph {
    let mut g = cycle(n);
    let mut span = 2usize;
    while span < n.div_ceil(2) {
        for i in 0..n {
            g.add_black_edge(id(i), id((i + span) % n)).expect("valid");
        }
        span *= 2;
    }
    g
}

/// Star with center `0` and `n - 1` leaves.
///
/// This is the paper's running worst case: deleting the center collapses
/// tree-style healers' expansion to `O(1/n)`.
pub fn star(n: usize) -> Graph {
    let mut g = base(n);
    for i in 1..n {
        g.add_black_edge(id(0), id(i)).expect("valid");
    }
    g
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut g = base(n);
    for i in 0..n {
        for j in (i + 1)..n {
            g.add_black_edge(id(i), id(j)).expect("valid");
        }
    }
    g
}

/// `w × h` grid (the wireless-mesh topology of the examples).
/// Node `(x, y)` is `y * w + x`.
pub fn grid(w: usize, h: usize) -> Graph {
    let mut g = base(w * h);
    for y in 0..h {
        for x in 0..w {
            let v = y * w + x;
            if x + 1 < w {
                g.add_black_edge(id(v), id(v + 1)).expect("valid");
            }
            if y + 1 < h {
                g.add_black_edge(id(v), id(v + w)).expect("valid");
            }
        }
    }
    g
}

/// Erdős–Rényi `G(n, p)`.
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    let mut g = base(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.random::<f64>() < p {
                g.add_black_edge(id(i), id(j)).expect("valid");
            }
        }
    }
    g
}

/// Connected Erdős–Rényi: [`erdos_renyi`] plus a random Hamiltonian backbone,
/// guaranteeing connectivity while keeping the random structure.
pub fn connected_erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    let mut g = erdos_renyi(n, p, rng);
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    for w in order.windows(2) {
        let _ = g.add_black_edge(id(w[0]), id(w[1]));
    }
    g
}

/// Random `d`-regular graph via the pairing (configuration) model with
/// edge-swap repair of self-loops and multi-edges.
///
/// # Panics
///
/// Panics if `n * d` is odd or `d >= n`, or if repair fails to converge
/// (vanishing probability for the sizes used here).
pub fn random_regular<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Graph {
    use std::collections::BTreeSet;
    assert!(d < n, "degree must be below node count");
    assert!(n * d % 2 == 0, "n*d must be even");

    let norm = |a: usize, b: usize| if a < b { (a, b) } else { (b, a) };
    'attempt: for _ in 0..50 {
        let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
        stubs.shuffle(rng);
        let mut pairs: Vec<(usize, usize)> = stubs.chunks(2).map(|c| (c[0], c[1])).collect();
        let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut bad: Vec<usize> = Vec::new();
        for (i, &(a, b)) in pairs.iter().enumerate() {
            if a == b || !seen.insert(norm(a, b)) {
                bad.push(i);
            }
        }
        // Repair conflicting pairs by 2-swaps with random good pairs.
        let mut budget = 200 * n * d + 10_000;
        while let Some(&i) = bad.last() {
            if budget == 0 {
                continue 'attempt;
            }
            budget -= 1;
            let (a, b) = pairs[i];
            let j = rng.random_range(0..pairs.len());
            if j == i || bad.contains(&j) {
                continue;
            }
            let (c, dd) = pairs[j];
            // Proposed replacement pairs (a, dd) and (c, b).
            if a == dd || c == b {
                continue;
            }
            let e1 = norm(a, dd);
            let e2 = norm(c, b);
            if e1 == e2 || seen.contains(&e1) || seen.contains(&e2) {
                continue;
            }
            seen.remove(&norm(c, dd));
            seen.insert(e1);
            seen.insert(e2);
            pairs[i] = (a, dd);
            pairs[j] = (c, b);
            bad.pop();
        }
        let mut g = base(n);
        for (a, b) in pairs {
            g.add_black_edge(id(a), id(b))
                .expect("repaired pairs are simple");
        }
        return g;
    }
    panic!("failed to sample a simple {d}-regular graph on {n} nodes");
}

/// Preferential-attachment (Barabási–Albert) graph: seed clique of `m + 1`
/// nodes, then each new node attaches to `m` distinct existing nodes chosen
/// proportionally to degree.
///
/// # Panics
///
/// Panics if `n <= m`.
pub fn preferential_attachment<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Graph {
    assert!(n > m, "need more nodes than attachment count");
    let mut g = complete(m + 1);
    // Repeated-node list: each node appears once per unit of degree.
    let mut lottery: Vec<usize> = Vec::new();
    for v in 0..=m {
        for _ in 0..m {
            lottery.push(v);
        }
    }
    for v in (m + 1)..n {
        g.add_node(id(v)).expect("fresh");
        let mut chosen = std::collections::BTreeSet::new();
        while chosen.len() < m {
            let pick = lottery[rng.random_range(0..lottery.len())];
            chosen.insert(pick);
        }
        for &u in &chosen {
            g.add_black_edge(id(v), id(u)).expect("valid");
            lottery.push(u);
            lottery.push(v);
        }
    }
    g
}

/// The Preliminaries' Cheeger example: take a random `d`-regular graph,
/// split nodes into two halves, keep the crossing edges, and turn each half
/// into a clique. Edge expansion stays constant while conductance drops to
/// `O(1/n)`.
pub fn clique_pair_with_expander_bridge<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Graph {
    let reg = random_regular(n, d, rng);
    let half = n / 2;
    let mut g = base(n);
    // Cliques within each half.
    for i in 0..half {
        for j in (i + 1)..half {
            g.add_black_edge(id(i), id(j)).expect("valid");
        }
    }
    for i in half..n {
        for j in (i + 1)..n {
            g.add_black_edge(id(i), id(j)).expect("valid");
        }
    }
    // Crossing edges inherited from the regular graph.
    for (u, v, _) in reg.edges() {
        let cu = (u.as_u64() as usize) < half;
        let cv = (v.as_u64() as usize) < half;
        if cu != cv {
            let _ = g.add_black_edge(u, v);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{components, traversal};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(id(0)), Some(1));
        assert_eq!(g.degree(id(2)), Some(2));
        g.validate().unwrap();
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(5);
        assert_eq!(g.edge_count(), 5);
        assert!(g.node_vec().iter().all(|&v| g.degree(v) == Some(2)));
    }

    #[test]
    fn star_shape() {
        let g = star(6);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.degree(id(0)), Some(5));
        assert!((1..6).all(|i| g.degree(id(i)) == Some(1)));
    }

    #[test]
    fn complete_shape() {
        let g = complete(5);
        assert_eq!(g.edge_count(), 10);
        assert!(g.node_vec().iter().all(|&v| g.degree(v) == Some(4)));
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        // Edges: horizontal 2*4 + vertical 3*3 = 17.
        assert_eq!(g.edge_count(), 17);
        assert!(components::is_connected(&g));
        assert_eq!(traversal::distance(&g, id(0), id(11)), Some(5));
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(erdos_renyi(10, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(erdos_renyi(10, 1.0, &mut rng).edge_count(), 45);
    }

    #[test]
    fn connected_erdos_renyi_is_connected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..5 {
            let g = connected_erdos_renyi(30, 0.02, &mut rng);
            assert!(components::is_connected(&g));
        }
    }

    #[test]
    fn random_regular_is_regular_and_simple() {
        let mut rng = StdRng::seed_from_u64(3);
        for (n, d) in [(10, 3), (16, 4), (21, 6)] {
            let g = random_regular(n, d, &mut rng);
            assert!(
                g.node_vec().iter().all(|&v| g.degree(v) == Some(d)),
                "({n},{d})"
            );
            g.validate().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn random_regular_rejects_odd_total() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = random_regular(5, 3, &mut rng);
    }

    #[test]
    fn preferential_attachment_shape() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = preferential_attachment(50, 3, &mut rng);
        assert_eq!(g.node_count(), 50);
        // Seed clique K4 has 6 edges; every further node adds exactly 3.
        assert_eq!(g.edge_count(), 6 + 46 * 3);
        assert!(components::is_connected(&g));
        assert!(g.node_vec().iter().all(|&v| g.degree(v).unwrap() >= 3));
    }

    #[test]
    fn clique_pair_bridge_is_connected_with_low_conductance() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = clique_pair_with_expander_bridge(16, 4, &mut rng);
        assert!(components::is_connected(&g));
        let phi = crate::cuts::conductance_exact(&g).unwrap();
        let h = crate::cuts::edge_expansion_exact(&g).unwrap();
        // Conductance is much smaller than expansion on this family.
        assert!(phi.value < h.value / 2.0, "phi={} h={}", phi.value, h.value);
    }
}
