//! Breadth-first traversal, shortest paths, and distance utilities.
//!
//! Stretch (success metric 3 in Figure 1 of the paper) is defined through
//! shortest-path distances in the healed graph `G_t` and in the
//! insertions-only graph `G'_t`; everything here is plain BFS because all
//! graphs are unweighted. All routines run over a dense [`crate::CsrView`]
//! snapshot — one O(n + m) index build, then array-indexed frontier
//! expansion — instead of per-step tree lookups.

use std::collections::{BTreeMap, VecDeque};

use crate::{CsrView, Graph, NodeId};

const UNSEEN: u32 = u32::MAX;

/// Dense BFS from `src` (a dense index) over `csr`, writing distances into
/// `dist` (reset to [`UNSEEN`] first). `queue` is reused scratch.
fn bfs_dense(csr: &CsrView, src: usize, dist: &mut Vec<u32>, queue: &mut VecDeque<u32>) {
    dist.clear();
    dist.resize(csr.len(), UNSEEN);
    queue.clear();
    dist[src] = 0;
    queue.push_back(src as u32);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for &u in csr.neighbors_of(v as usize) {
            if dist[u as usize] == UNSEEN {
                dist[u as usize] = dv + 1;
                queue.push_back(u);
            }
        }
    }
}

/// BFS distances from `src` to every reachable node (including `src` at 0).
///
/// Returns an empty map if `src` is not in the graph.
///
/// # Examples
///
/// ```
/// use xheal_graph::{generators, traversal, NodeId};
/// let g = generators::path(5);
/// let d = traversal::bfs_distances(&g, NodeId::new(0));
/// assert_eq!(d[&NodeId::new(4)], 4);
/// ```
pub fn bfs_distances(g: &Graph, src: NodeId) -> BTreeMap<NodeId, u32> {
    let csr = g.csr_view();
    let Some(s) = csr.index_of(src) else {
        return BTreeMap::new();
    };
    let mut dist = Vec::new();
    let mut queue = VecDeque::new();
    bfs_dense(&csr, s, &mut dist, &mut queue);
    dist.iter()
        .enumerate()
        .filter(|&(_, &d)| d != UNSEEN)
        .map(|(i, &d)| (csr.node(i), d))
        .collect()
}

/// Shortest-path distance between `u` and `v`, or `None` if disconnected or
/// either endpoint is absent.
pub fn distance(g: &Graph, u: NodeId, v: NodeId) -> Option<u32> {
    let csr = g.csr_view();
    let s = csr.index_of(u)?;
    let t = csr.index_of(v)?;
    if s == t {
        return Some(0);
    }
    // Early-exit BFS.
    let mut dist = vec![UNSEEN; csr.len()];
    let mut queue = VecDeque::from([s as u32]);
    dist[s] = 0;
    while let Some(x) = queue.pop_front() {
        let dx = dist[x as usize];
        for &y in csr.neighbors_of(x as usize) {
            if y as usize == t {
                return Some(dx + 1);
            }
            if dist[y as usize] == UNSEEN {
                dist[y as usize] = dx + 1;
                queue.push_back(y);
            }
        }
    }
    None
}

/// One shortest path from `u` to `v` (inclusive of both endpoints), or `None`.
pub fn shortest_path(g: &Graph, u: NodeId, v: NodeId) -> Option<Vec<NodeId>> {
    let csr = g.csr_view();
    let s = csr.index_of(u)?;
    let t = csr.index_of(v)?;
    if s == t {
        return Some(vec![u]);
    }
    let mut parent = vec![UNSEEN; csr.len()];
    let mut queue = VecDeque::from([s as u32]);
    parent[s] = s as u32;
    while let Some(x) = queue.pop_front() {
        for &y in csr.neighbors_of(x as usize) {
            if parent[y as usize] == UNSEEN {
                parent[y as usize] = x;
                if y as usize == t {
                    let mut path = vec![csr.node(t)];
                    let mut cur = t;
                    while cur != s {
                        cur = parent[cur] as usize;
                        path.push(csr.node(cur));
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(y);
            }
        }
    }
    None
}

/// Eccentricity of `src`: the largest BFS distance to any reachable node.
pub fn eccentricity(g: &Graph, src: NodeId) -> Option<u32> {
    let csr = g.csr_view();
    let s = csr.index_of(src)?;
    let mut dist = Vec::new();
    let mut queue = VecDeque::new();
    bfs_dense(&csr, s, &mut dist, &mut queue);
    dist.iter().filter(|&&d| d != UNSEEN).max().copied()
}

/// Diameter of the graph restricted to reachable pairs, or `None` for an
/// empty graph. For a disconnected graph this is the max of the component
/// diameters (infinite pairs are ignored; use [`crate::components::is_connected`]
/// first if that matters).
pub fn diameter(g: &Graph) -> Option<u32> {
    let csr = g.csr_view();
    let mut dist = Vec::new();
    let mut queue = VecDeque::new();
    let mut best: Option<u32> = None;
    for s in 0..csr.len() {
        bfs_dense(&csr, s, &mut dist, &mut queue);
        let ecc = dist.iter().filter(|&&d| d != UNSEEN).max().copied();
        best = best.max(ecc);
    }
    best
}

/// All-pairs shortest distances (each unordered reachable pair once).
///
/// O(n·m) with one shared CSR snapshot; intended for the experiment scales
/// (n up to a few thousand).
pub fn all_pairs_distances(g: &Graph) -> BTreeMap<(NodeId, NodeId), u32> {
    let csr = g.csr_view();
    let mut dist = Vec::new();
    let mut queue = VecDeque::new();
    let mut out = BTreeMap::new();
    for s in 0..csr.len() {
        bfs_dense(&csr, s, &mut dist, &mut queue);
        let v = csr.node(s);
        for (i, &d) in dist.iter().enumerate() {
            if d != UNSEEN && s < i {
                out.insert((v, csr.node(i)), d);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn n(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    #[test]
    fn bfs_on_path_matches_index_distance() {
        let g = generators::path(6);
        let d = bfs_distances(&g, n(2));
        assert_eq!(d[&n(0)], 2);
        assert_eq!(d[&n(5)], 3);
        assert_eq!(d.len(), 6);
    }

    #[test]
    fn bfs_missing_source_is_empty() {
        let g = generators::path(3);
        assert!(bfs_distances(&g, n(99)).is_empty());
    }

    #[test]
    fn distance_handles_same_node_and_disconnection() {
        let mut g = generators::path(3);
        g.add_node(n(77)).unwrap();
        assert_eq!(distance(&g, n(1), n(1)), Some(0));
        assert_eq!(distance(&g, n(0), n(77)), None);
        assert_eq!(distance(&g, n(0), n(2)), Some(2));
    }

    #[test]
    fn shortest_path_endpoints_and_length() {
        let g = generators::cycle(8);
        let p = shortest_path(&g, n(0), n(3)).unwrap();
        assert_eq!(p.first(), Some(&n(0)));
        assert_eq!(p.last(), Some(&n(3)));
        assert_eq!(p.len() as u32 - 1, distance(&g, n(0), n(3)).unwrap());
        // consecutive nodes adjacent
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn shortest_path_absent_endpoints_are_none() {
        let g = generators::path(3);
        assert_eq!(shortest_path(&g, n(0), n(9)), None);
        assert_eq!(shortest_path(&g, n(9), n(0)), None);
    }

    #[test]
    fn cycle_distance_wraps() {
        let g = generators::cycle(8);
        assert_eq!(distance(&g, n(0), n(5)), Some(3));
        assert_eq!(diameter(&g), Some(4));
    }

    #[test]
    fn star_diameter_is_two() {
        let g = generators::star(10);
        assert_eq!(diameter(&g), Some(2));
        assert_eq!(eccentricity(&g, n(0)), Some(1)); // center
    }

    #[test]
    fn all_pairs_counts_each_pair_once() {
        let g = generators::complete(5);
        let ap = all_pairs_distances(&g);
        assert_eq!(ap.len(), 10);
        assert!(ap.values().all(|&d| d == 1));
    }

    #[test]
    fn all_pairs_matches_pairwise_distance_on_disconnected_graph() {
        let mut g = generators::path(4);
        g.add_node(n(50)).unwrap();
        let ap = all_pairs_distances(&g);
        for (&(u, v), &d) in &ap {
            assert_eq!(distance(&g, u, v), Some(d));
        }
        assert!(!ap.contains_key(&(n(0), n(50))));
    }
}
