//! Breadth-first traversal, shortest paths, and distance utilities.
//!
//! Stretch (success metric 3 in Figure 1 of the paper) is defined through
//! shortest-path distances in the healed graph `G_t` and in the
//! insertions-only graph `G'_t`; everything here is plain BFS because all
//! graphs are unweighted.

use std::collections::{BTreeMap, VecDeque};

use crate::{Graph, NodeId};

/// BFS distances from `src` to every reachable node (including `src` at 0).
///
/// Returns an empty map if `src` is not in the graph.
///
/// # Examples
///
/// ```
/// use xheal_graph::{generators, traversal, NodeId};
/// let g = generators::path(5);
/// let d = traversal::bfs_distances(&g, NodeId::new(0));
/// assert_eq!(d[&NodeId::new(4)], 4);
/// ```
pub fn bfs_distances(g: &Graph, src: NodeId) -> BTreeMap<NodeId, u32> {
    let mut dist = BTreeMap::new();
    if !g.contains_node(src) {
        return dist;
    }
    dist.insert(src, 0);
    let mut queue = VecDeque::from([src]);
    while let Some(v) = queue.pop_front() {
        let dv = dist[&v];
        for u in g.neighbors(v) {
            if let std::collections::btree_map::Entry::Vacant(e) = dist.entry(u) {
                e.insert(dv + 1);
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Shortest-path distance between `u` and `v`, or `None` if disconnected or
/// either endpoint is absent.
pub fn distance(g: &Graph, u: NodeId, v: NodeId) -> Option<u32> {
    if !g.contains_node(u) || !g.contains_node(v) {
        return None;
    }
    if u == v {
        return Some(0);
    }
    // Early-exit BFS.
    let mut dist = BTreeMap::from([(u, 0u32)]);
    let mut queue = VecDeque::from([u]);
    while let Some(x) = queue.pop_front() {
        let dx = dist[&x];
        for y in g.neighbors(x) {
            if y == v {
                return Some(dx + 1);
            }
            if let std::collections::btree_map::Entry::Vacant(e) = dist.entry(y) {
                e.insert(dx + 1);
                queue.push_back(y);
            }
        }
    }
    None
}

/// One shortest path from `u` to `v` (inclusive of both endpoints), or `None`.
pub fn shortest_path(g: &Graph, u: NodeId, v: NodeId) -> Option<Vec<NodeId>> {
    if !g.contains_node(u) || !g.contains_node(v) {
        return None;
    }
    if u == v {
        return Some(vec![u]);
    }
    let mut parent: BTreeMap<NodeId, NodeId> = BTreeMap::new();
    let mut queue = VecDeque::from([u]);
    parent.insert(u, u);
    while let Some(x) = queue.pop_front() {
        for y in g.neighbors(x) {
            if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(y) {
                e.insert(x);
                if y == v {
                    let mut path = vec![v];
                    let mut cur = v;
                    while cur != u {
                        cur = parent[&cur];
                        path.push(cur);
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(y);
            }
        }
    }
    None
}

/// Eccentricity of `src`: the largest BFS distance to any reachable node.
pub fn eccentricity(g: &Graph, src: NodeId) -> Option<u32> {
    let d = bfs_distances(g, src);
    d.values().copied().max()
}

/// Diameter of the graph restricted to reachable pairs, or `None` for an
/// empty graph. For a disconnected graph this is the max of the component
/// diameters (infinite pairs are ignored; use [`crate::components::is_connected`]
/// first if that matters).
pub fn diameter(g: &Graph) -> Option<u32> {
    g.nodes().filter_map(|v| eccentricity(g, v)).max()
}

/// All-pairs shortest distances (each unordered reachable pair once).
///
/// O(n·m); intended for the experiment scales (n up to a few thousand).
pub fn all_pairs_distances(g: &Graph) -> BTreeMap<(NodeId, NodeId), u32> {
    let mut out = BTreeMap::new();
    for v in g.nodes() {
        for (u, d) in bfs_distances(g, v) {
            if v < u {
                out.insert((v, u), d);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn n(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    #[test]
    fn bfs_on_path_matches_index_distance() {
        let g = generators::path(6);
        let d = bfs_distances(&g, n(2));
        assert_eq!(d[&n(0)], 2);
        assert_eq!(d[&n(5)], 3);
        assert_eq!(d.len(), 6);
    }

    #[test]
    fn bfs_missing_source_is_empty() {
        let g = generators::path(3);
        assert!(bfs_distances(&g, n(99)).is_empty());
    }

    #[test]
    fn distance_handles_same_node_and_disconnection() {
        let mut g = generators::path(3);
        g.add_node(n(77)).unwrap();
        assert_eq!(distance(&g, n(1), n(1)), Some(0));
        assert_eq!(distance(&g, n(0), n(77)), None);
        assert_eq!(distance(&g, n(0), n(2)), Some(2));
    }

    #[test]
    fn shortest_path_endpoints_and_length() {
        let g = generators::cycle(8);
        let p = shortest_path(&g, n(0), n(3)).unwrap();
        assert_eq!(p.first(), Some(&n(0)));
        assert_eq!(p.last(), Some(&n(3)));
        assert_eq!(p.len() as u32 - 1, distance(&g, n(0), n(3)).unwrap());
        // consecutive nodes adjacent
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn cycle_distance_wraps() {
        let g = generators::cycle(8);
        assert_eq!(distance(&g, n(0), n(5)), Some(3));
        assert_eq!(diameter(&g), Some(4));
    }

    #[test]
    fn star_diameter_is_two() {
        let g = generators::star(10);
        assert_eq!(diameter(&g), Some(2));
        assert_eq!(eccentricity(&g, n(0)), Some(1)); // center
    }

    #[test]
    fn all_pairs_counts_each_pair_once() {
        let g = generators::complete(5);
        let ap = all_pairs_distances(&g);
        assert_eq!(ap.len(), 10);
        assert!(ap.values().all(|&d| d == 1));
    }
}
