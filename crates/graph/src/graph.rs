//! The dynamic labeled graph at the heart of the reproduction.
//!
//! An undirected *simple* graph (no self-loops, no multi-edges — the paper is
//! explicit that Xheal never creates multi-edges) whose edges carry an
//! [`EdgeLabels`] set.
//!
//! # Representation
//!
//! Nodes live in a **slot arena**: an interner maps each [`NodeId`] to a
//! `u32` slot (O(1) hash lookup on the hot path), each slot holds a sorted
//! neighbor list `Vec<Nbr>` plus a maintained black-degree counter, and slots
//! of deleted nodes are recycled through a free list so heavy churn never
//! grows the arena beyond the peak population. A side `BTreeSet` keeps the
//! deterministic ascending-`NodeId` iteration order the seeded experiments
//! replay against — [`Graph::nodes`] and [`Graph::edges`] enumerate in
//! exactly the order the seed `BTreeMap` representation did (preserved
//! verbatim as [`crate::baseline::BaselineGraph`] and proven equivalent by
//! the model-based suite in `tests/model.rs`).
//!
//! Algorithms that sweep whole neighborhoods (BFS, Laplacians, cut
//! enumeration) should grab a [`Graph::csr_view`] snapshot once and work in
//! dense `0..n` coordinates instead of re-deriving a node index per call.

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

use crate::{CloudColor, EdgeLabels, NodeId};

/// Errors returned by fallible [`Graph`] operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// The node was already present.
    NodeExists(NodeId),
    /// The node is not present.
    NodeMissing(NodeId),
    /// The edge endpoints are equal.
    SelfLoop(NodeId),
    /// The edge is not present.
    EdgeMissing(NodeId, NodeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeExists(v) => write!(f, "node {v} already exists"),
            GraphError::NodeMissing(v) => write!(f, "node {v} does not exist"),
            GraphError::SelfLoop(v) => write!(f, "self-loop at {v} rejected"),
            GraphError::EdgeMissing(u, v) => write!(f, "edge ({u},{v}) does not exist"),
        }
    }
}

impl Error for GraphError {}

/// A fast multiplicative hasher (FxHash-style) for the `NodeId → slot`
/// interner. `NodeId` feeds a single `u64`; SipHash's DoS resistance buys
/// nothing here and costs ~3× per lookup on the churn hot path.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash = (self.hash.rotate_left(5) ^ b as u64).wrapping_mul(FX_SEED);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.hash = (self.hash.rotate_left(5) ^ n).wrapping_mul(FX_SEED);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

/// `HashMap` wired to [`FxHasher`] — the workspace's hot-path map for keys
/// that are small integers (node ids, colors). Iteration order is
/// unspecified: never iterate one of these into RNG consumption or output;
/// canonicalize through a sorted structure first.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Ids below this bound are interned through a direct-indexed table.
///
/// Node ids are allocated sequentially (generators number `0..n`,
/// [`crate::IdAllocator`] counts upward), so in practice every id is small
/// and dense; the table costs 4 bytes per id ever seen and turns the
/// hot-path id→slot lookup into one array read — sequential for the sorted
/// bulk edge deltas the healer applies. Arbitrary large ids still work
/// through the spill map.
const DENSE_ID_LIMIT: u64 = 1 << 22;

const ABSENT: u32 = u32::MAX;

/// The `NodeId → slot` interner: direct-indexed for dense ids, hashed spill
/// for pathological ones.
#[derive(Clone, Debug, Default)]
struct SlotIndex {
    dense: Vec<u32>,
    spill: FxHashMap<NodeId, u32>,
    len: usize,
}

impl SlotIndex {
    #[inline]
    fn get(&self, v: NodeId) -> Option<u32> {
        let id = v.as_u64();
        if id < DENSE_ID_LIMIT {
            match self.dense.get(id as usize) {
                Some(&s) if s != ABSENT => Some(s),
                _ => None,
            }
        } else {
            self.spill.get(&v).copied()
        }
    }

    #[inline]
    fn contains(&self, v: NodeId) -> bool {
        self.get(v).is_some()
    }

    fn insert(&mut self, v: NodeId, slot: u32) {
        let id = v.as_u64();
        if id < DENSE_ID_LIMIT {
            let i = id as usize;
            if i >= self.dense.len() {
                let new_len = (i + 1).next_power_of_two().max(64);
                self.dense.resize(new_len, ABSENT);
            }
            debug_assert_eq!(self.dense[i], ABSENT);
            self.dense[i] = slot;
        } else {
            self.spill.insert(v, slot);
        }
        self.len += 1;
    }

    fn remove(&mut self, v: NodeId) -> Option<u32> {
        let id = v.as_u64();
        let out = if id < DENSE_ID_LIMIT {
            match self.dense.get_mut(id as usize) {
                Some(s) if *s != ABSENT => Some(std::mem::replace(s, ABSENT)),
                _ => None,
            }
        } else {
            self.spill.remove(&v)
        };
        if out.is_some() {
            self.len -= 1;
        }
        out
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// One directed half of an undirected edge, stored in the owner's sorted
/// neighbor list. `slot` caches the neighbor's arena slot so mirror updates
/// never re-hash.
#[derive(Clone, Debug)]
struct Nbr {
    id: NodeId,
    slot: u32,
    labels: EdgeLabels,
}

/// Arena slot: a (possibly recycled) node record.
#[derive(Clone, Debug, Default)]
struct Slot {
    node: NodeId,
    live: bool,
    black_degree: u32,
    /// Sorted ascending by neighbor `NodeId`.
    nbrs: Vec<Nbr>,
}

/// An undirected simple graph with labeled edges and deterministic iteration,
/// backed by a slot arena (see the module docs for the layout).
///
/// # Examples
///
/// ```
/// use xheal_graph::{Graph, NodeId};
/// let mut g = Graph::new();
/// let a = NodeId::new(0);
/// let b = NodeId::new(1);
/// g.add_node(a)?;
/// g.add_node(b)?;
/// g.add_black_edge(a, b)?;
/// assert_eq!(g.degree(a), Some(1));
/// assert!(g.has_edge(a, b));
/// # Ok::<(), xheal_graph::GraphError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct Graph {
    /// `NodeId → slot`: the O(1) hot-path lookup.
    index: SlotIndex,
    /// Live node ids in ascending order: the deterministic iteration spine.
    ordered: BTreeSet<NodeId>,
    /// The slot arena; `free` lists recyclable entries.
    slots: Vec<Slot>,
    free: Vec<u32>,
    edge_count: usize,
}

impl PartialEq for Graph {
    /// Semantic equality: same node set, same edges, same labels. Arena
    /// layout (slot numbers, free-list history) is intentionally ignored so
    /// two graphs built through different churn histories compare equal.
    fn eq(&self, other: &Self) -> bool {
        if self.ordered != other.ordered || self.edge_count != other.edge_count {
            return false;
        }
        self.ordered.iter().all(|&v| {
            let a = &self.slots[self.index.get(v).expect("ordered node interned") as usize];
            let b = &other.slots[other.index.get(v).expect("ordered node interned") as usize];
            a.nbrs.len() == b.nbrs.len()
                && a.nbrs
                    .iter()
                    .zip(&b.nbrs)
                    .all(|(x, y)| x.id == y.id && x.labels == y.labels)
        })
    }
}

impl Eq for Graph {}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    #[inline]
    fn slot(&self, v: NodeId) -> Option<&Slot> {
        self.index.get(v).map(|s| &self.slots[s as usize])
    }

    #[inline]
    fn find_nbr(slot: &Slot, v: NodeId) -> Result<usize, usize> {
        slot.nbrs.binary_search_by(|n| n.id.cmp(&v))
    }

    /// Number of nodes currently present.
    pub fn node_count(&self) -> usize {
        self.ordered.len()
    }

    /// Number of (undirected) edges currently present.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Is the node present?
    pub fn contains_node(&self, v: NodeId) -> bool {
        self.index.contains(v)
    }

    /// The arena slot of `v`, if present.
    ///
    /// Slots are stable while the node lives and may be recycled after its
    /// removal; they index the dense structures handed out by
    /// [`Graph::csr_view`] builders and [`Graph::slot_capacity`]-sized
    /// scratch bitmaps.
    pub fn slot_of(&self, v: NodeId) -> Option<u32> {
        self.index.get(v)
    }

    /// Upper bound (exclusive) on every slot value currently in use — the
    /// arena length. Size scratch bitmaps with this.
    pub fn slot_capacity(&self) -> usize {
        self.slots.len()
    }

    /// Is the edge present (with any label)?
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.slot(u).is_some_and(|s| Self::find_nbr(s, v).is_ok())
    }

    /// The labels on edge `(u, v)`, if it exists.
    pub fn edge_labels(&self, u: NodeId, v: NodeId) -> Option<&EdgeLabels> {
        let s = self.slot(u)?;
        Self::find_nbr(s, v).ok().map(|i| &s.nbrs[i].labels)
    }

    /// Iterator over all node ids, ascending.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.ordered.iter().copied()
    }

    /// Sorted vector of all node ids.
    pub fn node_vec(&self) -> Vec<NodeId> {
        self.ordered.iter().copied().collect()
    }

    /// Iterator over all undirected edges as `(u, v, labels)` with `u < v`,
    /// ascending lexicographically — identical order to the seed
    /// representation.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, &EdgeLabels)> + '_ {
        self.ordered.iter().flat_map(move |&u| {
            let s = &self.slots[self.index.get(u).expect("ordered node interned") as usize];
            s.nbrs
                .iter()
                .filter(move |n| u < n.id)
                .map(move |n| (u, n.id, &n.labels))
        })
    }

    /// Degree of `v` (number of incident edges of any label), if present.
    pub fn degree(&self, v: NodeId) -> Option<usize> {
        self.slot(v).map(|s| s.nbrs.len())
    }

    /// Number of incident *black* edges of `v`, if present.
    ///
    /// Maintained as a per-slot counter — O(1), never a label scan.
    pub fn black_degree(&self, v: NodeId) -> Option<usize> {
        self.slot(v).map(|s| s.black_degree as usize)
    }

    /// Iterator over neighbors of `v` (empty if `v` absent), ascending.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.slot(v)
            .into_iter()
            .flat_map(|s| s.nbrs.iter().map(|n| n.id))
    }

    /// Neighbors of `v` together with edge labels.
    pub fn neighbors_labeled(&self, v: NodeId) -> impl Iterator<Item = (NodeId, &EdgeLabels)> + '_ {
        self.slot(v)
            .into_iter()
            .flat_map(|s| s.nbrs.iter().map(|n| (n.id, &n.labels)))
    }

    /// Neighbors of `v` connected by a black edge.
    pub fn black_neighbors(&self, v: NodeId) -> Vec<NodeId> {
        self.neighbors_labeled(v)
            .filter(|(_, l)| l.is_black())
            .map(|(u, _)| u)
            .collect()
    }

    /// Neighbors of `v` connected by an edge carrying `color`.
    pub fn colored_neighbors(&self, v: NodeId, color: CloudColor) -> Vec<NodeId> {
        self.neighbors_labeled(v)
            .filter(|(_, l)| l.has_color(color))
            .map(|(u, _)| u)
            .collect()
    }

    /// Sum of degrees over a node set (the paper's `vol(S)`).
    ///
    /// Nodes absent from the graph contribute zero.
    pub fn volume<I: IntoIterator<Item = NodeId>>(&self, nodes: I) -> usize {
        nodes.into_iter().filter_map(|v| self.degree(v)).sum()
    }

    /// Adds an isolated node.
    ///
    /// # Errors
    ///
    /// [`GraphError::NodeExists`] if `v` is already present.
    pub fn add_node(&mut self, v: NodeId) -> Result<(), GraphError> {
        if self.index.contains(v) {
            return Err(GraphError::NodeExists(v));
        }
        let slot = match self.free.pop() {
            Some(s) => {
                let sl = &mut self.slots[s as usize];
                debug_assert!(!sl.live && sl.nbrs.is_empty());
                sl.node = v;
                sl.live = true;
                s
            }
            None => {
                let s = u32::try_from(self.slots.len()).expect("arena fits in u32");
                self.slots.push(Slot {
                    node: v,
                    live: true,
                    black_degree: 0,
                    nbrs: Vec::new(),
                });
                s
            }
        };
        self.index.insert(v, slot);
        self.ordered.insert(v);
        Ok(())
    }

    /// Removes `v` and all incident edges, returning `(neighbor, labels)` for
    /// each incident edge (ascending by neighbor).
    ///
    /// This is exactly the information the healing algorithm needs when the
    /// adversary deletes a node: which neighbors were black, and which cloud
    /// colors lost an edge.
    ///
    /// # Errors
    ///
    /// [`GraphError::NodeMissing`] if `v` is not present.
    pub fn remove_node(&mut self, v: NodeId) -> Result<Vec<(NodeId, EdgeLabels)>, GraphError> {
        let mut out = Vec::new();
        self.remove_node_into(v, &mut out)?;
        Ok(out)
    }

    /// Allocation-free variant of [`Graph::remove_node`]: appends the
    /// incident `(neighbor, labels)` pairs (ascending by neighbor) to `out`
    /// instead of returning a fresh vector, so executor hot loops can reuse
    /// one scratch buffer across deletions.
    ///
    /// `out` is *not* cleared first.
    ///
    /// # Errors
    ///
    /// [`GraphError::NodeMissing`] if `v` is not present (`out` untouched).
    pub fn remove_node_into(
        &mut self,
        v: NodeId,
        out: &mut Vec<(NodeId, EdgeLabels)>,
    ) -> Result<(), GraphError> {
        let Some(sv) = self.index.get(v) else {
            return Err(GraphError::NodeMissing(v));
        };
        let sv = sv as usize;
        let mut nbrs = std::mem::take(&mut self.slots[sv].nbrs);
        out.reserve(nbrs.len());
        for nbr in nbrs.drain(..) {
            let su = nbr.slot as usize;
            let pu = Self::find_nbr(&self.slots[su], v).expect("mirror entry");
            self.slots[su].nbrs.remove(pu);
            if nbr.labels.is_black() {
                self.slots[su].black_degree -= 1;
            }
            self.edge_count -= 1;
            out.push((nbr.id, nbr.labels));
        }
        let slot = &mut self.slots[sv];
        // Hand the (now empty) list back so a recycled slot reuses its
        // warmed capacity instead of reallocating from zero.
        slot.nbrs = nbrs;
        slot.live = false;
        slot.black_degree = 0;
        self.index.remove(v);
        self.ordered.remove(&v);
        self.free.push(sv as u32);
        Ok(())
    }

    fn check_endpoints(&self, u: NodeId, v: NodeId) -> Result<(u32, u32), GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        let su = self.index.get(u).ok_or(GraphError::NodeMissing(u))?;
        let sv = self.index.get(v).ok_or(GraphError::NodeMissing(v))?;
        Ok((su, sv))
    }

    /// Inserts or updates the `(u → v)` half-edge. Returns `true` when the
    /// entry was newly created.
    fn upsert_half(&mut self, su: u32, sv: u32, v: NodeId, labels: &EdgeLabels) -> bool {
        let slot = &mut self.slots[su as usize];
        match Self::find_nbr(slot, v) {
            Ok(p) => {
                let l = &mut slot.nbrs[p].labels;
                let was_black = l.is_black();
                l.merge(labels);
                if !was_black && l.is_black() {
                    slot.black_degree += 1;
                }
                false
            }
            Err(p) => {
                if labels.is_black() {
                    slot.black_degree += 1;
                }
                slot.nbrs.insert(
                    p,
                    Nbr {
                        id: v,
                        slot: sv,
                        labels: labels.clone(),
                    },
                );
                true
            }
        }
    }

    fn add_labeled_edge(
        &mut self,
        u: NodeId,
        v: NodeId,
        labels: EdgeLabels,
    ) -> Result<bool, GraphError> {
        let (su, sv) = self.check_endpoints(u, v)?;
        let created = self.upsert_half(su, sv, v, &labels);
        let mirrored = self.upsert_half(sv, su, u, &labels);
        debug_assert_eq!(created, mirrored, "adjacency must stay symmetric");
        if created {
            self.edge_count += 1;
        }
        Ok(created)
    }

    /// Adds the black label to edge `(u, v)`, creating the edge if needed.
    /// Returns `true` if a brand-new edge was created.
    ///
    /// # Errors
    ///
    /// [`GraphError::SelfLoop`] / [`GraphError::NodeMissing`] on bad endpoints.
    pub fn add_black_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool, GraphError> {
        self.add_labeled_edge(u, v, EdgeLabels::black())
    }

    /// Adds cloud color `color` to edge `(u, v)`, creating the edge if needed
    /// (the paper's "recoloring" of an existing edge never duplicates it).
    /// Returns `true` if a brand-new edge was created.
    ///
    /// # Errors
    ///
    /// [`GraphError::SelfLoop`] / [`GraphError::NodeMissing`] on bad endpoints.
    pub fn add_colored_edge(
        &mut self,
        u: NodeId,
        v: NodeId,
        color: CloudColor,
    ) -> Result<bool, GraphError> {
        self.add_labeled_edge(u, v, EdgeLabels::colored(color))
    }

    /// Applies `strip` to both halves of edge `(u, v)`; removes the edge
    /// entirely if no label remains. Returns `true` on full removal, `false`
    /// when labels remain or the edge/endpoint is absent.
    fn strip_with(&mut self, u: NodeId, v: NodeId, strip: impl Fn(&mut EdgeLabels)) -> bool {
        let Some(su) = self.index.get(u) else {
            return false;
        };
        let su = su as usize;
        let Ok(pu) = Self::find_nbr(&self.slots[su], v) else {
            return false;
        };
        let sv = self.slots[su].nbrs[pu].slot as usize;
        let entry = &mut self.slots[su].nbrs[pu];
        let was_black = entry.labels.is_black();
        strip(&mut entry.labels);
        let now_black = entry.labels.is_black();
        let empty = entry.labels.is_empty();
        if was_black && !now_black {
            self.slots[su].black_degree -= 1;
            self.slots[sv].black_degree -= 1;
        }
        let pv = Self::find_nbr(&self.slots[sv], u).expect("mirror entry");
        if empty {
            self.slots[su].nbrs.remove(pu);
            self.slots[sv].nbrs.remove(pv);
            self.edge_count -= 1;
        } else {
            strip(&mut self.slots[sv].nbrs[pv].labels);
        }
        empty
    }

    /// Removes `color` from edge `(u, v)`; deletes the edge entirely if no
    /// label remains. Returns `true` if the edge was fully removed.
    ///
    /// Missing edges and missing colors are tolerated (returns `false`): cloud
    /// teardown may race with node deletions that already removed edges.
    pub fn strip_color(&mut self, u: NodeId, v: NodeId, color: CloudColor) -> bool {
        self.strip_with(u, v, |l| {
            l.remove_color(color);
        })
    }

    /// Removes the black label from edge `(u, v)`; deletes the edge entirely
    /// if no label remains. Returns `true` if the edge was fully removed.
    pub fn strip_black(&mut self, u: NodeId, v: NodeId) -> bool {
        self.strip_with(u, v, EdgeLabels::clear_black)
    }

    /// Removes the edge regardless of labels.
    ///
    /// # Errors
    ///
    /// [`GraphError::EdgeMissing`] if the edge is not present.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<EdgeLabels, GraphError> {
        let Some(su) = self.index.get(u) else {
            return Err(GraphError::EdgeMissing(u, v));
        };
        let su = su as usize;
        let Ok(pu) = Self::find_nbr(&self.slots[su], v) else {
            return Err(GraphError::EdgeMissing(u, v));
        };
        let nbr = self.slots[su].nbrs.remove(pu);
        let sv = nbr.slot as usize;
        let pv = Self::find_nbr(&self.slots[sv], u).expect("mirror entry");
        self.slots[sv].nbrs.remove(pv);
        if nbr.labels.is_black() {
            self.slots[su].black_degree -= 1;
            self.slots[sv].black_degree -= 1;
        }
        self.edge_count -= 1;
        Ok(nbr.labels)
    }

    /// Number of edges crossing the cut `(S, V - S)`.
    ///
    /// Uses an arena-slot bitmap: O(|S|·deg + capacity) with no tree or set
    /// allocations. Duplicate entries in `S` are tolerated (counted once);
    /// nodes absent from the graph are ignored.
    pub fn cut_size(&self, s: &[NodeId]) -> usize {
        let mut in_s = vec![false; self.slots.len()];
        let mut side: Vec<u32> = Vec::with_capacity(s.len());
        for &v in s {
            if let Some(sl) = self.index.get(v) {
                if !in_s[sl as usize] {
                    in_s[sl as usize] = true;
                    side.push(sl);
                }
            }
        }
        side.iter()
            .map(|&sl| {
                self.slots[sl as usize]
                    .nbrs
                    .iter()
                    .filter(|n| !in_s[n.slot as usize])
                    .count()
            })
            .sum()
    }

    /// Builds a dense CSR snapshot of the current topology: nodes in
    /// ascending-`NodeId` order re-numbered `0..n`, neighbor lists as dense
    /// indices. One O(n + m) pass — no per-neighbor searches — shared by the
    /// Laplacian operators, BFS, components, and cut enumeration.
    pub fn csr_view(&self) -> CsrView {
        let n = self.ordered.len();
        let mut nodes = Vec::with_capacity(n);
        let mut slot_to_dense = vec![u32::MAX; self.slots.len()];
        for (i, &v) in self.ordered.iter().enumerate() {
            nodes.push(v);
            slot_to_dense[self.index.get(v).expect("ordered node interned") as usize] = i as u32;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(2 * self.edge_count);
        offsets.push(0u32);
        for &v in &nodes {
            let s = &self.slots[self.index.get(v).expect("ordered node interned") as usize];
            neighbors.extend(s.nbrs.iter().map(|nb| slot_to_dense[nb.slot as usize]));
            offsets.push(neighbors.len() as u32);
        }
        CsrView {
            nodes,
            offsets,
            neighbors,
        }
    }

    /// Consistency check used by tests and debug assertions: adjacency is
    /// symmetric, labels mirror, neighbor lists sorted, no self-loops,
    /// maintained counters and the free list agree with reality.
    pub fn validate(&self) -> Result<(), String> {
        if self.index.len() != self.ordered.len() {
            return Err("index/ordered size mismatch".into());
        }
        let live = self.slots.iter().filter(|s| s.live).count();
        if live != self.ordered.len() {
            return Err(format!(
                "{live} live slots for {} nodes",
                self.ordered.len()
            ));
        }
        if self.free.len() + live != self.slots.len() {
            return Err("free list does not cover dead slots".into());
        }
        for &f in &self.free {
            let s = &self.slots[f as usize];
            if s.live || !s.nbrs.is_empty() {
                return Err(format!("free slot {f} still live or populated"));
            }
        }
        let mut count = 0usize;
        for &u in &self.ordered {
            let Some(su) = self.index.get(u) else {
                return Err(format!("ordered node {u} missing from index"));
            };
            let s = &self.slots[su as usize];
            if !s.live || s.node != u {
                return Err(format!("slot {su} does not back node {u}"));
            }
            let mut black = 0u32;
            for w in s.nbrs.windows(2) {
                if w[0].id >= w[1].id {
                    return Err(format!("unsorted neighbor list at {u}"));
                }
            }
            for nbr in &s.nbrs {
                let v = nbr.id;
                if u == v {
                    return Err(format!("self-loop at {u}"));
                }
                if nbr.labels.is_empty() {
                    return Err(format!("empty labels on ({u},{v})"));
                }
                if nbr.labels.is_black() {
                    black += 1;
                }
                let ms = &self.slots[nbr.slot as usize];
                if !ms.live || ms.node != v {
                    return Err(format!("stale neighbor slot on ({u},{v})"));
                }
                let mirror = Self::find_nbr(ms, u)
                    .map(|i| &ms.nbrs[i])
                    .map_err(|_| format!("asymmetric edge ({u},{v})"))?;
                if mirror.labels != nbr.labels {
                    return Err(format!("label mismatch on ({u},{v})"));
                }
                if u < v {
                    count += 1;
                }
            }
            if black != s.black_degree {
                return Err(format!(
                    "black degree counter {} != {} at {u}",
                    s.black_degree, black
                ));
            }
        }
        if count != self.edge_count {
            return Err(format!(
                "edge count {} does not match stored {}",
                count, self.edge_count
            ));
        }
        Ok(())
    }
}

/// A dense CSR snapshot of a [`Graph`], built by [`Graph::csr_view`].
///
/// Node `i` (for `i` in `0..len()`) is `nodes()[i]`, the `i`-th live node in
/// ascending `NodeId` order; `neighbors_of(i)` yields dense indices, sorted
/// ascending. The snapshot does not track later mutations.
///
/// # Examples
///
/// ```
/// use xheal_graph::generators;
/// let g = generators::cycle(5);
/// let csr = g.csr_view();
/// assert_eq!(csr.len(), 5);
/// assert_eq!(csr.neighbors_of(0), &[1, 4]);
/// ```
#[derive(Clone, Debug)]
pub struct CsrView {
    nodes: Vec<NodeId>,
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
}

impl CsrView {
    /// Assembles a view from raw CSR arrays — the entry point for consumers
    /// (e.g. incrementally maintained monitors) that build the dense
    /// representation themselves and want to hand it to the CSR-consuming
    /// algorithms without an owning copy of a [`Graph`].
    ///
    /// Invariants required (debug-asserted): `nodes` sorted strictly
    /// ascending, `offsets.len() == nodes.len() + 1` starting at 0 and
    /// non-decreasing with `neighbors.len()` as the final entry, and every
    /// neighbor index below `nodes.len()`.
    pub fn from_parts(nodes: Vec<NodeId>, offsets: Vec<u32>, neighbors: Vec<u32>) -> Self {
        debug_assert_eq!(offsets.len(), nodes.len() + 1);
        debug_assert_eq!(offsets.first(), Some(&0));
        debug_assert_eq!(
            *offsets.last().expect("nonempty offsets") as usize,
            neighbors.len()
        );
        debug_assert!(nodes.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!(neighbors.iter().all(|&j| (j as usize) < nodes.len()));
        CsrView {
            nodes,
            offsets,
            neighbors,
        }
    }

    /// Number of nodes in the snapshot.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the snapshot has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node ids backing dense coordinates, ascending.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The node id at dense index `i`.
    pub fn node(&self, i: usize) -> NodeId {
        self.nodes[i]
    }

    /// Dense index of `v`, if present (binary search over the sorted spine).
    pub fn index_of(&self, v: NodeId) -> Option<usize> {
        self.nodes.binary_search(&v).ok()
    }

    /// Dense neighbor indices of dense node `i`, ascending.
    pub fn neighbors_of(&self, i: usize) -> &[u32] {
        &self.neighbors[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Degree of dense node `i`.
    pub fn degree_of(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// The raw offset array (`len() + 1` entries, first 0, last
    /// `neighbors_flat().len()`), for matrix-free operators borrowing the
    /// CSR arrays directly.
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The raw flattened neighbor array (`2 × edge count` dense indices).
    pub fn neighbors_flat(&self) -> &[u32] {
        &self.neighbors
    }

    /// Number of undirected edges in the snapshot.
    pub fn edge_count(&self) -> usize {
        self.neighbors.len() / 2
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "graph: {} nodes, {} edges",
            self.node_count(),
            self.edge_count()
        )?;
        for (u, v, l) in self.edges() {
            writeln!(f, "  {u} -- {v} [{l}]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    fn triangle() -> Graph {
        let mut g = Graph::new();
        for i in 0..3 {
            g.add_node(n(i)).unwrap();
        }
        g.add_black_edge(n(0), n(1)).unwrap();
        g.add_black_edge(n(1), n(2)).unwrap();
        g.add_black_edge(n(2), n(0)).unwrap();
        g
    }

    #[test]
    fn add_and_query_nodes() {
        let mut g = Graph::new();
        assert_eq!(g.node_count(), 0);
        g.add_node(n(1)).unwrap();
        assert!(g.contains_node(n(1)));
        assert_eq!(g.add_node(n(1)), Err(GraphError::NodeExists(n(1))));
        assert_eq!(g.degree(n(1)), Some(0));
        assert_eq!(g.degree(n(2)), None);
    }

    #[test]
    fn self_loops_rejected() {
        let mut g = Graph::new();
        g.add_node(n(1)).unwrap();
        assert_eq!(
            g.add_black_edge(n(1), n(1)),
            Err(GraphError::SelfLoop(n(1)))
        );
    }

    #[test]
    fn missing_endpoint_rejected() {
        let mut g = Graph::new();
        g.add_node(n(1)).unwrap();
        assert_eq!(
            g.add_black_edge(n(1), n(2)),
            Err(GraphError::NodeMissing(n(2)))
        );
    }

    #[test]
    fn black_edge_roundtrip() {
        let g = triangle();
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(n(0)), Some(2));
        assert_eq!(g.black_degree(n(0)), Some(2));
        assert!(g.edge_labels(n(0), n(1)).unwrap().is_black());
        g.validate().unwrap();
    }

    #[test]
    fn recolor_existing_black_edge_keeps_single_edge() {
        let mut g = triangle();
        let c = CloudColor::new(7);
        let created = g.add_colored_edge(n(0), n(1), c).unwrap();
        assert!(!created, "edge already existed; must not duplicate");
        assert_eq!(g.edge_count(), 3);
        let l = g.edge_labels(n(0), n(1)).unwrap();
        assert!(l.is_black() && l.has_color(c));
        g.validate().unwrap();
    }

    #[test]
    fn strip_color_removes_edge_only_when_label_set_empties() {
        let mut g = triangle();
        let c = CloudColor::new(7);
        g.add_colored_edge(n(0), n(1), c).unwrap();
        assert!(!g.strip_color(n(0), n(1), c), "black label remains");
        assert!(g.has_edge(n(0), n(1)));
        assert!(g.strip_black(n(0), n(1)), "now fully removed");
        assert!(!g.has_edge(n(0), n(1)));
        assert_eq!(g.edge_count(), 2);
        g.validate().unwrap();
    }

    #[test]
    fn strip_on_missing_edge_is_noop() {
        let mut g = triangle();
        assert!(!g.strip_color(n(0), n(1), CloudColor::new(99)));
        assert!(!g.strip_color(n(0), n(42), CloudColor::new(1)));
        assert!(g.has_edge(n(0), n(1)));
    }

    #[test]
    fn remove_node_returns_incident_labels() {
        let mut g = triangle();
        let c = CloudColor::new(3);
        g.add_colored_edge(n(0), n(2), c).unwrap();
        let incident = g.remove_node(n(0)).unwrap();
        assert_eq!(incident.len(), 2);
        assert_eq!(incident[0].0, n(1));
        assert!(incident[0].1.is_black());
        assert_eq!(incident[1].0, n(2));
        assert!(incident[1].1.has_color(c));
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        g.validate().unwrap();
    }

    #[test]
    fn remove_missing_node_errors() {
        let mut g = Graph::new();
        assert_eq!(g.remove_node(n(5)), Err(GraphError::NodeMissing(n(5))));
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = triangle();
        let edges: Vec<(NodeId, NodeId)> = g.edges().map(|(u, v, _)| (u, v)).collect();
        assert_eq!(edges, vec![(n(0), n(1)), (n(0), n(2)), (n(1), n(2))]);
    }

    #[test]
    fn cut_size_counts_crossing_edges() {
        let g = triangle();
        assert_eq!(g.cut_size(&[n(0)]), 2);
        assert_eq!(g.cut_size(&[n(0), n(1)]), 2);
        assert_eq!(g.cut_size(&[n(0), n(1), n(2)]), 0);
        assert_eq!(g.cut_size(&[]), 0);
        // Duplicates and absent nodes are tolerated.
        assert_eq!(g.cut_size(&[n(0), n(0), n(99)]), 2);
    }

    #[test]
    fn volume_sums_degrees() {
        let g = triangle();
        assert_eq!(g.volume([n(0), n(1)]), 4);
        assert_eq!(g.volume([n(99)]), 0);
    }

    #[test]
    fn colored_and_black_neighbor_queries() {
        let mut g = triangle();
        let c = CloudColor::new(1);
        g.add_colored_edge(n(0), n(1), c).unwrap();
        g.strip_black(n(0), n(1));
        assert_eq!(g.black_neighbors(n(0)), vec![n(2)]);
        assert_eq!(g.colored_neighbors(n(0), c), vec![n(1)]);
        assert_eq!(g.black_degree(n(0)), Some(1));
        assert_eq!(g.degree(n(0)), Some(2));
    }

    #[test]
    fn remove_edge_returns_labels() {
        let mut g = triangle();
        let l = g.remove_edge(n(0), n(1)).unwrap();
        assert!(l.is_black());
        assert_eq!(
            g.remove_edge(n(0), n(1)),
            Err(GraphError::EdgeMissing(n(0), n(1)))
        );
    }

    #[test]
    fn display_lists_edges() {
        let g = triangle();
        let s = format!("{g}");
        assert!(s.contains("3 nodes, 3 edges"));
        assert!(s.contains("n0 -- n1 [black]"));
    }

    #[test]
    fn slots_are_recycled_under_churn() {
        let mut g = triangle();
        let cap = g.slot_capacity();
        for i in 10..100 {
            g.add_node(n(i)).unwrap();
            g.add_black_edge(n(0), n(i)).unwrap();
            g.remove_node(n(i)).unwrap();
        }
        assert_eq!(
            g.slot_capacity(),
            cap + 1,
            "churn reuses one recycled slot instead of growing the arena"
        );
        g.validate().unwrap();
    }

    #[test]
    fn slot_of_tracks_membership() {
        let mut g = triangle();
        assert!(g.slot_of(n(1)).is_some());
        assert!(g.slot_of(n(9)).is_none());
        g.remove_node(n(1)).unwrap();
        assert!(g.slot_of(n(1)).is_none());
    }

    #[test]
    fn black_degree_counter_survives_label_churn() {
        let mut g = triangle();
        let c = CloudColor::new(4);
        // Toggle black off and on under an added color.
        g.add_colored_edge(n(0), n(1), c).unwrap();
        g.strip_black(n(0), n(1));
        assert_eq!(g.black_degree(n(0)), Some(1));
        assert_eq!(g.black_degree(n(1)), Some(1));
        g.add_black_edge(n(0), n(1)).unwrap();
        assert_eq!(g.black_degree(n(0)), Some(2));
        g.remove_edge(n(0), n(1)).unwrap();
        assert_eq!(g.black_degree(n(0)), Some(1));
        g.validate().unwrap();
    }

    #[test]
    fn semantic_equality_ignores_arena_history() {
        // Same final topology via different churn histories.
        let mut a = triangle();
        a.add_node(n(7)).unwrap();
        a.add_black_edge(n(0), n(7)).unwrap();
        a.remove_node(n(7)).unwrap();

        let b = triangle();
        assert_eq!(a, b);
        let mut c = triangle();
        c.strip_black(n(0), n(1));
        assert_ne!(a, c);
    }

    #[test]
    fn csr_view_matches_adjacency() {
        let mut g = triangle();
        g.add_node(n(10)).unwrap();
        g.add_black_edge(n(10), n(1)).unwrap();
        // Force slot reuse so dense order != slot order.
        g.remove_node(n(0)).unwrap();
        g.add_node(n(20)).unwrap();
        g.add_black_edge(n(20), n(2)).unwrap();

        let csr = g.csr_view();
        assert_eq!(csr.nodes(), &[n(1), n(2), n(10), n(20)]);
        for i in 0..csr.len() {
            let v = csr.node(i);
            let expect: Vec<NodeId> = g.neighbors(v).collect();
            let got: Vec<NodeId> = csr
                .neighbors_of(i)
                .iter()
                .map(|&j| csr.node(j as usize))
                .collect();
            assert_eq!(got, expect, "dense adjacency of {v}");
            assert_eq!(csr.degree_of(i), g.degree(v).unwrap());
            assert_eq!(csr.index_of(v), Some(i));
        }
        assert_eq!(csr.index_of(n(0)), None);
    }
}
