//! The dynamic labeled graph at the heart of the reproduction.
//!
//! An undirected *simple* graph (no self-loops, no multi-edges — the paper is
//! explicit that Xheal never creates multi-edges) whose edges carry an
//! [`EdgeLabels`] set. Iteration order is deterministic (`BTreeMap`-backed),
//! which keeps every experiment reproducible from a seed.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::{CloudColor, EdgeLabels, NodeId};

/// Errors returned by fallible [`Graph`] operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// The node was already present.
    NodeExists(NodeId),
    /// The node is not present.
    NodeMissing(NodeId),
    /// The edge endpoints are equal.
    SelfLoop(NodeId),
    /// The edge is not present.
    EdgeMissing(NodeId, NodeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeExists(v) => write!(f, "node {v} already exists"),
            GraphError::NodeMissing(v) => write!(f, "node {v} does not exist"),
            GraphError::SelfLoop(v) => write!(f, "self-loop at {v} rejected"),
            GraphError::EdgeMissing(u, v) => write!(f, "edge ({u},{v}) does not exist"),
        }
    }
}

impl Error for GraphError {}

/// An undirected simple graph with labeled edges and deterministic iteration.
///
/// # Examples
///
/// ```
/// use xheal_graph::{Graph, NodeId};
/// let mut g = Graph::new();
/// let a = NodeId::new(0);
/// let b = NodeId::new(1);
/// g.add_node(a)?;
/// g.add_node(b)?;
/// g.add_black_edge(a, b)?;
/// assert_eq!(g.degree(a), Some(1));
/// assert!(g.has_edge(a, b));
/// # Ok::<(), xheal_graph::GraphError>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Graph {
    adj: BTreeMap<NodeId, BTreeMap<NodeId, EdgeLabels>>,
    edge_count: usize,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Number of nodes currently present.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of (undirected) edges currently present.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Is the node present?
    pub fn contains_node(&self, v: NodeId) -> bool {
        self.adj.contains_key(&v)
    }

    /// Is the edge present (with any label)?
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adj.get(&u).is_some_and(|n| n.contains_key(&v))
    }

    /// The labels on edge `(u, v)`, if it exists.
    pub fn edge_labels(&self, u: NodeId, v: NodeId) -> Option<&EdgeLabels> {
        self.adj.get(&u).and_then(|n| n.get(&v))
    }

    /// Iterator over all node ids, ascending.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.adj.keys().copied()
    }

    /// Sorted vector of all node ids.
    pub fn node_vec(&self) -> Vec<NodeId> {
        self.adj.keys().copied().collect()
    }

    /// Iterator over all undirected edges as `(u, v, labels)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, &EdgeLabels)> + '_ {
        self.adj.iter().flat_map(|(&u, nbrs)| {
            nbrs.iter()
                .filter(move |(&v, _)| u < v)
                .map(move |(&v, l)| (u, v, l))
        })
    }

    /// Degree of `v` (number of incident edges of any label), if present.
    pub fn degree(&self, v: NodeId) -> Option<usize> {
        self.adj.get(&v).map(|n| n.len())
    }

    /// Number of incident *black* edges of `v`, if present.
    pub fn black_degree(&self, v: NodeId) -> Option<usize> {
        self.adj
            .get(&v)
            .map(|n| n.values().filter(|l| l.is_black()).count())
    }

    /// Iterator over neighbors of `v` (empty if `v` absent), ascending.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adj.get(&v).into_iter().flat_map(|n| n.keys().copied())
    }

    /// Neighbors of `v` together with edge labels.
    pub fn neighbors_labeled(&self, v: NodeId) -> impl Iterator<Item = (NodeId, &EdgeLabels)> + '_ {
        self.adj
            .get(&v)
            .into_iter()
            .flat_map(|n| n.iter().map(|(&u, l)| (u, l)))
    }

    /// Neighbors of `v` connected by a black edge.
    pub fn black_neighbors(&self, v: NodeId) -> Vec<NodeId> {
        self.neighbors_labeled(v)
            .filter(|(_, l)| l.is_black())
            .map(|(u, _)| u)
            .collect()
    }

    /// Neighbors of `v` connected by an edge carrying `color`.
    pub fn colored_neighbors(&self, v: NodeId, color: CloudColor) -> Vec<NodeId> {
        self.neighbors_labeled(v)
            .filter(|(_, l)| l.has_color(color))
            .map(|(u, _)| u)
            .collect()
    }

    /// Sum of degrees over a node set (the paper's `vol(S)`).
    ///
    /// Nodes absent from the graph contribute zero.
    pub fn volume<I: IntoIterator<Item = NodeId>>(&self, nodes: I) -> usize {
        nodes.into_iter().filter_map(|v| self.degree(v)).sum()
    }

    /// Adds an isolated node.
    ///
    /// # Errors
    ///
    /// [`GraphError::NodeExists`] if `v` is already present.
    pub fn add_node(&mut self, v: NodeId) -> Result<(), GraphError> {
        if self.adj.contains_key(&v) {
            return Err(GraphError::NodeExists(v));
        }
        self.adj.insert(v, BTreeMap::new());
        Ok(())
    }

    /// Removes `v` and all incident edges, returning `(neighbor, labels)` for
    /// each incident edge (ascending by neighbor).
    ///
    /// This is exactly the information the healing algorithm needs when the
    /// adversary deletes a node: which neighbors were black, and which cloud
    /// colors lost an edge.
    ///
    /// # Errors
    ///
    /// [`GraphError::NodeMissing`] if `v` is not present.
    pub fn remove_node(&mut self, v: NodeId) -> Result<Vec<(NodeId, EdgeLabels)>, GraphError> {
        let nbrs = self.adj.remove(&v).ok_or(GraphError::NodeMissing(v))?;
        let mut out = Vec::with_capacity(nbrs.len());
        for (u, labels) in nbrs {
            if let Some(n) = self.adj.get_mut(&u) {
                n.remove(&v);
            }
            self.edge_count -= 1;
            out.push((u, labels));
        }
        Ok(out)
    }

    fn check_endpoints(&self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        if !self.adj.contains_key(&u) {
            return Err(GraphError::NodeMissing(u));
        }
        if !self.adj.contains_key(&v) {
            return Err(GraphError::NodeMissing(v));
        }
        Ok(())
    }

    /// Adds the black label to edge `(u, v)`, creating the edge if needed.
    /// Returns `true` if a brand-new edge was created.
    ///
    /// # Errors
    ///
    /// [`GraphError::SelfLoop`] / [`GraphError::NodeMissing`] on bad endpoints.
    pub fn add_black_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool, GraphError> {
        self.check_endpoints(u, v)?;
        let created = !self.has_edge(u, v);
        if created {
            self.edge_count += 1;
            self.adj
                .get_mut(&u)
                .expect("checked")
                .insert(v, EdgeLabels::black());
            self.adj
                .get_mut(&v)
                .expect("checked")
                .insert(u, EdgeLabels::black());
        } else {
            self.adj
                .get_mut(&u)
                .expect("checked")
                .get_mut(&v)
                .expect("checked")
                .set_black();
            self.adj
                .get_mut(&v)
                .expect("checked")
                .get_mut(&u)
                .expect("checked")
                .set_black();
        }
        Ok(created)
    }

    /// Adds cloud color `color` to edge `(u, v)`, creating the edge if needed
    /// (the paper's "recoloring" of an existing edge never duplicates it).
    /// Returns `true` if a brand-new edge was created.
    ///
    /// # Errors
    ///
    /// [`GraphError::SelfLoop`] / [`GraphError::NodeMissing`] on bad endpoints.
    pub fn add_colored_edge(
        &mut self,
        u: NodeId,
        v: NodeId,
        color: CloudColor,
    ) -> Result<bool, GraphError> {
        self.check_endpoints(u, v)?;
        let created = !self.has_edge(u, v);
        if created {
            self.edge_count += 1;
            self.adj
                .get_mut(&u)
                .expect("checked")
                .insert(v, EdgeLabels::colored(color));
            self.adj
                .get_mut(&v)
                .expect("checked")
                .insert(u, EdgeLabels::colored(color));
        } else {
            self.adj
                .get_mut(&u)
                .expect("checked")
                .get_mut(&v)
                .expect("checked")
                .add_color(color);
            self.adj
                .get_mut(&v)
                .expect("checked")
                .get_mut(&u)
                .expect("checked")
                .add_color(color);
        }
        Ok(created)
    }

    /// Removes `color` from edge `(u, v)`; deletes the edge entirely if no
    /// label remains. Returns `true` if the edge was fully removed.
    ///
    /// Missing edges and missing colors are tolerated (returns `false`): cloud
    /// teardown may race with node deletions that already removed edges.
    pub fn strip_color(&mut self, u: NodeId, v: NodeId, color: CloudColor) -> bool {
        let Some(nu) = self.adj.get_mut(&u) else {
            return false;
        };
        let Some(labels) = nu.get_mut(&v) else {
            return false;
        };
        labels.remove_color(color);
        let empty = labels.is_empty();
        if empty {
            nu.remove(&v);
            self.adj.get_mut(&v).expect("mirror").remove(&u);
            self.edge_count -= 1;
        } else {
            self.adj
                .get_mut(&v)
                .expect("mirror")
                .get_mut(&u)
                .expect("mirror")
                .remove_color(color);
        }
        empty
    }

    /// Removes the black label from edge `(u, v)`; deletes the edge entirely
    /// if no label remains. Returns `true` if the edge was fully removed.
    pub fn strip_black(&mut self, u: NodeId, v: NodeId) -> bool {
        let Some(nu) = self.adj.get_mut(&u) else {
            return false;
        };
        let Some(labels) = nu.get_mut(&v) else {
            return false;
        };
        labels.clear_black();
        let empty = labels.is_empty();
        if empty {
            nu.remove(&v);
            self.adj.get_mut(&v).expect("mirror").remove(&u);
            self.edge_count -= 1;
        } else {
            self.adj
                .get_mut(&v)
                .expect("mirror")
                .get_mut(&u)
                .expect("mirror")
                .clear_black();
        }
        empty
    }

    /// Removes the edge regardless of labels.
    ///
    /// # Errors
    ///
    /// [`GraphError::EdgeMissing`] if the edge is not present.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<EdgeLabels, GraphError> {
        let labels = self
            .adj
            .get_mut(&u)
            .and_then(|n| n.remove(&v))
            .ok_or(GraphError::EdgeMissing(u, v))?;
        self.adj.get_mut(&v).expect("mirror").remove(&u);
        self.edge_count -= 1;
        Ok(labels)
    }

    /// Number of edges crossing the cut `(S, V - S)`.
    ///
    /// `S` must be duplicate-free; nodes absent from the graph are ignored.
    pub fn cut_size(&self, s: &[NodeId]) -> usize {
        use std::collections::BTreeSet;
        let set: BTreeSet<NodeId> = s.iter().copied().collect();
        set.iter()
            .filter_map(|&v| self.adj.get(&v))
            .map(|nbrs| nbrs.keys().filter(|u| !set.contains(u)).count())
            .sum()
    }

    /// Consistency check used by tests and debug assertions: adjacency is
    /// symmetric, labels mirror, no self-loops, edge count matches.
    pub fn validate(&self) -> Result<(), String> {
        let mut count = 0usize;
        for (&u, nbrs) in &self.adj {
            for (&v, l) in nbrs {
                if u == v {
                    return Err(format!("self-loop at {u}"));
                }
                if l.is_empty() {
                    return Err(format!("empty labels on ({u},{v})"));
                }
                let mirror = self
                    .adj
                    .get(&v)
                    .and_then(|n| n.get(&u))
                    .ok_or_else(|| format!("asymmetric edge ({u},{v})"))?;
                if mirror != l {
                    return Err(format!("label mismatch on ({u},{v})"));
                }
                if u < v {
                    count += 1;
                }
            }
        }
        if count != self.edge_count {
            return Err(format!(
                "edge count {} does not match stored {}",
                count, self.edge_count
            ));
        }
        Ok(())
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "graph: {} nodes, {} edges",
            self.node_count(),
            self.edge_count()
        )?;
        for (u, v, l) in self.edges() {
            writeln!(f, "  {u} -- {v} [{l}]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    fn triangle() -> Graph {
        let mut g = Graph::new();
        for i in 0..3 {
            g.add_node(n(i)).unwrap();
        }
        g.add_black_edge(n(0), n(1)).unwrap();
        g.add_black_edge(n(1), n(2)).unwrap();
        g.add_black_edge(n(2), n(0)).unwrap();
        g
    }

    #[test]
    fn add_and_query_nodes() {
        let mut g = Graph::new();
        assert_eq!(g.node_count(), 0);
        g.add_node(n(1)).unwrap();
        assert!(g.contains_node(n(1)));
        assert_eq!(g.add_node(n(1)), Err(GraphError::NodeExists(n(1))));
        assert_eq!(g.degree(n(1)), Some(0));
        assert_eq!(g.degree(n(2)), None);
    }

    #[test]
    fn self_loops_rejected() {
        let mut g = Graph::new();
        g.add_node(n(1)).unwrap();
        assert_eq!(
            g.add_black_edge(n(1), n(1)),
            Err(GraphError::SelfLoop(n(1)))
        );
    }

    #[test]
    fn missing_endpoint_rejected() {
        let mut g = Graph::new();
        g.add_node(n(1)).unwrap();
        assert_eq!(
            g.add_black_edge(n(1), n(2)),
            Err(GraphError::NodeMissing(n(2)))
        );
    }

    #[test]
    fn black_edge_roundtrip() {
        let g = triangle();
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(n(0)), Some(2));
        assert_eq!(g.black_degree(n(0)), Some(2));
        assert!(g.edge_labels(n(0), n(1)).unwrap().is_black());
        g.validate().unwrap();
    }

    #[test]
    fn recolor_existing_black_edge_keeps_single_edge() {
        let mut g = triangle();
        let c = CloudColor::new(7);
        let created = g.add_colored_edge(n(0), n(1), c).unwrap();
        assert!(!created, "edge already existed; must not duplicate");
        assert_eq!(g.edge_count(), 3);
        let l = g.edge_labels(n(0), n(1)).unwrap();
        assert!(l.is_black() && l.has_color(c));
        g.validate().unwrap();
    }

    #[test]
    fn strip_color_removes_edge_only_when_label_set_empties() {
        let mut g = triangle();
        let c = CloudColor::new(7);
        g.add_colored_edge(n(0), n(1), c).unwrap();
        assert!(!g.strip_color(n(0), n(1), c), "black label remains");
        assert!(g.has_edge(n(0), n(1)));
        assert!(g.strip_black(n(0), n(1)), "now fully removed");
        assert!(!g.has_edge(n(0), n(1)));
        assert_eq!(g.edge_count(), 2);
        g.validate().unwrap();
    }

    #[test]
    fn strip_on_missing_edge_is_noop() {
        let mut g = triangle();
        assert!(!g.strip_color(n(0), n(1), CloudColor::new(99)));
        assert!(!g.strip_color(n(0), n(42), CloudColor::new(1)));
        assert!(g.has_edge(n(0), n(1)));
    }

    #[test]
    fn remove_node_returns_incident_labels() {
        let mut g = triangle();
        let c = CloudColor::new(3);
        g.add_colored_edge(n(0), n(2), c).unwrap();
        let incident = g.remove_node(n(0)).unwrap();
        assert_eq!(incident.len(), 2);
        assert_eq!(incident[0].0, n(1));
        assert!(incident[0].1.is_black());
        assert_eq!(incident[1].0, n(2));
        assert!(incident[1].1.has_color(c));
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        g.validate().unwrap();
    }

    #[test]
    fn remove_missing_node_errors() {
        let mut g = Graph::new();
        assert_eq!(g.remove_node(n(5)), Err(GraphError::NodeMissing(n(5))));
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = triangle();
        let edges: Vec<(NodeId, NodeId)> = g.edges().map(|(u, v, _)| (u, v)).collect();
        assert_eq!(edges, vec![(n(0), n(1)), (n(0), n(2)), (n(1), n(2))]);
    }

    #[test]
    fn cut_size_counts_crossing_edges() {
        let g = triangle();
        assert_eq!(g.cut_size(&[n(0)]), 2);
        assert_eq!(g.cut_size(&[n(0), n(1)]), 2);
        assert_eq!(g.cut_size(&[n(0), n(1), n(2)]), 0);
        assert_eq!(g.cut_size(&[]), 0);
    }

    #[test]
    fn volume_sums_degrees() {
        let g = triangle();
        assert_eq!(g.volume([n(0), n(1)]), 4);
        assert_eq!(g.volume([n(99)]), 0);
    }

    #[test]
    fn colored_and_black_neighbor_queries() {
        let mut g = triangle();
        let c = CloudColor::new(1);
        g.add_colored_edge(n(0), n(1), c).unwrap();
        g.strip_black(n(0), n(1));
        assert_eq!(g.black_neighbors(n(0)), vec![n(2)]);
        assert_eq!(g.colored_neighbors(n(0), c), vec![n(1)]);
        assert_eq!(g.black_degree(n(0)), Some(1));
        assert_eq!(g.degree(n(0)), Some(2));
    }

    #[test]
    fn remove_edge_returns_labels() {
        let mut g = triangle();
        let l = g.remove_edge(n(0), n(1)).unwrap();
        assert!(l.is_black());
        assert_eq!(
            g.remove_edge(n(0), n(1)),
            Err(GraphError::EdgeMissing(n(0), n(1)))
        );
    }

    #[test]
    fn display_lists_edges() {
        let g = triangle();
        let s = format!("{g}");
        assert!(s.contains("3 nodes, 3 edges"));
        assert!(s.contains("n0 -- n1 [black]"));
    }
}
