//! The dynamic labeled graph at the heart of the reproduction.
//!
//! An undirected *simple* graph (no self-loops, no multi-edges — the paper is
//! explicit that Xheal never creates multi-edges) whose edges carry an
//! [`EdgeLabels`] set.
//!
//! # Representation
//!
//! Nodes live in a **slot arena**: an interner maps each [`NodeId`] to a
//! `u32` slot (O(1) hash lookup on the hot path), each slot holds a sorted
//! neighbor list `Vec<Nbr>` plus a maintained black-degree counter, and slots
//! of deleted nodes are recycled through a free list so heavy churn never
//! grows the arena beyond the peak population. A side `BTreeSet` keeps the
//! deterministic ascending-`NodeId` iteration order the seeded experiments
//! replay against — [`Graph::nodes`] and [`Graph::edges`] enumerate in
//! exactly the order the seed `BTreeMap` representation did (preserved
//! verbatim as [`crate::baseline::BaselineGraph`] and proven equivalent by
//! the model-based suite in `tests/model.rs`).
//!
//! Algorithms that sweep whole neighborhoods (BFS, Laplacians, cut
//! enumeration) should grab a [`Graph::csr_view`] snapshot once and work in
//! dense `0..n` coordinates instead of re-deriving a node index per call.

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

use crate::{CloudColor, EdgeLabels, NodeId};

/// Errors returned by fallible [`Graph`] operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// The node was already present.
    NodeExists(NodeId),
    /// The node is not present.
    NodeMissing(NodeId),
    /// The edge endpoints are equal.
    SelfLoop(NodeId),
    /// The edge is not present.
    EdgeMissing(NodeId, NodeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeExists(v) => write!(f, "node {v} already exists"),
            GraphError::NodeMissing(v) => write!(f, "node {v} does not exist"),
            GraphError::SelfLoop(v) => write!(f, "self-loop at {v} rejected"),
            GraphError::EdgeMissing(u, v) => write!(f, "edge ({u},{v}) does not exist"),
        }
    }
}

impl Error for GraphError {}

/// A fast multiplicative hasher (FxHash-style) for the `NodeId → slot`
/// interner. `NodeId` feeds a single `u64`; SipHash's DoS resistance buys
/// nothing here and costs ~3× per lookup on the churn hot path.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash = (self.hash.rotate_left(5) ^ b as u64).wrapping_mul(FX_SEED);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.hash = (self.hash.rotate_left(5) ^ n).wrapping_mul(FX_SEED);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

/// `HashMap` wired to [`FxHasher`] — the workspace's hot-path map for keys
/// that are small integers (node ids, colors). Iteration order is
/// unspecified: never iterate one of these into RNG consumption or output;
/// canonicalize through a sorted structure first.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Ids below this bound are interned through a direct-indexed table.
///
/// Node ids are allocated sequentially (generators number `0..n`,
/// [`crate::IdAllocator`] counts upward), so in practice every id is small
/// and dense; the table costs 4 bytes per id ever seen and turns the
/// hot-path id→slot lookup into one array read — sequential for the sorted
/// bulk edge deltas the healer applies. Arbitrary large ids still work
/// through the spill map. The limit caps the dense table at 64 MiB
/// (16M ids × 4 bytes) — roomy enough that the 8M-node memory-wall
/// benchmark rows stay entirely on the one-array-read path, small enough
/// that a single pathological id cannot balloon the interner.
const DENSE_ID_LIMIT: u64 = 1 << 24;

const ABSENT: u32 = u32::MAX;

/// The `NodeId → slot` interner: direct-indexed for dense ids, hashed spill
/// for pathological ones.
#[derive(Clone, Debug, Default)]
struct SlotIndex {
    dense: Vec<u32>,
    spill: FxHashMap<NodeId, u32>,
    len: usize,
}

impl SlotIndex {
    #[inline]
    fn get(&self, v: NodeId) -> Option<u32> {
        let id = v.as_u64();
        if id < DENSE_ID_LIMIT {
            match self.dense.get(id as usize) {
                Some(&s) if s != ABSENT => Some(s),
                _ => None,
            }
        } else {
            self.spill.get(&v).copied()
        }
    }

    #[inline]
    fn contains(&self, v: NodeId) -> bool {
        self.get(v).is_some()
    }

    fn insert(&mut self, v: NodeId, slot: u32) {
        let id = v.as_u64();
        if id < DENSE_ID_LIMIT {
            let i = id as usize;
            if i >= self.dense.len() {
                let new_len = (i + 1).next_power_of_two().max(64);
                self.dense.resize(new_len, ABSENT);
            }
            debug_assert_eq!(self.dense[i], ABSENT);
            self.dense[i] = slot;
        } else {
            self.spill.insert(v, slot);
        }
        self.len += 1;
    }

    fn remove(&mut self, v: NodeId) -> Option<u32> {
        let id = v.as_u64();
        let out = if id < DENSE_ID_LIMIT {
            match self.dense.get_mut(id as usize) {
                Some(s) if *s != ABSENT => Some(std::mem::replace(s, ABSENT)),
                _ => None,
            }
        } else {
            self.spill.remove(&v)
        };
        if out.is_some() {
            self.len -= 1;
        }
        out
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// One directed half of an undirected edge, stored in the owner's sorted
/// neighbor list. `slot` caches the neighbor's arena slot so mirror updates
/// never re-hash.
#[derive(Clone, Debug)]
struct Nbr {
    id: NodeId,
    slot: u32,
    labels: EdgeLabels,
}

impl Default for Nbr {
    fn default() -> Self {
        Nbr {
            id: NodeId::new(0),
            slot: ABSENT,
            labels: EdgeLabels::empty(),
        }
    }
}

/// Neighbors stored directly in the slot record before spilling to the heap.
///
/// κ-regular-ish expanders keep most degrees near κ, and the single-edge hot
/// path's dominant cost is the dependent-miss chain `slot → Vec buffer`; four
/// inline entries let low-degree lookups resolve inside the slot record with
/// no pointer chase.
const NBR_INLINE: usize = 4;

/// Sorted neighbor storage with an inline-first layout: the first
/// [`NBR_INLINE`] entries live in the slot record itself (`head`), the rest
/// spill to a heap `Vec` (`tail`).
///
/// Invariants: the logical list `head[..head_len] ++ tail` is sorted strictly
/// ascending by neighbor id, and `tail` is non-empty only while the head is
/// full. Unused head entries are reset to `Nbr::default()` so they hold no
/// stray label allocations.
#[derive(Clone, Debug, Default)]
struct NbrList {
    head_len: u8,
    head: [Nbr; NBR_INLINE],
    tail: Vec<Nbr>,
}

impl NbrList {
    #[inline]
    fn len(&self) -> usize {
        self.head_len as usize + self.tail.len()
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.head_len == 0
    }

    #[inline]
    fn get(&self, i: usize) -> &Nbr {
        if i < NBR_INLINE {
            &self.head[i]
        } else {
            &self.tail[i - NBR_INLINE]
        }
    }

    #[inline]
    fn get_mut(&mut self, i: usize) -> &mut Nbr {
        if i < NBR_INLINE {
            &mut self.head[i]
        } else {
            &mut self.tail[i - NBR_INLINE]
        }
    }

    /// Iterates the logical sorted list.
    fn iter(&self) -> impl Iterator<Item = &Nbr> + '_ {
        self.head[..self.head_len as usize]
            .iter()
            .chain(self.tail.iter())
    }

    /// Binary search for neighbor `v`, mirroring `slice::binary_search`
    /// semantics over the logical list. The head is probed first — for
    /// degrees ≤ [`NBR_INLINE`] the search never leaves the slot record.
    #[inline]
    fn search(&self, v: NodeId) -> Result<usize, usize> {
        let hl = self.head_len as usize;
        let head = &self.head[..hl];
        if hl < NBR_INLINE || v <= head[hl - 1].id {
            head.binary_search_by(|n| n.id.cmp(&v))
        } else {
            match self.tail.binary_search_by(|n| n.id.cmp(&v)) {
                Ok(p) => Ok(NBR_INLINE + p),
                Err(p) => Err(NBR_INLINE + p),
            }
        }
    }

    /// Inserts `nbr` at logical position `pos` (from a failed [`search`]).
    fn insert(&mut self, pos: usize, nbr: Nbr) {
        let hl = self.head_len as usize;
        if hl < NBR_INLINE {
            debug_assert!(self.tail.is_empty() && pos <= hl);
            self.head[pos..=hl].rotate_right(1);
            self.head[pos] = nbr;
            self.head_len += 1;
        } else if pos >= NBR_INLINE {
            self.tail.insert(pos - NBR_INLINE, nbr);
        } else {
            // Head is full: evict its last entry into the tail front.
            let evicted = std::mem::take(&mut self.head[NBR_INLINE - 1]);
            self.head[pos..NBR_INLINE].rotate_right(1);
            self.head[pos] = nbr;
            self.tail.insert(0, evicted);
        }
    }

    /// Removes and returns the entry at logical position `pos`.
    fn remove(&mut self, pos: usize) -> Nbr {
        let hl = self.head_len as usize;
        if pos < NBR_INLINE {
            debug_assert!(pos < hl);
            self.head[pos..hl].rotate_left(1);
            if self.tail.is_empty() {
                self.head_len -= 1;
                std::mem::take(&mut self.head[hl - 1])
            } else {
                // Refill the freed head slot from the tail front.
                let refill = self.tail.remove(0);
                std::mem::replace(&mut self.head[NBR_INLINE - 1], refill)
            }
        } else {
            self.tail.remove(pos - NBR_INLINE)
        }
    }

    /// Empties the list in order through `f`, keeping the tail's capacity
    /// warm for reuse by a recycled slot.
    fn drain_for_each(&mut self, mut f: impl FnMut(Nbr)) {
        for i in 0..self.head_len as usize {
            f(std::mem::take(&mut self.head[i]));
        }
        self.head_len = 0;
        for nbr in self.tail.drain(..) {
            f(nbr);
        }
    }

    /// Replaces the contents with the (sorted) entries drained from
    /// `entries`, reusing the tail's existing capacity.
    fn assign(&mut self, entries: &mut Vec<Nbr>) {
        let old_hl = self.head_len as usize;
        self.tail.clear();
        let hl = entries.len().min(NBR_INLINE);
        let mut it = entries.drain(..);
        for slot in &mut self.head[..hl] {
            *slot = it.next().expect("drain yields hl entries");
        }
        self.tail.extend(it);
        self.head_len = hl as u8;
        if old_hl > hl {
            for slot in &mut self.head[hl..old_hl] {
                *slot = Nbr::default();
            }
        }
        debug_assert!(self.tail.is_empty() || self.head_len as usize == NBR_INLINE);
    }

    /// Issues a best-effort software prefetch of the spilled tail buffer.
    #[inline]
    fn prefetch_tail(&self) {
        if !self.tail.is_empty() {
            prefetch_read(self.tail.as_ptr());
        }
    }
}

/// Best-effort software prefetch of the cache line at `p` into all levels.
///
/// On x86_64 this lowers to `prefetcht0`; elsewhere it is a plain hint-free
/// no-op. Prefetching is advisory — it never faults and never changes
/// observable state — which is why this is the crate's single sanctioned
/// `unsafe` block (`_mm_prefetch` is an `unsafe fn` purely because it takes a
/// raw pointer; it performs no memory access in the abstract-machine sense).
#[inline]
#[allow(unsafe_code)]
fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch instructions are hints; any address, valid or not, is
    // architecturally safe to prefetch and no Rust memory access occurs.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p.cast::<i8>());
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = p;
    }
}

/// Prefetches every cache line of a slot record (the inline neighbor head
/// spans several lines). Pure address arithmetic — the slot's memory is not
/// read, so this is safe to issue far ahead on still-cold records.
#[inline]
fn prefetch_slot_lines(slot: &Slot) {
    let p = (slot as *const Slot).cast::<u8>();
    let mut off = 0;
    while off < std::mem::size_of::<Slot>() {
        prefetch_read(p.wrapping_add(off));
        off += 64;
    }
}

/// Byte threshold above which a buffer is worth backing with transparent
/// huge pages: well past any L2, where 4 KiB TLB reach becomes the limiting
/// factor for random access.
const HUGE_ADVISE_BYTES: usize = 1 << 25; // 32 MiB

/// Advises the kernel to back `capacity` elements at `buf` with
/// transparent huge pages (`madvise(MADV_HUGEPAGE)`).
///
/// At arena scale (hundreds of MB) a random slot probe misses the TLB on
/// essentially every access under 4 KiB pages, and x86 cores drop software
/// prefetches whose address translation misses — so the prefetch pipeline
/// in [`Graph::apply_delta`] only covers DRAM latency once the arena sits
/// on 2 MiB pages. Must be issued while the buffer is still *untouched*
/// (a fresh `with_capacity` allocation): THP in its default `madvise` mode
/// materializes huge pages at first fault, and upgrades already-faulted
/// 4 KiB pages only at khugepaged's leisure.
///
/// Purely advisory — on non-Linux targets, kernels with THP disabled, or
/// buffers below [`HUGE_ADVISE_BYTES`] this is a no-op and any syscall
/// failure is ignored. Issued as a raw syscall because the offline
/// workspace carries no libc binding.
#[allow(unsafe_code)]
fn advise_huge_pages<T>(buf: *const T, capacity: usize) {
    let len = capacity.saturating_mul(std::mem::size_of::<T>());
    if len < HUGE_ADVISE_BYTES {
        return;
    }
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    // SAFETY: madvise never alters memory contents or mapping validity, and
    // the asm block clobbers exactly the registers the syscall ABI names
    // (rax return, rcx/r11 scratched by `syscall`).
    unsafe {
        const SYS_MADVISE: u64 = 28;
        const MADV_HUGEPAGE: u64 = 14;
        const PAGE: usize = 4096;
        // madvise wants page-aligned bounds; shrink inward to them.
        let start = (buf as usize).next_multiple_of(PAGE);
        let end = (buf as usize + len) & !(PAGE - 1);
        if end <= start {
            return;
        }
        let _ret: i64;
        std::arch::asm!(
            "syscall",
            inlateout("rax") SYS_MADVISE as i64 => _ret,
            in("rdi") start,
            in("rsi") end - start,
            in("rdx") MADV_HUGEPAGE,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
    }
    #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
    {
        let _ = buf;
    }
}

/// Arena slot: a (possibly recycled) node record.
#[derive(Clone, Debug, Default)]
struct Slot {
    node: NodeId,
    live: bool,
    black_degree: u32,
    /// Sorted ascending by neighbor `NodeId`; first entries inline.
    nbrs: NbrList,
}

/// An undirected simple graph with labeled edges and deterministic iteration,
/// backed by a slot arena (see the module docs for the layout).
///
/// # Examples
///
/// ```
/// use xheal_graph::{Graph, NodeId};
/// let mut g = Graph::new();
/// let a = NodeId::new(0);
/// let b = NodeId::new(1);
/// g.add_node(a)?;
/// g.add_node(b)?;
/// g.add_black_edge(a, b)?;
/// assert_eq!(g.degree(a), Some(1));
/// assert!(g.has_edge(a, b));
/// # Ok::<(), xheal_graph::GraphError>(())
/// ```
#[derive(Debug, Default)]
pub struct Graph {
    /// `NodeId → slot`: the O(1) hot-path lookup.
    index: SlotIndex,
    /// Live node ids in ascending order: the deterministic iteration spine.
    ordered: BTreeSet<NodeId>,
    /// The slot arena; `free` lists recyclable entries.
    slots: Vec<Slot>,
    free: Vec<u32>,
    edge_count: usize,
}

impl Clone for Graph {
    /// Deep copy that re-requests huge-page backing for the fresh arena
    /// and dense-index buffers *before* populating them — a derived clone
    /// would first-touch every page with 4 KiB faults, and THP's
    /// `madvise` mode never upgrades those retroactively in time to
    /// matter. Benchmarks clone a prototype graph per trial, so this is
    /// where arena paging for the measured copy is actually decided.
    fn clone(&self) -> Self {
        let mut slots: Vec<Slot> = Vec::with_capacity(self.slots.len());
        advise_huge_pages(slots.as_ptr(), slots.capacity());
        slots.extend(self.slots.iter().cloned());
        let mut dense: Vec<u32> = Vec::with_capacity(self.index.dense.len());
        advise_huge_pages(dense.as_ptr(), dense.capacity());
        dense.extend_from_slice(&self.index.dense);
        Graph {
            index: SlotIndex {
                dense,
                spill: self.index.spill.clone(),
                len: self.index.len,
            },
            ordered: self.ordered.clone(),
            slots,
            free: self.free.clone(),
            edge_count: self.edge_count,
        }
    }
}

/// One step of the order-sensitive edge-fingerprint fold.
fn fold_hash(h: u64, x: u64) -> u64 {
    (h.rotate_left(5) ^ x).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95)
}

/// Order-sensitive fold hash over an `edges()`-style enumeration. Shared by
/// [`Graph::edge_fingerprint`] and the seed representation's equivalent so
/// the two backends produce comparable witnesses.
pub(crate) fn fingerprint_edges<'a, I>(edges: I) -> u64
where
    I: Iterator<Item = (NodeId, NodeId, &'a EdgeLabels)>,
{
    let mut h = 0u64;
    for (u, v, l) in edges {
        h = fold_hash(h, u.as_u64());
        h = fold_hash(h, v.as_u64());
        h = fold_hash(h, u64::from(l.is_black()));
        for c in l.colors() {
            h = fold_hash(h, c.as_u64());
        }
    }
    h
}

impl PartialEq for Graph {
    /// Semantic equality: same node set, same edges, same labels. Arena
    /// layout (slot numbers, free-list history) is intentionally ignored so
    /// two graphs built through different churn histories compare equal.
    fn eq(&self, other: &Self) -> bool {
        if self.ordered != other.ordered || self.edge_count != other.edge_count {
            return false;
        }
        self.ordered.iter().all(|&v| {
            let a = &self.slots[self.index.get(v).expect("ordered node interned") as usize];
            let b = &other.slots[other.index.get(v).expect("ordered node interned") as usize];
            a.nbrs.len() == b.nbrs.len()
                && a.nbrs
                    .iter()
                    .zip(b.nbrs.iter())
                    .all(|(x, y)| x.id == y.id && x.labels == y.labels)
        })
    }
}

impl Eq for Graph {}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Creates an empty graph pre-sized for `n` sequentially numbered
    /// nodes: the slot arena and the dense id→slot table are reserved up
    /// front and, at arena scale, advised toward transparent huge pages
    /// (via `madvise(MADV_HUGEPAGE)` — the request only helps if it precedes
    /// first touch). Generators and bulk loaders should start here; graphs
    /// built incrementally from [`Graph::new`] behave identically but may
    /// leave a large arena on 4 KiB pages.
    #[must_use]
    pub fn with_node_capacity(n: usize) -> Self {
        let mut g = Graph::default();
        g.slots.reserve_exact(n);
        advise_huge_pages(g.slots.as_ptr(), g.slots.capacity());
        // Mirror `SlotIndex::insert`'s growth schedule so population never
        // reallocates away from the advised buffer.
        let dense_len = n.next_power_of_two().max(64).min(DENSE_ID_LIMIT as usize);
        g.index.dense.reserve_exact(dense_len);
        advise_huge_pages(g.index.dense.as_ptr(), g.index.dense.capacity());
        g
    }

    #[inline]
    fn slot(&self, v: NodeId) -> Option<&Slot> {
        self.index.get(v).map(|s| &self.slots[s as usize])
    }

    #[inline]
    fn find_nbr(slot: &Slot, v: NodeId) -> Result<usize, usize> {
        slot.nbrs.search(v)
    }

    /// Number of nodes currently present.
    pub fn node_count(&self) -> usize {
        self.ordered.len()
    }

    /// Number of (undirected) edges currently present.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Is the node present?
    pub fn contains_node(&self, v: NodeId) -> bool {
        self.index.contains(v)
    }

    /// The arena slot of `v`, if present.
    ///
    /// Slots are stable while the node lives and may be recycled after its
    /// removal; they index the dense structures handed out by
    /// [`Graph::csr_view`] builders and [`Graph::slot_capacity`]-sized
    /// scratch bitmaps.
    pub fn slot_of(&self, v: NodeId) -> Option<u32> {
        self.index.get(v)
    }

    /// Upper bound (exclusive) on every slot value currently in use — the
    /// arena length. Size scratch bitmaps with this.
    pub fn slot_capacity(&self) -> usize {
        self.slots.len()
    }

    /// Is the edge present (with any label)?
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.slot(u).is_some_and(|s| Self::find_nbr(s, v).is_ok())
    }

    /// The labels on edge `(u, v)`, if it exists.
    pub fn edge_labels(&self, u: NodeId, v: NodeId) -> Option<&EdgeLabels> {
        let s = self.slot(u)?;
        Self::find_nbr(s, v).ok().map(|i| &s.nbrs.get(i).labels)
    }

    /// Iterator over all node ids, ascending.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.ordered.iter().copied()
    }

    /// Sorted vector of all node ids.
    pub fn node_vec(&self) -> Vec<NodeId> {
        self.ordered.iter().copied().collect()
    }

    /// Iterator over all undirected edges as `(u, v, labels)` with `u < v`,
    /// ascending lexicographically — identical order to the seed
    /// representation.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, &EdgeLabels)> + '_ {
        self.ordered.iter().flat_map(move |&u| {
            let s = &self.slots[self.index.get(u).expect("ordered node interned") as usize];
            s.nbrs
                .iter()
                .filter(move |n| u < n.id)
                .map(move |n| (u, n.id, &n.labels))
        })
    }

    /// Order-sensitive hash over the full [`Graph::edges`] enumeration
    /// (endpoints, black flag, cloud colors): equal fingerprints mean
    /// identical topology *and* identical iteration order. This is the
    /// determinism witness used by the bench harness and the parallel
    /// executor's cross-validation — the seed representation computes the
    /// same value over the same enumeration order.
    pub fn edge_fingerprint(&self) -> u64 {
        fingerprint_edges(self.edges())
    }

    /// Degree of `v` (number of incident edges of any label), if present.
    pub fn degree(&self, v: NodeId) -> Option<usize> {
        self.slot(v).map(|s| s.nbrs.len())
    }

    /// Number of incident *black* edges of `v`, if present.
    ///
    /// Maintained as a per-slot counter — O(1), never a label scan.
    pub fn black_degree(&self, v: NodeId) -> Option<usize> {
        self.slot(v).map(|s| s.black_degree as usize)
    }

    /// Iterator over neighbors of `v` (empty if `v` absent), ascending.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.slot(v)
            .into_iter()
            .flat_map(|s| s.nbrs.iter().map(|n| n.id))
    }

    /// Neighbors of `v` together with edge labels.
    pub fn neighbors_labeled(&self, v: NodeId) -> impl Iterator<Item = (NodeId, &EdgeLabels)> + '_ {
        self.slot(v)
            .into_iter()
            .flat_map(|s| s.nbrs.iter().map(|n| (n.id, &n.labels)))
    }

    /// Neighbors of `v` connected by a black edge.
    pub fn black_neighbors(&self, v: NodeId) -> Vec<NodeId> {
        self.neighbors_labeled(v)
            .filter(|(_, l)| l.is_black())
            .map(|(u, _)| u)
            .collect()
    }

    /// Neighbors of `v` connected by an edge carrying `color`.
    pub fn colored_neighbors(&self, v: NodeId, color: CloudColor) -> Vec<NodeId> {
        self.neighbors_labeled(v)
            .filter(|(_, l)| l.has_color(color))
            .map(|(u, _)| u)
            .collect()
    }

    /// Sum of degrees over a node set (the paper's `vol(S)`).
    ///
    /// Nodes absent from the graph contribute zero.
    pub fn volume<I: IntoIterator<Item = NodeId>>(&self, nodes: I) -> usize {
        nodes.into_iter().filter_map(|v| self.degree(v)).sum()
    }

    /// Adds an isolated node.
    ///
    /// # Errors
    ///
    /// [`GraphError::NodeExists`] if `v` is already present.
    pub fn add_node(&mut self, v: NodeId) -> Result<(), GraphError> {
        if self.index.contains(v) {
            return Err(GraphError::NodeExists(v));
        }
        let slot = match self.free.pop() {
            Some(s) => {
                let sl = &mut self.slots[s as usize];
                debug_assert!(!sl.live && sl.nbrs.is_empty());
                sl.node = v;
                sl.live = true;
                s
            }
            None => {
                let s = u32::try_from(self.slots.len()).expect("arena fits in u32");
                self.slots.push(Slot {
                    node: v,
                    live: true,
                    black_degree: 0,
                    nbrs: NbrList::default(),
                });
                s
            }
        };
        self.index.insert(v, slot);
        self.ordered.insert(v);
        Ok(())
    }

    /// Removes `v` and all incident edges, returning `(neighbor, labels)` for
    /// each incident edge (ascending by neighbor).
    ///
    /// This is exactly the information the healing algorithm needs when the
    /// adversary deletes a node: which neighbors were black, and which cloud
    /// colors lost an edge.
    ///
    /// # Errors
    ///
    /// [`GraphError::NodeMissing`] if `v` is not present.
    pub fn remove_node(&mut self, v: NodeId) -> Result<Vec<(NodeId, EdgeLabels)>, GraphError> {
        let mut out = Vec::new();
        self.remove_node_into(v, &mut out)?;
        Ok(out)
    }

    /// Allocation-free variant of [`Graph::remove_node`]: appends the
    /// incident `(neighbor, labels)` pairs (ascending by neighbor) to `out`
    /// instead of returning a fresh vector, so executor hot loops can reuse
    /// one scratch buffer across deletions.
    ///
    /// `out` is *not* cleared first.
    ///
    /// # Errors
    ///
    /// [`GraphError::NodeMissing`] if `v` is not present (`out` untouched).
    pub fn remove_node_into(
        &mut self,
        v: NodeId,
        out: &mut Vec<(NodeId, EdgeLabels)>,
    ) -> Result<(), GraphError> {
        let Some(sv) = self.index.get(v) else {
            return Err(GraphError::NodeMissing(v));
        };
        let sv = sv as usize;
        let mut nbrs = std::mem::take(&mut self.slots[sv].nbrs);
        out.reserve(nbrs.len());
        let (slots, edge_count) = (&mut self.slots, &mut self.edge_count);
        nbrs.drain_for_each(|nbr| {
            let su = nbr.slot as usize;
            let pu = slots[su].nbrs.search(v).expect("mirror entry");
            slots[su].nbrs.remove(pu);
            if nbr.labels.is_black() {
                slots[su].black_degree -= 1;
            }
            *edge_count -= 1;
            out.push((nbr.id, nbr.labels));
        });
        let slot = &mut self.slots[sv];
        // Hand the (now empty) list back so a recycled slot reuses its
        // warmed capacity instead of reallocating from zero.
        slot.nbrs = nbrs;
        slot.live = false;
        slot.black_degree = 0;
        self.index.remove(v);
        self.ordered.remove(&v);
        self.free.push(sv as u32);
        Ok(())
    }

    fn check_endpoints(&self, u: NodeId, v: NodeId) -> Result<(u32, u32), GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        let su = self.index.get(u).ok_or(GraphError::NodeMissing(u))?;
        let sv = self.index.get(v).ok_or(GraphError::NodeMissing(v))?;
        Ok((su, sv))
    }

    /// Inserts or updates the `(u → v)` half-edge. Returns `true` when the
    /// entry was newly created.
    fn upsert_half(&mut self, su: u32, sv: u32, v: NodeId, labels: &EdgeLabels) -> bool {
        let slot = &mut self.slots[su as usize];
        match Self::find_nbr(slot, v) {
            Ok(p) => {
                let l = &mut slot.nbrs.get_mut(p).labels;
                let was_black = l.is_black();
                l.merge(labels);
                if !was_black && l.is_black() {
                    slot.black_degree += 1;
                }
                false
            }
            Err(p) => {
                if labels.is_black() {
                    slot.black_degree += 1;
                }
                slot.nbrs.insert(
                    p,
                    Nbr {
                        id: v,
                        slot: sv,
                        labels: labels.clone(),
                    },
                );
                true
            }
        }
    }

    fn add_labeled_edge(
        &mut self,
        u: NodeId,
        v: NodeId,
        labels: EdgeLabels,
    ) -> Result<bool, GraphError> {
        let (su, sv) = self.check_endpoints(u, v)?;
        let created = self.upsert_half(su, sv, v, &labels);
        let mirrored = self.upsert_half(sv, su, u, &labels);
        debug_assert_eq!(created, mirrored, "adjacency must stay symmetric");
        if created {
            self.edge_count += 1;
        }
        Ok(created)
    }

    /// Adds the black label to edge `(u, v)`, creating the edge if needed.
    /// Returns `true` if a brand-new edge was created.
    ///
    /// # Errors
    ///
    /// [`GraphError::SelfLoop`] / [`GraphError::NodeMissing`] on bad endpoints.
    pub fn add_black_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool, GraphError> {
        self.add_labeled_edge(u, v, EdgeLabels::black())
    }

    /// Adds cloud color `color` to edge `(u, v)`, creating the edge if needed
    /// (the paper's "recoloring" of an existing edge never duplicates it).
    /// Returns `true` if a brand-new edge was created.
    ///
    /// # Errors
    ///
    /// [`GraphError::SelfLoop`] / [`GraphError::NodeMissing`] on bad endpoints.
    pub fn add_colored_edge(
        &mut self,
        u: NodeId,
        v: NodeId,
        color: CloudColor,
    ) -> Result<bool, GraphError> {
        self.add_labeled_edge(u, v, EdgeLabels::colored(color))
    }

    /// Applies `strip` to both halves of edge `(u, v)`; removes the edge
    /// entirely if no label remains. Returns `true` on full removal, `false`
    /// when labels remain or the edge/endpoint is absent.
    fn strip_with(&mut self, u: NodeId, v: NodeId, strip: impl Fn(&mut EdgeLabels)) -> bool {
        let Some(su) = self.index.get(u) else {
            return false;
        };
        let su = su as usize;
        let Ok(pu) = Self::find_nbr(&self.slots[su], v) else {
            return false;
        };
        let sv = self.slots[su].nbrs.get(pu).slot as usize;
        let entry = self.slots[su].nbrs.get_mut(pu);
        let was_black = entry.labels.is_black();
        strip(&mut entry.labels);
        let now_black = entry.labels.is_black();
        let empty = entry.labels.is_empty();
        if was_black && !now_black {
            self.slots[su].black_degree -= 1;
            self.slots[sv].black_degree -= 1;
        }
        let pv = Self::find_nbr(&self.slots[sv], u).expect("mirror entry");
        if empty {
            self.slots[su].nbrs.remove(pu);
            self.slots[sv].nbrs.remove(pv);
            self.edge_count -= 1;
        } else {
            strip(&mut self.slots[sv].nbrs.get_mut(pv).labels);
        }
        empty
    }

    /// Removes `color` from edge `(u, v)`; deletes the edge entirely if no
    /// label remains. Returns `true` if the edge was fully removed.
    ///
    /// Missing edges and missing colors are tolerated (returns `false`): cloud
    /// teardown may race with node deletions that already removed edges.
    pub fn strip_color(&mut self, u: NodeId, v: NodeId, color: CloudColor) -> bool {
        self.strip_with(u, v, |l| {
            l.remove_color(color);
        })
    }

    /// Removes the black label from edge `(u, v)`; deletes the edge entirely
    /// if no label remains. Returns `true` if the edge was fully removed.
    pub fn strip_black(&mut self, u: NodeId, v: NodeId) -> bool {
        self.strip_with(u, v, EdgeLabels::clear_black)
    }

    /// Removes the edge regardless of labels.
    ///
    /// # Errors
    ///
    /// [`GraphError::EdgeMissing`] if the edge is not present.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<EdgeLabels, GraphError> {
        let Some(su) = self.index.get(u) else {
            return Err(GraphError::EdgeMissing(u, v));
        };
        let su = su as usize;
        let Ok(pu) = Self::find_nbr(&self.slots[su], v) else {
            return Err(GraphError::EdgeMissing(u, v));
        };
        let nbr = self.slots[su].nbrs.remove(pu);
        let sv = nbr.slot as usize;
        let pv = Self::find_nbr(&self.slots[sv], u).expect("mirror entry");
        self.slots[sv].nbrs.remove(pv);
        if nbr.labels.is_black() {
            self.slots[su].black_degree -= 1;
            self.slots[sv].black_degree -= 1;
        }
        self.edge_count -= 1;
        Ok(nbr.labels)
    }

    /// Number of edges crossing the cut `(S, V - S)`.
    ///
    /// Uses an arena-slot bitmap: O(|S|·deg + capacity) with no tree or set
    /// allocations. Duplicate entries in `S` are tolerated (counted once);
    /// nodes absent from the graph are ignored.
    pub fn cut_size(&self, s: &[NodeId]) -> usize {
        let mut in_s = vec![false; self.slots.len()];
        let mut side: Vec<u32> = Vec::with_capacity(s.len());
        for &v in s {
            if let Some(sl) = self.index.get(v) {
                if !in_s[sl as usize] {
                    in_s[sl as usize] = true;
                    side.push(sl);
                }
            }
        }
        side.iter()
            .map(|&sl| {
                self.slots[sl as usize]
                    .nbrs
                    .iter()
                    .filter(|n| !in_s[n.slot as usize])
                    .count()
            })
            .sum()
    }

    /// Builds a dense CSR snapshot of the current topology: nodes in
    /// ascending-`NodeId` order re-numbered `0..n`, neighbor lists as dense
    /// indices. One O(n + m) pass — no per-neighbor searches — shared by the
    /// Laplacian operators, BFS, components, and cut enumeration.
    pub fn csr_view(&self) -> CsrView {
        let n = self.ordered.len();
        let mut nodes = Vec::with_capacity(n);
        let mut slot_to_dense = vec![u32::MAX; self.slots.len()];
        for (i, &v) in self.ordered.iter().enumerate() {
            nodes.push(v);
            slot_to_dense[self.index.get(v).expect("ordered node interned") as usize] = i as u32;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(2 * self.edge_count);
        offsets.push(0u32);
        for &v in &nodes {
            let s = &self.slots[self.index.get(v).expect("ordered node interned") as usize];
            neighbors.extend(s.nbrs.iter().map(|nb| slot_to_dense[nb.slot as usize]));
            offsets.push(neighbors.len() as u32);
        }
        CsrView {
            nodes,
            offsets,
            neighbors,
        }
    }

    /// Consistency check used by tests and debug assertions: adjacency is
    /// symmetric, labels mirror, neighbor lists sorted, no self-loops,
    /// maintained counters and the free list agree with reality.
    pub fn validate(&self) -> Result<(), String> {
        if self.index.len() != self.ordered.len() {
            return Err("index/ordered size mismatch".into());
        }
        let live = self.slots.iter().filter(|s| s.live).count();
        if live != self.ordered.len() {
            return Err(format!(
                "{live} live slots for {} nodes",
                self.ordered.len()
            ));
        }
        if self.free.len() + live != self.slots.len() {
            return Err("free list does not cover dead slots".into());
        }
        for &f in &self.free {
            let s = &self.slots[f as usize];
            if s.live || !s.nbrs.is_empty() {
                return Err(format!("free slot {f} still live or populated"));
            }
        }
        let mut count = 0usize;
        for &u in &self.ordered {
            let Some(su) = self.index.get(u) else {
                return Err(format!("ordered node {u} missing from index"));
            };
            let s = &self.slots[su as usize];
            if !s.live || s.node != u {
                return Err(format!("slot {su} does not back node {u}"));
            }
            if !s.nbrs.tail.is_empty() && (s.nbrs.head_len as usize) < NBR_INLINE {
                return Err(format!("spilled neighbor list with non-full head at {u}"));
            }
            let mut black = 0u32;
            let mut prev: Option<NodeId> = None;
            for nbr in s.nbrs.iter() {
                if prev.is_some_and(|p| p >= nbr.id) {
                    return Err(format!("unsorted neighbor list at {u}"));
                }
                prev = Some(nbr.id);
            }
            for nbr in s.nbrs.iter() {
                let v = nbr.id;
                if u == v {
                    return Err(format!("self-loop at {u}"));
                }
                if nbr.labels.is_empty() {
                    return Err(format!("empty labels on ({u},{v})"));
                }
                if nbr.labels.is_black() {
                    black += 1;
                }
                let ms = &self.slots[nbr.slot as usize];
                if !ms.live || ms.node != v {
                    return Err(format!("stale neighbor slot on ({u},{v})"));
                }
                let mirror = Self::find_nbr(ms, u)
                    .map(|i| ms.nbrs.get(i))
                    .map_err(|_| format!("asymmetric edge ({u},{v})"))?;
                if mirror.labels != nbr.labels {
                    return Err(format!("label mismatch on ({u},{v})"));
                }
                if u < v {
                    count += 1;
                }
            }
            if black != s.black_degree {
                return Err(format!(
                    "black degree counter {} != {} at {u}",
                    s.black_degree, black
                ));
            }
        }
        if count != self.edge_count {
            return Err(format!(
                "edge count {} does not match stored {}",
                count, self.edge_count
            ));
        }
        Ok(())
    }

    /// Applies a whole batch of edge-label mutations in one grouped pass —
    /// the memory-wall fast path for plan application.
    ///
    /// Semantically this is *exactly* the sequential loop
    ///
    /// ```text
    /// for op in ops {
    ///     match (op.add, op.color) {
    ///         (true,  Some(c)) => { graph.add_colored_edge(op.a, op.b, c); }
    ///         (true,  None)    => { graph.add_black_edge(op.a, op.b); }
    ///         (false, Some(c)) => { graph.strip_color(op.a, op.b, c); }
    ///         (false, None)    => { graph.strip_black(op.a, op.b); }
    ///     }
    /// }
    /// ```
    ///
    /// with all endpoint validation hoisted in front of the first mutation.
    /// Every mutation is split into its two half-edges up front, then the
    /// half-ops are applied through one of two regimes picked by arena size:
    ///
    /// - **Cache-resident arenas** (below [`SORTED_APPLY_MIN_SLOTS`] slots):
    ///   half-ops are applied as point edits in original sequence order.
    ///   With every slot a cache hit there is no memory latency to hide, so
    ///   grouping machinery (a sort, prefetch instructions) would be pure
    ///   overhead — measured as a 10–25 % regression at n ≤ 50k.
    /// - **DRAM-bound arenas**: half-ops are sorted by `(slot, neighbor,
    ///   sequence)` and each touched neighbor list is walked once — point
    ///   edits for small groups, a single merge rewrite for list-sized
    ///   ones — under a paced two-stage software-prefetch pipeline that
    ///   keeps many slot misses in flight.
    ///
    /// Both regimes apply per-pair op runs in original sequence order, so
    /// interleavings like add-then-strip of the same color are bit-identical
    /// to the loop above (and to each other — see the equivalence tests).
    ///
    /// Like the sequential loop, strips tolerate absent endpoints and absent
    /// labels (the no-op cases of [`Graph::strip_color`]).
    ///
    /// # Errors
    ///
    /// [`GraphError::SelfLoop`] if an *add* names equal endpoints, or
    /// [`GraphError::NodeMissing`] if an add names an absent endpoint — in
    /// both cases detected up front, before any mutation is applied.
    ///
    /// # Examples
    ///
    /// ```
    /// use xheal_graph::{DeltaScratch, EdgeMutation, Graph, NodeId};
    /// let mut g = Graph::new();
    /// let (a, b) = (NodeId::new(0), NodeId::new(1));
    /// g.add_node(a)?;
    /// g.add_node(b)?;
    /// let mut scratch = DeltaScratch::default();
    /// g.apply_delta(&[EdgeMutation::add_black(a, b)], &mut scratch)?;
    /// assert!(g.has_edge(a, b));
    /// # Ok::<(), xheal_graph::GraphError>(())
    /// ```
    pub fn apply_delta(
        &mut self,
        ops: &[EdgeMutation],
        scratch: &mut DeltaScratch,
    ) -> Result<(), GraphError> {
        if self.slots.len() < SORTED_APPLY_MIN_SLOTS {
            // Validation barrier only — the cache-resident regime applies
            // straight from `ops` without materializing half-op buffers.
            for op in ops {
                if op.add {
                    if op.a == op.b {
                        return Err(GraphError::SelfLoop(op.a));
                    }
                    self.index.get(op.a).ok_or(GraphError::NodeMissing(op.a))?;
                    self.index.get(op.b).ok_or(GraphError::NodeMissing(op.b))?;
                }
            }
            self.apply_ordered(ops);
        } else {
            self.build_half_ops(ops, scratch)?;
            self.apply_sorted(scratch);
        }
        Ok(())
    }

    /// Validates `ops` and splits each into its two half-edges, filling
    /// `scratch.half_ops` plus `scratch.order` (packed `slot << 32 | index`
    /// words in mutation order). No mutation happens here — this is the
    /// up-front validation barrier shared by both application regimes.
    fn build_half_ops(
        &self,
        ops: &[EdgeMutation],
        scratch: &mut DeltaScratch,
    ) -> Result<(), GraphError> {
        let DeltaScratch {
            half_ops, order, ..
        } = scratch;
        half_ops.clear();
        half_ops.reserve(ops.len() * 2);
        order.clear();
        order.reserve(ops.len() * 2);
        for op in ops {
            let (sa, sb) = if op.add {
                if op.a == op.b {
                    return Err(GraphError::SelfLoop(op.a));
                }
                (
                    self.index.get(op.a).ok_or(GraphError::NodeMissing(op.a))?,
                    self.index.get(op.b).ok_or(GraphError::NodeMissing(op.b))?,
                )
            } else {
                // Strip: a no-op unless both endpoints (and thus possibly
                // the edge) are present — mirrors `strip_color` tolerance.
                match (self.index.get(op.a), self.index.get(op.b)) {
                    (Some(sa), Some(sb)) if op.a != op.b => (sa, sb),
                    _ => continue,
                }
            };
            let ix = half_ops.len() as u64;
            half_ops.push(HalfOp {
                other: op.b,
                other_slot: sb,
                color: op.color,
                add: op.add,
            });
            half_ops.push(HalfOp {
                other: op.a,
                other_slot: sa,
                color: op.color,
                add: op.add,
            });
            order.push((sa as u64) << 32 | ix);
            order.push((sb as u64) << 32 | (ix + 1));
        }
        Ok(())
    }

    /// Cache-resident application regime: walk the mutations in original
    /// order, applying each endpoint as a point edit. Identical work to the
    /// public per-op mutators (callers must have validated adds already);
    /// the second index resolution is an L1 hit after the validation pass.
    fn apply_ordered(&mut self, ops: &[EdgeMutation]) {
        let mut edge_delta = 0isize;
        for op in ops {
            let (sa, sb) = match (self.index.get(op.a), self.index.get(op.b)) {
                (Some(sa), Some(sb)) if op.a != op.b => (sa, sb),
                _ => continue,
            };
            edge_delta += self.point_op(
                sa,
                &HalfOp {
                    other: op.b,
                    other_slot: sb,
                    color: op.color,
                    add: op.add,
                },
            );
            edge_delta += self.point_op(
                sb,
                &HalfOp {
                    other: op.a,
                    other_slot: sa,
                    color: op.color,
                    add: op.add,
                },
            );
        }
        self.edge_count = (self.edge_count as isize + edge_delta) as usize;
    }

    /// DRAM-bound application regime: group half-ops by endpoint slot and
    /// walk each touched slot once under a software-prefetch pipeline.
    fn apply_sorted(&mut self, scratch: &mut DeltaScratch) {
        let DeltaScratch {
            half_ops,
            order,
            group_buf,
            merged,
        } = scratch;
        // Half-op indices ascend with mutation sequence, so this one cheap
        // word sort yields slot groups whose members are already in
        // original mutation order.
        order.sort_unstable();

        // Two-stage prefetch pipeline, distances in order-words. FAR: fetch
        // all lines of an upcoming slot by address alone (no read of cold
        // memory). NEAR: by now that slot's header is resident, so chasing
        // its spilled-tail pointer is cheap and puts the second dependent
        // line in flight too. Keeps many misses overlapped even though each
        // group's work is tiny. Issuing the slot prefetches paced with the
        // walk (rather than in one burst up front) matters: a burst
        // overruns the core's line-fill buffers and the excess prefetches
        // are silently dropped.
        const NEAR: usize = 8;
        const FAR: usize = 32;
        for &w in order.iter().take(FAR) {
            prefetch_slot_lines(&self.slots[(w >> 32) as usize]);
        }
        let mut edge_delta = 0isize;
        let mut i = 0;
        while i < order.len() {
            let slot = (order[i] >> 32) as u32;
            let mut j = i + 1;
            while j < order.len() && (order[j] >> 32) as u32 == slot {
                j += 1;
            }
            if let Some(&w) = order.get(i + FAR) {
                prefetch_slot_lines(&self.slots[(w >> 32) as usize]);
            }
            if let Some(&w) = order.get(i + NEAR) {
                self.slots[(w >> 32) as usize].nbrs.prefetch_tail();
            }
            // Hybrid dispatch: small groups are applied as point edits
            // (binary search + in-place label update each, in sequence
            // order — correct because ops on distinct pairs commute and
            // same-pair ops stay ordered). A point insert or removal pays
            // an O(degree) memmove in the sorted list, so once a group has
            // a handful of members — or matches the list's own length —
            // one merge rewrite of the whole list is cheaper than repeated
            // searches and shifts.
            const MERGE_GROUP_MIN: usize = 4;
            if j - i < MERGE_GROUP_MIN.min(self.slots[slot as usize].nbrs.len().max(1)) {
                for &word in &order[i..j] {
                    edge_delta += self.point_op(slot, &half_ops[(word & IX_MASK) as usize]);
                }
            } else {
                // The merge walk needs `(neighbor, seq)` order; the packed
                // word's low half is the index (= sequence) tiebreak, so
                // the unstable sort is deterministic.
                order[i..j].sort_unstable_by_key(|&w| (half_ops[(w & IX_MASK) as usize].other, w));
                group_buf.clear();
                group_buf.extend(
                    order[i..j]
                        .iter()
                        .map(|&w| half_ops[(w & IX_MASK) as usize]),
                );
                edge_delta += self.merge_slot(slot, group_buf, merged);
            }
            i = j;
        }
        self.edge_count = (self.edge_count as isize + edge_delta) as usize;
    }

    /// Applies one half-op to a label set.
    #[inline]
    fn apply_op(labels: &mut EdgeLabels, op: &HalfOp) {
        match (op.add, op.color) {
            (true, Some(c)) => {
                labels.add_color(c);
            }
            (true, None) => labels.set_black(),
            (false, Some(c)) => {
                labels.remove_color(c);
            }
            (false, None) => labels.clear_black(),
        }
    }

    /// Replays one pair's run of half-ops onto its label set, in original
    /// sequence order (the merge path sorts runs by `(neighbor, seq)`).
    fn replay_ops(labels: &mut EdgeLabels, run: &[HalfOp]) {
        for op in run {
            Self::apply_op(labels, op);
        }
    }

    /// Applies one half-op to its slot in place — a binary search and an
    /// in-place label update (plus at most one insert/remove shift) —
    /// skipping the full-list rewrite of [`Graph::merge_slot`]. Same
    /// edge-count convention: only the canonical (`owner < neighbor`) half
    /// reports the net change.
    fn point_op(&mut self, slot_ix: u32, op: &HalfOp) -> isize {
        let other = op.other;
        let slot = &mut self.slots[slot_ix as usize];
        let owner = slot.node;
        match slot.nbrs.search(other) {
            Ok(p) => {
                let entry = slot.nbrs.get_mut(p);
                let was_black = entry.labels.is_black();
                Self::apply_op(&mut entry.labels, op);
                let now_black = entry.labels.is_black();
                let gone = entry.labels.is_empty();
                slot.black_degree =
                    (slot.black_degree as i64 + now_black as i64 - was_black as i64) as u32;
                if gone {
                    slot.nbrs.remove(p);
                }
                if owner < other {
                    !gone as isize - 1
                } else {
                    0
                }
            }
            Err(p) => {
                let mut labels = EdgeLabels::empty();
                Self::apply_op(&mut labels, op);
                if labels.is_empty() {
                    return 0;
                }
                if labels.is_black() {
                    slot.black_degree += 1;
                }
                slot.nbrs.insert(
                    p,
                    Nbr {
                        id: other,
                        slot: op.other_slot,
                        labels,
                    },
                );
                (owner < other) as isize
            }
        }
    }

    /// Rewrites one slot's neighbor list by merging a sorted run of half-ops
    /// into it. Returns the net change in undirected edge count, counted
    /// only on the canonical (`owner < neighbor`) half so the two mirrored
    /// walks contribute exactly once per edge.
    fn merge_slot(&mut self, slot_ix: u32, group: &[HalfOp], merged: &mut Vec<Nbr>) -> isize {
        let slot = &mut self.slots[slot_ix as usize];
        let owner = slot.node;
        let mut old = std::mem::take(&mut slot.nbrs);
        merged.clear();
        merged.reserve(old.len() + group.len());

        let (mut edge_delta, mut black_delta) = (0isize, 0i64);
        let (mut oi, mut gi) = (0usize, 0usize);
        let old_len = old.len();
        while gi < group.len() {
            let other = group[gi].other;
            let mut ge = gi + 1;
            while ge < group.len() && group[ge].other == other {
                ge += 1;
            }
            while oi < old_len && old.get(oi).id < other {
                merged.push(std::mem::take(old.get_mut(oi)));
                oi += 1;
            }
            let (mut labels, other_slot, existed) = if oi < old_len && old.get(oi).id == other {
                let e = std::mem::take(old.get_mut(oi));
                oi += 1;
                (e.labels, e.slot, true)
            } else {
                (EdgeLabels::empty(), group[gi].other_slot, false)
            };
            let was_black = labels.is_black();
            Self::replay_ops(&mut labels, &group[gi..ge]);
            black_delta += labels.is_black() as i64 - was_black as i64;
            if owner < other {
                edge_delta += !labels.is_empty() as isize - existed as isize;
            }
            if !labels.is_empty() {
                merged.push(Nbr {
                    id: other,
                    slot: other_slot,
                    labels,
                });
            }
            gi = ge;
        }
        while oi < old_len {
            merged.push(std::mem::take(old.get_mut(oi)));
            oi += 1;
        }

        old.assign(merged);
        let slot = &mut self.slots[slot_ix as usize];
        slot.nbrs = old;
        slot.black_degree = (slot.black_degree as i64 + black_delta) as u32;
        edge_delta
    }
}

/// One edge-label mutation inside a bulk [`Graph::apply_delta`] batch.
///
/// `color: None` addresses the black label, `Some(c)` the cloud color `c` —
/// matching the four sequential entry points ([`Graph::add_black_edge`],
/// [`Graph::add_colored_edge`], [`Graph::strip_black`],
/// [`Graph::strip_color`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeMutation {
    /// First endpoint.
    pub a: NodeId,
    /// Second endpoint.
    pub b: NodeId,
    /// The label addressed: `None` = black, `Some(c)` = cloud color `c`.
    pub color: Option<CloudColor>,
    /// `true` adds the label (creating the edge if needed), `false` strips
    /// it (removing the edge when no label remains).
    pub add: bool,
}

impl EdgeMutation {
    /// Add the black label to `(a, b)`.
    pub const fn add_black(a: NodeId, b: NodeId) -> Self {
        EdgeMutation {
            a,
            b,
            color: None,
            add: true,
        }
    }

    /// Add cloud color `c` to `(a, b)`.
    pub const fn add_colored(a: NodeId, b: NodeId, c: CloudColor) -> Self {
        EdgeMutation {
            a,
            b,
            color: Some(c),
            add: true,
        }
    }

    /// Strip the black label from `(a, b)`.
    pub const fn strip_black(a: NodeId, b: NodeId) -> Self {
        EdgeMutation {
            a,
            b,
            color: None,
            add: false,
        }
    }

    /// Strip cloud color `c` from `(a, b)`.
    pub const fn strip_colored(a: NodeId, b: NodeId, c: CloudColor) -> Self {
        EdgeMutation {
            a,
            b,
            color: Some(c),
            add: false,
        }
    }
}

/// Arena-size threshold (in slots) above which [`Graph::apply_delta`]
/// switches from in-order point application to the sorted, prefetched
/// grouped walk. Two million ~96-byte slot records put the arena near or
/// past even a large server LLC, which is exactly when slot accesses start
/// missing to DRAM and the grouped walk's overlapped misses pay for the
/// sort; below that the whole arena is cache-resident and out-of-order
/// execution already overlaps independent point edits for free.
pub const SORTED_APPLY_MIN_SLOTS: usize = 1 << 21;

/// One half of an [`EdgeMutation`], bucketed to its owning slot.
///
/// The owning slot and the sequence position are *not* stored here: the
/// bulk sort orders a parallel array of packed `slot << 32 | index` words
/// (see [`Graph::apply_delta`]), so the sort moves 8 bytes per half-op
/// instead of this whole record.
#[derive(Clone, Copy, Debug)]
struct HalfOp {
    other: NodeId,
    other_slot: u32,
    color: Option<CloudColor>,
    add: bool,
}

/// Mask extracting the half-op index from a packed order word.
const IX_MASK: u64 = 0xFFFF_FFFF;

/// Reusable working memory for [`Graph::apply_delta`]: the half-op sort
/// arena and the merge output buffer. Thread one of these through an
/// executor's hot loop so steady-state bulk application allocates nothing.
#[derive(Debug, Default)]
pub struct DeltaScratch {
    half_ops: Vec<HalfOp>,
    /// Packed `slot << 32 | half_op_index` words — the 8-byte sort arena.
    order: Vec<u64>,
    /// Gather buffer for merge-path slot groups, in `(neighbor, seq)` order.
    group_buf: Vec<HalfOp>,
    merged: Vec<Nbr>,
}

impl Clone for DeltaScratch {
    /// Cloning yields a fresh, empty scratch: contents are transient
    /// per-batch working state, not data.
    fn clone(&self) -> Self {
        DeltaScratch::default()
    }
}

/// A dense CSR snapshot of a [`Graph`], built by [`Graph::csr_view`].
///
/// Node `i` (for `i` in `0..len()`) is `nodes()[i]`, the `i`-th live node in
/// ascending `NodeId` order; `neighbors_of(i)` yields dense indices, sorted
/// ascending. The snapshot does not track later mutations.
///
/// # Examples
///
/// ```
/// use xheal_graph::generators;
/// let g = generators::cycle(5);
/// let csr = g.csr_view();
/// assert_eq!(csr.len(), 5);
/// assert_eq!(csr.neighbors_of(0), &[1, 4]);
/// ```
#[derive(Clone, Debug)]
pub struct CsrView {
    nodes: Vec<NodeId>,
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
}

impl CsrView {
    /// Assembles a view from raw CSR arrays — the entry point for consumers
    /// (e.g. incrementally maintained monitors) that build the dense
    /// representation themselves and want to hand it to the CSR-consuming
    /// algorithms without an owning copy of a [`Graph`].
    ///
    /// Invariants required (debug-asserted): `nodes` sorted strictly
    /// ascending, `offsets.len() == nodes.len() + 1` starting at 0 and
    /// non-decreasing with `neighbors.len()` as the final entry, and every
    /// neighbor index below `nodes.len()`.
    pub fn from_parts(nodes: Vec<NodeId>, offsets: Vec<u32>, neighbors: Vec<u32>) -> Self {
        debug_assert_eq!(offsets.len(), nodes.len() + 1);
        debug_assert_eq!(offsets.first(), Some(&0));
        debug_assert_eq!(
            *offsets.last().expect("nonempty offsets") as usize,
            neighbors.len()
        );
        debug_assert!(nodes.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!(neighbors.iter().all(|&j| (j as usize) < nodes.len()));
        CsrView {
            nodes,
            offsets,
            neighbors,
        }
    }

    /// Number of nodes in the snapshot.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the snapshot has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node ids backing dense coordinates, ascending.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The node id at dense index `i`.
    pub fn node(&self, i: usize) -> NodeId {
        self.nodes[i]
    }

    /// Dense index of `v`, if present (binary search over the sorted spine).
    pub fn index_of(&self, v: NodeId) -> Option<usize> {
        self.nodes.binary_search(&v).ok()
    }

    /// Dense neighbor indices of dense node `i`, ascending.
    pub fn neighbors_of(&self, i: usize) -> &[u32] {
        &self.neighbors[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Degree of dense node `i`.
    pub fn degree_of(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// The raw offset array (`len() + 1` entries, first 0, last
    /// `neighbors_flat().len()`), for matrix-free operators borrowing the
    /// CSR arrays directly.
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The raw flattened neighbor array (`2 × edge count` dense indices).
    pub fn neighbors_flat(&self) -> &[u32] {
        &self.neighbors
    }

    /// Number of undirected edges in the snapshot.
    pub fn edge_count(&self) -> usize {
        self.neighbors.len() / 2
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "graph: {} nodes, {} edges",
            self.node_count(),
            self.edge_count()
        )?;
        for (u, v, l) in self.edges() {
            writeln!(f, "  {u} -- {v} [{l}]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    fn triangle() -> Graph {
        let mut g = Graph::new();
        for i in 0..3 {
            g.add_node(n(i)).unwrap();
        }
        g.add_black_edge(n(0), n(1)).unwrap();
        g.add_black_edge(n(1), n(2)).unwrap();
        g.add_black_edge(n(2), n(0)).unwrap();
        g
    }

    #[test]
    fn add_and_query_nodes() {
        let mut g = Graph::new();
        assert_eq!(g.node_count(), 0);
        g.add_node(n(1)).unwrap();
        assert!(g.contains_node(n(1)));
        assert_eq!(g.add_node(n(1)), Err(GraphError::NodeExists(n(1))));
        assert_eq!(g.degree(n(1)), Some(0));
        assert_eq!(g.degree(n(2)), None);
    }

    #[test]
    fn self_loops_rejected() {
        let mut g = Graph::new();
        g.add_node(n(1)).unwrap();
        assert_eq!(
            g.add_black_edge(n(1), n(1)),
            Err(GraphError::SelfLoop(n(1)))
        );
    }

    #[test]
    fn missing_endpoint_rejected() {
        let mut g = Graph::new();
        g.add_node(n(1)).unwrap();
        assert_eq!(
            g.add_black_edge(n(1), n(2)),
            Err(GraphError::NodeMissing(n(2)))
        );
    }

    #[test]
    fn black_edge_roundtrip() {
        let g = triangle();
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(n(0)), Some(2));
        assert_eq!(g.black_degree(n(0)), Some(2));
        assert!(g.edge_labels(n(0), n(1)).unwrap().is_black());
        g.validate().unwrap();
    }

    #[test]
    fn recolor_existing_black_edge_keeps_single_edge() {
        let mut g = triangle();
        let c = CloudColor::new(7);
        let created = g.add_colored_edge(n(0), n(1), c).unwrap();
        assert!(!created, "edge already existed; must not duplicate");
        assert_eq!(g.edge_count(), 3);
        let l = g.edge_labels(n(0), n(1)).unwrap();
        assert!(l.is_black() && l.has_color(c));
        g.validate().unwrap();
    }

    #[test]
    fn strip_color_removes_edge_only_when_label_set_empties() {
        let mut g = triangle();
        let c = CloudColor::new(7);
        g.add_colored_edge(n(0), n(1), c).unwrap();
        assert!(!g.strip_color(n(0), n(1), c), "black label remains");
        assert!(g.has_edge(n(0), n(1)));
        assert!(g.strip_black(n(0), n(1)), "now fully removed");
        assert!(!g.has_edge(n(0), n(1)));
        assert_eq!(g.edge_count(), 2);
        g.validate().unwrap();
    }

    #[test]
    fn strip_on_missing_edge_is_noop() {
        let mut g = triangle();
        assert!(!g.strip_color(n(0), n(1), CloudColor::new(99)));
        assert!(!g.strip_color(n(0), n(42), CloudColor::new(1)));
        assert!(g.has_edge(n(0), n(1)));
    }

    #[test]
    fn remove_node_returns_incident_labels() {
        let mut g = triangle();
        let c = CloudColor::new(3);
        g.add_colored_edge(n(0), n(2), c).unwrap();
        let incident = g.remove_node(n(0)).unwrap();
        assert_eq!(incident.len(), 2);
        assert_eq!(incident[0].0, n(1));
        assert!(incident[0].1.is_black());
        assert_eq!(incident[1].0, n(2));
        assert!(incident[1].1.has_color(c));
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        g.validate().unwrap();
    }

    #[test]
    fn remove_missing_node_errors() {
        let mut g = Graph::new();
        assert_eq!(g.remove_node(n(5)), Err(GraphError::NodeMissing(n(5))));
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = triangle();
        let edges: Vec<(NodeId, NodeId)> = g.edges().map(|(u, v, _)| (u, v)).collect();
        assert_eq!(edges, vec![(n(0), n(1)), (n(0), n(2)), (n(1), n(2))]);
    }

    #[test]
    fn cut_size_counts_crossing_edges() {
        let g = triangle();
        assert_eq!(g.cut_size(&[n(0)]), 2);
        assert_eq!(g.cut_size(&[n(0), n(1)]), 2);
        assert_eq!(g.cut_size(&[n(0), n(1), n(2)]), 0);
        assert_eq!(g.cut_size(&[]), 0);
        // Duplicates and absent nodes are tolerated.
        assert_eq!(g.cut_size(&[n(0), n(0), n(99)]), 2);
    }

    #[test]
    fn volume_sums_degrees() {
        let g = triangle();
        assert_eq!(g.volume([n(0), n(1)]), 4);
        assert_eq!(g.volume([n(99)]), 0);
    }

    #[test]
    fn colored_and_black_neighbor_queries() {
        let mut g = triangle();
        let c = CloudColor::new(1);
        g.add_colored_edge(n(0), n(1), c).unwrap();
        g.strip_black(n(0), n(1));
        assert_eq!(g.black_neighbors(n(0)), vec![n(2)]);
        assert_eq!(g.colored_neighbors(n(0), c), vec![n(1)]);
        assert_eq!(g.black_degree(n(0)), Some(1));
        assert_eq!(g.degree(n(0)), Some(2));
    }

    #[test]
    fn remove_edge_returns_labels() {
        let mut g = triangle();
        let l = g.remove_edge(n(0), n(1)).unwrap();
        assert!(l.is_black());
        assert_eq!(
            g.remove_edge(n(0), n(1)),
            Err(GraphError::EdgeMissing(n(0), n(1)))
        );
    }

    #[test]
    fn display_lists_edges() {
        let g = triangle();
        let s = format!("{g}");
        assert!(s.contains("3 nodes, 3 edges"));
        assert!(s.contains("n0 -- n1 [black]"));
    }

    #[test]
    fn slots_are_recycled_under_churn() {
        let mut g = triangle();
        let cap = g.slot_capacity();
        for i in 10..100 {
            g.add_node(n(i)).unwrap();
            g.add_black_edge(n(0), n(i)).unwrap();
            g.remove_node(n(i)).unwrap();
        }
        assert_eq!(
            g.slot_capacity(),
            cap + 1,
            "churn reuses one recycled slot instead of growing the arena"
        );
        g.validate().unwrap();
    }

    #[test]
    fn slot_of_tracks_membership() {
        let mut g = triangle();
        assert!(g.slot_of(n(1)).is_some());
        assert!(g.slot_of(n(9)).is_none());
        g.remove_node(n(1)).unwrap();
        assert!(g.slot_of(n(1)).is_none());
    }

    #[test]
    fn black_degree_counter_survives_label_churn() {
        let mut g = triangle();
        let c = CloudColor::new(4);
        // Toggle black off and on under an added color.
        g.add_colored_edge(n(0), n(1), c).unwrap();
        g.strip_black(n(0), n(1));
        assert_eq!(g.black_degree(n(0)), Some(1));
        assert_eq!(g.black_degree(n(1)), Some(1));
        g.add_black_edge(n(0), n(1)).unwrap();
        assert_eq!(g.black_degree(n(0)), Some(2));
        g.remove_edge(n(0), n(1)).unwrap();
        assert_eq!(g.black_degree(n(0)), Some(1));
        g.validate().unwrap();
    }

    #[test]
    fn semantic_equality_ignores_arena_history() {
        // Same final topology via different churn histories.
        let mut a = triangle();
        a.add_node(n(7)).unwrap();
        a.add_black_edge(n(0), n(7)).unwrap();
        a.remove_node(n(7)).unwrap();

        let b = triangle();
        assert_eq!(a, b);
        let mut c = triangle();
        c.strip_black(n(0), n(1));
        assert_ne!(a, c);
    }

    /// Sequential reference for `apply_delta`: the plain per-op loop.
    fn apply_sequential(g: &mut Graph, ops: &[EdgeMutation]) {
        for op in ops {
            match (op.add, op.color) {
                (true, Some(c)) => {
                    g.add_colored_edge(op.a, op.b, c).unwrap();
                }
                (true, None) => {
                    g.add_black_edge(op.a, op.b).unwrap();
                }
                (false, Some(c)) => {
                    g.strip_color(op.a, op.b, c);
                }
                (false, None) => {
                    g.strip_black(op.a, op.b);
                }
            }
        }
    }

    fn assert_bulk_matches_sequential(seed: &Graph, ops: &[EdgeMutation]) {
        // Public entry point: at test sizes this dispatches to the in-order
        // point-edit regime.
        let mut bulk = seed.clone();
        let mut seq = seed.clone();
        let mut scratch = DeltaScratch::default();
        bulk.apply_delta(ops, &mut scratch).unwrap();
        apply_sequential(&mut seq, ops);
        bulk.validate().unwrap();
        assert_eq!(bulk, seq);
        assert_eq!(bulk.edge_count(), seq.edge_count());
        for v in seq.node_vec() {
            assert_eq!(bulk.black_degree(v), seq.black_degree(v), "black deg {v}");
        }
        // Forced sorted regime (what DRAM-sized arenas run): must be
        // bit-identical to both of the above on any graph.
        let mut sorted = seed.clone();
        sorted.build_half_ops(ops, &mut scratch).unwrap();
        sorted.apply_sorted(&mut scratch);
        sorted.validate().unwrap();
        assert_eq!(sorted, seq, "sorted regime diverged from sequential");
        assert_eq!(sorted.edge_count(), seq.edge_count());
    }

    #[test]
    fn apply_delta_empty_batch_is_noop() {
        let mut g = triangle();
        let before = g.clone();
        g.apply_delta(&[], &mut DeltaScratch::default()).unwrap();
        assert_eq!(g, before);
    }

    #[test]
    fn apply_delta_matches_sequential_mixed_batch() {
        let mut g = triangle();
        for i in 3..8 {
            g.add_node(n(i)).unwrap();
        }
        let c1 = CloudColor::new(1);
        let c2 = CloudColor::new(2);
        let ops = vec![
            EdgeMutation::strip_black(n(0), n(1)),
            EdgeMutation::add_colored(n(0), n(3), c1),
            EdgeMutation::add_colored(n(3), n(4), c1),
            EdgeMutation::add_colored(n(0), n(1), c2),
            EdgeMutation::add_black(n(4), n(5)),
            EdgeMutation::strip_colored(n(1), n(2), c1), // absent color: no-op
            EdgeMutation::add_colored(n(5), n(6), c2),
            EdgeMutation::strip_black(n(2), n(0)),
        ];
        assert_bulk_matches_sequential(&g, &ops);
    }

    #[test]
    fn apply_delta_add_then_strip_same_color_in_one_batch() {
        // The regression the seq-ordered merge exists for: a batch plan can
        // add a splice edge and strip that same (pair, color) later in the
        // same flush. "All strips then all adds" would leave the edge alive.
        let g = triangle();
        let c = CloudColor::new(9);
        let ops = vec![
            EdgeMutation::add_colored(n(0), n(1), c),
            EdgeMutation::strip_colored(n(0), n(1), c),
        ];
        assert_bulk_matches_sequential(&g, &ops);
        let ops_rev = vec![
            EdgeMutation::strip_colored(n(0), n(1), c),
            EdgeMutation::add_colored(n(0), n(1), c),
        ];
        assert_bulk_matches_sequential(&g, &ops_rev);
    }

    #[test]
    fn apply_delta_create_and_destroy_within_batch() {
        let mut g = Graph::new();
        for i in 0..3 {
            g.add_node(n(i)).unwrap();
        }
        let c = CloudColor::new(4);
        // Edge flips into and out of existence inside one batch: net zero.
        let ops = vec![
            EdgeMutation::add_colored(n(0), n(1), c),
            EdgeMutation::strip_colored(n(0), n(1), c),
            EdgeMutation::add_black(n(0), n(1)),
            EdgeMutation::strip_black(n(0), n(1)),
        ];
        assert_bulk_matches_sequential(&g, &ops);
        let mut bulk = g.clone();
        bulk.apply_delta(&ops, &mut DeltaScratch::default())
            .unwrap();
        assert_eq!(bulk.edge_count(), 0);
    }

    #[test]
    fn apply_delta_strips_tolerate_missing_endpoints_and_self_loops() {
        let g = triangle();
        let ops = vec![
            EdgeMutation::strip_black(n(0), n(42)), // absent endpoint
            EdgeMutation::strip_colored(n(1), n(1), CloudColor::new(1)), // self loop
            EdgeMutation::strip_black(n(0), n(1)),
        ];
        assert_bulk_matches_sequential(&g, &ops);
    }

    #[test]
    fn apply_delta_rejects_bad_adds_before_mutating() {
        let mut g = triangle();
        let before = g.clone();
        let mut scratch = DeltaScratch::default();
        let err = g
            .apply_delta(
                &[
                    EdgeMutation::strip_black(n(0), n(1)),
                    EdgeMutation::add_black(n(0), n(42)),
                ],
                &mut scratch,
            )
            .unwrap_err();
        assert_eq!(err, GraphError::NodeMissing(n(42)));
        assert_eq!(g, before, "failed batch must not partially apply");
        let err = g
            .apply_delta(&[EdgeMutation::add_black(n(1), n(1))], &mut scratch)
            .unwrap_err();
        assert_eq!(err, GraphError::SelfLoop(n(1)));
        assert_eq!(g, before);
    }

    #[test]
    fn apply_delta_crosses_inline_spill_boundary() {
        // Drive one node's degree across the NBR_INLINE boundary in both
        // directions within grouped batches.
        let mut g = Graph::new();
        for i in 0..12 {
            g.add_node(n(i)).unwrap();
        }
        let grow: Vec<EdgeMutation> = (1..10)
            .map(|i| EdgeMutation::add_black(n(0), n(i)))
            .collect();
        assert_bulk_matches_sequential(&g, &grow);
        let mut grown = g.clone();
        grown
            .apply_delta(&grow, &mut DeltaScratch::default())
            .unwrap();
        assert_eq!(grown.degree(n(0)), Some(9));
        let shrink: Vec<EdgeMutation> = (1..8)
            .map(|i| EdgeMutation::strip_black(n(0), n(i)))
            .collect();
        assert_bulk_matches_sequential(&grown, &shrink);
        // And interleaved grow/shrink around the boundary.
        let mixed = vec![
            EdgeMutation::strip_black(n(0), n(8)),
            EdgeMutation::add_black(n(0), n(10)),
            EdgeMutation::strip_black(n(0), n(1)),
            EdgeMutation::strip_black(n(0), n(2)),
            EdgeMutation::add_black(n(0), n(11)),
            EdgeMutation::strip_black(n(0), n(3)),
        ];
        assert_bulk_matches_sequential(&grown, &mixed);
    }

    #[test]
    fn apply_delta_duplicate_ops_are_idempotent() {
        let g = triangle();
        let c = CloudColor::new(5);
        let ops = vec![
            EdgeMutation::add_colored(n(0), n(1), c),
            EdgeMutation::add_colored(n(0), n(1), c),
            EdgeMutation::strip_black(n(1), n(2)),
            EdgeMutation::strip_black(n(1), n(2)),
        ];
        assert_bulk_matches_sequential(&g, &ops);
    }

    #[test]
    fn nbr_list_insert_remove_walk() {
        // Exercise NbrList directly across the inline/spill boundary with
        // every insert/remove position class.
        let mut g = Graph::new();
        for i in 0..9 {
            g.add_node(n(i)).unwrap();
        }
        // Insert in shuffled order (head-middle, tail, evicting inserts).
        for &i in &[5u64, 2, 8, 1, 7, 3, 6, 4] {
            g.add_black_edge(n(0), n(i)).unwrap();
            g.validate().unwrap();
        }
        let got: Vec<NodeId> = g.neighbors(n(0)).collect();
        let expect: Vec<NodeId> = (1..9).map(n).collect();
        assert_eq!(got, expect);
        // Remove from head front, head back, tail, and across refills.
        for &i in &[1u64, 4, 8, 2, 6, 3, 7, 5] {
            g.strip_black(n(0), n(i));
            g.validate().unwrap();
        }
        assert_eq!(g.degree(n(0)), Some(0));
    }

    #[test]
    fn csr_view_matches_adjacency() {
        let mut g = triangle();
        g.add_node(n(10)).unwrap();
        g.add_black_edge(n(10), n(1)).unwrap();
        // Force slot reuse so dense order != slot order.
        g.remove_node(n(0)).unwrap();
        g.add_node(n(20)).unwrap();
        g.add_black_edge(n(20), n(2)).unwrap();

        let csr = g.csr_view();
        assert_eq!(csr.nodes(), &[n(1), n(2), n(10), n(20)]);
        for i in 0..csr.len() {
            let v = csr.node(i);
            let expect: Vec<NodeId> = g.neighbors(v).collect();
            let got: Vec<NodeId> = csr
                .neighbors_of(i)
                .iter()
                .map(|&j| csr.node(j as usize))
                .collect();
            assert_eq!(got, expect, "dense adjacency of {v}");
            assert_eq!(csr.degree_of(i), g.degree(v).unwrap());
            assert_eq!(csr.index_of(v), Some(i));
        }
        assert_eq!(csr.index_of(n(0)), None);
    }
}
