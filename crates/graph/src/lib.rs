//! # xheal-graph
//!
//! Dynamic labeled-edge graph substrate for the reproduction of
//! *Xheal: Localized Self-healing using Expanders* (Pandurangan & Trehan,
//! PODC 2011).
//!
//! The paper's model (its Figure 1) works over an undirected simple graph
//! whose edges are either *black* (original or adversary-inserted) or carry
//! the *color* of an expander cloud installed by the healing algorithm. This
//! crate provides:
//!
//! - [`Graph`]: a deterministic, mutation-friendly simple graph whose edges
//!   carry an [`EdgeLabels`] set (black flag + cloud colors — see DESIGN.md
//!   for why a *set* rather than the paper's single color),
//! - [`traversal`]: BFS distances, shortest paths, diameter (stretch metric),
//! - [`components`]: connectivity and articulation points (adversary tooling),
//! - [`cuts`]: exact edge expansion `h(G)` and conductance `φ(G)` for small
//!   graphs by enumeration,
//! - [`generators`]: the topologies used by experiments (star, grid, G(n,p),
//!   random regular, preferential attachment, the Cheeger-gap clique pair).
//!
//! # Examples
//!
//! Build a star, delete its center, and watch connectivity break — the
//! scenario Xheal exists to repair:
//!
//! ```
//! use xheal_graph::{components, generators, NodeId};
//!
//! let mut g = generators::star(8);
//! assert!(components::is_connected(&g));
//! let incident = g.remove_node(NodeId::new(0))?; // the center
//! assert_eq!(incident.len(), 7);
//! assert!(!components::is_connected(&g));
//! # Ok::<(), xheal_graph::GraphError>(())
//! ```

// `deny` rather than `forbid`: the one sanctioned exception is the software
// prefetch intrinsic behind `graph::prefetch_read`, which needs an `unsafe`
// intrinsic call on x86_64 (see its safety comment). Everything else in the
// crate must stay safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod graph;
mod ids;
mod labels;

pub mod baseline;
pub mod components;
pub mod cuts;
pub mod generators;
pub mod traversal;

pub use graph::{
    CsrView, DeltaScratch, EdgeMutation, FxHashMap, FxHasher, Graph, GraphError,
    SORTED_APPLY_MIN_SLOTS,
};
pub use ids::{IdAllocator, NodeId};
pub use labels::{CloudColor, CloudKind, EdgeLabels};
