//! Exact edge expansion and conductance by subset enumeration.
//!
//! The paper's Preliminaries define edge expansion
//! `h(G) = min_{|S| <= |V|/2} |E(S, S̄)| / |S|` and the Cheeger constant
//! `φ(G) = min_S |E(S, S̄)| / min(vol(S), vol(S̄))`. Both are NP-hard in
//! general; this module computes them *exactly* for graphs up to
//! [`MAX_EXACT_NODES`] nodes with bitmask enumeration, which is what the
//! small-scale expansion experiments (E3, parts of E6/E8) use. Larger graphs
//! use the spectral bounds in `xheal-spectral`.

use crate::{Graph, NodeId};

/// Largest graph for which exact enumeration is allowed (2^21 cuts ≈ 2M).
pub const MAX_EXACT_NODES: usize = 21;

/// The minimizing cut found by an exact computation.
#[derive(Clone, Debug, PartialEq)]
pub struct ExactCut {
    /// Value of the minimized quotient (expansion or conductance).
    pub value: f64,
    /// The side `S` realizing the minimum, sorted ascending.
    pub side: Vec<NodeId>,
    /// Number of edges crossing `(S, S̄)`.
    pub crossing: usize,
}

fn adjacency_masks(g: &Graph) -> Option<(Vec<NodeId>, Vec<u32>)> {
    let csr = g.csr_view();
    let n = csr.len();
    if n > MAX_EXACT_NODES {
        return None;
    }
    let mut masks = vec![0u32; n];
    for (i, mask) in masks.iter_mut().enumerate() {
        for &u in csr.neighbors_of(i) {
            *mask |= 1 << u;
        }
    }
    Some((csr.nodes().to_vec(), masks))
}

fn crossing_edges(masks: &[u32], subset: u32) -> usize {
    let mut total = 0usize;
    let mut bits = subset;
    while bits != 0 {
        let i = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        total += (masks[i] & !subset).count_ones() as usize;
    }
    total
}

fn side_nodes(nodes: &[NodeId], subset: u32) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(subset.count_ones() as usize);
    let mut bits = subset;
    while bits != 0 {
        let i = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        out.push(nodes[i]);
    }
    out
}

/// Exact edge expansion `h(G)`, or `None` if the graph has more than
/// [`MAX_EXACT_NODES`] nodes or fewer than 2 nodes.
///
/// A disconnected graph has expansion 0 (some cut crosses no edge).
///
/// # Examples
///
/// ```
/// use xheal_graph::{cuts, generators};
/// let g = generators::complete(6);
/// // K6: the worst balanced cut has 3·3 = 9 crossing edges over |S| = 3.
/// let h = cuts::edge_expansion_exact(&g).unwrap();
/// assert_eq!(h.value, 3.0);
/// ```
pub fn edge_expansion_exact(g: &Graph) -> Option<ExactCut> {
    let (nodes, masks) = adjacency_masks(g)?;
    let n = nodes.len();
    if n < 2 {
        return None;
    }
    let half = n / 2;
    let mut best: Option<(f64, u32, usize)> = None;
    for subset in 1u32..(1 << n) - 1 {
        let size = subset.count_ones() as usize;
        if size > half {
            continue;
        }
        let cross = crossing_edges(&masks, subset);
        let value = cross as f64 / size as f64;
        if best.is_none_or(|(b, _, _)| value < b) {
            best = Some((value, subset, cross));
        }
    }
    best.map(|(value, subset, crossing)| ExactCut {
        value,
        side: side_nodes(&nodes, subset),
        crossing,
    })
}

/// Exact Cheeger constant (conductance) `φ(G)`, or `None` beyond
/// [`MAX_EXACT_NODES`] nodes / below 2 nodes / zero-volume sides.
///
/// # Examples
///
/// ```
/// use xheal_graph::{cuts, generators};
/// let g = generators::cycle(8);
/// let phi = cuts::conductance_exact(&g).unwrap();
/// // Cycle: best cut is an arc of 4 nodes, 2 crossing edges, volume 8.
/// assert!((phi.value - 0.25).abs() < 1e-12);
/// ```
pub fn conductance_exact(g: &Graph) -> Option<ExactCut> {
    let (nodes, masks) = adjacency_masks(g)?;
    let n = nodes.len();
    if n < 2 {
        return None;
    }
    let degs: Vec<usize> = nodes.iter().map(|&v| g.degree(v).unwrap_or(0)).collect();
    let total_vol: usize = degs.iter().sum();
    let mut best: Option<(f64, u32, usize)> = None;
    // Fix the highest-index node outside S: conductance is symmetric in S/S̄.
    for subset in 1u32..(1 << (n - 1)) {
        let mut vol = 0usize;
        let mut bits = subset;
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            vol += degs[i];
        }
        let other = total_vol - vol;
        let denom = vol.min(other);
        if denom == 0 {
            continue;
        }
        let cross = crossing_edges(&masks, subset);
        let value = cross as f64 / denom as f64;
        if best.is_none_or(|(b, _, _)| value < b) {
            best = Some((value, subset, cross));
        }
    }
    best.map(|(value, subset, crossing)| ExactCut {
        value,
        side: side_nodes(&nodes, subset),
        crossing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn expansion_of_complete_graph() {
        // K_n: any |S| = k has k(n-k) crossing edges; min over k <= n/2 of
        // k(n-k)/k = n-k, minimized at k = floor(n/2).
        for n in [4usize, 5, 6, 7] {
            let g = generators::complete(n);
            let h = edge_expansion_exact(&g).unwrap();
            assert_eq!(h.value, (n - n / 2) as f64, "K{n}");
        }
    }

    #[test]
    fn expansion_of_star_is_small() {
        // Star on n nodes (center + n-1 leaves): the worst cut takes
        // floor(n/2) leaves; h = floor(n/2)/floor(n/2) = 1... each leaf has
        // exactly one edge to the center, so h = k/k = 1? No: |E(S,S̄)| = k
        // (one edge per leaf), |S| = k, so h = 1. The *center-side* cuts are
        // worse for the complement. Exact value is 1 for leaf-only S.
        let g = generators::star(9);
        let h = edge_expansion_exact(&g).unwrap();
        assert_eq!(h.value, 1.0);
    }

    #[test]
    fn expansion_of_path_is_one_over_half() {
        // Path on n nodes: cutting in the middle gives 1/(n/2).
        let g = generators::path(10);
        let h = edge_expansion_exact(&g).unwrap();
        assert!((h.value - 1.0 / 5.0).abs() < 1e-12);
        assert_eq!(h.crossing, 1);
        assert_eq!(h.side.len(), 5);
    }

    #[test]
    fn disconnected_graph_has_zero_expansion() {
        let mut g = generators::path(4);
        g.add_node(NodeId::new(99)).unwrap();
        let h = edge_expansion_exact(&g).unwrap();
        assert_eq!(h.value, 0.0);
        assert_eq!(h.crossing, 0);
    }

    #[test]
    fn conductance_le_expansion_over_dmin_relation() {
        // Paper inequality (1): h/dmax <= phi <= h/dmin.
        use rand::{rngs::StdRng, SeedableRng};
        for seed in 0..6 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::erdos_renyi(10, 0.4, &mut rng);
            if g.edge_count() == 0 {
                continue;
            }
            let degs: Vec<usize> = g.node_vec().iter().map(|&v| g.degree(v).unwrap()).collect();
            let dmin = *degs.iter().min().unwrap();
            let dmax = *degs.iter().max().unwrap();
            if dmin == 0 {
                continue;
            }
            let h = edge_expansion_exact(&g).unwrap().value;
            let phi = conductance_exact(&g).unwrap().value;
            assert!(phi <= h / dmin as f64 + 1e-9, "seed {seed}");
            assert!(phi >= h / dmax as f64 - 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn too_large_graph_returns_none() {
        let g = generators::path(MAX_EXACT_NODES + 1);
        assert!(edge_expansion_exact(&g).is_none());
        assert!(conductance_exact(&g).is_none());
    }

    #[test]
    fn tiny_graphs_return_none() {
        let mut g = Graph::new();
        assert!(edge_expansion_exact(&g).is_none());
        g.add_node(NodeId::new(0)).unwrap();
        assert!(edge_expansion_exact(&g).is_none());
    }

    #[test]
    fn minimizing_side_matches_reported_value() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::erdos_renyi(9, 0.35, &mut rng);
        if let Some(h) = edge_expansion_exact(&g) {
            let recomputed = g.cut_size(&h.side) as f64 / h.side.len() as f64;
            assert!((recomputed - h.value).abs() < 1e-12);
            assert_eq!(g.cut_size(&h.side), h.crossing);
        }
    }
}
