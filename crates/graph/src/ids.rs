//! Identifier newtypes used across the workspace.

use std::fmt;

/// Identifier of a node (processor) in the network.
///
/// The insert/delete/repair model of the paper assumes "every node gets a
/// unique ID whenever it is inserted to the network" (Section 3); callers are
/// responsible for uniqueness, which [`crate::Graph`] enforces on insertion.
///
/// # Examples
///
/// ```
/// use xheal_graph::NodeId;
/// let a = NodeId::new(7);
/// assert_eq!(a.as_u64(), 7);
/// assert!(NodeId::new(3) < a);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u64);

impl NodeId {
    /// Creates a node id from a raw integer.
    pub const fn new(raw: u64) -> Self {
        NodeId(raw)
    }

    /// Returns the raw integer backing this id.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u64> for NodeId {
    fn from(raw: u64) -> Self {
        NodeId(raw)
    }
}

/// Monotone generator of fresh [`NodeId`]s.
///
/// The adversary inserts nodes with fresh ids; this helper hands them out
/// deterministically starting from a given floor.
///
/// # Examples
///
/// ```
/// use xheal_graph::IdAllocator;
/// let mut ids = IdAllocator::starting_at(10);
/// assert_eq!(ids.fresh().as_u64(), 10);
/// assert_eq!(ids.fresh().as_u64(), 11);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IdAllocator {
    next: u64,
}

impl IdAllocator {
    /// Creates an allocator starting at id 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an allocator whose first id is `floor`.
    pub fn starting_at(floor: u64) -> Self {
        IdAllocator { next: floor }
    }

    /// Returns a fresh, never-before-returned id.
    pub fn fresh(&mut self) -> NodeId {
        let id = NodeId(self.next);
        self.next += 1;
        id
    }

    /// Bumps the floor so that all future ids are `> id`.
    ///
    /// Useful when seeding a graph with external ids and then switching to
    /// allocator-driven insertion.
    pub fn observe(&mut self, id: NodeId) {
        if id.0 >= self.next {
            self.next = id.0 + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip_and_ordering() {
        let a = NodeId::new(1);
        let b = NodeId::new(2);
        assert!(a < b);
        assert_eq!(NodeId::from(1), a);
        assert_eq!(b.as_u64(), 2);
        assert_eq!(format!("{a}"), "n1");
        assert_eq!(format!("{a:?}"), "n1");
    }

    #[test]
    fn allocator_is_monotone() {
        let mut ids = IdAllocator::new();
        let a = ids.fresh();
        let b = ids.fresh();
        assert!(a < b);
    }

    #[test]
    fn allocator_observe_skips_used_ids() {
        let mut ids = IdAllocator::new();
        ids.observe(NodeId::new(41));
        assert_eq!(ids.fresh().as_u64(), 42);
        // Observing something below the floor changes nothing.
        ids.observe(NodeId::new(3));
        assert_eq!(ids.fresh().as_u64(), 43);
    }
}
