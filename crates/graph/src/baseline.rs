//! The seed (pre-arena) graph representation, kept as a reference model.
//!
//! This is the original `BTreeMap<NodeId, BTreeMap<NodeId, EdgeLabels>>`
//! adjacency the reproduction shipped with, preserved verbatim behind the
//! same inherent API as [`crate::Graph`]. It exists for two reasons:
//!
//! 1. **Model-based testing** — the property suite in `tests/model.rs`
//!    replays random operation sequences against both representations and
//!    asserts identical observable behavior (node order, edge order, labels,
//!    errors), which is what licenses the arena rewrite of the hot path.
//! 2. **Measured baselines** — the `churn_throughput` harness in
//!    `xheal-bench` drives the same seeded repair schedule through both
//!    representations and records the seed-vs-arena speedup in
//!    `BENCH_throughput.json`.
//!
//! Do not use this type in new code paths; it is deliberately the slow one.

use std::collections::BTreeMap;

use crate::{CloudColor, EdgeLabels, GraphError, NodeId};

/// The seed representation: deterministic, tree-backed, pointer-chasing.
///
/// API-compatible with [`crate::Graph`] (the subset that existed before the
/// arena rewrite).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BaselineGraph {
    adj: BTreeMap<NodeId, BTreeMap<NodeId, EdgeLabels>>,
    edge_count: usize,
}

impl BaselineGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        BaselineGraph::default()
    }

    /// Number of nodes currently present.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of (undirected) edges currently present.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Is the node present?
    pub fn contains_node(&self, v: NodeId) -> bool {
        self.adj.contains_key(&v)
    }

    /// Is the edge present (with any label)?
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adj.get(&u).is_some_and(|n| n.contains_key(&v))
    }

    /// The labels on edge `(u, v)`, if it exists.
    pub fn edge_labels(&self, u: NodeId, v: NodeId) -> Option<&EdgeLabels> {
        self.adj.get(&u).and_then(|n| n.get(&v))
    }

    /// Iterator over all node ids, ascending.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.adj.keys().copied()
    }

    /// Sorted vector of all node ids.
    pub fn node_vec(&self) -> Vec<NodeId> {
        self.adj.keys().copied().collect()
    }

    /// Order-sensitive hash over the full [`BaselineGraph::edges`]
    /// enumeration — same fold, same order as
    /// [`crate::Graph::edge_fingerprint`], so equal fingerprints across
    /// representations mean bit-identical topologies.
    pub fn edge_fingerprint(&self) -> u64 {
        crate::graph::fingerprint_edges(self.edges())
    }

    /// Iterator over all undirected edges as `(u, v, labels)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, &EdgeLabels)> + '_ {
        self.adj.iter().flat_map(|(&u, nbrs)| {
            nbrs.iter()
                .filter(move |(&v, _)| u < v)
                .map(move |(&v, l)| (u, v, l))
        })
    }

    /// Degree of `v` (number of incident edges of any label), if present.
    pub fn degree(&self, v: NodeId) -> Option<usize> {
        self.adj.get(&v).map(|n| n.len())
    }

    /// Number of incident *black* edges of `v`, if present.
    pub fn black_degree(&self, v: NodeId) -> Option<usize> {
        self.adj
            .get(&v)
            .map(|n| n.values().filter(|l| l.is_black()).count())
    }

    /// Iterator over neighbors of `v` (empty if `v` absent), ascending.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adj.get(&v).into_iter().flat_map(|n| n.keys().copied())
    }

    /// Neighbors of `v` together with edge labels.
    pub fn neighbors_labeled(&self, v: NodeId) -> impl Iterator<Item = (NodeId, &EdgeLabels)> + '_ {
        self.adj
            .get(&v)
            .into_iter()
            .flat_map(|n| n.iter().map(|(&u, l)| (u, l)))
    }

    /// Adds an isolated node.
    ///
    /// # Errors
    ///
    /// [`GraphError::NodeExists`] if `v` is already present.
    pub fn add_node(&mut self, v: NodeId) -> Result<(), GraphError> {
        if self.adj.contains_key(&v) {
            return Err(GraphError::NodeExists(v));
        }
        self.adj.insert(v, BTreeMap::new());
        Ok(())
    }

    /// Removes `v` and all incident edges, returning `(neighbor, labels)` for
    /// each incident edge (ascending by neighbor).
    ///
    /// # Errors
    ///
    /// [`GraphError::NodeMissing`] if `v` is not present.
    pub fn remove_node(&mut self, v: NodeId) -> Result<Vec<(NodeId, EdgeLabels)>, GraphError> {
        let nbrs = self.adj.remove(&v).ok_or(GraphError::NodeMissing(v))?;
        let mut out = Vec::with_capacity(nbrs.len());
        for (u, labels) in nbrs {
            if let Some(n) = self.adj.get_mut(&u) {
                n.remove(&v);
            }
            self.edge_count -= 1;
            out.push((u, labels));
        }
        Ok(out)
    }

    fn check_endpoints(&self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        if !self.adj.contains_key(&u) {
            return Err(GraphError::NodeMissing(u));
        }
        if !self.adj.contains_key(&v) {
            return Err(GraphError::NodeMissing(v));
        }
        Ok(())
    }

    /// Adds the black label to edge `(u, v)`, creating the edge if needed.
    /// Returns `true` if a brand-new edge was created.
    ///
    /// # Errors
    ///
    /// [`GraphError::SelfLoop`] / [`GraphError::NodeMissing`] on bad endpoints.
    pub fn add_black_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool, GraphError> {
        self.check_endpoints(u, v)?;
        let created = !self.has_edge(u, v);
        if created {
            self.edge_count += 1;
            self.adj
                .get_mut(&u)
                .expect("checked")
                .insert(v, EdgeLabels::black());
            self.adj
                .get_mut(&v)
                .expect("checked")
                .insert(u, EdgeLabels::black());
        } else {
            self.adj
                .get_mut(&u)
                .expect("checked")
                .get_mut(&v)
                .expect("checked")
                .set_black();
            self.adj
                .get_mut(&v)
                .expect("checked")
                .get_mut(&u)
                .expect("checked")
                .set_black();
        }
        Ok(created)
    }

    /// Adds cloud color `color` to edge `(u, v)`, creating the edge if needed.
    /// Returns `true` if a brand-new edge was created.
    ///
    /// # Errors
    ///
    /// [`GraphError::SelfLoop`] / [`GraphError::NodeMissing`] on bad endpoints.
    pub fn add_colored_edge(
        &mut self,
        u: NodeId,
        v: NodeId,
        color: CloudColor,
    ) -> Result<bool, GraphError> {
        self.check_endpoints(u, v)?;
        let created = !self.has_edge(u, v);
        if created {
            self.edge_count += 1;
            self.adj
                .get_mut(&u)
                .expect("checked")
                .insert(v, EdgeLabels::colored(color));
            self.adj
                .get_mut(&v)
                .expect("checked")
                .insert(u, EdgeLabels::colored(color));
        } else {
            self.adj
                .get_mut(&u)
                .expect("checked")
                .get_mut(&v)
                .expect("checked")
                .add_color(color);
            self.adj
                .get_mut(&v)
                .expect("checked")
                .get_mut(&u)
                .expect("checked")
                .add_color(color);
        }
        Ok(created)
    }

    /// Removes `color` from edge `(u, v)`; deletes the edge entirely if no
    /// label remains. Returns `true` if the edge was fully removed.
    pub fn strip_color(&mut self, u: NodeId, v: NodeId, color: CloudColor) -> bool {
        let Some(nu) = self.adj.get_mut(&u) else {
            return false;
        };
        let Some(labels) = nu.get_mut(&v) else {
            return false;
        };
        labels.remove_color(color);
        let empty = labels.is_empty();
        if empty {
            nu.remove(&v);
            self.adj.get_mut(&v).expect("mirror").remove(&u);
            self.edge_count -= 1;
        } else {
            self.adj
                .get_mut(&v)
                .expect("mirror")
                .get_mut(&u)
                .expect("mirror")
                .remove_color(color);
        }
        empty
    }

    /// Removes the black label from edge `(u, v)`; deletes the edge entirely
    /// if no label remains. Returns `true` if the edge was fully removed.
    pub fn strip_black(&mut self, u: NodeId, v: NodeId) -> bool {
        let Some(nu) = self.adj.get_mut(&u) else {
            return false;
        };
        let Some(labels) = nu.get_mut(&v) else {
            return false;
        };
        labels.clear_black();
        let empty = labels.is_empty();
        if empty {
            nu.remove(&v);
            self.adj.get_mut(&v).expect("mirror").remove(&u);
            self.edge_count -= 1;
        } else {
            self.adj
                .get_mut(&v)
                .expect("mirror")
                .get_mut(&u)
                .expect("mirror")
                .clear_black();
        }
        empty
    }

    /// Removes the edge regardless of labels.
    ///
    /// # Errors
    ///
    /// [`GraphError::EdgeMissing`] if the edge is not present.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<EdgeLabels, GraphError> {
        let labels = self
            .adj
            .get_mut(&u)
            .and_then(|n| n.remove(&v))
            .ok_or(GraphError::EdgeMissing(u, v))?;
        self.adj.get_mut(&v).expect("mirror").remove(&u);
        self.edge_count -= 1;
        Ok(labels)
    }

    /// Number of edges crossing the cut `(S, V - S)`.
    pub fn cut_size(&self, s: &[NodeId]) -> usize {
        use std::collections::BTreeSet;
        let set: BTreeSet<NodeId> = s.iter().copied().collect();
        set.iter()
            .filter_map(|&v| self.adj.get(&v))
            .map(|nbrs| nbrs.keys().filter(|u| !set.contains(u)).count())
            .sum()
    }

    /// Consistency check: adjacency symmetric, labels mirror, no self-loops,
    /// edge count matches.
    pub fn validate(&self) -> Result<(), String> {
        let mut count = 0usize;
        for (&u, nbrs) in &self.adj {
            for (&v, l) in nbrs {
                if u == v {
                    return Err(format!("self-loop at {u}"));
                }
                if l.is_empty() {
                    return Err(format!("empty labels on ({u},{v})"));
                }
                let mirror = self
                    .adj
                    .get(&v)
                    .and_then(|n| n.get(&u))
                    .ok_or_else(|| format!("asymmetric edge ({u},{v})"))?;
                if mirror != l {
                    return Err(format!("label mismatch on ({u},{v})"));
                }
                if u < v {
                    count += 1;
                }
            }
        }
        if count != self.edge_count {
            return Err(format!(
                "edge count {} does not match stored {}",
                count, self.edge_count
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    #[test]
    fn baseline_matches_expected_triangle_behavior() {
        let mut g = BaselineGraph::new();
        for i in 0..3 {
            g.add_node(n(i)).unwrap();
        }
        g.add_black_edge(n(0), n(1)).unwrap();
        g.add_black_edge(n(1), n(2)).unwrap();
        g.add_black_edge(n(2), n(0)).unwrap();
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(n(0)), Some(2));
        assert_eq!(g.black_degree(n(0)), Some(2));
        assert_eq!(g.cut_size(&[n(0)]), 2);
        let incident = g.remove_node(n(0)).unwrap();
        assert_eq!(incident.len(), 2);
        g.validate().unwrap();
    }
}
