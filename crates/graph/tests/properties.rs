//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use xheal_graph::{components, cuts, generators, traversal, CloudColor, Graph, NodeId};

/// An arbitrary small graph described by a node count and an edge bitmap seed.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..12, any::<u64>(), 0.05f64..0.9).prop_map(|(n, seed, p)| {
        let mut rng = StdRng::seed_from_u64(seed);
        generators::erdos_renyi(n, p, &mut rng)
    })
}

proptest! {
    #[test]
    fn validate_always_holds_on_generated_graphs(g in arb_graph()) {
        prop_assert!(g.validate().is_ok());
    }

    #[test]
    fn node_removal_keeps_graph_valid(g in arb_graph(), pick in any::<prop::sample::Index>()) {
        let mut g = g;
        let nodes = g.node_vec();
        let v = nodes[pick.index(nodes.len())];
        let incident = g.remove_node(v).unwrap();
        prop_assert!(g.validate().is_ok());
        prop_assert!(!g.contains_node(v));
        // Every reported incident edge is really gone.
        for (u, _) in incident {
            prop_assert!(!g.has_edge(u, v));
        }
    }

    #[test]
    fn color_strip_roundtrip(g in arb_graph(), c in 0u64..100) {
        let mut g = g;
        let color = CloudColor::new(c);
        let edges: Vec<(NodeId, NodeId)> = g.edges().map(|(u, v, _)| (u, v)).collect();
        for &(u, v) in &edges {
            g.add_colored_edge(u, v, color).unwrap();
        }
        for &(u, v) in &edges {
            // Black label remains, so stripping the color never removes.
            prop_assert!(!g.strip_color(u, v, color));
            prop_assert!(g.has_edge(u, v));
        }
        prop_assert!(g.validate().is_ok());
    }

    #[test]
    fn bfs_distances_satisfy_triangle_inequality_on_edges(g in arb_graph()) {
        let nodes = g.node_vec();
        if nodes.is_empty() { return Ok(()); }
        let d = traversal::bfs_distances(&g, nodes[0]);
        for (u, v, _) in g.edges() {
            match (d.get(&u), d.get(&v)) {
                (Some(&du), Some(&dv)) => {
                    prop_assert!(du.abs_diff(dv) <= 1, "edge endpoints differ by more than 1");
                }
                (None, None) => {}
                // One endpoint reachable and the other not, across an edge,
                // is impossible.
                _ => prop_assert!(false, "edge crossing reachability boundary"),
            }
        }
    }

    #[test]
    fn components_partition_the_nodes(g in arb_graph()) {
        let comps = components::components(&g);
        let mut all: Vec<NodeId> = comps.concat();
        all.sort_unstable();
        prop_assert_eq!(all, g.node_vec());
        // No edge crosses two components.
        for (u, v, _) in g.edges() {
            let cu = comps.iter().position(|c| c.binary_search(&u).is_ok());
            let cv = comps.iter().position(|c| c.binary_search(&v).is_ok());
            prop_assert_eq!(cu, cv);
        }
    }

    #[test]
    fn exact_expansion_is_zero_iff_disconnected(g in arb_graph()) {
        if let Some(h) = cuts::edge_expansion_exact(&g) {
            let connected = components::is_connected(&g);
            prop_assert_eq!(h.value > 0.0, connected);
        }
    }

    #[test]
    fn cut_size_symmetric_in_complement(g in arb_graph(), mask in any::<u16>()) {
        let nodes = g.node_vec();
        let side: Vec<NodeId> = nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << (i % 16)) != 0)
            .map(|(_, &v)| v)
            .collect();
        let other: Vec<NodeId> = nodes.iter().filter(|v| !side.contains(v)).copied().collect();
        prop_assert_eq!(g.cut_size(&side), g.cut_size(&other));
    }
}
