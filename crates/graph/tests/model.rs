//! Model-based equivalence: the arena-backed [`Graph`] against the seed
//! `BTreeMap` representation ([`BaselineGraph`]).
//!
//! Random operation sequences are replayed against both representations and
//! every observable — returned values, errors, node order, edge order,
//! labels, degrees, cuts — must agree exactly. This is the license for the
//! arena rewrite: the seed representation *is* the pre-rewrite `Graph`, so
//! agreement here proves iteration order and seeded experiment outputs are
//! unchanged.

use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use xheal_graph::baseline::BaselineGraph;
use xheal_graph::{CloudColor, DeltaScratch, EdgeLabels, EdgeMutation, Graph, NodeId};

/// One randomized operation over the node id universe `0..universe`.
#[derive(Clone, Copy, Debug)]
enum Op {
    AddNode(u64),
    RemoveNode(u64),
    AddBlack(u64, u64),
    AddColored(u64, u64, u64),
    StripColor(u64, u64, u64),
    StripBlack(u64, u64),
    RemoveEdge(u64, u64),
    /// A grouped `Graph::apply_delta` batch, derived from the inner seed —
    /// replayed on the baseline as the sequential per-edge loop.
    BulkDelta(u64),
}

fn random_ops(seed: u64, steps: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    let universe = 16u64;
    (0..steps)
        .map(|_| {
            let a = rng.random_range(0..universe);
            let b = rng.random_range(0..universe);
            let c = rng.random_range(0..4u64);
            match rng.random_range(0..11u32) {
                0..=1 => Op::AddNode(a),
                2 => Op::RemoveNode(a),
                3..=5 => Op::AddBlack(a, b),
                6 => Op::AddColored(a, b, c),
                7 => Op::StripColor(a, b, c),
                8 => Op::StripBlack(a, b),
                9 => Op::RemoveEdge(a, b),
                _ => Op::BulkDelta(rng.random()),
            }
        })
        .collect()
}

/// Expands a [`Op::BulkDelta`] seed into a mutation batch legal for the
/// current graph: adds are restricted to live, distinct endpoints (batch
/// application validates them up front), strips are unrestricted — their
/// missing-endpoint/label tolerance is part of what is under test.
fn random_batch(seed: u64, g: &Graph) -> Vec<EdgeMutation> {
    let mut rng = StdRng::seed_from_u64(seed);
    let universe = 16u64;
    let n = NodeId::new;
    let len = rng.random_range(0..24usize);
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        let a = n(rng.random_range(0..universe));
        let b = n(rng.random_range(0..universe));
        let color = if rng.random::<bool>() {
            Some(CloudColor::new(rng.random_range(0..4u64)))
        } else {
            None
        };
        let add = rng.random::<bool>();
        if add && (a == b || !g.contains_node(a) || !g.contains_node(b)) {
            continue;
        }
        out.push(EdgeMutation { a, b, color, add });
    }
    out
}

/// Full observable dump used for cross-representation comparison.
fn dump(g: &Graph) -> (Vec<NodeId>, Vec<(NodeId, NodeId, EdgeLabels)>) {
    (
        g.node_vec(),
        g.edges().map(|(u, v, l)| (u, v, l.clone())).collect(),
    )
}

fn dump_baseline(g: &BaselineGraph) -> (Vec<NodeId>, Vec<(NodeId, NodeId, EdgeLabels)>) {
    (
        g.node_vec(),
        g.edges().map(|(u, v, l)| (u, v, l.clone())).collect(),
    )
}

fn apply_both(g: &mut Graph, m: &mut BaselineGraph, op: Op) -> Result<(), TestCaseError> {
    let n = NodeId::new;
    match op {
        Op::AddNode(a) => prop_assert_eq!(g.add_node(n(a)), m.add_node(n(a))),
        Op::RemoveNode(a) => prop_assert_eq!(g.remove_node(n(a)), m.remove_node(n(a))),
        Op::AddBlack(a, b) => {
            prop_assert_eq!(g.add_black_edge(n(a), n(b)), m.add_black_edge(n(a), n(b)));
        }
        Op::AddColored(a, b, c) => prop_assert_eq!(
            g.add_colored_edge(n(a), n(b), CloudColor::new(c)),
            m.add_colored_edge(n(a), n(b), CloudColor::new(c))
        ),
        Op::StripColor(a, b, c) => prop_assert_eq!(
            g.strip_color(n(a), n(b), CloudColor::new(c)),
            m.strip_color(n(a), n(b), CloudColor::new(c))
        ),
        Op::StripBlack(a, b) => {
            prop_assert_eq!(g.strip_black(n(a), n(b)), m.strip_black(n(a), n(b)));
        }
        Op::RemoveEdge(a, b) => {
            prop_assert_eq!(g.remove_edge(n(a), n(b)), m.remove_edge(n(a), n(b)));
        }
        Op::BulkDelta(seed) => {
            let batch = random_batch(seed, g);
            let mut scratch = DeltaScratch::default();
            prop_assert!(g.apply_delta(&batch, &mut scratch).is_ok());
            for op in &batch {
                match (op.add, op.color) {
                    (true, Some(c)) => {
                        m.add_colored_edge(op.a, op.b, c).unwrap();
                    }
                    (true, None) => {
                        m.add_black_edge(op.a, op.b).unwrap();
                    }
                    (false, Some(c)) => {
                        m.strip_color(op.a, op.b, c);
                    }
                    (false, None) => {
                        m.strip_black(op.a, op.b);
                    }
                }
            }
        }
    }
    Ok(())
}

proptest! {
    /// Every op returns identical results and leaves identical observable
    /// state in both representations.
    #[test]
    fn arena_matches_btreemap_model(seed in any::<u64>(), steps in 10usize..160) {
        let mut g = Graph::new();
        let mut m = BaselineGraph::new();
        for op in random_ops(seed, steps) {
            apply_both(&mut g, &mut m, op)?;
        }
        prop_assert!(g.validate().is_ok(), "arena invariants: {:?}", g.validate());
        prop_assert!(m.validate().is_ok());
        prop_assert_eq!(dump(&g), dump_baseline(&m));
        prop_assert_eq!(g.node_count(), m.node_count());
        prop_assert_eq!(g.edge_count(), m.edge_count());
        for v in g.node_vec() {
            prop_assert_eq!(g.degree(v), m.degree(v));
            prop_assert_eq!(g.black_degree(v), m.black_degree(v));
            let gn: Vec<NodeId> = g.neighbors(v).collect();
            let mn: Vec<NodeId> = m.neighbors(v).collect();
            prop_assert_eq!(gn, mn);
        }
        // cut_size over a pseudo-random side must agree with the set-based
        // seed implementation.
        let side: Vec<NodeId> = g.node_vec().into_iter().step_by(2).collect();
        prop_assert_eq!(g.cut_size(&side), m.cut_size(&side));
    }

    /// The dense CSR snapshot enumerates exactly the adjacency, in order.
    #[test]
    fn csr_view_agrees_with_model(seed in any::<u64>(), steps in 10usize..120) {
        let mut g = Graph::new();
        let mut m = BaselineGraph::new();
        for op in random_ops(seed, steps) {
            apply_both(&mut g, &mut m, op)?;
        }
        let csr = g.csr_view();
        prop_assert_eq!(csr.nodes().to_vec(), m.node_vec());
        for i in 0..csr.len() {
            let expect: Vec<NodeId> = m.neighbors(csr.node(i)).collect();
            let got: Vec<NodeId> = csr
                .neighbors_of(i)
                .iter()
                .map(|&j| csr.node(j as usize))
                .collect();
            prop_assert_eq!(got, expect);
            prop_assert_eq!(csr.degree_of(i), m.degree(csr.node(i)).unwrap());
        }
    }
}

/// Determinism pin: after heavy churn (including slot recycling), `nodes()`
/// and `edges()` enumerate in exactly the ascending order the seed
/// representation produced — the order every seeded experiment replays.
#[test]
fn iteration_order_is_identical_to_seed_representation() {
    let mut rng = StdRng::seed_from_u64(0xD15EA5E);
    let mut g = Graph::new();
    let mut m = BaselineGraph::new();
    // Interleave inserts/deletes/colorings so slots are heavily recycled and
    // arena order diverges maximally from id order.
    let mut live: Vec<u64> = Vec::new();
    let mut next = 0u64;
    for step in 0..4000 {
        if live.len() < 3 || rng.random::<f64>() < 0.55 {
            g.add_node(NodeId::new(next)).unwrap();
            m.add_node(NodeId::new(next)).unwrap();
            if !live.is_empty() {
                for _ in 0..rng.random_range(0..3usize) {
                    let u = live[rng.random_range(0..live.len())];
                    let _ = g.add_black_edge(NodeId::new(next), NodeId::new(u));
                    let _ = m.add_black_edge(NodeId::new(next), NodeId::new(u));
                }
            }
            live.push(next);
            next += 1;
        } else {
            let i = rng.random_range(0..live.len());
            let v = live.swap_remove(i);
            assert_eq!(
                g.remove_node(NodeId::new(v)),
                m.remove_node(NodeId::new(v)),
                "step {step}"
            );
        }
        if step % 7 == 0 && live.len() >= 2 {
            let a = live[rng.random_range(0..live.len())];
            let b = live[rng.random_range(0..live.len())];
            if a != b {
                let c = CloudColor::new(step as u64 % 5);
                assert_eq!(
                    g.add_colored_edge(NodeId::new(a), NodeId::new(b), c),
                    m.add_colored_edge(NodeId::new(a), NodeId::new(b), c)
                );
            }
        }
    }
    g.validate().unwrap();

    let nodes: Vec<NodeId> = g.nodes().collect();
    assert!(
        nodes.windows(2).all(|w| w[0] < w[1]),
        "nodes() must ascend strictly"
    );
    assert_eq!(nodes, m.node_vec());

    let arena_edges: Vec<(NodeId, NodeId, EdgeLabels)> =
        g.edges().map(|(u, v, l)| (u, v, l.clone())).collect();
    let seed_edges: Vec<(NodeId, NodeId, EdgeLabels)> =
        m.edges().map(|(u, v, l)| (u, v, l.clone())).collect();
    assert_eq!(
        arena_edges, seed_edges,
        "edges() enumeration order must match the seed representation"
    );
}
