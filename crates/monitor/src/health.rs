//! Threshold policies over the monitored invariants and the structured
//! alerts they emit.
//!
//! A [`HealthPolicy`] encodes the operator's budget for each maintained
//! invariant (the paper's Theorem 2 family: bounded degree increase,
//! expansion no worse than a constant factor, connectivity) plus the
//! spectral-gap floor. [`HealthPolicy::evaluate`] compares a metrics
//! snapshot against the budgets and emits **edge-triggered**
//! [`HealthEvent`]s: one `Critical` alert when a metric crosses into
//! breach, one `Info` recovery when it crosses back — no per-event alert
//! spam while a breach persists (the breach state lives in the caller's
//! [`BreachState`]).

use std::fmt;

use xheal_workload::Severity;

/// Which monitored invariant an alert concerns.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MetricKind {
    /// `max_v deg_G(v) / deg_{G'}(v)` (success metric 1).
    DegreeIncrease,
    /// λ₂ of the normalized Laplacian (success metric 4's spectral side).
    SpectralGap,
    /// Sweep-cut expansion upper bound (success metric 2).
    Expansion,
    /// Connected-component count (success metric: connectivity).
    Connectivity,
}

impl fmt::Display for MetricKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricKind::DegreeIncrease => write!(f, "degree-increase"),
            MetricKind::SpectralGap => write!(f, "spectral-gap"),
            MetricKind::Expansion => write!(f, "expansion"),
            MetricKind::Connectivity => write!(f, "connectivity"),
        }
    }
}

/// One structured alert from the policy layer.
#[derive(Clone, Debug)]
pub struct HealthEvent {
    /// Topology generation the triggering snapshot was computed at.
    pub generation: u64,
    /// `Critical` on breach, `Info` on recovery.
    pub severity: Severity,
    /// The invariant concerned.
    pub metric: MetricKind,
    /// Measured value.
    pub value: f64,
    /// The configured budget it was compared against.
    pub limit: f64,
}

impl fmt::Display for HealthEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[gen {}] {} {}: {:.4} vs limit {:.4}",
            self.generation, self.severity, self.metric, self.value, self.limit
        )
    }
}

/// The values a policy evaluation consumes. Expensive entries are optional
/// so cheap per-event evaluations can skip them.
#[derive(Clone, Copy, Debug, Default)]
pub struct MetricsSnapshot {
    /// Topology generation the snapshot describes.
    pub generation: u64,
    /// Maintained max degree increase vs `G'`.
    pub degree_increase: f64,
    /// Warm-started λ₂ of the normalized Laplacian, when computed.
    pub spectral_gap: Option<f64>,
    /// Sweep-cut expansion estimate, when computed.
    pub expansion: Option<f64>,
    /// Connected components, when computed.
    pub components: Option<usize>,
}

/// Configurable invariant budgets. `None` disables a check.
#[derive(Clone, Copy, Debug)]
pub struct HealthPolicy {
    /// Alert when the max degree increase exceeds this factor. The paper
    /// guarantees O(κ); a sensible budget is `c·κ` for small `c`.
    pub max_degree_increase: Option<f64>,
    /// Alert when λ₂ of the normalized Laplacian falls below this floor.
    pub min_spectral_gap: Option<f64>,
    /// Alert when the sweep-cut expansion estimate falls below this floor.
    pub min_expansion: Option<f64>,
    /// Alert when the component count exceeds this (usually 1).
    pub max_components: Option<usize>,
}

impl Default for HealthPolicy {
    /// Connectivity-only: the one invariant every deployment cares about.
    fn default() -> Self {
        HealthPolicy {
            max_degree_increase: None,
            min_spectral_gap: None,
            min_expansion: None,
            max_components: Some(1),
        }
    }
}

/// Edge-trigger memory: which metrics are currently in breach.
#[derive(Clone, Copy, Debug, Default)]
pub struct BreachState {
    degree_increase: bool,
    spectral_gap: bool,
    expansion: bool,
    connectivity: bool,
}

impl BreachState {
    /// Is any monitored invariant currently in breach?
    pub fn any(&self) -> bool {
        self.degree_increase || self.spectral_gap || self.expansion || self.connectivity
    }
}

impl HealthPolicy {
    /// Compares `snap` against the budgets, appending edge-triggered
    /// alerts to `out` and updating `state`.
    pub fn evaluate(
        &self,
        snap: &MetricsSnapshot,
        state: &mut BreachState,
        out: &mut Vec<HealthEvent>,
    ) {
        let mut check = |kind: MetricKind, breached: Option<(bool, f64, f64)>, flag: &mut bool| {
            let Some((bad, value, limit)) = breached else {
                return; // metric not measured this round: hold state
            };
            if bad != *flag {
                *flag = bad;
                out.push(HealthEvent {
                    generation: snap.generation,
                    severity: if bad {
                        Severity::Critical
                    } else {
                        Severity::Info
                    },
                    metric: kind,
                    value,
                    limit,
                });
            }
        };

        check(
            MetricKind::DegreeIncrease,
            self.max_degree_increase
                .map(|lim| (snap.degree_increase > lim, snap.degree_increase, lim)),
            &mut state.degree_increase,
        );
        check(
            MetricKind::SpectralGap,
            match (self.min_spectral_gap, snap.spectral_gap) {
                (Some(lim), Some(v)) => Some((v < lim, v, lim)),
                _ => None,
            },
            &mut state.spectral_gap,
        );
        check(
            MetricKind::Expansion,
            match (self.min_expansion, snap.expansion) {
                (Some(lim), Some(v)) => Some((v < lim, v, lim)),
                _ => None,
            },
            &mut state.expansion,
        );
        check(
            MetricKind::Connectivity,
            match (self.max_components, snap.components) {
                (Some(lim), Some(c)) => Some((c > lim, c as f64, lim as f64)),
                _ => None,
            },
            &mut state.connectivity,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alerts_are_edge_triggered() {
        let policy = HealthPolicy {
            max_degree_increase: Some(4.0),
            min_spectral_gap: Some(0.05),
            min_expansion: None,
            max_components: Some(1),
        };
        let mut state = BreachState::default();
        let mut out = Vec::new();
        let healthy = MetricsSnapshot {
            generation: 1,
            degree_increase: 2.0,
            spectral_gap: Some(0.2),
            expansion: None,
            components: Some(1),
        };
        policy.evaluate(&healthy, &mut state, &mut out);
        assert!(out.is_empty() && !state.any());

        // Breach two metrics: exactly two Critical alerts.
        let sick = MetricsSnapshot {
            generation: 2,
            degree_increase: 9.0,
            spectral_gap: Some(0.2),
            expansion: None,
            components: Some(3),
        };
        policy.evaluate(&sick, &mut state, &mut out);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|e| e.severity == Severity::Critical));
        assert!(state.any());

        // Same breach persists: no new alerts.
        policy.evaluate(
            &MetricsSnapshot {
                generation: 3,
                ..sick
            },
            &mut state,
            &mut out,
        );
        assert_eq!(out.len(), 2, "steady breach must not spam");

        // Recovery: Info alerts, state clears.
        policy.evaluate(
            &MetricsSnapshot {
                generation: 4,
                ..healthy
            },
            &mut state,
            &mut out,
        );
        assert_eq!(out.len(), 4);
        assert!(out[2..].iter().all(|e| e.severity == Severity::Info));
        assert!(!state.any());
        assert!(out[2].to_string().contains("info"));
    }

    #[test]
    fn unmeasured_metrics_hold_state() {
        let policy = HealthPolicy {
            max_degree_increase: None,
            min_spectral_gap: Some(0.1),
            min_expansion: None,
            max_components: None,
        };
        let mut state = BreachState::default();
        let mut out = Vec::new();
        policy.evaluate(
            &MetricsSnapshot {
                generation: 1,
                spectral_gap: Some(0.01),
                ..MetricsSnapshot::default()
            },
            &mut state,
            &mut out,
        );
        assert_eq!(out.len(), 1);
        // A cheap evaluation without the gap measured leaves the breach be.
        policy.evaluate(
            &MetricsSnapshot {
                generation: 2,
                spectral_gap: None,
                ..MetricsSnapshot::default()
            },
            &mut state,
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert!(state.any());
    }
}
