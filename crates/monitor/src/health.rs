//! Threshold policies over the monitored invariants and the structured
//! alerts they emit.
//!
//! A [`HealthPolicy`] encodes the operator's budget for each maintained
//! invariant (the paper's Theorem 2 family: bounded degree increase,
//! expansion no worse than a constant factor, connectivity) plus the
//! spectral-gap floor. [`HealthPolicy::evaluate`] compares a metrics
//! snapshot against the budgets and emits **edge-triggered**
//! [`HealthEvent`]s: one `Critical` alert when a metric crosses into
//! breach, one `Info` recovery when it crosses back — no per-event alert
//! spam while a breach persists (the per-metric [`Band`] lives in the
//! caller's [`BreachState`]).
//!
//! Each continuous metric optionally carries a **warn edge** between the
//! healthy zone and the breach limit, turning the policy into a three-band
//! machine with hysteresis: crossing the warn edge emits one `Warning`,
//! crossing the breach limit one `Critical`, and — crucially — a metric in
//! breach only *recovers* once it comes back past the warn edge. A value
//! oscillating around the breach limit therefore fires exactly one alert
//! instead of a `Critical`/`Info` pair per oscillation. Warn edges default
//! to `None`, which collapses the warn band to zero width and reproduces
//! the plain two-band behavior exactly.

use std::fmt;

use xheal_workload::Severity;

/// Which monitored invariant an alert concerns.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MetricKind {
    /// `max_v deg_G(v) / deg_{G'}(v)` (success metric 1).
    DegreeIncrease,
    /// λ₂ of the normalized Laplacian (success metric 4's spectral side).
    SpectralGap,
    /// Sweep-cut expansion upper bound (success metric 2).
    Expansion,
    /// Connected-component count (success metric: connectivity).
    Connectivity,
}

impl fmt::Display for MetricKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricKind::DegreeIncrease => write!(f, "degree-increase"),
            MetricKind::SpectralGap => write!(f, "spectral-gap"),
            MetricKind::Expansion => write!(f, "expansion"),
            MetricKind::Connectivity => write!(f, "connectivity"),
        }
    }
}

/// The band a monitored metric currently sits in.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Band {
    /// Within budget (below the warn edge).
    #[default]
    Ok,
    /// Past the warn edge but not the breach limit.
    Warn,
    /// Past the breach limit — and, by hysteresis, still past the warn
    /// edge on the way back.
    Breach,
}

/// One structured alert from the policy layer.
#[derive(Clone, Debug)]
pub struct HealthEvent {
    /// Topology generation the triggering snapshot was computed at.
    pub generation: u64,
    /// `Critical` on breach, `Warning` on entering the warn band, `Info`
    /// on recovery.
    pub severity: Severity,
    /// The invariant concerned.
    pub metric: MetricKind,
    /// Measured value.
    pub value: f64,
    /// The configured budget it was compared against.
    pub limit: f64,
}

impl fmt::Display for HealthEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[gen {}] {} {}: {:.4} vs limit {:.4}",
            self.generation, self.severity, self.metric, self.value, self.limit
        )
    }
}

/// The values a policy evaluation consumes. Expensive entries are optional
/// so cheap per-event evaluations can skip them.
#[derive(Clone, Copy, Debug, Default)]
pub struct MetricsSnapshot {
    /// Topology generation the snapshot describes.
    pub generation: u64,
    /// Maintained max degree increase vs `G'`.
    pub degree_increase: f64,
    /// Warm-started λ₂ of the normalized Laplacian, when computed.
    pub spectral_gap: Option<f64>,
    /// Sweep-cut expansion estimate, when computed.
    pub expansion: Option<f64>,
    /// Connected components, when computed.
    pub components: Option<usize>,
}

/// Configurable invariant budgets. `None` disables a check; `warn_*`
/// edges are optional and add a [`Band::Warn`] buffer (with hysteresis)
/// inside the corresponding budget.
#[derive(Clone, Copy, Debug)]
pub struct HealthPolicy {
    /// Alert when the max degree increase exceeds this factor. The paper
    /// guarantees O(κ); a sensible budget is `c·κ` for small `c`.
    pub max_degree_increase: Option<f64>,
    /// Warn edge below [`HealthPolicy::max_degree_increase`] (clamped to
    /// it): crossing it emits a `Warning`, and a degree-increase breach
    /// only recovers once the value drops back under this edge.
    pub warn_degree_increase: Option<f64>,
    /// Alert when λ₂ of the normalized Laplacian falls below this floor.
    pub min_spectral_gap: Option<f64>,
    /// Warn edge above [`HealthPolicy::min_spectral_gap`] (clamped to it).
    pub warn_spectral_gap: Option<f64>,
    /// Alert when the sweep-cut expansion estimate falls below this floor.
    pub min_expansion: Option<f64>,
    /// Warn edge above [`HealthPolicy::min_expansion`] (clamped to it).
    pub warn_expansion: Option<f64>,
    /// Alert when the component count exceeds this (usually 1).
    pub max_components: Option<usize>,
}

impl Default for HealthPolicy {
    /// Connectivity-only: the one invariant every deployment cares about.
    fn default() -> Self {
        HealthPolicy {
            max_degree_increase: None,
            warn_degree_increase: None,
            min_spectral_gap: None,
            warn_spectral_gap: None,
            min_expansion: None,
            warn_expansion: None,
            max_components: Some(1),
        }
    }
}

/// Edge-trigger memory: the [`Band`] each metric currently sits in.
#[derive(Clone, Copy, Debug, Default)]
pub struct BreachState {
    degree_increase: Band,
    spectral_gap: Band,
    expansion: Band,
    connectivity: Band,
}

impl BreachState {
    /// Is any monitored invariant currently in breach?
    pub fn any(&self) -> bool {
        [
            self.degree_increase,
            self.spectral_gap,
            self.expansion,
            self.connectivity,
        ]
        .contains(&Band::Breach)
    }

    /// The band `metric` currently sits in.
    pub fn band(&self, metric: MetricKind) -> Band {
        match metric {
            MetricKind::DegreeIncrease => self.degree_increase,
            MetricKind::SpectralGap => self.spectral_gap,
            MetricKind::Expansion => self.expansion,
            MetricKind::Connectivity => self.connectivity,
        }
    }
}

impl HealthPolicy {
    /// Compares `snap` against the budgets, appending edge-triggered
    /// alerts to `out` and updating `state`.
    ///
    /// Per measured metric the tuple is `(value, breach limit, warn edge,
    /// beyond breach?, beyond warn?)`; the band machine then applies the
    /// hysteresis rule — a metric in [`Band::Breach`] that retreats into
    /// the warn zone *stays* in breach until it clears the warn edge too.
    pub fn evaluate(
        &self,
        snap: &MetricsSnapshot,
        state: &mut BreachState,
        out: &mut Vec<HealthEvent>,
    ) {
        let mut check = |kind: MetricKind,
                         measured: Option<(f64, f64, f64, bool, bool)>,
                         band: &mut Band| {
            let Some((value, breach_lim, warn_lim, beyond_breach, beyond_warn)) = measured else {
                return; // metric not measured this round: hold state
            };
            let next = if beyond_breach || (beyond_warn && *band == Band::Breach) {
                Band::Breach
            } else if beyond_warn {
                Band::Warn
            } else {
                Band::Ok
            };
            if next == *band {
                return;
            }
            *band = next;
            let (severity, limit) = match next {
                Band::Breach => (Severity::Critical, breach_lim),
                Band::Warn => (Severity::Warning, warn_lim),
                Band::Ok => (Severity::Info, warn_lim),
            };
            out.push(HealthEvent {
                generation: snap.generation,
                severity,
                metric: kind,
                value,
                limit,
            });
        };

        check(
            MetricKind::DegreeIncrease,
            self.max_degree_increase.map(|lim| {
                let warn = self.warn_degree_increase.unwrap_or(lim).min(lim);
                let v = snap.degree_increase;
                (v, lim, warn, v > lim, v > warn)
            }),
            &mut state.degree_increase,
        );
        check(
            MetricKind::SpectralGap,
            match (self.min_spectral_gap, snap.spectral_gap) {
                (Some(lim), Some(v)) => {
                    let warn = self.warn_spectral_gap.unwrap_or(lim).max(lim);
                    Some((v, lim, warn, v < lim, v < warn))
                }
                _ => None,
            },
            &mut state.spectral_gap,
        );
        check(
            MetricKind::Expansion,
            match (self.min_expansion, snap.expansion) {
                (Some(lim), Some(v)) => {
                    let warn = self.warn_expansion.unwrap_or(lim).max(lim);
                    Some((v, lim, warn, v < lim, v < warn))
                }
                _ => None,
            },
            &mut state.expansion,
        );
        check(
            MetricKind::Connectivity,
            match (self.max_components, snap.components) {
                (Some(lim), Some(c)) => {
                    let (v, l) = (c as f64, lim as f64);
                    Some((v, l, l, c > lim, c > lim))
                }
                _ => None,
            },
            &mut state.connectivity,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alerts_are_edge_triggered() {
        let policy = HealthPolicy {
            max_degree_increase: Some(4.0),
            min_spectral_gap: Some(0.05),
            ..HealthPolicy::default()
        };
        let mut state = BreachState::default();
        let mut out = Vec::new();
        let healthy = MetricsSnapshot {
            generation: 1,
            degree_increase: 2.0,
            spectral_gap: Some(0.2),
            expansion: None,
            components: Some(1),
        };
        policy.evaluate(&healthy, &mut state, &mut out);
        assert!(out.is_empty() && !state.any());

        // Breach two metrics: exactly two Critical alerts.
        let sick = MetricsSnapshot {
            generation: 2,
            degree_increase: 9.0,
            spectral_gap: Some(0.2),
            expansion: None,
            components: Some(3),
        };
        policy.evaluate(&sick, &mut state, &mut out);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|e| e.severity == Severity::Critical));
        assert!(state.any());

        // Same breach persists: no new alerts.
        policy.evaluate(
            &MetricsSnapshot {
                generation: 3,
                ..sick
            },
            &mut state,
            &mut out,
        );
        assert_eq!(out.len(), 2, "steady breach must not spam");

        // Recovery: Info alerts, state clears.
        policy.evaluate(
            &MetricsSnapshot {
                generation: 4,
                ..healthy
            },
            &mut state,
            &mut out,
        );
        assert_eq!(out.len(), 4);
        assert!(out[2..].iter().all(|e| e.severity == Severity::Info));
        assert!(!state.any());
        assert!(out[2].to_string().contains("info"));
    }

    #[test]
    fn warn_band_and_hysteresis() {
        let policy = HealthPolicy {
            max_degree_increase: Some(4.0),
            warn_degree_increase: Some(3.0),
            ..HealthPolicy::default()
        };
        let mut state = BreachState::default();
        let mut out = Vec::new();
        let at = |generation: u64, degree_increase: f64| MetricsSnapshot {
            generation,
            degree_increase,
            components: Some(1),
            ..MetricsSnapshot::default()
        };

        // Ok → Warn: one Warning against the warn edge.
        policy.evaluate(&at(1, 3.5), &mut state, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].severity, Severity::Warning);
        assert_eq!(out[0].limit, 3.0);
        assert_eq!(state.band(MetricKind::DegreeIncrease), Band::Warn);
        assert!(!state.any(), "warn is not a breach");

        // Warn → Breach: one Critical against the breach limit.
        policy.evaluate(&at(2, 4.5), &mut state, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].severity, Severity::Critical);
        assert_eq!(out[1].limit, 4.0);
        assert!(state.any());

        // Oscillating around the breach limit while above the warn edge:
        // hysteresis holds the breach, no alert flapping.
        for (gen, v) in [(3, 3.9), (4, 4.1), (5, 3.2)] {
            policy.evaluate(&at(gen, v), &mut state, &mut out);
        }
        assert_eq!(out.len(), 2, "no events inside the hysteresis band");
        assert_eq!(state.band(MetricKind::DegreeIncrease), Band::Breach);

        // Only clearing the warn edge recovers — straight to Ok.
        policy.evaluate(&at(6, 2.0), &mut state, &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out[2].severity, Severity::Info);
        assert_eq!(out[2].limit, 3.0, "recovery is judged at the warn edge");
        assert_eq!(state.band(MetricKind::DegreeIncrease), Band::Ok);

        // Warn → Ok also recovers with an Info.
        policy.evaluate(&at(7, 3.5), &mut state, &mut out);
        policy.evaluate(&at(8, 1.0), &mut state, &mut out);
        assert_eq!(out.len(), 5);
        assert_eq!(out[3].severity, Severity::Warning);
        assert_eq!(out[4].severity, Severity::Info);
    }

    #[test]
    fn warn_floor_guards_lower_bounded_metrics() {
        // Spectral gap: breach below 0.05, warn below 0.1.
        let policy = HealthPolicy {
            min_spectral_gap: Some(0.05),
            warn_spectral_gap: Some(0.1),
            max_components: None,
            ..HealthPolicy::default()
        };
        let mut state = BreachState::default();
        let mut out = Vec::new();
        let gap = |generation: u64, g: f64| MetricsSnapshot {
            generation,
            spectral_gap: Some(g),
            ..MetricsSnapshot::default()
        };
        policy.evaluate(&gap(1, 0.08), &mut state, &mut out);
        assert_eq!(out.last().unwrap().severity, Severity::Warning);
        policy.evaluate(&gap(2, 0.04), &mut state, &mut out);
        assert_eq!(out.last().unwrap().severity, Severity::Critical);
        // Back into the warn zone: still breached (hysteresis).
        policy.evaluate(&gap(3, 0.08), &mut state, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(state.band(MetricKind::SpectralGap), Band::Breach);
        policy.evaluate(&gap(4, 0.2), &mut state, &mut out);
        assert_eq!(out.last().unwrap().severity, Severity::Info);
        assert_eq!(state.band(MetricKind::SpectralGap), Band::Ok);
    }

    #[test]
    fn unmeasured_metrics_hold_state() {
        let policy = HealthPolicy {
            min_spectral_gap: Some(0.1),
            max_components: None,
            ..HealthPolicy::default()
        };
        let mut state = BreachState::default();
        let mut out = Vec::new();
        policy.evaluate(
            &MetricsSnapshot {
                generation: 1,
                spectral_gap: Some(0.01),
                ..MetricsSnapshot::default()
            },
            &mut state,
            &mut out,
        );
        assert_eq!(out.len(), 1);
        // A cheap evaluation without the gap measured leaves the breach be.
        policy.evaluate(
            &MetricsSnapshot {
                generation: 2,
                spectral_gap: None,
                ..MetricsSnapshot::default()
            },
            &mut state,
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert!(state.any());
    }
}
