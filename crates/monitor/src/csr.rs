//! The incrementally patched CSR at the heart of the monitor.
//!
//! [`IncrementalCsr`] is a labeled adjacency structure maintained purely
//! from the [`TopologyDelta`] stream — never rebuilt from the engine's
//! graph. The layout is a flat entry array with **per-node slack**: each
//! live node owns a contiguous block `[start, start + cap)` holding its
//! `len` sorted neighbor entries. Inserting into a full block relocates it
//! to the tail of the array with doubled capacity, abandoning the old
//! region as a *tombstone*; when tombstones exceed half the array an
//! amortized **compaction** rebuilds the array densely. Every applied delta
//! bumps a **generation stamp**, so downstream consumers can tag derived
//! metrics with the exact topology version they were computed from.
//!
//! [`IncrementalCsr::snapshot`] linearizes the structure into a
//! [`CsrView`] — bit-identical to what `Graph::csr_view()` would produce
//! for the same topology, which is exactly what the property suite pins
//! after every event.

use std::collections::BTreeSet;

use xheal_core::TopologyDelta;
use xheal_graph::{CsrView, EdgeLabels, FxHashMap, Graph, NodeId};

/// Filler id for dead/slack entries (never a live node id in practice; the
/// structure never reads filler entries either way).
const TOMB: u64 = u64::MAX;

/// Compact once abandoned capacity exceeds this fraction of the array
/// (denominator 2 ⇒ half), and only past a minimum size.
const COMPACT_DENOM: usize = 2;
const COMPACT_MIN: usize = 64;

/// One directed half-edge entry: the neighbor's id (the sort key), its
/// arena slot (so mirror edits never re-hash), and the labels both halves
/// share.
#[derive(Clone, Debug)]
struct Entry {
    id: NodeId,
    slot: u32,
    labels: EdgeLabels,
}

impl Entry {
    fn filler() -> Self {
        Entry {
            id: NodeId::new(TOMB),
            slot: u32::MAX,
            labels: EdgeLabels::empty(),
        }
    }
}

/// Per-node block descriptor: `len` live entries inside `cap` owned cells.
#[derive(Clone, Copy, Debug, Default)]
struct Block {
    start: u32,
    len: u32,
    cap: u32,
    black: u32,
}

/// What one applied [`TopologyDelta`] structurally did — the O(1) feed for
/// the monitor's incremental metric trackers.
#[derive(Clone, Debug, PartialEq)]
pub enum DeltaEffect {
    /// Nothing changed (replayed strip of an already-dead edge, duplicate
    /// label, …).
    Noop,
    /// A node joined with degree 0.
    NodeAdded(NodeId),
    /// A node left; every incident edge died with it. For each former
    /// neighbor: `(neighbor, its degree before, edge was black)`.
    NodeRemoved {
        /// The departed node.
        node: NodeId,
        /// Its degree at departure.
        degree: usize,
        /// Its black degree at departure.
        black_degree: usize,
        /// Former neighbors with their pre-removal degree and whether the
        /// shared edge carried the black label.
        neighbors: Vec<(NodeId, usize, bool)>,
    },
    /// A brand-new edge appeared.
    EdgeCreated {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// Whether the creating label was black.
        black: bool,
    },
    /// An existing edge gained a label; `became_black` when the black flag
    /// turned on.
    EdgeRelabeled {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// The black flag switched from off to on.
        became_black: bool,
    },
    /// An edge lost its last label and disappeared.
    EdgeDropped {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// The edge carried the black label just before dropping.
        was_black: bool,
    },
    /// An edge lost a label but survives; `lost_black` when the black flag
    /// turned off.
    EdgeStripped {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// The black flag switched from on to off.
        lost_black: bool,
    },
}

/// A generation-stamped CSR patched in place from [`TopologyDelta`]s.
///
/// # Examples
///
/// ```
/// use xheal_core::TopologyDelta;
/// use xheal_monitor::IncrementalCsr;
/// use xheal_graph::{generators, NodeId};
///
/// let mut g = generators::cycle(6);
/// let mut csr = IncrementalCsr::new(&g);
/// // The engine deletes node 0; replay its deltas into the CSR.
/// g.remove_node(NodeId::new(0)).unwrap();
/// csr.apply(&TopologyDelta::NodeRemoved(NodeId::new(0)));
/// assert_eq!(csr.generation(), 1);
/// assert_eq!(csr.node_count(), 5);
/// assert_eq!(csr.snapshot().nodes(), g.csr_view().nodes());
/// ```
#[derive(Clone, Debug)]
pub struct IncrementalCsr {
    /// `NodeId → slot` for the hot-path point lookups.
    index: FxHashMap<NodeId, u32>,
    /// Live ids ascending — the deterministic snapshot spine.
    ordered: BTreeSet<NodeId>,
    /// Per-slot id (only meaningful while live).
    ids: Vec<NodeId>,
    live: Vec<bool>,
    blocks: Vec<Block>,
    free_slots: Vec<u32>,
    /// The flat entry array blocks carve up.
    adj: Vec<Entry>,
    /// Abandoned cells (relocated blocks, dead nodes' blocks).
    tombstones: usize,
    edge_count: usize,
    generation: u64,
    compactions: usize,
    /// Inside a [`IncrementalCsr::begin_batch`] flush: compaction deferred.
    in_batch: bool,
    /// Reusable slot-grouping buffer for the batch capacity pre-pass.
    batch_slots: Vec<u32>,
}

impl IncrementalCsr {
    /// Seeds the structure from the engine's current graph (the one O(n+m)
    /// build; every later change arrives as a delta).
    pub fn new(initial: &Graph) -> Self {
        let mut csr = IncrementalCsr {
            index: FxHashMap::default(),
            ordered: BTreeSet::new(),
            ids: Vec::new(),
            live: Vec::new(),
            blocks: Vec::new(),
            free_slots: Vec::new(),
            adj: Vec::new(),
            tombstones: 0,
            edge_count: 0,
            generation: 0,
            compactions: 0,
            in_batch: false,
            batch_slots: Vec::new(),
        };
        for v in initial.nodes() {
            csr.add_slot(v);
        }
        for v in initial.nodes() {
            let sv = csr.index[&v];
            let start = csr.adj.len() as u32;
            let mut len = 0u32;
            let mut black = 0u32;
            for (u, labels) in initial.neighbors_labeled(v) {
                let su = csr.index[&u];
                if labels.is_black() {
                    black += 1;
                }
                csr.adj.push(Entry {
                    id: u,
                    slot: su,
                    labels: labels.clone(),
                });
                len += 1;
            }
            let block = &mut csr.blocks[sv as usize];
            *block = Block {
                start,
                len,
                cap: len,
                black,
            };
        }
        csr.edge_count = initial.edge_count();
        csr
    }

    // ------------------------------------------------------------------
    // Read access
    // ------------------------------------------------------------------

    /// Number of deltas applied so far — the version stamp to tag derived
    /// metrics with.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Live node count.
    pub fn node_count(&self) -> usize {
        self.ordered.len()
    }

    /// Live undirected edge count.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Is the node present?
    pub fn contains(&self, v: NodeId) -> bool {
        self.index.contains_key(&v)
    }

    /// Degree of `v`, if present.
    pub fn degree(&self, v: NodeId) -> Option<usize> {
        self.index
            .get(&v)
            .map(|&s| self.blocks[s as usize].len as usize)
    }

    /// Black degree of `v`, if present (maintained counter, O(1)).
    pub fn black_degree(&self, v: NodeId) -> Option<usize> {
        self.index
            .get(&v)
            .map(|&s| self.blocks[s as usize].black as usize)
    }

    /// Live node ids, ascending.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.ordered.iter().copied()
    }

    /// Neighbors of `v` (ascending), empty if absent.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.index
            .get(&v)
            .map(|&s| self.block_slice(s))
            .unwrap_or(&[])
            .iter()
            .map(|e| e.id)
    }

    /// Abandoned cells currently wasted in the entry array (drops to 0 at
    /// every compaction).
    pub fn tombstones(&self) -> usize {
        self.tombstones
    }

    /// Number of amortized compactions run so far.
    pub fn compactions(&self) -> usize {
        self.compactions
    }

    fn block_slice(&self, slot: u32) -> &[Entry] {
        let b = &self.blocks[slot as usize];
        &self.adj[b.start as usize..(b.start + b.len) as usize]
    }

    /// Linearizes into a [`CsrView`] identical to `Graph::csr_view()` of
    /// the same topology: nodes ascending, neighbors as dense indices.
    pub fn snapshot(&self) -> CsrView {
        let n = self.ordered.len();
        let mut nodes = Vec::with_capacity(n);
        let mut slot_to_dense = vec![u32::MAX; self.blocks.len()];
        for (i, &v) in self.ordered.iter().enumerate() {
            nodes.push(v);
            slot_to_dense[self.index[&v] as usize] = i as u32;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(2 * self.edge_count);
        offsets.push(0u32);
        for &v in &nodes {
            let s = self.index[&v];
            neighbors.extend(
                self.block_slice(s)
                    .iter()
                    .map(|e| slot_to_dense[e.slot as usize]),
            );
            offsets.push(neighbors.len() as u32);
        }
        CsrView::from_parts(nodes, offsets, neighbors)
    }

    // ------------------------------------------------------------------
    // The patch path
    // ------------------------------------------------------------------

    /// Applies one delta, bumps the generation, and reports what changed
    /// structurally. Tolerates the stream's replay semantics: strips of
    /// edges that died with a deleted endpoint are no-ops, duplicate labels
    /// are no-ops.
    pub fn apply(&mut self, delta: &TopologyDelta) -> DeltaEffect {
        self.generation += 1;
        let effect = match *delta {
            TopologyDelta::NodeAdded(v) => {
                self.add_slot(v);
                DeltaEffect::NodeAdded(v)
            }
            TopologyDelta::NodeRemoved(v) => self.remove_node(v),
            TopologyDelta::EdgeAdded { a, b, color } => {
                let labels = match color {
                    None => EdgeLabels::black(),
                    Some(c) => EdgeLabels::colored(c),
                };
                self.add_label(a, b, &labels)
            }
            TopologyDelta::EdgeRemoved { a, b, color } => self.strip_label(a, b, color),
        };
        if !self.in_batch {
            self.maybe_compact();
        }
        effect
    }

    /// Prepares the structure for one flush of `deltas` applied back to
    /// back (the grouped form [`crate::Monitor`] receives from an
    /// executor's batched plan application): a single capacity pre-pass
    /// groups the flush's edge insertions by endpoint slot and sizes every
    /// touched block up front, so the per-delta patches that follow never
    /// relocate mid-flush — each block moves **at most once per flush**
    /// instead of once per doubling. Amortized compaction is deferred to
    /// [`IncrementalCsr::end_batch`], one check per flush.
    ///
    /// The pre-pass is an optimization only: endpoints it cannot resolve
    /// (e.g. nodes added later in the same stream) are skipped, and the
    /// per-delta path still grows blocks on demand, so [`apply`] semantics
    /// — effects, generations, snapshots — are bit-identical with or
    /// without the batch bracket.
    ///
    /// [`apply`]: IncrementalCsr::apply
    pub fn begin_batch(&mut self, deltas: &[TopologyDelta]) {
        self.in_batch = true;
        let mut slots = std::mem::take(&mut self.batch_slots);
        slots.clear();
        for delta in deltas {
            if let TopologyDelta::EdgeAdded { a, b, .. } = *delta {
                if let (Some(&sa), Some(&sb)) = (self.index.get(&a), self.index.get(&b)) {
                    slots.push(sa);
                    slots.push(sb);
                }
            }
        }
        slots.sort_unstable();
        let mut i = 0;
        while i < slots.len() {
            let slot = slots[i];
            let mut j = i;
            while j < slots.len() && slots[j] == slot {
                j += 1;
            }
            // Pessimistic: relabels of existing edges count as growth too —
            // the over-reservation is plain slack, never a tombstone.
            let incoming = (j - i) as u32;
            let b = self.blocks[slot as usize];
            if b.cap - b.len < incoming {
                self.grow_block(slot, (b.len + incoming).max(b.cap * 2).max(4));
            }
            i = j;
        }
        self.batch_slots = slots;
    }

    /// Closes a [`IncrementalCsr::begin_batch`] flush: runs the deferred
    /// amortized compaction check once for the whole batch.
    pub fn end_batch(&mut self) {
        self.in_batch = false;
        self.maybe_compact();
    }

    fn add_slot(&mut self, v: NodeId) {
        debug_assert!(!self.index.contains_key(&v), "duplicate node {v}");
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.ids[s as usize] = v;
                self.live[s as usize] = true;
                self.blocks[s as usize] = Block::default();
                s
            }
            None => {
                let s = u32::try_from(self.ids.len()).expect("slot fits u32");
                self.ids.push(v);
                self.live.push(true);
                self.blocks.push(Block::default());
                s
            }
        };
        self.index.insert(v, slot);
        self.ordered.insert(v);
    }

    fn remove_node(&mut self, v: NodeId) -> DeltaEffect {
        let Some(&sv) = self.index.get(&v) else {
            debug_assert!(false, "removed unknown node {v}");
            return DeltaEffect::Noop;
        };
        let block = self.blocks[sv as usize];
        let mut neighbors = Vec::with_capacity(block.len as usize);
        // Collect first (the mirror removals below shuffle `adj`).
        let incident: Vec<(NodeId, u32, bool)> = self
            .block_slice(sv)
            .iter()
            .map(|e| (e.id, e.slot, e.labels.is_black()))
            .collect();
        for &(u, su, was_black) in &incident {
            let ub = &self.blocks[su as usize];
            neighbors.push((u, ub.len as usize, was_black));
            self.remove_entry(su, v, was_black);
            self.edge_count -= 1;
        }
        self.tombstones += block.cap as usize;
        self.blocks[sv as usize] = Block::default();
        self.live[sv as usize] = false;
        self.free_slots.push(sv);
        self.index.remove(&v);
        self.ordered.remove(&v);
        DeltaEffect::NodeRemoved {
            node: v,
            degree: block.len as usize,
            black_degree: block.black as usize,
            neighbors,
        }
    }

    /// Position of `u` inside `slot`'s block.
    fn find_in_block(&self, slot: u32, u: NodeId) -> Result<usize, usize> {
        self.block_slice(slot).binary_search_by(|e| e.id.cmp(&u))
    }

    /// Removes the `(slot → u)` half-edge entry (must exist).
    fn remove_entry(&mut self, slot: u32, u: NodeId, was_black: bool) {
        let pos = self.find_in_block(slot, u).expect("mirror entry");
        let b = self.blocks[slot as usize];
        let start = b.start as usize;
        // Shift the tail left inside the block; the vacated cell becomes
        // reusable slack, not a tombstone.
        self.adj
            .copy_within_entries(start + pos + 1..start + b.len as usize, start + pos);
        let b = &mut self.blocks[slot as usize];
        b.len -= 1;
        if was_black {
            b.black -= 1;
        }
    }

    /// Inserts an entry into `slot`'s block at its sorted position,
    /// relocating the block with doubled capacity when full.
    fn insert_entry(&mut self, slot: u32, entry: Entry) {
        let pos = match self.find_in_block(slot, entry.id) {
            Ok(_) => unreachable!("entry {} already present", entry.id),
            Err(p) => p,
        };
        let b = self.blocks[slot as usize];
        if b.len == b.cap {
            self.grow_block(slot, (b.cap * 2).max(4));
        }
        let b = self.blocks[slot as usize];
        let start = b.start as usize;
        // Shift the tail right inside the block to open the position.
        self.adj
            .copy_within_entries_rev(start + pos..start + b.len as usize, start + pos + 1);
        self.adj[start + pos] = entry;
        self.blocks[slot as usize].len += 1;
    }

    /// Relocates `slot`'s block to the tail of the entry array with
    /// capacity `new_cap`; the old region tombstones.
    fn grow_block(&mut self, slot: u32, new_cap: u32) {
        let b = self.blocks[slot as usize];
        debug_assert!(new_cap > b.cap);
        let new_start = self.adj.len() as u32;
        self.adj.reserve(new_cap as usize);
        for i in 0..b.len as usize {
            let e = self.adj[b.start as usize + i].clone();
            self.adj.push(e);
        }
        self.adj
            .resize_with(new_start as usize + new_cap as usize, Entry::filler);
        self.tombstones += b.cap as usize;
        let nb = &mut self.blocks[slot as usize];
        nb.start = new_start;
        nb.cap = new_cap;
    }

    fn add_label(&mut self, a: NodeId, b: NodeId, labels: &EdgeLabels) -> DeltaEffect {
        let (Some(&sa), Some(&sb)) = (self.index.get(&a), self.index.get(&b)) else {
            debug_assert!(false, "edge ({a},{b}) endpoints must be live");
            return DeltaEffect::Noop;
        };
        match self.find_in_block(sa, b) {
            Ok(pos) => {
                // Existing edge: merge the label into both halves.
                let start = self.blocks[sa as usize].start as usize;
                let before = self.adj[start + pos].labels.clone();
                self.adj[start + pos].labels.merge(labels);
                let after = self.adj[start + pos].labels.clone();
                if before == after {
                    return DeltaEffect::Noop; // duplicate label
                }
                let mpos = self.find_in_block(sb, a).expect("mirror entry");
                let mstart = self.blocks[sb as usize].start as usize;
                self.adj[mstart + mpos].labels.merge(labels);
                let became_black = !before.is_black() && after.is_black();
                if became_black {
                    self.blocks[sa as usize].black += 1;
                    self.blocks[sb as usize].black += 1;
                }
                DeltaEffect::EdgeRelabeled { a, b, became_black }
            }
            Err(_) => {
                let black = labels.is_black();
                self.insert_entry(
                    sa,
                    Entry {
                        id: b,
                        slot: sb,
                        labels: labels.clone(),
                    },
                );
                self.insert_entry(
                    sb,
                    Entry {
                        id: a,
                        slot: sa,
                        labels: labels.clone(),
                    },
                );
                if black {
                    self.blocks[sa as usize].black += 1;
                    self.blocks[sb as usize].black += 1;
                }
                self.edge_count += 1;
                DeltaEffect::EdgeCreated { a, b, black }
            }
        }
    }

    fn strip_label(
        &mut self,
        a: NodeId,
        b: NodeId,
        color: Option<xheal_graph::CloudColor>,
    ) -> DeltaEffect {
        // Strips of edges that died with a deleted endpoint are no-ops,
        // exactly as on the engine's graph.
        let (Some(&sa), Some(&sb)) = (self.index.get(&a), self.index.get(&b)) else {
            return DeltaEffect::Noop;
        };
        let Ok(pos) = self.find_in_block(sa, b) else {
            return DeltaEffect::Noop;
        };
        let start = self.blocks[sa as usize].start as usize;
        let entry = &mut self.adj[start + pos];
        let was_black = entry.labels.is_black();
        let removed = match color {
            None => {
                let had = was_black;
                entry.labels.clear_black();
                had
            }
            Some(c) => entry.labels.remove_color(c),
        };
        if !removed {
            return DeltaEffect::Noop;
        }
        let now_black = entry.labels.is_black();
        let empty = entry.labels.is_empty();
        if empty {
            self.remove_entry(sa, b, was_black);
            self.remove_entry(sb, a, was_black);
            self.edge_count -= 1;
            return DeltaEffect::EdgeDropped { a, b, was_black };
        }
        // Mirror the strip on the other half.
        let mpos = self.find_in_block(sb, a).expect("mirror entry");
        let mstart = self.blocks[sb as usize].start as usize;
        match color {
            None => self.adj[mstart + mpos].labels.clear_black(),
            Some(c) => {
                self.adj[mstart + mpos].labels.remove_color(c);
            }
        }
        let lost_black = was_black && !now_black;
        if lost_black {
            self.blocks[sa as usize].black -= 1;
            self.blocks[sb as usize].black -= 1;
        }
        DeltaEffect::EdgeStripped { a, b, lost_black }
    }

    // ------------------------------------------------------------------
    // Amortized compaction
    // ------------------------------------------------------------------

    fn maybe_compact(&mut self) {
        if self.adj.len() >= COMPACT_MIN && self.tombstones > self.adj.len() / COMPACT_DENOM {
            self.compact();
        }
    }

    /// Rebuilds the entry array densely (slack reset to zero per block);
    /// O(live entries), paid for by the tombstones that triggered it.
    fn compact(&mut self) {
        let mut fresh: Vec<Entry> = Vec::with_capacity(2 * self.edge_count);
        for &v in &self.ordered {
            let slot = self.index[&v];
            let b = self.blocks[slot as usize];
            let start = fresh.len() as u32;
            fresh.extend_from_slice(self.block_slice_raw(b));
            self.blocks[slot as usize] = Block {
                start,
                len: b.len,
                cap: b.len,
                black: b.black,
            };
        }
        self.adj = fresh;
        self.tombstones = 0;
        self.compactions += 1;
    }

    fn block_slice_raw(&self, b: Block) -> &[Entry] {
        &self.adj[b.start as usize..(b.start + b.len) as usize]
    }

    // ------------------------------------------------------------------
    // Self-checks (tests and the property suite)
    // ------------------------------------------------------------------

    /// Structural consistency check: mirrored labels, sorted blocks,
    /// maintained counters, tombstone accounting.
    pub fn validate(&self) -> Result<(), String> {
        if self.index.len() != self.ordered.len() {
            return Err("index/ordered size mismatch".into());
        }
        let mut owned = 0usize;
        let mut edges = 0usize;
        for &v in &self.ordered {
            let Some(&s) = self.index.get(&v) else {
                return Err(format!("ordered node {v} not indexed"));
            };
            if !self.live[s as usize] || self.ids[s as usize] != v {
                return Err(format!("slot {s} does not back {v}"));
            }
            let b = self.blocks[s as usize];
            if b.len > b.cap || (b.start + b.cap) as usize > self.adj.len() {
                return Err(format!("block of {v} out of bounds"));
            }
            owned += b.cap as usize;
            let mut black = 0u32;
            let slice = self.block_slice(s);
            for w in slice.windows(2) {
                if w[0].id >= w[1].id {
                    return Err(format!("unsorted block at {v}"));
                }
            }
            for e in slice {
                if e.labels.is_empty() {
                    return Err(format!("empty labels on ({v},{})", e.id));
                }
                if e.labels.is_black() {
                    black += 1;
                }
                if !self.live[e.slot as usize] || self.ids[e.slot as usize] != e.id {
                    return Err(format!("stale neighbor slot on ({v},{})", e.id));
                }
                let mirror = self
                    .find_in_block(e.slot, v)
                    .map_err(|_| format!("asymmetric edge ({v},{})", e.id))?;
                let mb = self.blocks[e.slot as usize];
                if self.adj[mb.start as usize + mirror].labels != e.labels {
                    return Err(format!("label mismatch on ({v},{})", e.id));
                }
                if v < e.id {
                    edges += 1;
                }
            }
            if black != b.black {
                return Err(format!("black counter {} != {black} at {v}", b.black));
            }
        }
        if edges != self.edge_count {
            return Err(format!("edge count {} stored {edges}", self.edge_count));
        }
        if owned + self.tombstones > self.adj.len() {
            return Err(format!(
                "accounting leak: {owned} owned + {} tombstones > {} cells",
                self.tombstones,
                self.adj.len()
            ));
        }
        Ok(())
    }
}

/// In-place shifting helpers over the entry array. `copy_within` needs
/// `Copy`; entries hold an `EdgeLabels`, so these are rotate-style moves.
trait EntryShift {
    fn copy_within_entries(&mut self, src: std::ops::Range<usize>, dest: usize);
    fn copy_within_entries_rev(&mut self, src: std::ops::Range<usize>, dest: usize);
}

impl EntryShift for Vec<Entry> {
    /// Moves `src` left to `dest` (`dest < src.start`), like a removal
    /// shift. Elements beyond the moved region keep their (stale) values.
    fn copy_within_entries(&mut self, src: std::ops::Range<usize>, dest: usize) {
        for (k, i) in src.enumerate() {
            self[dest + k] = self[i].clone();
        }
    }

    /// Moves `src` right to `dest` (`dest > src.start`), back-to-front so
    /// the shift never overwrites unmoved elements — an insertion shift.
    fn copy_within_entries_rev(&mut self, src: std::ops::Range<usize>, dest: usize) {
        let delta = dest - src.start;
        for i in src.rev() {
            self[i + delta] = self[i].clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xheal_graph::{generators, CloudColor};

    fn n(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    /// Asserts the incremental structure matches `g.csr_view()` exactly.
    fn assert_matches(csr: &IncrementalCsr, g: &Graph) {
        csr.validate().unwrap();
        let inc = csr.snapshot();
        let fresh = g.csr_view();
        assert_eq!(inc.nodes(), fresh.nodes(), "node spine differs");
        assert_eq!(inc.offsets(), fresh.offsets(), "offsets differ");
        assert_eq!(
            inc.neighbors_flat(),
            fresh.neighbors_flat(),
            "adjacency differs"
        );
        for v in g.nodes() {
            assert_eq!(csr.degree(v), g.degree(v), "degree of {v}");
            assert_eq!(
                csr.black_degree(v),
                g.black_degree(v),
                "black degree of {v}"
            );
        }
    }

    #[test]
    fn seeds_from_initial_graph() {
        let g = generators::random_regular(40, 4, &mut rand::rngs::StdRng::seed_from_u64(1));
        let csr = IncrementalCsr::new(&g);
        assert_eq!(csr.generation(), 0);
        assert_matches(&csr, &g);
    }

    #[test]
    fn node_and_edge_deltas_patch_in_place() {
        let mut g = generators::cycle(8);
        let mut csr = IncrementalCsr::new(&g);
        let c = CloudColor::new(3);

        // Node insert with two black edges.
        g.add_node(n(100)).unwrap();
        csr.apply(&TopologyDelta::NodeAdded(n(100)));
        for u in [n(0), n(4)] {
            g.add_black_edge(n(100), u).unwrap();
            let eff = csr.apply(&TopologyDelta::EdgeAdded {
                a: n(100),
                b: u,
                color: None,
            });
            assert!(matches!(eff, DeltaEffect::EdgeCreated { black: true, .. }));
        }
        assert_matches(&csr, &g);

        // Recolor an existing edge, then strip black off it.
        g.add_colored_edge(n(0), n(1), c).unwrap();
        let eff = csr.apply(&TopologyDelta::EdgeAdded {
            a: n(0),
            b: n(1),
            color: Some(c),
        });
        assert!(matches!(
            eff,
            DeltaEffect::EdgeRelabeled {
                became_black: false,
                ..
            }
        ));
        g.strip_black(n(0), n(1));
        let eff = csr.apply(&TopologyDelta::EdgeRemoved {
            a: n(0),
            b: n(1),
            color: None,
        });
        assert!(matches!(
            eff,
            DeltaEffect::EdgeStripped {
                lost_black: true,
                ..
            }
        ));
        assert_matches(&csr, &g);

        // Strip the color too: the edge dies.
        g.strip_color(n(0), n(1), c);
        let eff = csr.apply(&TopologyDelta::EdgeRemoved {
            a: n(0),
            b: n(1),
            color: Some(c),
        });
        assert!(matches!(
            eff,
            DeltaEffect::EdgeDropped {
                was_black: false,
                ..
            }
        ));
        assert_matches(&csr, &g);

        // Node removal takes every incident edge.
        g.remove_node(n(4)).unwrap();
        let eff = csr.apply(&TopologyDelta::NodeRemoved(n(4)));
        let DeltaEffect::NodeRemoved {
            node,
            degree,
            neighbors,
            ..
        } = eff
        else {
            panic!("expected NodeRemoved, got {eff:?}");
        };
        assert_eq!(node, n(4));
        assert_eq!(degree, 3);
        assert_eq!(neighbors.len(), 3);
        assert_matches(&csr, &g);
        assert_eq!(csr.generation(), 7);
    }

    #[test]
    fn replayed_strips_are_noops() {
        let g = generators::cycle(5);
        let mut csr = IncrementalCsr::new(&g);
        // Strip an edge of a node that is gone — the plan-replay situation.
        let eff = csr.apply(&TopologyDelta::EdgeRemoved {
            a: n(77),
            b: n(0),
            color: Some(CloudColor::new(1)),
        });
        assert_eq!(eff, DeltaEffect::Noop);
        // Strip a color the edge does not carry.
        let eff = csr.apply(&TopologyDelta::EdgeRemoved {
            a: n(0),
            b: n(1),
            color: Some(CloudColor::new(9)),
        });
        assert_eq!(eff, DeltaEffect::Noop);
        assert_eq!(csr.generation(), 2, "no-ops still stamp the generation");
    }

    #[test]
    fn growth_relocates_and_churn_compacts() {
        let mut g = Graph::new();
        g.add_node(n(0)).unwrap();
        let mut csr = IncrementalCsr::new(&g);
        // Grow node 0's block far past any initial capacity.
        for i in 1..40 {
            g.add_node(n(i)).unwrap();
            csr.apply(&TopologyDelta::NodeAdded(n(i)));
            g.add_black_edge(n(0), n(i)).unwrap();
            csr.apply(&TopologyDelta::EdgeAdded {
                a: n(0),
                b: n(i),
                color: None,
            });
        }
        assert_matches(&csr, &g);
        // Delete most of the spokes: tombstones accumulate, compaction fires.
        for i in 1..35 {
            g.remove_node(n(i)).unwrap();
            csr.apply(&TopologyDelta::NodeRemoved(n(i)));
        }
        assert!(csr.compactions() > 0, "churn must trigger compaction");
        assert!(
            csr.tombstones() <= csr.edge_count() * 2 + COMPACT_MIN,
            "tombstones stay bounded: {}",
            csr.tombstones()
        );
        assert_matches(&csr, &g);
    }

    #[test]
    fn snapshot_equals_fresh_csr_under_mixed_churn() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let mut g = generators::connected_erdos_renyi(24, 0.2, &mut rng);
        let mut csr = IncrementalCsr::new(&g);
        let mut next = 1000u64;
        for step in 0..300 {
            let nodes = g.node_vec();
            match rng.random_range(0..4u32) {
                0 => {
                    let v = n(next);
                    next += 1;
                    g.add_node(v).unwrap();
                    csr.apply(&TopologyDelta::NodeAdded(v));
                    let u = nodes[rng.random_range(0..nodes.len())];
                    g.add_black_edge(v, u).unwrap();
                    csr.apply(&TopologyDelta::EdgeAdded {
                        a: v,
                        b: u,
                        color: None,
                    });
                }
                1 if nodes.len() > 4 => {
                    let v = nodes[rng.random_range(0..nodes.len())];
                    g.remove_node(v).unwrap();
                    csr.apply(&TopologyDelta::NodeRemoved(v));
                }
                2 => {
                    let a = nodes[rng.random_range(0..nodes.len())];
                    let b = nodes[rng.random_range(0..nodes.len())];
                    if a != b {
                        let c = CloudColor::new(rng.random_range(0..6));
                        g.add_colored_edge(a, b, c).unwrap();
                        csr.apply(&TopologyDelta::EdgeAdded {
                            a,
                            b,
                            color: Some(c),
                        });
                    }
                }
                _ => {
                    let a = nodes[rng.random_range(0..nodes.len())];
                    let b = nodes[rng.random_range(0..nodes.len())];
                    if a != b {
                        let c = CloudColor::new(rng.random_range(0..6));
                        g.strip_color(a, b, c);
                        csr.apply(&TopologyDelta::EdgeRemoved {
                            a,
                            b,
                            color: Some(c),
                        });
                    }
                }
            }
            if step % 10 == 0 {
                assert_matches(&csr, &g);
            }
        }
        assert_matches(&csr, &g);
    }

    use rand::SeedableRng;

    #[test]
    fn batch_bracket_is_bit_identical_to_per_delta_apply() {
        use rand::{rngs::StdRng, Rng};
        let mut rng = StdRng::seed_from_u64(42);
        let g0 = generators::connected_erdos_renyi(20, 0.2, &mut rng);
        let mut plain = IncrementalCsr::new(&g0);
        let mut batched = IncrementalCsr::new(&g0);
        let mut g = g0.clone();
        for round in 0..40 {
            // Build one flush-sized batch of edge deltas, like a plan flush.
            let nodes = g.node_vec();
            let mut deltas = Vec::new();
            for k in 0..rng.random_range(1..12usize) {
                let a = nodes[rng.random_range(0..nodes.len())];
                let b = nodes[rng.random_range(0..nodes.len())];
                if a == b {
                    continue;
                }
                let c = CloudColor::new(rng.random_range(0..5));
                if (round + k) % 3 == 0 {
                    g.strip_color(a, b, c);
                    deltas.push(TopologyDelta::EdgeRemoved {
                        a,
                        b,
                        color: Some(c),
                    });
                } else {
                    g.add_colored_edge(a, b, c).unwrap();
                    deltas.push(TopologyDelta::EdgeAdded {
                        a,
                        b,
                        color: Some(c),
                    });
                }
            }
            let plain_effects: Vec<DeltaEffect> = deltas.iter().map(|d| plain.apply(d)).collect();
            batched.begin_batch(&deltas);
            let batch_effects: Vec<DeltaEffect> = deltas.iter().map(|d| batched.apply(d)).collect();
            batched.end_batch();
            assert_eq!(plain_effects, batch_effects, "round {round}");
            assert_eq!(plain.generation(), batched.generation());
            plain.validate().unwrap();
            batched.validate().unwrap();
            assert_matches(&batched, &g);
        }
        let a = plain.snapshot();
        let b = batched.snapshot();
        assert_eq!(a.nodes(), b.nodes());
        assert_eq!(a.offsets(), b.offsets());
        assert_eq!(a.neighbors_flat(), b.neighbors_flat());
    }

    #[test]
    fn batch_pre_pass_relocates_each_block_at_most_once() {
        // Grow one node's block by 33 spokes in a single flush: the
        // per-delta path relocates it on every capacity doubling, the
        // batched path exactly once (one tombstoned region).
        let mut g = Graph::new();
        let n_spokes = 33u64;
        g.add_node(n(0)).unwrap();
        for i in 1..=n_spokes {
            g.add_node(n(i)).unwrap();
        }
        let mut plain = IncrementalCsr::new(&g);
        let mut batched = plain.clone();
        let deltas: Vec<TopologyDelta> = (1..=n_spokes)
            .map(|i| TopologyDelta::EdgeAdded {
                a: n(0),
                b: n(i),
                color: None,
            })
            .collect();
        for d in &deltas {
            plain.apply(d);
        }
        batched.begin_batch(&deltas);
        for d in &deltas {
            batched.apply(d);
        }
        batched.end_batch();
        assert_eq!(
            batched.tombstones(),
            0,
            "one up-front relocation of an empty block leaves no tombstones"
        );
        assert!(
            plain.tombstones() > 0 || plain.compactions() > 0,
            "per-delta doubling must have relocated at least once"
        );
        // Same logical content regardless of layout.
        let a = plain.snapshot();
        let b = batched.snapshot();
        assert_eq!(a.offsets(), b.offsets());
        assert_eq!(a.neighbors_flat(), b.neighbors_flat());
        batched.validate().unwrap();
    }
}
