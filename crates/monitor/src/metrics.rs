//! Incrementally maintained invariant metrics: O(1)-per-delta degree and
//! black-degree histograms, the max degree-increase against the
//! insertion-only baseline `G'`, and a windowed reservoir of churn-touched
//! nodes for on-demand stretch sampling.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xheal_graph::{CsrView, FxHashMap, NodeId};

/// A maintained histogram over per-node degree values.
///
/// Every bucket update is O(1); [`DegreeHistogram::max`] is maintained
/// lazily (scan down on emptied top bucket — amortized O(1) against the
/// increments that filled it).
#[derive(Clone, Debug, Default)]
pub struct DegreeHistogram {
    counts: Vec<u64>,
    nodes: usize,
    /// Sum of all degrees (for the O(1) mean).
    total: u64,
    /// Highest non-empty bucket (0 when empty).
    hi: usize,
}

impl DegreeHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        DegreeHistogram::default()
    }

    /// Moves one node's count from `old` to `new`; `None` means the node
    /// was absent (insertion) or leaves (deletion).
    pub fn transition(&mut self, old: Option<usize>, new: Option<usize>) {
        if let Some(d) = old {
            debug_assert!(self.counts.get(d).is_some_and(|&c| c > 0));
            self.counts[d] -= 1;
            self.nodes -= 1;
            self.total -= d as u64;
        }
        if let Some(d) = new {
            if d >= self.counts.len() {
                self.counts.resize(d + 1, 0);
            }
            self.counts[d] += 1;
            self.nodes += 1;
            self.total += d as u64;
            self.hi = self.hi.max(d);
        }
        while self.hi > 0 && self.counts[self.hi] == 0 {
            self.hi -= 1;
        }
    }

    /// Number of nodes currently at degree `d`.
    pub fn count_at(&self, d: usize) -> u64 {
        self.counts.get(d).copied().unwrap_or(0)
    }

    /// Number of nodes in the histogram.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Largest degree with a nonzero count (0 for an empty histogram).
    pub fn max(&self) -> usize {
        self.hi
    }

    /// Mean degree (0.0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.total as f64 / self.nodes as f64
        }
    }

    /// The bucket slice (index = degree), trimmed at the maintained max so
    /// two histograms over the same population compare equal regardless of
    /// their peak-capacity history.
    pub fn buckets(&self) -> &[u64] {
        if self.nodes == 0 {
            &[]
        } else {
            &self.counts[..=self.hi]
        }
    }
}

/// Maintained `max_v deg_G(v) / deg_{G'}(v)` over live nodes with nonzero
/// baseline degree — the paper's success metric 1, kept as an ordered
/// multiset of ratios so the max survives decrements (O(log n) per delta).
#[derive(Clone, Debug, Default)]
pub struct DegreeIncreaseTracker {
    /// live degree, baseline (`G'`) degree per live node.
    degrees: FxHashMap<NodeId, (u32, u32)>,
    /// Multiset of ratios keyed by their f64 bit pattern (order-preserving
    /// for the non-negative ratios stored here).
    ratios: BTreeMap<u64, u32>,
}

impl DegreeIncreaseTracker {
    /// Empty tracker.
    pub fn new() -> Self {
        DegreeIncreaseTracker::default()
    }

    fn ratio_key(live: u32, base: u32) -> Option<u64> {
        (base > 0).then(|| (live as f64 / base as f64).to_bits())
    }

    fn multiset_remove(&mut self, key: u64) {
        match self.ratios.get_mut(&key) {
            Some(c) if *c > 1 => *c -= 1,
            Some(_) => {
                self.ratios.remove(&key);
            }
            None => debug_assert!(false, "ratio key missing from multiset"),
        }
    }

    /// Registers a live node with its current and baseline degrees.
    pub fn insert(&mut self, v: NodeId, live: u32, base: u32) {
        let prev = self.degrees.insert(v, (live, base));
        debug_assert!(prev.is_none(), "{v} already tracked");
        if let Some(k) = Self::ratio_key(live, base) {
            *self.ratios.entry(k).or_insert(0) += 1;
        }
    }

    /// Drops a node (deletion: dead nodes no longer count toward the max).
    pub fn remove(&mut self, v: NodeId) {
        if let Some((live, base)) = self.degrees.remove(&v) {
            if let Some(k) = Self::ratio_key(live, base) {
                self.multiset_remove(k);
            }
        }
    }

    /// Adjusts a live node's degree by `dlive` and its baseline degree by
    /// `dbase` (either may be negative for the live part; the baseline only
    /// ever grows).
    pub fn adjust(&mut self, v: NodeId, dlive: i64, dbase: i64) {
        let Some(&(live, base)) = self.degrees.get(&v) else {
            debug_assert!(false, "{v} not tracked");
            return;
        };
        let nlive = (live as i64 + dlive) as u32;
        let nbase = (base as i64 + dbase) as u32;
        if let Some(k) = Self::ratio_key(live, base) {
            self.multiset_remove(k);
        }
        if let Some(k) = Self::ratio_key(nlive, nbase) {
            *self.ratios.entry(k).or_insert(0) += 1;
        }
        self.degrees.insert(v, (nlive, nbase));
    }

    /// The maintained maximum ratio (0.0 when no comparable node exists) —
    /// matches `xheal_metrics::degree_increase` on the same graphs.
    pub fn max(&self) -> f64 {
        self.ratios
            .last_key_value()
            .map(|(&k, _)| f64::from_bits(k))
            .unwrap_or(0.0)
    }

    /// Number of tracked (live) nodes.
    pub fn len(&self) -> usize {
        self.degrees.len()
    }

    /// True when no node is tracked.
    pub fn is_empty(&self) -> bool {
        self.degrees.is_empty()
    }
}

/// A windowed reservoir of churn-touched nodes: the sample frame for
/// on-demand stretch estimation. Touches are O(1); stale entries (older
/// than `window` generations, or dead) are discarded lazily at sampling
/// time.
#[derive(Clone, Debug)]
pub struct StretchReservoir {
    capacity: usize,
    window: u64,
    slots: Vec<(NodeId, u64)>,
    rng: StdRng,
    touches: u64,
}

impl StretchReservoir {
    /// Reservoir over the last `window` generations holding at most
    /// `capacity` touched nodes.
    pub fn new(capacity: usize, window: u64, seed: u64) -> Self {
        StretchReservoir {
            capacity: capacity.max(1),
            window: window.max(1),
            slots: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            touches: 0,
        }
    }

    /// Records that `v` was touched by the delta stamped `generation`.
    ///
    /// Once full, every touch evicts a uniformly random slot — a
    /// *recency-biased* reservoir (slot ages are geometric with mean
    /// `capacity` touches), not stream-lifetime Algorithm R, whose decaying
    /// replacement probability would starve the window on a long-running
    /// monitor: with `capacity ≪ window` the sample stays in-window
    /// indefinitely.
    pub fn touch(&mut self, v: NodeId, generation: u64) {
        self.touches += 1;
        if self.slots.len() < self.capacity {
            self.slots.push((v, generation));
            return;
        }
        let j = self.rng.random_range(0..self.capacity as u64);
        self.slots[j as usize] = (v, generation);
    }

    /// The live, in-window sample as of `generation`, restricted to nodes
    /// present in `csr`; deduplicated.
    pub fn sample(&self, csr: &CsrView, generation: u64) -> Vec<NodeId> {
        let cutoff = generation.saturating_sub(self.window);
        let mut out: Vec<NodeId> = self
            .slots
            .iter()
            .filter(|&&(v, g)| g >= cutoff && csr.index_of(v).is_some())
            .map(|&(v, _)| v)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Total touches observed (diagnostics).
    pub fn touches(&self) -> u64 {
        self.touches
    }
}

/// The monitor's append-only shadow of the insertion-only reference graph
/// `G'`: adjacency by node id, grown from black-edge deltas, never shrunk
/// (deletions do not touch `G'`, per the model).
#[derive(Clone, Debug, Default)]
pub struct GPrimeShadow {
    adj: FxHashMap<NodeId, Vec<NodeId>>,
}

impl GPrimeShadow {
    /// Empty shadow.
    pub fn new() -> Self {
        GPrimeShadow::default()
    }

    /// Registers a node (idempotent).
    pub fn add_node(&mut self, v: NodeId) {
        self.adj.entry(v).or_default();
    }

    /// Records an insertion edge; returns `false` (and changes nothing) on
    /// duplicates.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        if self.adj.get(&a).is_some_and(|l| l.contains(&b)) {
            return false;
        }
        self.adj.entry(a).or_default().push(b);
        self.adj.entry(b).or_default().push(a);
        true
    }

    /// Baseline degree of `v` (0 if never seen).
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj.get(&v).map(Vec::len).unwrap_or(0)
    }

    /// Number of nodes ever seen.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of recorded insertion edges. A shadow with zero edges marks
    /// a *reference-free* engine (e.g. one that rebuilds its topology from
    /// membership alone and never installs black edges): every
    /// reference-relative metric is vacuous then.
    pub fn edge_count(&self) -> usize {
        self.adj.values().map(Vec::len).sum::<usize>() / 2
    }

    /// BFS distances from `s` in `G'` (dead nodes are traversed — a
    /// baseline shortest path may run through them, per the model).
    pub fn bfs(&self, s: NodeId) -> FxHashMap<NodeId, u32> {
        let mut dist: FxHashMap<NodeId, u32> = FxHashMap::default();
        if !self.adj.contains_key(&s) {
            return dist;
        }
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        dist.insert(s, 0);
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            let du = dist[&u];
            for &w in &self.adj[&u] {
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(w) {
                    e.insert(du + 1);
                    queue.push_back(w);
                }
            }
        }
        dist
    }
}

/// Max stretch over the sampled sources/targets: BFS in the live CSR vs
/// BFS in the `G'` shadow, `f64::INFINITY` when a baseline-connected pair
/// is disconnected live (a healing failure). `None` when no comparable
/// pair exists in the sample. Sampled nodes absent from the live graph
/// (stale caller-built samples) are skipped, not fatal.
pub fn sampled_stretch(csr: &CsrView, gprime: &GPrimeShadow, sample: &[NodeId]) -> Option<f64> {
    let mut worst: Option<f64> = None;
    let mut live_dist = vec![u32::MAX; csr.len()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &s in sample {
        let Some(si) = csr.index_of(s) else { continue };
        // BFS in the live graph over dense indices.
        live_dist.fill(u32::MAX);
        live_dist[si] = 0;
        queue.clear();
        queue.push_back(si);
        while let Some(u) = queue.pop_front() {
            let du = live_dist[u];
            for &w in csr.neighbors_of(u) {
                let w = w as usize;
                if live_dist[w] == u32::MAX {
                    live_dist[w] = du + 1;
                    queue.push_back(w);
                }
            }
        }
        let base = gprime.bfs(s);
        for &t in sample {
            if t <= s {
                continue;
            }
            let Some(&db) = base.get(&t) else { continue };
            if db == 0 {
                continue;
            }
            let Some(ti) = csr.index_of(t) else { continue };
            let r = if live_dist[ti] == u32::MAX {
                f64::INFINITY
            } else {
                live_dist[ti] as f64 / db as f64
            };
            worst = Some(worst.map_or(r, |w: f64| w.max(r)));
        }
    }
    worst
}

/// Connected-component count of a CSR snapshot (one dense BFS sweep; the
/// checkpoint-time connectivity check).
pub fn component_count(csr: &CsrView) -> usize {
    let n = csr.len();
    let mut seen = vec![false; n];
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut components = 0;
    for root in 0..n {
        if seen[root] {
            continue;
        }
        components += 1;
        seen[root] = true;
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            for &w in csr.neighbors_of(u) {
                let w = w as usize;
                if !seen[w] {
                    seen[w] = true;
                    queue.push_back(w);
                }
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    #[test]
    fn component_count_counts() {
        use xheal_graph::{generators, Graph};
        assert_eq!(component_count(&Graph::new().csr_view()), 0);
        let mut g = generators::cycle(5);
        assert_eq!(component_count(&g.csr_view()), 1);
        g.add_node(n(50)).unwrap();
        g.add_node(n(51)).unwrap();
        g.add_black_edge(n(50), n(51)).unwrap();
        assert_eq!(component_count(&g.csr_view()), 2);
    }

    #[test]
    fn histogram_tracks_transitions_and_max() {
        let mut h = DegreeHistogram::new();
        h.transition(None, Some(3));
        h.transition(None, Some(5));
        h.transition(None, Some(5));
        assert_eq!((h.nodes(), h.max(), h.count_at(5)), (3, 5, 2));
        assert!((h.mean() - 13.0 / 3.0).abs() < 1e-12);
        // Max decays when the top bucket empties.
        h.transition(Some(5), Some(1));
        h.transition(Some(5), None);
        assert_eq!((h.nodes(), h.max()), (2, 3));
        h.transition(Some(3), None);
        h.transition(Some(1), None);
        assert_eq!((h.nodes(), h.max()), (0, 0));
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn degree_increase_survives_decrements() {
        let mut t = DegreeIncreaseTracker::new();
        t.insert(n(1), 4, 2); // 2.0
        t.insert(n(2), 3, 1); // 3.0
        t.insert(n(3), 1, 0); // excluded: zero baseline
        assert_eq!(t.max(), 3.0);
        // The argmax node loses live edges: the max must fall back.
        t.adjust(n(2), -2, 0); // 1.0
        assert_eq!(t.max(), 2.0);
        t.remove(n(1));
        assert_eq!(t.max(), 1.0);
        t.remove(n(2));
        t.remove(n(3));
        assert_eq!(t.max(), 0.0);
        assert!(t.is_empty());
    }

    #[test]
    fn ties_are_counted_as_a_multiset() {
        let mut t = DegreeIncreaseTracker::new();
        t.insert(n(1), 2, 1);
        t.insert(n(2), 4, 2); // both 2.0
        t.remove(n(1));
        assert_eq!(t.max(), 2.0, "the tied survivor keeps the max");
    }

    #[test]
    fn reservoir_windows_and_dedups() {
        use xheal_graph::generators;
        let g = generators::cycle(6);
        let csr = g.csr_view();
        let mut r = StretchReservoir::new(4, 10, 1);
        for gen in 0..8 {
            r.touch(n(gen % 3), gen);
        }
        let s = r.sample(&csr, 8);
        assert!(!s.is_empty() && s.windows(2).all(|w| w[0] < w[1]));
        // Nodes outside the live graph are filtered.
        r.touch(n(999), 9);
        for v in r.sample(&csr, 9) {
            assert!(v.as_u64() < 6);
        }
        // Everything ages out of the window eventually.
        assert!(r.sample(&csr, 100).is_empty());
    }

    #[test]
    fn gprime_shadow_bfs_runs_through_dead_nodes() {
        // G' = star around 0; live graph lost the hub.
        let mut gp = GPrimeShadow::new();
        for i in 0..5 {
            gp.add_node(n(i));
        }
        for leaf in 1..5 {
            assert!(gp.add_edge(n(0), n(leaf)));
        }
        assert!(!gp.add_edge(n(0), n(1)), "duplicate rejected");
        let d = gp.bfs(n(1));
        assert_eq!(d[&n(2)], 2, "leaf-to-leaf runs through the dead hub");
    }

    #[test]
    fn sampled_stretch_matches_hand_example() {
        use xheal_graph::generators;
        // G' is a 6-cycle; live graph lost edge (0,5): dist(0,5) 1 -> 5.
        let gp_graph = generators::cycle(6);
        let mut gp = GPrimeShadow::new();
        for v in gp_graph.nodes() {
            gp.add_node(v);
        }
        for (u, v, _) in gp_graph.edges() {
            gp.add_edge(u, v);
        }
        let mut live = gp_graph.clone();
        live.remove_edge(n(0), n(5)).unwrap();
        let csr = live.csr_view();
        let sample: Vec<NodeId> = live.node_vec();
        assert_eq!(sampled_stretch(&csr, &gp, &sample), Some(5.0));
    }
}
