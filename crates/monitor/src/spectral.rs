//! Warm-started spectral-gap estimation over the incremental CSR.
//!
//! The paper's expansion invariant (Theorem 2.3, stated through the Cheeger
//! inequality) is monitored via λ₂ of the *normalized* Laplacian. A fresh
//! solve restarts Lanczos from seeded noise every time; under the small
//! perturbations one healing event causes, the previous Fiedler estimate is
//! an excellent start vector, so [`SpectralGapTracker`] re-runs short
//! restarted Lanczos sweeps seeded with it and converges in a handful of
//! iterations — while still agreeing with the from-scratch
//! `normalized_algebraic_connectivity` to well below 1e-6 at checkpoints
//! (asserted by the `monitor_overhead` harness).

use xheal_graph::{CsrView, FxHashMap, NodeId};
use xheal_spectral::{
    lanczos_multi_deflated, lanczos_multi_deflated_from, CsrNormalizedLaplacian, LinOp,
};

/// Lanczos steps per warm restart sweep.
const WARM_STEPS: usize = 24;
/// Restart sweeps before giving up on further residual progress.
const MAX_RESTARTS: usize = 40;
/// Residual `‖L v − λ v‖` declaring the Ritz pair converged (the Ritz
/// *value* error is then O(residual² / spectral spread) — far below the
/// 1e-6 agreement budget).
const RESIDUAL_TOL: f64 = 1e-9;

/// Result of one warm-started gap estimate.
#[derive(Clone, Copy, Debug)]
pub struct GapEstimate {
    /// λ₂ of the normalized Laplacian (0.0 for degenerate graphs, matching
    /// `normalized_algebraic_connectivity`).
    pub lambda: f64,
    /// λ₃ of the normalized Laplacian, chased only when the tracker was
    /// built with [`SpectralGapTracker::with_lambda3`] and the graph has at
    /// least three nodes. The λ₂/λ₃ pair separates "the whole graph is
    /// loosening" from "one cut is about to open": a collapsing λ₂ with a
    /// healthy λ₃ pins the damage to a single near-disconnecting cut.
    pub lambda3: Option<f64>,
    /// Restart sweeps spent on the λ₂ chase (0 for degenerate graphs).
    pub restarts: usize,
    /// Final λ₂ residual `‖L v − λ v‖` (0.0 for degenerate graphs).
    pub residual: f64,
}

/// Carries the Fiedler estimate across topology generations, keyed by node
/// id so it survives node churn and CSR renumbering. With
/// [`SpectralGapTracker::with_lambda3`] it additionally chases λ₃ through a
/// second deflated sweep — deflating {kernel, current Fiedler estimate} and
/// warm-starting from the previous λ₃ eigenvector.
#[derive(Clone, Debug, Default)]
pub struct SpectralGapTracker {
    prev: FxHashMap<NodeId, f64>,
    prev3: FxHashMap<NodeId, f64>,
    track_lambda3: bool,
}

impl SpectralGapTracker {
    /// Fresh tracker (the first estimate runs cold); λ₂ only.
    pub fn new() -> Self {
        SpectralGapTracker::default()
    }

    /// Fresh tracker that also chases λ₃ on every estimate.
    pub fn with_lambda3() -> Self {
        SpectralGapTracker {
            track_lambda3: true,
            ..SpectralGapTracker::default()
        }
    }

    /// Whether this tracker chases λ₃ in addition to λ₂.
    pub fn tracks_lambda3(&self) -> bool {
        self.track_lambda3
    }

    /// Estimates λ₂ of the normalized Laplacian of `csr`, warm-started from
    /// the previous call's Fiedler vector, and stores the new vector for
    /// the next call. When λ₃ tracking is on, runs a second deflated chase
    /// for λ₃ (warm-started from the previous λ₃ vector) with the fresh
    /// Fiedler estimate joining the kernel in the deflation set.
    pub fn estimate(&mut self, csr: &CsrView) -> GapEstimate {
        let n = csr.len();
        if n < 2 || csr.edge_count() == 0 {
            self.prev.clear();
            self.prev3.clear();
            return GapEstimate {
                lambda: 0.0,
                lambda3: None,
                restarts: 0,
                residual: 0.0,
            };
        }
        let op = CsrNormalizedLaplacian::new(csr);
        let kernel = op.kernel();
        let steps = WARM_STEPS.min(n - 1).max(1);

        let start = Self::warm_start(&self.prev, csr);
        let (best, restarts) = Self::chase(&op, &[&kernel], &start, steps, 0x5EED);
        let Some((lambda, vec, residual)) = best else {
            self.prev.clear();
            self.prev3.clear();
            return GapEstimate {
                lambda: 0.0,
                lambda3: None,
                restarts,
                residual: 0.0,
            };
        };
        self.prev.clear();
        for (i, &v) in csr.nodes().iter().enumerate() {
            self.prev.insert(v, vec[i]);
        }

        let lambda3 = if self.track_lambda3 && n >= 3 {
            let start3 = Self::warm_start(&self.prev3, csr);
            let (best3, _) = Self::chase(&op, &[&kernel, &vec], &start3, steps, 0x5EED3);
            self.prev3.clear();
            best3.map(|(l3, v3, _)| {
                for (i, &v) in csr.nodes().iter().enumerate() {
                    self.prev3.insert(v, v3[i]);
                }
                l3.max(0.0)
            })
        } else {
            self.prev3.clear();
            None
        };
        GapEstimate {
            lambda: lambda.max(0.0),
            lambda3,
            restarts,
            residual,
        }
    }

    /// Maps a previous eigenvector estimate onto the current node order.
    /// Nodes that joined since get a small alternating nonzero component so
    /// a grown graph still explores its new coordinates.
    fn warm_start(prev: &FxHashMap<NodeId, f64>, csr: &CsrView) -> Vec<f64> {
        csr.nodes()
            .iter()
            .enumerate()
            .map(|(i, v)| {
                prev.get(v)
                    .copied()
                    .unwrap_or_else(|| if i % 2 == 0 { 1e-3 } else { -1e-3 })
            })
            .collect()
    }

    /// Restarted warm Lanczos sweeps against a fixed deflation set: returns
    /// the best `(ritz value, vector, residual)` triple and the sweeps
    /// spent. A warm vector that deflates to zero (e.g. the whole previous
    /// estimate died with deleted nodes) falls back to seeded noise.
    #[allow(clippy::type_complexity)]
    fn chase(
        op: &dyn LinOp,
        deflates: &[&[f64]],
        start: &[f64],
        steps: usize,
        seed: u64,
    ) -> (Option<(f64, Vec<f64>, f64)>, usize) {
        let mut start = start.to_vec();
        let mut best: Option<(f64, Vec<f64>, f64)> = None;
        let mut restarts = 0;
        while restarts < MAX_RESTARTS {
            restarts += 1;
            let r = match lanczos_multi_deflated_from(op, deflates, &start, steps) {
                Some(r) => r,
                None => match lanczos_multi_deflated(op, deflates, steps, seed ^ restarts as u64) {
                    Some(r) => r,
                    None => break,
                },
            };
            let lambda = r.ritz_values[0];
            let vec = r.smallest_vector;
            let sweep_residual = Self::residual(op, lambda, &vec);
            // Ritz values bound the target from above, so the smallest
            // sweep wins; its residual travels with it (never a later
            // sweep's).
            let improved = best.as_ref().is_none_or(|&(l, _, _)| lambda <= l + 1e-15);
            if improved {
                best = Some((lambda, vec.clone(), sweep_residual));
            }
            if sweep_residual < RESIDUAL_TOL {
                break;
            }
            start = vec;
        }
        (best, restarts)
    }

    fn residual(op: &dyn LinOp, lambda: f64, v: &[f64]) -> f64 {
        let mut y = vec![0.0f64; v.len()];
        op.apply(v, &mut y);
        y.iter()
            .zip(v)
            .map(|(yi, vi)| {
                let r = yi - lambda * vi;
                r * r
            })
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use xheal_graph::{generators, Graph, NodeId};
    use xheal_spectral::normalized_algebraic_connectivity;

    #[test]
    fn cold_estimate_matches_reference() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::random_regular(80, 6, &mut rng);
        let mut tr = SpectralGapTracker::new();
        let est = tr.estimate(&g.csr_view());
        let exact = normalized_algebraic_connectivity(&g);
        assert!(
            (est.lambda - exact).abs() < 1e-6,
            "warm {} vs reference {exact}",
            est.lambda
        );
    }

    #[test]
    fn warm_restart_converges_faster_after_perturbation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut g = generators::random_regular(120, 6, &mut rng);
        let mut tr = SpectralGapTracker::new();
        let cold = tr.estimate(&g.csr_view());
        // Perturb: drop one node, patch nothing (still connected w.h.p.).
        g.remove_node(NodeId::new(0)).unwrap();
        let warm = tr.estimate(&g.csr_view());
        let exact = normalized_algebraic_connectivity(&g);
        assert!(
            (warm.lambda - exact).abs() < 1e-6,
            "warm {} vs reference {exact}",
            warm.lambda
        );
        assert!(
            warm.restarts <= cold.restarts,
            "warm restarts {} should not exceed cold {}",
            warm.restarts,
            cold.restarts
        );
    }

    #[test]
    fn lambda3_matches_dense_reference() {
        use xheal_spectral::{jacobi_eigen, normalized_laplacian_dense};
        let mut rng = StdRng::seed_from_u64(19);
        let mut g = generators::random_regular(60, 6, &mut rng);
        let mut tr = SpectralGapTracker::with_lambda3();
        assert!(tr.tracks_lambda3());
        for round in 0..3 {
            let est = tr.estimate(&g.csr_view());
            let (_, m) = normalized_laplacian_dense(&g);
            let eig = jacobi_eigen(&m);
            assert!(
                (est.lambda - eig.values[1]).abs() < 1e-6,
                "round {round}: λ₂ {} vs dense {}",
                est.lambda,
                eig.values[1]
            );
            let l3 = est.lambda3.expect("λ₃ tracked");
            assert!(
                (l3 - eig.values[2]).abs() < 1e-6,
                "round {round}: λ₃ {l3} vs dense {}",
                eig.values[2]
            );
            // Perturb for the next (warm) round.
            g.remove_node(NodeId::new(round as u64)).unwrap();
        }
    }

    #[test]
    fn lambda3_is_off_by_default() {
        let mut rng = StdRng::seed_from_u64(23);
        let g = generators::random_regular(40, 4, &mut rng);
        let mut tr = SpectralGapTracker::new();
        assert!(!tr.tracks_lambda3());
        assert!(tr.estimate(&g.csr_view()).lambda3.is_none());
    }

    #[test]
    fn degenerate_graphs_report_zero() {
        let mut tr = SpectralGapTracker::new();
        let empty = Graph::new();
        assert_eq!(tr.estimate(&empty.csr_view()).lambda, 0.0);
        let mut single = Graph::new();
        single.add_node(NodeId::new(5)).unwrap();
        assert_eq!(tr.estimate(&single.csr_view()).lambda, 0.0);
        // Disconnected: λ₂ of the normalized Laplacian is 0.
        let mut disc = generators::complete(5);
        disc.add_node(NodeId::new(50)).unwrap();
        let est = tr.estimate(&disc.csr_view());
        assert!(est.lambda < 1e-8, "disconnected gap {}", est.lambda);
    }
}
