//! # xheal-monitor
//!
//! Live invariant monitoring for Xheal, fed by the [`TopologyDelta`]
//! stream — **no per-query graph rebuild**. Xheal's value proposition is a
//! bundle of *maintained invariants* (Pandurangan & Trehan, PODC 2011,
//! Theorem 2): constant-factor degree increase, O(log n) stretch, and
//! expansion no worse than a constant factor of the original. This crate
//! watches them on a long-running service:
//!
//! - [`IncrementalCsr`]: a generation-stamped CSR patched in place from
//!   deltas (per-node slack, amortized compaction), provably equal to
//!   `Graph::csr_view()` after every event;
//! - O(1)-per-delta metric trackers: [`DegreeHistogram`]s for degree and
//!   black degree, [`DegreeIncreaseTracker`] against the insertion-only
//!   `G'` baseline, and a [`StretchReservoir`] of churn-touched nodes for
//!   on-demand stretch sampling;
//! - [`SpectralGapTracker`]: λ₂ of the normalized Laplacian re-estimated
//!   by Lanczos **warm-started** from the previous Fiedler vector;
//! - [`HealthPolicy`]: configurable thresholds emitting edge-triggered
//!   [`HealthEvent`] alerts.
//!
//! [`Monitor`] bundles it all behind one [`TopologySink`], attachable to
//! any executor via `Xheal::builder().sink(..)` /
//! `DistXheal::builder().sink(..)`; [`MonitorHook`] plugs the same monitor
//! into `xheal_workload::run_observed` so per-event health lands in the
//! `RunSummary`.
//!
//! # Examples
//!
//! ```
//! use std::cell::RefCell;
//! use std::rc::Rc;
//! use xheal_core::{Event, HealingEngine, Xheal};
//! use xheal_graph::{generators, NodeId};
//! use xheal_monitor::{Monitor, MonitorConfig};
//!
//! let g0 = generators::star(12);
//! let monitor = Rc::new(RefCell::new(Monitor::new(&g0, MonitorConfig::default())));
//! let mut net = Xheal::builder()
//!     .kappa(4)
//!     .sink(Box::new(Rc::clone(&monitor)))
//!     .build(&g0);
//! net.apply(&Event::Delete { node: NodeId::new(0) })?;
//! let mut m = monitor.borrow_mut();
//! assert_eq!(m.node_count(), net.graph().node_count());
//! let report = m.checkpoint();
//! assert_eq!(report.components, 1, "healed network stays connected");
//! # Ok::<(), xheal_core::HealError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod csr;
mod health;
mod metrics;
mod spectral;

use std::cell::RefCell;
use std::rc::Rc;

use xheal_core::{Event, Outcome, TopologyDelta, TopologySink};
use xheal_graph::Graph;
use xheal_spectral::sweep_cut_csr;
use xheal_trace::{hook, Layer, SharedTracer};
use xheal_workload::{HealthNote, RunObserver, Severity};

pub use csr::{DeltaEffect, IncrementalCsr};
pub use health::{Band, BreachState, HealthEvent, HealthPolicy, MetricKind, MetricsSnapshot};
pub use metrics::{
    component_count, sampled_stretch, DegreeHistogram, DegreeIncreaseTracker, GPrimeShadow,
    StretchReservoir,
};
pub use spectral::{GapEstimate, SpectralGapTracker};

/// Construction-time knobs for a [`Monitor`].
#[derive(Clone, Copy, Debug)]
pub struct MonitorConfig {
    /// Invariant budgets (see [`HealthPolicy`]).
    pub policy: HealthPolicy,
    /// Stretch-reservoir capacity (sampled sources/targets per estimate).
    pub stretch_capacity: usize,
    /// Stretch-reservoir window in topology generations.
    pub stretch_window: u64,
    /// Seed for the reservoir's replacement randomness.
    pub seed: u64,
    /// Additionally chase λ₃ of the normalized Laplacian at checkpoints
    /// (a second deflated Lanczos sweep; see
    /// [`SpectralGapTracker::with_lambda3`]). Off by default.
    pub track_lambda3: bool,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            policy: HealthPolicy::default(),
            stretch_capacity: 16,
            stretch_window: 4096,
            seed: 0x5EED,
            track_lambda3: false,
        }
    }
}

/// A full checkpoint evaluation: the cheap maintained metrics plus the
/// expensive on-demand ones, all computed off the incremental CSR.
#[derive(Clone, Copy, Debug)]
pub struct HealthReport {
    /// Topology generation the report describes.
    pub generation: u64,
    /// Live nodes.
    pub nodes: usize,
    /// Live edges.
    pub edges: usize,
    /// Maximum degree (maintained histogram).
    pub max_degree: usize,
    /// Maximum black degree (maintained histogram).
    pub max_black_degree: usize,
    /// Mean degree.
    pub mean_degree: f64,
    /// Maintained `max deg_G / deg_{G'}` (success metric 1).
    pub degree_increase: f64,
    /// Connected components (BFS over the incremental CSR).
    pub components: usize,
    /// Warm-started λ₂ of the normalized Laplacian.
    pub spectral_gap: GapEstimate,
    /// Warm-started λ₃ of the normalized Laplacian, `Some` only when
    /// [`MonitorConfig::track_lambda3`] is on and the graph has ≥ 3 nodes.
    pub lambda3: Option<f64>,
    /// Sweep-cut expansion estimate (constructive upper bound on `h`),
    /// `None` for degenerate graphs.
    pub expansion: Option<f64>,
    /// Max stretch over the reservoir sample, `None` when no comparable
    /// pair was sampled.
    pub stretch: Option<f64>,
}

/// The streaming invariant monitor: one [`TopologySink`] maintaining every
/// live metric from deltas alone.
///
/// Cheap metrics (degree/black-degree histograms, degree increase) update
/// in O(1)–O(log n) per delta and are policy-checked at event boundaries
/// ([`Monitor::evaluate_policy`], driven by [`MonitorHook`]); the
/// expensive ones (components, spectral gap, expansion, stretch) run at
/// [`Monitor::checkpoint`] — still off the incremental CSR, never off a
/// rebuilt graph.
#[derive(Clone, Debug)]
pub struct Monitor {
    csr: IncrementalCsr,
    degrees: DegreeHistogram,
    black_degrees: DegreeHistogram,
    degree_increase: DegreeIncreaseTracker,
    gprime: GPrimeShadow,
    reservoir: StretchReservoir,
    spectral: SpectralGapTracker,
    policy: HealthPolicy,
    breaches: BreachState,
    alerts: Vec<HealthEvent>,
    /// Optional monitor-span recorder; `None` keeps evaluation branch-only.
    tracer: Option<SharedTracer>,
}

impl Monitor {
    /// Seeds the monitor from the engine's current graph. The `G'` baseline
    /// starts from that graph's **black** edges only (original and
    /// adversary-inserted edges, per the model) — healer-installed cloud
    /// edges never belong to `G'`, so a monitor subscribed mid-run measures
    /// degree increase against the black subgraph at subscription time, not
    /// against repairs already in place.
    pub fn new(initial: &Graph, config: MonitorConfig) -> Self {
        let mut degrees = DegreeHistogram::new();
        let mut black_degrees = DegreeHistogram::new();
        let mut degree_increase = DegreeIncreaseTracker::new();
        let mut gprime = GPrimeShadow::new();
        for v in initial.nodes() {
            gprime.add_node(v);
        }
        for (u, w, labels) in initial.edges() {
            if labels.is_black() {
                gprime.add_edge(u, w);
            }
        }
        for v in initial.nodes() {
            let d = initial.degree(v).expect("live node");
            degrees.transition(None, Some(d));
            black_degrees.transition(None, Some(initial.black_degree(v).expect("live node")));
            degree_increase.insert(v, d as u32, gprime.degree(v) as u32);
        }
        Monitor {
            csr: IncrementalCsr::new(initial),
            degrees,
            black_degrees,
            degree_increase,
            gprime,
            reservoir: StretchReservoir::new(
                config.stretch_capacity,
                config.stretch_window,
                config.seed,
            ),
            spectral: if config.track_lambda3 {
                SpectralGapTracker::with_lambda3()
            } else {
                SpectralGapTracker::new()
            },
            policy: config.policy,
            breaches: BreachState::default(),
            alerts: Vec::new(),
            tracer: None,
        }
    }

    /// Attaches (or detaches, with `None`) a tracer recording
    /// `mon.checkpoint` spans and one `mon.health` instant per band
    /// transition (arg encodes the severity: 0 = info/recovery, 1 =
    /// warning, 2 = critical).
    pub fn set_tracer(&mut self, tracer: Option<SharedTracer>) {
        self.tracer = tracer;
    }

    /// Emits one `mon.health` instant per alert appended past `from`.
    fn trace_health(&self, from: usize) {
        if self.tracer.is_none() {
            return;
        }
        for alert in &self.alerts[from..] {
            let code = match alert.severity {
                Severity::Info => 0,
                Severity::Warning => 1,
                Severity::Critical => 2,
            };
            hook::instant(
                &self.tracer,
                Layer::Monitor,
                "mon.health",
                alert.generation,
                code,
            );
        }
    }

    // ------------------------------------------------------------------
    // Live (maintained) metrics
    // ------------------------------------------------------------------

    /// Topology generation: deltas applied since construction.
    pub fn generation(&self) -> u64 {
        self.csr.generation()
    }

    /// Live node count.
    pub fn node_count(&self) -> usize {
        self.csr.node_count()
    }

    /// Live edge count.
    pub fn edge_count(&self) -> usize {
        self.csr.edge_count()
    }

    /// The incrementally patched CSR itself.
    pub fn csr(&self) -> &IncrementalCsr {
        &self.csr
    }

    /// Maintained degree histogram.
    pub fn degrees(&self) -> &DegreeHistogram {
        &self.degrees
    }

    /// Maintained black-degree histogram.
    pub fn black_degrees(&self) -> &DegreeHistogram {
        &self.black_degrees
    }

    /// Maintained max degree increase vs `G'` (success metric 1).
    pub fn degree_increase(&self) -> f64 {
        self.degree_increase.max()
    }

    /// The `G'` shadow the baseline degrees come from.
    pub fn gprime(&self) -> &GPrimeShadow {
        &self.gprime
    }

    /// Alerts emitted so far (edge-triggered; see [`HealthPolicy`]).
    pub fn alerts(&self) -> &[HealthEvent] {
        &self.alerts
    }

    /// Takes the accumulated alerts, leaving the buffer empty.
    pub fn drain_alerts(&mut self) -> Vec<HealthEvent> {
        std::mem::take(&mut self.alerts)
    }

    // ------------------------------------------------------------------
    // Checkpoints
    // ------------------------------------------------------------------

    /// Warm-started spectral gap alone (no components/expansion/stretch,
    /// no policy pass): snapshots the incremental CSR and re-runs the
    /// Lanczos estimate seeded with the previous Fiedler vector.
    pub fn spectral_gap(&mut self) -> GapEstimate {
        let view = self.csr.snapshot();
        self.spectral.estimate(&view)
    }

    /// Runs the expensive metrics off the incremental CSR (components,
    /// warm-started spectral gap, sweep-cut expansion, sampled stretch),
    /// evaluates the full policy, and returns the report.
    pub fn checkpoint(&mut self) -> HealthReport {
        let generation = self.csr.generation();
        hook::begin(
            &self.tracer,
            Layer::Monitor,
            "mon.checkpoint",
            generation,
            self.csr.node_count() as u64,
        );
        let alerts_before = self.alerts.len();
        let view = self.csr.snapshot();
        let components = component_count(&view);
        let gap = self.spectral.estimate(&view);
        let expansion = sweep_cut_csr(&view).map(|s| s.expansion);
        let sample = self.reservoir.sample(&view, self.csr.generation());
        let stretch = sampled_stretch(&view, &self.gprime, &sample);
        let snap = MetricsSnapshot {
            generation: self.csr.generation(),
            degree_increase: self.degree_increase.max(),
            spectral_gap: Some(gap.lambda),
            expansion,
            components: Some(components),
        };
        self.policy
            .evaluate(&snap, &mut self.breaches, &mut self.alerts);
        self.trace_health(alerts_before);
        hook::end(
            &self.tracer,
            Layer::Monitor,
            "mon.checkpoint",
            generation,
            components as u64,
        );
        HealthReport {
            generation: self.csr.generation(),
            nodes: self.csr.node_count(),
            edges: self.csr.edge_count(),
            max_degree: self.degrees.max(),
            max_black_degree: self.black_degrees.max(),
            mean_degree: self.degrees.mean(),
            degree_increase: self.degree_increase.max(),
            components,
            spectral_gap: gap,
            lambda3: gap.lambda3,
            expansion,
            stretch,
        }
    }

    // ------------------------------------------------------------------
    // The delta feed
    // ------------------------------------------------------------------

    fn absorb(&mut self, delta: &TopologyDelta) {
        let generation = self.csr.generation() + 1;
        match self.csr.apply(delta) {
            DeltaEffect::Noop => {}
            DeltaEffect::NodeAdded(v) => {
                self.degrees.transition(None, Some(0));
                self.black_degrees.transition(None, Some(0));
                self.gprime.add_node(v);
                self.degree_increase
                    .insert(v, 0, self.gprime.degree(v) as u32);
                self.reservoir.touch(v, generation);
            }
            DeltaEffect::NodeRemoved {
                node,
                degree,
                black_degree,
                neighbors,
            } => {
                self.degrees.transition(Some(degree), None);
                self.black_degrees.transition(Some(black_degree), None);
                self.degree_increase.remove(node);
                for (u, old_deg, was_black) in neighbors {
                    self.degrees.transition(Some(old_deg), Some(old_deg - 1));
                    if was_black {
                        let nb = self.csr.black_degree(u).expect("neighbor lives");
                        self.black_degrees.transition(Some(nb + 1), Some(nb));
                    }
                    self.degree_increase.adjust(u, -1, 0);
                    self.reservoir.touch(u, generation);
                }
            }
            DeltaEffect::EdgeCreated { a, b, black } => {
                // Black edges are adversarial insertion edges: they grow
                // `G'` (the healer only ever installs colored edges).
                let dbase = if black && self.gprime.add_edge(a, b) {
                    1
                } else {
                    0
                };
                for v in [a, b] {
                    let d = self.csr.degree(v).expect("endpoint lives");
                    self.degrees.transition(Some(d - 1), Some(d));
                    if black {
                        let nb = self.csr.black_degree(v).expect("endpoint lives");
                        self.black_degrees.transition(Some(nb - 1), Some(nb));
                    }
                    self.degree_increase.adjust(v, 1, dbase);
                    self.reservoir.touch(v, generation);
                }
            }
            DeltaEffect::EdgeRelabeled { a, b, became_black } => {
                if became_black {
                    let dbase = if self.gprime.add_edge(a, b) { 1 } else { 0 };
                    for v in [a, b] {
                        let nb = self.csr.black_degree(v).expect("endpoint lives");
                        self.black_degrees.transition(Some(nb - 1), Some(nb));
                        self.degree_increase.adjust(v, 0, dbase);
                    }
                }
            }
            DeltaEffect::EdgeDropped { a, b, was_black } => {
                for v in [a, b] {
                    let d = self.csr.degree(v).expect("endpoint lives");
                    self.degrees.transition(Some(d + 1), Some(d));
                    if was_black {
                        let nb = self.csr.black_degree(v).expect("endpoint lives");
                        self.black_degrees.transition(Some(nb + 1), Some(nb));
                    }
                    self.degree_increase.adjust(v, -1, 0);
                    self.reservoir.touch(v, generation);
                }
            }
            DeltaEffect::EdgeStripped { a, b, lost_black } => {
                if lost_black {
                    for v in [a, b] {
                        let nb = self.csr.black_degree(v).expect("endpoint lives");
                        self.black_degrees.transition(Some(nb + 1), Some(nb));
                    }
                }
            }
        }
    }

    /// The cheap policy pass: evaluates the maintained metrics (currently
    /// the degree increase) against the budgets, emitting edge-triggered
    /// alerts.
    ///
    /// Call this at **event boundaries** — [`MonitorHook`] does it after
    /// every applied event — never per delta: a repair plan strips edges
    /// before installing replacements, so mid-plan topologies transiently
    /// dip below (or spike above) budgets and would fire spurious
    /// recovery/breach alert pairs for states that never exist between
    /// events. ([`Monitor::checkpoint`] runs the full evaluation,
    /// expensive metrics included.)
    pub fn evaluate_policy(&mut self) {
        let alerts_before = self.alerts.len();
        let snap = MetricsSnapshot {
            generation: self.csr.generation(),
            degree_increase: self.degree_increase.max(),
            spectral_gap: None,
            expansion: None,
            components: None,
        };
        self.policy
            .evaluate(&snap, &mut self.breaches, &mut self.alerts);
        self.trace_health(alerts_before);
    }
}

impl TopologySink for Monitor {
    fn on_delta(&mut self, delta: &TopologyDelta) {
        self.absorb(delta);
    }

    /// The grouped feed: when an executor flushes a plan's mutations as
    /// one batch, the incremental CSR runs a single capacity pre-pass so
    /// every touched block relocates at most once per flush and the
    /// amortized compaction check fires once per batch — the metric
    /// trackers still see every delta in stream order, so maintained
    /// state is bit-identical to the per-delta feed.
    fn on_deltas(&mut self, deltas: &[TopologyDelta]) {
        self.csr.begin_batch(deltas);
        for delta in deltas {
            self.absorb(delta);
        }
        self.csr.end_batch();
    }
}

/// Adapter plugging a shared [`Monitor`] into
/// `xheal_workload::run_observed`: checkpoints every `checkpoint_every`
/// events (0 disables) and records drained alerts as per-event
/// [`HealthNote`]s in the `RunSummary`.
#[derive(Debug)]
pub struct MonitorHook {
    monitor: Rc<RefCell<Monitor>>,
    checkpoint_every: usize,
    notes: Vec<HealthNote>,
}

impl MonitorHook {
    /// Wraps a shared monitor handle (the same handle registered as the
    /// engine's sink).
    pub fn new(monitor: Rc<RefCell<Monitor>>, checkpoint_every: usize) -> Self {
        MonitorHook {
            monitor,
            checkpoint_every,
            notes: Vec::new(),
        }
    }
}

impl RunObserver for MonitorHook {
    fn on_event(&mut self, step: usize, _event: &Event, _outcome: &Outcome, graph: &Graph) {
        let mut monitor = self.monitor.borrow_mut();
        debug_assert_eq!(
            (monitor.node_count(), monitor.edge_count()),
            (graph.node_count(), graph.edge_count()),
            "monitor drifted from the engine graph"
        );
        if self.checkpoint_every != 0 && (step + 1) % self.checkpoint_every == 0 {
            let report = monitor.checkpoint();
            // Surface the spectral pair in the run record when λ₃ is
            // tracked; λ₂-only runs keep their historical note stream.
            if let Some(l3) = report.lambda3 {
                self.notes.push(HealthNote {
                    step,
                    severity: Severity::Info,
                    message: format!(
                        "checkpoint gen {}: lambda2={:.6}, lambda3={:.6}",
                        report.generation, report.spectral_gap.lambda, l3
                    ),
                });
            }
        } else {
            monitor.evaluate_policy();
        }
        for alert in monitor.drain_alerts() {
            self.notes.push(HealthNote {
                step,
                severity: alert.severity,
                message: alert.to_string(),
            });
        }
    }

    fn drain_notes(&mut self) -> Vec<HealthNote> {
        std::mem::take(&mut self.notes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use xheal_core::{Xheal, XhealConfig};
    use xheal_graph::{generators, NodeId};
    use xheal_metrics::degree_increase;
    use xheal_spectral::normalized_algebraic_connectivity;
    use xheal_workload::{run_observed, RandomChurn, Severity};

    fn n(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    /// Recomputes the degree histogram from scratch and compares.
    fn assert_histograms_match(m: &Monitor, g: &Graph) {
        let mut fresh = DegreeHistogram::new();
        let mut fresh_black = DegreeHistogram::new();
        for v in g.nodes() {
            fresh.transition(None, Some(g.degree(v).unwrap()));
            fresh_black.transition(None, Some(g.black_degree(v).unwrap()));
        }
        assert_eq!(m.degrees().buckets(), fresh.buckets(), "degree histogram");
        assert_eq!(
            m.black_degrees().buckets(),
            fresh_black.buckets(),
            "black-degree histogram"
        );
        assert_eq!(m.degrees().max(), fresh.max());
    }

    #[test]
    fn monitor_tracks_xheal_churn_exactly() {
        let mut rng = StdRng::seed_from_u64(5);
        let g0 = generators::connected_erdos_renyi(30, 0.12, &mut rng);
        let monitor = Rc::new(RefCell::new(Monitor::new(&g0, MonitorConfig::default())));
        let mut net = Xheal::builder()
            .kappa(4)
            .seed(9)
            .sink(Box::new(Rc::clone(&monitor)))
            .build(&g0);
        let mut gp = xheal_metrics::GPrime::new(&g0);
        let mut next = 500u64;
        for step in 0..60 {
            let nodes = net.graph().node_vec();
            if step % 3 == 0 {
                let nbrs = vec![nodes[step % nodes.len()]];
                net.heal_insert(n(next), &nbrs).unwrap();
                gp.record_insert(n(next), &nbrs).unwrap();
                next += 1;
            } else {
                let victim = nodes[(step * 7) % nodes.len()];
                net.heal_delete(victim).unwrap();
            }
            let m = monitor.borrow();
            assert_eq!(m.node_count(), net.graph().node_count(), "step {step}");
            assert_eq!(m.edge_count(), net.graph().edge_count(), "step {step}");
            assert_histograms_match(&m, net.graph());
            let expect = degree_increase(net.graph(), gp.graph());
            assert!(
                (m.degree_increase() - expect).abs() < 1e-12,
                "step {step}: maintained {} vs recomputed {expect}",
                m.degree_increase()
            );
        }
        let mut m = monitor.borrow_mut();
        let report = m.checkpoint();
        assert_eq!(report.components, 1);
        let exact = normalized_algebraic_connectivity(net.graph());
        assert!(
            (report.spectral_gap.lambda - exact).abs() < 1e-6,
            "warm gap {} vs fresh {exact}",
            report.spectral_gap.lambda
        );
        // Healed paths may even be *shorter* than G' (clouds add
        // shortcuts), but a connected graph never yields an infinite
        // stretch over comparable pairs.
        assert!(report.stretch.is_none_or(|s| s > 0.0 && s.is_finite()));
    }

    #[test]
    fn hook_records_alerts_into_run_summary() {
        let mut rng = StdRng::seed_from_u64(8);
        let g0 = generators::connected_erdos_renyi(24, 0.15, &mut rng);
        // An absurdly tight degree budget guarantees an alert under churn.
        let config = MonitorConfig {
            policy: HealthPolicy {
                max_degree_increase: Some(1.0),
                ..HealthPolicy::default()
            },
            ..MonitorConfig::default()
        };
        let monitor = Rc::new(RefCell::new(Monitor::new(&g0, config)));
        let mut net = Xheal::builder()
            .kappa(4)
            .seed(3)
            .sink(Box::new(Rc::clone(&monitor)))
            .build(&g0);
        let mut adv = RandomChurn::new(0.7, 2, 3, &g0);
        let mut hook = MonitorHook::new(Rc::clone(&monitor), 8);
        let summary = run_observed(&mut net, &mut adv, 40, 21, &mut hook);
        assert_eq!(summary.events.len(), 40);
        assert!(
            summary
                .health
                .iter()
                .any(|h| h.severity == Severity::Critical),
            "deg-increase budget of 1.0 must be breached; notes: {:?}",
            summary.health
        );
        assert_eq!(summary.worst_severity(), Some(Severity::Critical));
    }

    #[test]
    fn hook_notes_spectral_pair_at_checkpoints_when_lambda3_tracked() {
        let mut rng = StdRng::seed_from_u64(29);
        let g0 = generators::connected_erdos_renyi(20, 0.2, &mut rng);
        let config = MonitorConfig {
            track_lambda3: true,
            ..MonitorConfig::default()
        };
        let monitor = Rc::new(RefCell::new(Monitor::new(&g0, config)));
        let mut net = Xheal::builder()
            .kappa(4)
            .seed(7)
            .sink(Box::new(Rc::clone(&monitor)))
            .build(&g0);
        let mut adv = RandomChurn::new(0.4, 1, 2, &g0);
        let mut hook = MonitorHook::new(Rc::clone(&monitor), 5);
        let summary = run_observed(&mut net, &mut adv, 20, 77, &mut hook);
        let spectral_notes: Vec<_> = summary
            .health
            .iter()
            .filter(|h| h.severity == Severity::Info && h.message.contains("lambda3="))
            .collect();
        assert_eq!(
            spectral_notes.len(),
            4,
            "one Info note per checkpoint: {:?}",
            summary.health
        );
        assert!(spectral_notes[0].message.contains("lambda2="));
    }

    #[test]
    fn grouped_feed_matches_per_delta_feed() {
        // The same engine run observed twice: one monitor fed through the
        // grouped `on_deltas` path (what batched plan flushes emit), one
        // forced through single `on_delta` calls. All maintained state
        // must be bit-identical.
        let mut rng = StdRng::seed_from_u64(31);
        let g0 = generators::connected_erdos_renyi(26, 0.14, &mut rng);
        let grouped = Rc::new(RefCell::new(Monitor::new(&g0, MonitorConfig::default())));
        let single = Rc::new(RefCell::new(Monitor::new(&g0, MonitorConfig::default())));

        /// Re-splits every batch into per-delta calls before forwarding.
        #[derive(Debug)]
        struct Unbatcher(Rc<RefCell<Monitor>>);
        impl TopologySink for Unbatcher {
            fn on_delta(&mut self, delta: &TopologyDelta) {
                self.0.borrow_mut().on_delta(delta);
            }
            fn on_deltas(&mut self, deltas: &[TopologyDelta]) {
                for d in deltas {
                    self.0.borrow_mut().on_delta(d);
                }
            }
        }

        let mut net = Xheal::builder()
            .kappa(4)
            .seed(13)
            .sink(Box::new(Rc::clone(&grouped)))
            .sink(Box::new(Unbatcher(Rc::clone(&single))))
            .build(&g0);
        for step in 0..25 {
            let nodes = net.graph().node_vec();
            net.heal_delete(nodes[(step * 5) % nodes.len()]).unwrap();
        }
        let (g, s) = (grouped.borrow(), single.borrow());
        assert_eq!(g.generation(), s.generation());
        assert_eq!(g.node_count(), s.node_count());
        assert_eq!(g.edge_count(), s.edge_count());
        assert_eq!(g.degrees().buckets(), s.degrees().buckets());
        assert_eq!(g.black_degrees().buckets(), s.black_degrees().buckets());
        assert!((g.degree_increase() - s.degree_increase()).abs() < 1e-12);
        let (gv, sv) = (g.csr().snapshot(), s.csr().snapshot());
        assert_eq!(gv.nodes(), sv.nodes());
        assert_eq!(gv.offsets(), sv.offsets());
        assert_eq!(gv.neighbors_flat(), sv.neighbors_flat());
        assert_histograms_match(&g, net.graph());
    }

    #[test]
    fn mid_run_subscription_tracks_from_there() {
        let g0 = generators::star(14);
        let mut net = Xheal::new(&g0, XhealConfig::new(4).with_seed(2));
        net.heal_delete(n(0)).unwrap();
        // Subscribe against the *current* graph, mid-run.
        let monitor = Rc::new(RefCell::new(Monitor::new(
            net.graph(),
            MonitorConfig::default(),
        )));
        net.subscribe(Box::new(Rc::clone(&monitor)));
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..10 {
            let nodes = net.graph().node_vec();
            net.heal_delete(nodes[rng.random_range(0..nodes.len())])
                .unwrap();
        }
        let m = monitor.borrow();
        assert_eq!(m.node_count(), net.graph().node_count());
        assert_eq!(m.edge_count(), net.graph().edge_count());
        assert_histograms_match(&m, net.graph());
    }
}
