//! A reusable scoped worker pool over `std::thread` + channels.
//!
//! The offline build has no rayon/tokio, and spawning OS threads per healing
//! batch would dwarf the per-component work it parallelizes. [`WorkerPool`]
//! keeps a fixed set of workers alive for the life of the engine and hands
//! out [`Scope`]s: short-lived fan-out regions whose jobs may borrow from the
//! caller's stack (like `std::thread::scope`, but without thread spawn/join
//! on every batch).
//!
//! Guarantees:
//!
//! - [`WorkerPool::scope`] does not return until every job spawned in it has
//!   finished, so borrowed data stays valid for exactly the scope's lifetime.
//! - A panicking job poisons only its scope: the first panic payload is
//!   captured and re-thrown from `scope()` on the caller's thread after the
//!   remaining jobs drain. The pool itself stays usable.
//! - Job execution order is unspecified; callers that need deterministic
//!   merges tag results (e.g. with an index) and sort after the barrier.
//!
//! Nested scopes (calling [`WorkerPool::scope`] from inside a job) are not
//! supported and can deadlock; fan out from one coordinating thread only.

#![warn(missing_docs)]

use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A job after lifetime erasure; only ever run inside the owning scope.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct Injector {
    queue: Mutex<(VecDeque<Job>, bool)>,
    available: Condvar,
}

struct ScopeState {
    /// Jobs spawned but not yet finished, with the barrier condvar.
    pending: Mutex<usize>,
    done: Condvar,
    /// First panic payload raised by a job of this scope.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

/// A fixed-size, reusable worker pool. See the crate docs for the contract.
pub struct WorkerPool {
    injector: Arc<Injector>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool of `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let injector = Arc::new(Injector {
            queue: Mutex::new((VecDeque::new(), false)),
            available: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|_| {
                let injector = Arc::clone(&injector);
                std::thread::spawn(move || loop {
                    let job = {
                        let mut guard = injector.queue.lock().expect("pool queue poisoned");
                        loop {
                            if let Some(job) = guard.0.pop_front() {
                                break job;
                            }
                            if guard.1 {
                                return;
                            }
                            guard = injector.available.wait(guard).expect("pool queue poisoned");
                        }
                    };
                    // Jobs are pre-wrapped: they catch their own panics and
                    // do their scope's completion bookkeeping.
                    job();
                })
            })
            .collect();
        WorkerPool {
            injector,
            workers,
            threads,
        }
    }

    /// A pool sized to the host's available parallelism.
    pub fn with_default_threads() -> Self {
        WorkerPool::new(default_threads())
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` with a [`Scope`] whose jobs may borrow anything outliving
    /// `'env`, blocking until all spawned jobs complete. If any job panicked,
    /// the first captured payload is re-thrown here (after the barrier, so
    /// borrowed data is never observed by a live worker past this call).
    pub fn scope<'env, R>(&self, f: impl FnOnce(&Scope<'_, 'env>) -> R) -> R {
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState {
                pending: Mutex::new(0),
                done: Condvar::new(),
                panic: Mutex::new(None),
            }),
            _env: PhantomData,
        };
        // Run the scope body, always waiting out spawned jobs before
        // returning or unwinding — a job holding borrows into the caller's
        // stack must never outlive this frame.
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        scope.wait();
        let job_panic = scope
            .state
            .panic
            .lock()
            .expect("scope panic slot poisoned")
            .take();
        match result {
            Err(payload) => resume_unwind(payload),
            Ok(value) => {
                if let Some(payload) = job_panic {
                    resume_unwind(payload);
                }
                value
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut guard = self.injector.queue.lock().expect("pool queue poisoned");
            guard.1 = true;
        }
        self.injector.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A fan-out region tied to a [`WorkerPool`]; created by [`WorkerPool::scope`].
pub struct Scope<'pool, 'env> {
    pool: &'pool WorkerPool,
    state: Arc<ScopeState>,
    /// Invariant over `'env`, like `std::thread::Scope`.
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'_, 'env> {
    /// Queues `job` on the pool. The job may borrow anything that outlives
    /// `'env`; the enclosing [`WorkerPool::scope`] call joins it.
    pub fn spawn<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'env,
    {
        {
            let mut pending = self.state.pending.lock().expect("scope barrier poisoned");
            *pending += 1;
        }
        let state = Arc::clone(&self.state);
        let wrapped: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
                let mut slot = state.panic.lock().expect("scope panic slot poisoned");
                slot.get_or_insert(payload);
            }
            let mut pending = state.pending.lock().expect("scope barrier poisoned");
            *pending -= 1;
            if *pending == 0 {
                state.done.notify_all();
            }
        });
        // SAFETY: only the lifetime is erased; the fat-pointer layout of
        // `Box<dyn FnOnce + Send>` is identical for `'env` and `'static`.
        // `WorkerPool::scope` blocks (even on unwind) until `pending` hits
        // zero, so the job — and every `'env` borrow it captures — is gone
        // before the scope frame is.
        let wrapped: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(
                wrapped,
            )
        };
        {
            let mut guard = self
                .pool
                .injector
                .queue
                .lock()
                .expect("pool queue poisoned");
            guard.0.push_back(wrapped);
        }
        self.pool.injector.available.notify_one();
    }

    /// Blocks until every job spawned in this scope has finished.
    fn wait(&self) {
        let mut pending = self.state.pending.lock().expect("scope barrier poisoned");
        while *pending > 0 {
            pending = self
                .state
                .done
                .wait(pending)
                .expect("scope barrier poisoned");
        }
    }
}

/// The host's available parallelism (1 if it cannot be determined).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn scope_runs_all_jobs_and_joins() {
        let pool = WorkerPool::new(4);
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..100 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn jobs_may_borrow_caller_stack() {
        let pool = WorkerPool::new(2);
        let inputs: Vec<u64> = (0..64).collect();
        let (tx, rx) = mpsc::channel();
        pool.scope(|s| {
            for (i, x) in inputs.iter().enumerate() {
                let tx = tx.clone();
                s.spawn(move || {
                    tx.send((i, x * 2)).unwrap();
                });
            }
        });
        drop(tx);
        let mut out: Vec<(usize, u64)> = rx.iter().collect();
        out.sort_unstable();
        let expect: Vec<(usize, u64)> =
            inputs.iter().enumerate().map(|(i, x)| (i, x * 2)).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn job_panic_propagates_to_scope_caller() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("poisoned worker"));
                for _ in 0..8 {
                    s.spawn(|| {});
                }
            });
        }));
        let payload = result.expect_err("job panic must reach the scope caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert_eq!(msg, "poisoned worker");
    }

    #[test]
    fn pool_survives_a_poisoned_scope() {
        let pool = WorkerPool::new(2);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| s.spawn(|| panic!("first scope dies")));
        }));
        // The same pool must still run later scopes to completion.
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..16 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        let mut hit = false;
        pool.scope(|s| s.spawn(|| {}));
        pool.scope(|_| hit = true);
        assert!(hit);
    }
}
