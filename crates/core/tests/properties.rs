//! Property tests: the paper's structural guarantees hold on random
//! adversarial schedules.

use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use xheal_core::{invariants, Xheal, XhealConfig};
use xheal_graph::{components, generators, Graph, NodeId};

/// Replays a random insert/delete schedule, checking invariants and
/// connectivity after every step; returns the healer and the insertion-only
/// graph G'.
fn run_schedule(
    start_n: usize,
    steps: usize,
    p_insert: f64,
    kappa: usize,
    seed: u64,
) -> (Xheal, Graph) {
    let mut rng = StdRng::seed_from_u64(seed);
    let g0 = generators::connected_erdos_renyi(start_n, 0.12, &mut rng);
    let mut gprime = g0.clone();
    let mut x = Xheal::new(&g0, XhealConfig::new(kappa).with_seed(seed ^ 0xABCD));
    let mut next_id = start_n as u64;

    for step in 0..steps {
        let nodes = x.graph().node_vec();
        if rng.random::<f64>() < p_insert || nodes.len() <= 3 {
            let count = rng.random_range(1..=3usize.min(nodes.len().max(1)));
            let mut nbrs: Vec<NodeId> = Vec::new();
            for _ in 0..count {
                let u = nodes[rng.random_range(0..nodes.len())];
                if !nbrs.contains(&u) {
                    nbrs.push(u);
                }
            }
            let v = NodeId::new(next_id);
            next_id += 1;
            x.heal_insert(v, &nbrs).unwrap();
            gprime.add_node(v).unwrap();
            for &u in &nbrs {
                let _ = gprime.add_black_edge(v, u);
            }
        } else {
            let victim = nodes[rng.random_range(0..nodes.len())];
            x.heal_delete(victim).unwrap();
        }
        invariants::check_invariants(&x).unwrap_or_else(|e| panic!("step {step}: {e}"));
        assert!(
            components::is_connected(x.graph()),
            "step {step}: healed graph disconnected"
        );
    }
    (x, gprime)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn invariants_and_connectivity_hold(
        seed in any::<u64>(),
        start_n in 8usize..28,
        steps in 10usize..50,
        p_insert in 0.1f64..0.6,
        kappa in prop::sample::select(vec![4usize, 6]),
    ) {
        let _ = run_schedule(start_n, steps, p_insert, kappa, seed);
    }

    #[test]
    fn degree_bound_theorem_2_1(
        seed in any::<u64>(),
        start_n in 10usize..24,
        steps in 10usize..40,
    ) {
        // Theorem 2(1) / Lemma 3: deg_G(x) <= kappa * deg_G'(x) + 2*kappa.
        // Our label-set strengthening can add one extra kappa of slack per
        // shared node; we assert the paper's envelope with that slack.
        let kappa = 4usize;
        let (x, gprime) = run_schedule(start_n, steps, 0.3, kappa, seed);
        for v in x.graph().nodes() {
            let d = x.graph().degree(v).unwrap() as f64;
            let dprime = gprime.degree(v).unwrap_or(0) as f64;
            let bound = kappa as f64 * dprime + 3.0 * kappa as f64;
            prop_assert!(
                d <= bound,
                "node {v}: degree {d} exceeds kappa*d' + 3kappa = {bound} (d'={dprime})"
            );
        }
    }

    #[test]
    fn deleted_nodes_leave_no_trace(
        seed in any::<u64>(),
        start_n in 8usize..20,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g0 = generators::connected_erdos_renyi(start_n, 0.15, &mut rng);
        let mut x = Xheal::new(&g0, XhealConfig::new(4).with_seed(seed));
        // Delete half the nodes.
        for _ in 0..start_n / 2 {
            let nodes = x.graph().node_vec();
            let victim = nodes[rng.random_range(0..nodes.len())];
            x.heal_delete(victim).unwrap();
            prop_assert!(!x.graph().contains_node(victim));
            prop_assert!(x.node_state(victim).is_none());
            // No cloud contains the victim.
            for (c, _) in x.cloud_colors() {
                prop_assert!(!x.cloud(c).unwrap().members().contains(&victim));
            }
        }
    }
}

#[test]
fn long_delete_only_run_shrinks_to_triangle() {
    // Delete everything down to 3 nodes; connectivity must never break.
    let mut rng = StdRng::seed_from_u64(77);
    let g0 = generators::connected_erdos_renyi(60, 0.07, &mut rng);
    let mut x = Xheal::new(&g0, XhealConfig::new(6).with_seed(99));
    while x.graph().node_count() > 3 {
        let nodes = x.graph().node_vec();
        let victim = nodes[rng.random_range(0..nodes.len())];
        x.heal_delete(victim).unwrap();
        assert!(components::is_connected(x.graph()));
    }
    invariants::check_invariants(&x).unwrap();
}

#[test]
fn ablation_disable_secondary_still_connected() {
    let mut rng = StdRng::seed_from_u64(5);
    let g0 = generators::connected_erdos_renyi(30, 0.1, &mut rng);
    let mut x = Xheal::new(
        &g0,
        XhealConfig::new(4).with_seed(3).without_secondary_clouds(),
    );
    for _ in 0..20 {
        let nodes = x.graph().node_vec();
        let victim = nodes[rng.random_range(0..nodes.len())];
        x.heal_delete(victim).unwrap();
        assert!(components::is_connected(x.graph()));
        invariants::check_invariants(&x).unwrap();
    }
    // With secondaries disabled, every multi-cloud repair combines.
    assert_eq!(x.stats().secondaries_built, 0);
}

#[test]
fn ablation_disable_sharing_still_connected() {
    let mut rng = StdRng::seed_from_u64(6);
    let g0 = generators::connected_erdos_renyi(30, 0.1, &mut rng);
    let mut x = Xheal::new(&g0, XhealConfig::new(4).with_seed(4).without_sharing());
    for _ in 0..20 {
        let nodes = x.graph().node_vec();
        let victim = nodes[rng.random_range(0..nodes.len())];
        x.heal_delete(victim).unwrap();
        assert!(components::is_connected(x.graph()));
        invariants::check_invariants(&x).unwrap();
    }
    assert_eq!(x.stats().shares, 0);
}
