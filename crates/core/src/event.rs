//! Adversarial events of the insert/delete/repair model.
//!
//! The event vocabulary lives in `xheal-core` so every executor — the
//! centralized [`crate::Xheal`], the distributed `xheal-dist`, and the
//! `xheal-baselines` strategies — consumes the same adversary moves through
//! [`crate::HealingEngine::apply`]. `xheal-workload` re-exports [`Event`]
//! and generates schedules of them.

use xheal_graph::NodeId;

/// One adversary move: insert a node with chosen connections, delete one
/// node, or delete a whole set of nodes *simultaneously* (the multi-deletion
/// extension — healed by one batch repair, not node-by-node).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// Insert `node` with black edges to `neighbors`.
    Insert {
        /// The fresh node id.
        node: NodeId,
        /// Existing nodes it connects to (the adversary picks any subset).
        neighbors: Vec<NodeId>,
    },
    /// Delete `node` and all its edges.
    Delete {
        /// The victim.
        node: NodeId,
    },
    /// Delete every node in `nodes` at once (a burst: all victims are gone
    /// before any repair runs).
    DeleteBatch {
        /// The victims, distinct, in batch order.
        nodes: Vec<NodeId>,
    },
}

impl Event {
    /// The node this event concerns — for batches, the first victim.
    pub fn node(&self) -> NodeId {
        match self {
            Event::Insert { node, .. } | Event::Delete { node } => *node,
            Event::DeleteBatch { nodes } => *nodes.first().expect("non-empty batch"),
        }
    }

    /// Every node this event deletes (empty for insertions).
    pub fn victims(&self) -> &[NodeId] {
        match self {
            Event::Insert { .. } => &[],
            Event::Delete { node } => std::slice::from_ref(node),
            Event::DeleteBatch { nodes } => nodes,
        }
    }

    /// Is this a deletion (single or batch)?
    pub fn is_delete(&self) -> bool {
        matches!(self, Event::Delete { .. } | Event::DeleteBatch { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let e = Event::Delete {
            node: NodeId::new(4),
        };
        assert!(e.is_delete());
        assert_eq!(e.node(), NodeId::new(4));
        assert_eq!(e.victims(), &[NodeId::new(4)]);
        let i = Event::Insert {
            node: NodeId::new(5),
            neighbors: vec![],
        };
        assert!(!i.is_delete());
        assert_eq!(i.node(), NodeId::new(5));
        assert!(i.victims().is_empty());
        let b = Event::DeleteBatch {
            nodes: vec![NodeId::new(7), NodeId::new(8)],
        };
        assert!(b.is_delete());
        assert_eq!(b.node(), NodeId::new(7));
        assert_eq!(b.victims().len(), 2);
    }
}
