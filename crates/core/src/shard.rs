//! Store-generic repair logic and the copy-on-write component shard.
//!
//! The healing cases (Algorithms 3.2–3.6) are written once here, generic
//! over a [`PlanStore`] — the mutable planner state they read and write.
//! Two stores implement it:
//!
//! - [`crate::RepairPlanner`] itself (the *direct* store): zero-overhead
//!   pass-through used by single deletions and sequential batch healing;
//! - [`CompShard`]: a copy-on-write overlay over a frozen `&RepairPlanner`
//!   used by component-parallel batch healing. Every access to
//!   *pre-existing* state (colors allocated before the shard's own
//!   namespace, any node) is recorded in a footprint; shards whose
//!   footprints are disjoint from everything committed before them are
//!   guaranteed to have made exactly the decisions the sequential planner
//!   would have made, so their recorded actions commit verbatim. Overlapping
//!   shards are replayed against the committed state instead.
//!
//! Determinism across stores (and thread counts) comes from two batch-scoped
//! conventions, used identically by the sequential and parallel paths:
//!
//! - **Derived randomness**: one master draw per batch seeds a
//!   [`derive_seed`]-split RNG per detached cloud (phase 1) and per dead
//!   component (phase 2), so no repair consumes another repair's stream.
//! - **Color namespaces**: each component `i` allocates colors from a
//!   reserved window `[base_i, base_i + bound_i)` computed by prefix sums of
//!   a per-component upper bound, so fresh colors never depend on what other
//!   components allocated.

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::StdRng;
use rand::SeedableRng;

use xheal_expander::{EdgeDelta, MaintainedExpander};
use xheal_graph::{CloudColor, CloudKind, FxHashMap, NodeId};

use crate::cloud::{Cloud, NodeState};
use crate::config::XhealConfig;
use crate::plan::PlanAction;
use crate::planner::{match_representatives, RepairPlanner};

/// An empty free set, lent out for dead clouds.
pub(crate) static EMPTY_FREE: BTreeSet<NodeId> = BTreeSet::new();

/// Domain tag for phase-1 (per-cloud detach) RNG streams.
pub(crate) const SEED_DETACH: u64 = 0xD37A_C41B;
/// Domain tag for phase-2 (per-component healing) RNG streams.
pub(crate) const SEED_COMPONENT: u64 = 0xC0_3417;

/// Splits one master batch seed into independent per-task seeds
/// (splitmix64-style finalizer — tag and key are mixed in with distinct odd
/// multipliers so `(tag, key)` pairs never collide in practice).
pub(crate) fn derive_seed(batch_seed: u64, tag: u64, key: u64) -> u64 {
    let mut z = batch_seed
        ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ key.wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The mutable planner state the healing cases run against.
///
/// Read methods take `&mut self` because the overlay store records every
/// access (including negative lookups) in its conflict footprint. Combined
/// operations ([`PlanStore::build_expander`], [`PlanStore::expander_insert`])
/// exist because the expander mutators need the store's RNG and a cloud
/// simultaneously — a borrow split a trait cannot express with accessors.
pub(crate) trait PlanStore {
    /// The configuration in force.
    fn config(&self) -> &XhealConfig;
    /// Is this cloud live?
    fn contains_cloud(&mut self, c: CloudColor) -> bool;
    /// Read access to a cloud.
    fn cloud_ref(&mut self, c: CloudColor) -> Option<&Cloud>;
    /// Write access to a cloud.
    fn cloud_mut(&mut self, c: CloudColor) -> Option<&mut Cloud>;
    /// Registers a new cloud under `c`.
    fn insert_cloud(&mut self, c: CloudColor, cloud: Cloud);
    /// Unregisters a cloud, returning it.
    fn remove_cloud(&mut self, c: CloudColor) -> Option<Cloud>;
    /// Read access to a node's membership state.
    fn node_ref(&mut self, v: NodeId) -> Option<&NodeState>;
    /// Write access to a node's membership state.
    fn node_mut(&mut self, v: NodeId) -> Option<&mut NodeState>;
    /// Records one more bridge of secondary `f` targeting primary `p` (I8).
    fn attach_inc(&mut self, p: CloudColor, f: CloudColor);
    /// Removes one bridge of secondary `f` targeting primary `p` (I8).
    fn attach_dec(&mut self, p: CloudColor, f: CloudColor);
    /// Collects the secondaries with a bridge into `p` (live or not).
    fn attached_secondaries_into(&mut self, p: CloudColor, out: &mut BTreeSet<CloudColor>);
    /// Allocates the next color of this store's namespace.
    fn fresh_color(&mut self) -> CloudColor;
    /// Builds a κ-regular expander over `members` with this store's RNG.
    fn build_expander(&mut self, members: &[NodeId])
        -> (MaintainedExpander, Vec<(NodeId, NodeId)>);
    /// Inserts `v` into the expander of live cloud `c` with this store's RNG.
    fn expander_insert(&mut self, c: CloudColor, v: NodeId) -> EdgeDelta;
    /// Declares upcoming [`PlanStore::free_set`] reads (footprint + overlay
    /// priming), so the matching step can hold several sets at once.
    fn prepare_free_reads(&mut self, colors: &[CloudColor]);
    /// The maintained free set of `c` (empty for dead clouds). Only valid
    /// for colors declared via [`PlanStore::prepare_free_reads`].
    fn free_set(&self, c: CloudColor) -> &BTreeSet<NodeId>;
    /// Records a plan action (and its edge-count contributions).
    fn emit(&mut self, action: PlanAction);
    /// Counts one sharing operation.
    fn note_share(&mut self);
    /// Counts one combine operation.
    fn note_combine(&mut self);
    /// Counts one secondary cloud built.
    fn note_secondary_built(&mut self);
}

// ---------------------------------------------------------------------------
// The healing cases, store-generic (ported verbatim from the planner; see
// planner.rs for the paper mapping).
// ---------------------------------------------------------------------------

/// The smallest free node of a cloud — O(log n) off the maintained set.
pub(crate) fn first_free_node_of<S: PlanStore>(store: &mut S, c: CloudColor) -> Option<NodeId> {
    store.prepare_free_reads(std::slice::from_ref(&c));
    store.free_set(c).first().copied()
}

/// Creates a primary cloud over `members` and registers memberships.
pub(crate) fn create_primary_cloud<S: PlanStore>(store: &mut S, members: &[NodeId]) -> CloudColor {
    let color = store.fresh_color();
    create_cloud_with_color(store, color, CloudKind::Primary, members);
    color
}

/// Creates a cloud under a pre-allocated color and registers memberships.
pub(crate) fn create_cloud_with_color<S: PlanStore>(
    store: &mut S,
    color: CloudColor,
    kind: CloudKind,
    members: &[NodeId],
) {
    let (expander, edges) = store.build_expander(members);
    let delta = EdgeDelta {
        added: edges,
        removed: Vec::new(),
    };
    store.insert_cloud(color, Cloud::new(kind, expander));
    store.emit(PlanAction::BuildCloud {
        color,
        kind,
        members: members.to_vec(),
        delta,
    });
    if kind == CloudKind::Primary {
        let mut free: Vec<NodeId> = Vec::with_capacity(members.len());
        for &m in members {
            let st = store.node_mut(m).expect("members are live");
            st.primaries.insert(color);
            if st.is_free() {
                free.push(m);
            }
        }
        store
            .cloud_mut(color)
            .expect("just created")
            .free_members_mut()
            .extend(free);
    }
}

/// Re-files `v` in the free-member sets of all of its primary clouds after
/// its secondary duty changed.
pub(crate) fn set_free_status<S: PlanStore>(store: &mut S, v: NodeId, free: bool) {
    let primaries: Vec<CloudColor> = match store.node_ref(v) {
        Some(st) => st.primaries.iter().copied().collect(),
        None => return,
    };
    for c in primaries {
        if let Some(cloud) = store.cloud_mut(c) {
            if free {
                cloud.free_members_mut().insert(v);
            } else {
                cloud.free_members_mut().remove(&v);
            }
        }
    }
}

/// Adds a live node to a primary cloud (the sharing operation).
pub(crate) fn insert_into_cloud<S: PlanStore>(store: &mut S, color: CloudColor, v: NodeId) {
    {
        let cloud = store.cloud_ref(color).expect("cloud alive");
        debug_assert_eq!(
            cloud.kind(),
            CloudKind::Primary,
            "sharing targets primaries"
        );
        if cloud.expander().contains(v) {
            return;
        }
    }
    let delta = store.expander_insert(color, v);
    store.emit(PlanAction::ExtendCloud {
        color,
        node: v,
        shared: true,
        delta,
    });
    let is_free = {
        let st = store.node_mut(v).expect("live node");
        st.primaries.insert(color);
        st.is_free()
    };
    if is_free {
        store
            .cloud_mut(color)
            .expect("cloud alive")
            .free_members_mut()
            .insert(v);
    }
}

/// Inserts `z` into secondary `f` as the bridge for primary `ci`.
pub(crate) fn insert_bridge<S: PlanStore>(store: &mut S, f: CloudColor, z: NodeId, ci: CloudColor) {
    let delta = store.expander_insert(f, z);
    store.emit(PlanAction::ExtendCloud {
        color: f,
        node: z,
        shared: false,
        delta,
    });
    let replaced = store
        .cloud_mut(f)
        .expect("secondary alive")
        .attachments_mut()
        .insert(z, ci);
    debug_assert!(replaced.is_none(), "bridge {z} already attached in {f}");
    store.attach_inc(ci, f);
    store.node_mut(z).expect("live node").secondary = Some(f);
    set_free_status(store, z, false);
}

/// Deletes a cloud entirely: strips its edges and clears memberships.
pub(crate) fn delete_cloud<S: PlanStore>(store: &mut S, color: CloudColor) {
    let Some(cloud) = store.remove_cloud(color) else {
        return;
    };
    if cloud.kind() == CloudKind::Secondary {
        for &p in cloud.attachments().values() {
            store.attach_dec(p, color);
        }
    }
    let edges: Vec<(NodeId, NodeId)> = cloud.expander().edges().to_vec();
    store.emit(PlanAction::DissolveCloud {
        color,
        delta: EdgeDelta {
            added: Vec::new(),
            removed: edges,
        },
    });
    for &m in cloud.members() {
        let mut freed = false;
        if let Some(st) = store.node_mut(m) {
            match cloud.kind() {
                CloudKind::Primary => {
                    st.primaries.remove(&color);
                }
                CloudKind::Secondary => {
                    if st.secondary == Some(color) {
                        st.secondary = None;
                        freed = true;
                    }
                }
            }
        }
        if freed {
            set_free_status(store, m, true);
        }
    }
}

/// FixSecondary (Algorithm 3.5): replace the deleted bridge of `ci` in `f`
/// with a fresh free node, borrowing or combining as needed. Returns the
/// cloud that anchors the `F`-side component (for the connectivity fix), or
/// `None` if that side dissolved entirely.
pub(crate) fn fix_secondary<S: PlanStore>(
    store: &mut S,
    f: CloudColor,
    ci_alive: Option<CloudColor>,
) -> Option<CloudColor> {
    let f_primaries: BTreeSet<CloudColor> = {
        let cloud = store.cloud_ref(f).expect("caller checked f alive");
        let mut p: BTreeSet<CloudColor> = cloud.attachments().values().copied().collect();
        if let Some(ci) = ci_alive {
            p.insert(ci);
        }
        p
    };

    if let Some(ci) = ci_alive {
        // Prefer a free node of ci itself.
        let mut pick: Option<(NodeId, bool)> = first_free_node_of(store, ci).map(|z| (z, false));
        if pick.is_none() && !store.config().disable_sharing {
            // Borrow from the other primaries of F (PickFreeNode's "ask
            // neighbor clouds").
            for &c in f_primaries.iter().filter(|&&c| c != ci) {
                if let Some(z) = first_free_node_of(store, c) {
                    pick = Some((z, true));
                    break;
                }
            }
        }
        match pick {
            Some((z, shared)) => {
                if shared {
                    // Sharing adds z to ci itself.
                    insert_into_cloud(store, ci, z);
                    store.note_share();
                }
                insert_bridge(store, f, z, ci);
            }
            None => {
                // No free node anywhere among F's primaries: combine them
                // all into one primary cloud (F dissolves inside).
                return combine(store, &f_primaries);
            }
        }
    }

    // Vacuous secondary check: a secondary with <= 1 member connects
    // nothing; dissolve it and report the survivor's primary as anchor.
    let len = store.cloud_ref(f).map(Cloud::len).unwrap_or(0);
    if len <= 1 {
        let survivor_primary = store
            .cloud_ref(f)
            .and_then(|cl| cl.attachments().values().next().copied());
        delete_cloud(store, f);
        return match survivor_primary {
            Some(c) if store.contains_cloud(c) => Some(c),
            _ => None,
        };
    }
    if let Some(c) = ci_alive {
        return Some(c);
    }
    let cand = store
        .cloud_ref(f)
        .and_then(|cl| cl.attachments().values().next().copied());
    match cand {
        Some(c) if store.contains_cloud(c) => Some(c),
        _ => None,
    }
}

/// MakeSecondary (Algorithm 3.4): connect one free node per cloud of `group`
/// into a fresh secondary cloud; combine if there are fewer free nodes than
/// clouds.
pub(crate) fn make_secondary_among<S: PlanStore>(
    store: &mut S,
    group: &[CloudColor],
) -> Option<CloudColor> {
    // Deduplicate and keep only live, non-empty clouds.
    let group: Vec<CloudColor> = {
        let mut seen = BTreeSet::new();
        let mut out = Vec::with_capacity(group.len());
        for &c in group {
            if store.cloud_ref(c).is_some_and(|cl| !cl.is_empty()) && seen.insert(c) {
                out.push(c);
            }
        }
        out
    };
    if group.len() <= 1 {
        return None;
    }
    if store.config().disable_secondary {
        combine(store, &group.iter().copied().collect());
        return None;
    }

    // Distinct representatives: maximum bipartite matching preferring each
    // cloud's own members (over the incrementally maintained free sets — no
    // membership scans), then sharing for any cloud left over.
    store.prepare_free_reads(&group);
    let mut reps = {
        let adjacency: Vec<&BTreeSet<NodeId>> = group.iter().map(|&c| store.free_set(c)).collect();
        match_representatives(&adjacency)
    };
    let deficit = reps.iter().any(Option::is_none);
    let mut union_free: Vec<NodeId> = Vec::new();
    if deficit {
        // Materialize the free-node union (ascending) only when some cloud
        // went unmatched — the slow path.
        let u: BTreeSet<NodeId> = group
            .iter()
            .flat_map(|&c| store.free_set(c).iter().copied())
            .collect();
        if u.len() < group.len() || store.config().disable_sharing {
            // Fewer free nodes than clouds (or sharing disabled): combine.
            combine(store, &group.iter().copied().collect());
            return None;
        }
        union_free = u.into_iter().collect();
    }
    let mut used: BTreeSet<NodeId> = reps.iter().flatten().copied().collect();
    for (i, rep) in reps.iter_mut().enumerate() {
        if rep.is_none() {
            let z = union_free
                .iter()
                .copied()
                .find(|z| !used.contains(z))
                .expect("union_free.len() >= group.len() guarantees a spare");
            used.insert(z);
            // Sharing: the borrowed node joins the deficient cloud.
            insert_into_cloud(store, group[i], z);
            store.note_share();
            *rep = Some(z);
        }
    }

    let members: Vec<NodeId> = reps.iter().map(|r| r.expect("filled")).collect();
    let f = store.fresh_color();
    create_cloud_with_color(store, f, CloudKind::Secondary, &members);
    for (i, &rep) in members.iter().enumerate() {
        store
            .cloud_mut(f)
            .expect("just created")
            .attachments_mut()
            .insert(rep, group[i]);
        store.attach_inc(group[i], f);
        store.node_mut(rep).expect("members are live").secondary = Some(f);
        set_free_status(store, rep, false);
    }
    store.note_secondary_built();
    Some(f)
}

/// Combines a set of primary clouds into one primary cloud (the paper's
/// expensive amortized operation).
///
/// Two regimes, gated purely on live member counts (deterministic, so every
/// store picks the same one):
///
/// - **Splice** (`|members outside the largest cloud| <= |largest cloud|`):
///   keep the largest input cloud, dissolve the others, and absorb their
///   surviving members one expander-insert at a time. Mutation volume is
///   proportional to the *smaller* side instead of dissolve-all + rebuild-all.
/// - **Rebuild** (the old path, kept for absorptions that would dominate the
///   target): dissolve everything and build a fresh cloud over the union.
///
/// Either way, secondary clouds all of whose attached primaries lie inside
/// the set are dissolved (their bridges become free again); secondaries that
/// also connect outside clouds have their attachments re-pointed at the
/// surviving cloud.
pub(crate) fn combine<S: PlanStore>(
    store: &mut S,
    colors: &BTreeSet<CloudColor>,
) -> Option<CloudColor> {
    store.note_combine();
    let mut live: Vec<(CloudColor, usize)> = Vec::new();
    let mut all_nodes: BTreeSet<NodeId> = BTreeSet::new();
    for &c in colors {
        if let Some(cl) = store.cloud_ref(c) {
            debug_assert_eq!(cl.kind(), CloudKind::Primary, "combine targets primaries");
            live.push((c, cl.len()));
            all_nodes.extend(cl.members().iter().copied());
        }
    }
    if all_nodes.is_empty() {
        return None;
    }

    // Splice target: the largest live input cloud (ties → smallest color).
    let &(target, target_len) = live
        .iter()
        .max_by_key(|&&(c, len)| (len, std::cmp::Reverse(c)))
        .expect("all_nodes nonempty implies a live cloud");
    let absorb: Vec<NodeId> = {
        let target_members = store.cloud_ref(target).expect("target is live").members();
        all_nodes.difference(target_members).copied().collect()
    };

    if absorb.len() <= target_len {
        // Splice: dissolve only the smaller inputs, keep the target.
        for &(c, _) in &live {
            if c != target {
                delete_cloud(store, c);
            }
        }
        repoint_secondaries(store, colors, target);
        for &m in &absorb {
            insert_into_cloud(store, target, m);
        }
        return Some(target);
    }

    // Rebuild: delete the old primary clouds and build the union fresh.
    for &(c, _) in &live {
        delete_cloud(store, c);
    }
    let new_color = store.fresh_color();
    repoint_secondaries(store, colors, new_color);
    let members: Vec<NodeId> = all_nodes.into_iter().collect();
    create_cloud_with_color(store, new_color, CloudKind::Primary, &members);
    Some(new_color)
}

/// Handles secondaries referencing combined primaries (found via the reverse
/// attachment index — no registry scan): dissolve the redundant ones, re-point
/// the rest at `new_color`.
fn repoint_secondaries<S: PlanStore>(
    store: &mut S,
    colors: &BTreeSet<CloudColor>,
    new_color: CloudColor,
) {
    let mut referencing: BTreeSet<CloudColor> = BTreeSet::new();
    for &c in colors {
        store.attached_secondaries_into(c, &mut referencing);
    }
    for fc in referencing {
        let all_inside = match store.cloud_ref(fc) {
            Some(cl) => cl.attachments().values().all(|p| colors.contains(p)),
            None => continue,
        };
        if all_inside {
            // Redundant: the combined cloud connects these directly.
            delete_cloud(store, fc);
        } else {
            let mut old_targets: Vec<CloudColor> = Vec::new();
            {
                let cloud = store.cloud_mut(fc).expect("checked live above");
                for target in cloud.attachments_mut().values_mut() {
                    if colors.contains(target) && *target != new_color {
                        old_targets.push(*target);
                        *target = new_color;
                    }
                }
            }
            for p in old_targets {
                store.attach_dec(p, fc);
                store.attach_inc(new_color, fc);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Per-component batch healing input + the full component case ladder.
// ---------------------------------------------------------------------------

/// Everything one dead component's healing depends on, captured by the batch
/// planner before phase 2 starts (pure data — safe to share across threads).
#[derive(Clone, Debug)]
pub(crate) struct ComponentInput {
    /// Union of the victims' primary-cloud colors.
    pub primaries: BTreeSet<CloudColor>,
    /// Union of the victims' live black boundaries.
    pub boundary: BTreeSet<NodeId>,
    /// The `(secondary, bridged primary)` pairs of bridges this component's
    /// victims held, in ascending victim order.
    pub bridges: Vec<(CloudColor, Option<CloudColor>)>,
}

impl ComponentInput {
    /// Upper bound on the fresh colors this component's healing can
    /// allocate: one singleton per boundary node, at most one combine per
    /// lost bridge, plus one secondary and one final combine.
    pub fn color_bound(&self) -> u64 {
        (self.boundary.len() + self.bridges.len() + 2) as u64
    }
}

/// Runs the phase-2 healing cases for one dead component (the Case 2.2
/// bridge fixes, boundary singletons, and the closing MakeSecondary).
pub(crate) fn heal_component<S: PlanStore>(store: &mut S, input: &ComponentInput) {
    let alive: Vec<CloudColor> = {
        let mut out = Vec::with_capacity(input.primaries.len());
        for &c in &input.primaries {
            if store.contains_cloud(c) {
                out.push(c);
            }
        }
        out
    };

    // Replace each lost bridge of this component (Case 2.2 fixes),
    // collecting anchors that must join the new secondary group.
    let mut anchors: Vec<CloudColor> = Vec::new();
    for &(f, ci) in &input.bridges {
        let ci_alive = match ci {
            Some(c) if store.contains_cloud(c) => Some(c),
            _ => None,
        };
        if store.contains_cloud(f) {
            if let Some(anchor) = fix_secondary(store, f, ci_alive) {
                anchors.push(anchor);
            }
        } else if let Some(a) = ci_alive {
            anchors.push(a);
        }
    }

    // Boundary nodes become singleton primary clouds; connect everything
    // with one secondary cloud (or combine).
    let mut group: Vec<CloudColor> = alive;
    for &w in &input.boundary {
        group.push(create_primary_cloud(store, &[w]));
    }
    group.extend(anchors);
    make_secondary_among(store, &group);
}

// ---------------------------------------------------------------------------
// CompShard: the copy-on-write overlay store for speculative healing.
// ---------------------------------------------------------------------------

/// A component shard: heals one dead component against a frozen planner
/// snapshot, recording (a) every touched piece of pre-existing state in a
/// conflict footprint and (b) every state change in overlay maps that commit
/// back in one pass.
pub(crate) struct CompShard<'a> {
    base: &'a RepairPlanner,
    /// Cloud overlay: `Some(cloud)` = live (possibly modified), `None` =
    /// deleted. Absent keys fall through to `base`.
    clouds: FxHashMap<CloudColor, Option<Cloud>>,
    nodes: FxHashMap<NodeId, NodeState>,
    /// Attachment-index overlay; empty inner maps mean "no attachments"
    /// (the commit pass erases them).
    attached: FxHashMap<CloudColor, BTreeMap<CloudColor, u32>>,
    /// Pre-existing colors this shard read or wrote (colors below
    /// `color_base`; the shard's own fresh colors are private by
    /// construction).
    touched_colors: BTreeSet<CloudColor>,
    /// Nodes this shard read or wrote (including negative lookups).
    touched_nodes: BTreeSet<NodeId>,
    rng: StdRng,
    next_color: u64,
    color_base: u64,
    color_limit: u64,
    actions: Vec<PlanAction>,
    op_added: usize,
    op_removed: usize,
    op_shares: usize,
    op_combines: usize,
    secondaries_built: usize,
}

impl<'a> CompShard<'a> {
    /// A shard over `base` drawing randomness from `seed` and colors from
    /// `[color_base, color_base + color_bound)`.
    pub fn new(base: &'a RepairPlanner, seed: u64, color_base: u64, color_bound: u64) -> Self {
        CompShard {
            base,
            clouds: FxHashMap::default(),
            nodes: FxHashMap::default(),
            attached: FxHashMap::default(),
            touched_colors: BTreeSet::new(),
            touched_nodes: BTreeSet::new(),
            rng: StdRng::seed_from_u64(seed),
            next_color: color_base,
            color_base,
            color_limit: color_base + color_bound,
            actions: Vec::new(),
            op_added: 0,
            op_removed: 0,
            op_shares: 0,
            op_combines: 0,
            secondaries_built: 0,
        }
    }

    fn touch_color(&mut self, c: CloudColor) {
        // Colors at or above this shard's own base are either the shard's
        // private allocations or unreachable (other shards' windows never
        // leak into a snapshot read); only pre-existing state conflicts.
        if c.as_u64() < self.color_base {
            self.touched_colors.insert(c);
        }
    }

    fn touch_node(&mut self, v: NodeId) {
        self.touched_nodes.insert(v);
    }

    /// Materializes the overlay entry for `c` (copy-on-write).
    fn cloud_entry(&mut self, c: CloudColor) -> &mut Option<Cloud> {
        if !self.clouds.contains_key(&c) {
            self.clouds.insert(c, self.base.cloud(c).cloned());
        }
        self.clouds.get_mut(&c).expect("just inserted")
    }

    /// Consumes the shard into its committable outcome.
    pub fn into_outcome(self) -> CompOutcome {
        debug_assert!(
            self.next_color <= self.color_limit,
            "component overran its color namespace"
        );
        CompOutcome {
            clouds: self.clouds,
            nodes: self.nodes,
            attached: self.attached,
            touched_colors: self.touched_colors,
            touched_nodes: self.touched_nodes,
            actions: self.actions,
            op_added: self.op_added,
            op_removed: self.op_removed,
            op_shares: self.op_shares,
            op_combines: self.op_combines,
            secondaries_built: self.secondaries_built,
        }
    }
}

impl PlanStore for CompShard<'_> {
    fn config(&self) -> &XhealConfig {
        self.base.config()
    }

    fn contains_cloud(&mut self, c: CloudColor) -> bool {
        self.touch_color(c);
        match self.clouds.get(&c) {
            Some(entry) => entry.is_some(),
            None => self.base.cloud(c).is_some(),
        }
    }

    fn cloud_ref(&mut self, c: CloudColor) -> Option<&Cloud> {
        self.touch_color(c);
        if self.clouds.contains_key(&c) {
            return self.clouds.get(&c).expect("just checked").as_ref();
        }
        self.base.cloud(c)
    }

    fn cloud_mut(&mut self, c: CloudColor) -> Option<&mut Cloud> {
        self.touch_color(c);
        self.cloud_entry(c).as_mut()
    }

    fn insert_cloud(&mut self, c: CloudColor, cloud: Cloud) {
        self.touch_color(c);
        debug_assert!(
            !matches!(self.clouds.get(&c), Some(Some(_))),
            "color {c} registered twice"
        );
        self.clouds.insert(c, Some(cloud));
    }

    fn remove_cloud(&mut self, c: CloudColor) -> Option<Cloud> {
        self.touch_color(c);
        self.cloud_entry(c).take()
    }

    fn node_ref(&mut self, v: NodeId) -> Option<&NodeState> {
        self.touch_node(v);
        if self.nodes.contains_key(&v) {
            return self.nodes.get(&v);
        }
        self.base.node_state(v)
    }

    fn node_mut(&mut self, v: NodeId) -> Option<&mut NodeState> {
        self.touch_node(v);
        if !self.nodes.contains_key(&v) {
            match self.base.node_state(v) {
                Some(st) => {
                    self.nodes.insert(v, st.clone());
                }
                None => return None,
            }
        }
        self.nodes.get_mut(&v)
    }

    fn attach_inc(&mut self, p: CloudColor, f: CloudColor) {
        *self.attach_map(p).entry(f).or_insert(0) += 1;
    }

    fn attach_dec(&mut self, p: CloudColor, f: CloudColor) {
        let m = self.attach_map(p);
        match m.get_mut(&f) {
            Some(c) if *c > 1 => *c -= 1,
            Some(_) => {
                m.remove(&f);
            }
            None => debug_assert!(false, "attachment index missing ({p},{f})"),
        }
    }

    fn attached_secondaries_into(&mut self, p: CloudColor, out: &mut BTreeSet<CloudColor>) {
        self.touch_color(p);
        match self.attached.get(&p) {
            Some(m) => out.extend(m.keys().copied()),
            None => {
                if let Some(m) = self.base.base_attached(p) {
                    out.extend(m.keys().copied());
                }
            }
        }
    }

    fn fresh_color(&mut self) -> CloudColor {
        assert!(
            self.next_color < self.color_limit,
            "component color namespace exhausted (base {}, limit {})",
            self.color_base,
            self.color_limit
        );
        let c = CloudColor::new(self.next_color);
        self.next_color += 1;
        c
    }

    fn build_expander(
        &mut self,
        members: &[NodeId],
    ) -> (MaintainedExpander, Vec<(NodeId, NodeId)>) {
        MaintainedExpander::new(members, self.base.kappa(), &mut self.rng)
    }

    fn expander_insert(&mut self, c: CloudColor, v: NodeId) -> EdgeDelta {
        self.touch_color(c);
        if !self.clouds.contains_key(&c) {
            self.clouds.insert(c, self.base.cloud(c).cloned());
        }
        let cloud = self
            .clouds
            .get_mut(&c)
            .expect("just inserted")
            .as_mut()
            .expect("cloud alive");
        cloud.expander_mut().insert(v, &mut self.rng)
    }

    fn prepare_free_reads(&mut self, colors: &[CloudColor]) {
        for &c in colors {
            self.touch_color(c);
        }
    }

    fn free_set(&self, c: CloudColor) -> &BTreeSet<NodeId> {
        match self.clouds.get(&c) {
            Some(Some(cloud)) => cloud.free_members(),
            Some(None) => &EMPTY_FREE,
            None => self
                .base
                .cloud(c)
                .map(Cloud::free_members)
                .unwrap_or(&EMPTY_FREE),
        }
    }

    fn emit(&mut self, action: PlanAction) {
        let delta = action.delta();
        self.op_added += delta.added.len();
        self.op_removed += delta.removed.len();
        self.actions.push(action);
    }

    fn note_share(&mut self) {
        self.op_shares += 1;
    }

    fn note_combine(&mut self) {
        self.op_combines += 1;
    }

    fn note_secondary_built(&mut self) {
        self.secondaries_built += 1;
    }
}

impl CompShard<'_> {
    fn attach_map(&mut self, p: CloudColor) -> &mut BTreeMap<CloudColor, u32> {
        self.touch_color(p);
        if !self.attached.contains_key(&p) {
            let m = self.base.base_attached(p).cloned().unwrap_or_default();
            self.attached.insert(p, m);
        }
        self.attached.get_mut(&p).expect("just inserted")
    }
}

/// The committable result of one component's speculative healing.
pub(crate) struct CompOutcome {
    /// Cloud overlay (`None` = deleted).
    pub clouds: FxHashMap<CloudColor, Option<Cloud>>,
    /// Node-state overlay.
    pub nodes: FxHashMap<NodeId, NodeState>,
    /// Attachment-index overlay (empty inner map = no attachments).
    pub attached: FxHashMap<CloudColor, BTreeMap<CloudColor, u32>>,
    /// Pre-existing colors touched (reads and writes, incl. negative reads).
    pub touched_colors: BTreeSet<CloudColor>,
    /// Nodes touched (reads and writes, incl. negative reads).
    pub touched_nodes: BTreeSet<NodeId>,
    /// The component's plan actions, in decision order.
    pub actions: Vec<PlanAction>,
    pub op_added: usize,
    pub op_removed: usize,
    pub op_shares: usize,
    pub op_combines: usize,
    pub secondaries_built: usize,
}

impl CompOutcome {
    /// Does this speculative outcome depend on (or write) any state a
    /// previously committed component touched? If not, its decisions are
    /// exactly what a sequential replay would decide, so it commits verbatim.
    pub fn conflicts_with(
        &self,
        committed_colors: &BTreeSet<CloudColor>,
        committed_nodes: &BTreeSet<NodeId>,
    ) -> bool {
        // Iterate the smaller set of each pair.
        let color_hit = if self.touched_colors.len() <= committed_colors.len() {
            self.touched_colors
                .iter()
                .any(|c| committed_colors.contains(c))
        } else {
            committed_colors
                .iter()
                .any(|c| self.touched_colors.contains(c))
        };
        if color_hit {
            return true;
        }
        if self.touched_nodes.len() <= committed_nodes.len() {
            self.touched_nodes
                .iter()
                .any(|v| committed_nodes.contains(v))
        } else {
            committed_nodes
                .iter()
                .any(|v| self.touched_nodes.contains(v))
        }
    }
}
