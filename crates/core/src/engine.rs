//! The unified executor API: one event-driven engine interface with
//! structured outcomes and topology-delta subscriptions.
//!
//! The paper's model (Figure 1) is a single loop — the adversary inserts or
//! deletes, the healer repairs — and [`HealingEngine`] is that loop as a
//! trait: every executor (the centralized [`Xheal`], the distributed
//! `xheal-dist`, and every `xheal-baselines` strategy) consumes one
//! [`Event`] at a time through [`HealingEngine::apply`] and reports back a
//! structured [`Outcome`] carrying the repair's accounting — including, for
//! distributed executors, the measured protocol cost ([`DistCost`]).
//!
//! On top of the event loop sits the *subscription layer*: every structural
//! change an engine makes to its network graph is also emitted as a
//! [`TopologyDelta`] to registered [`TopologySink`]s. Downstream consumers
//! (incremental CSR monitors, external routing tables) patch their own view
//! from the delta stream instead of re-scanning `graph()`; the built-in
//! [`DeltaMirror`] sink maintains a full shadow graph purely from deltas and
//! is the consistency proof that the stream is complete.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use xheal_graph::{CloudColor, Graph, NodeId};
use xheal_trace::SharedTracer;

use crate::batch::BatchReport;
use crate::error::HealError;
use crate::event::Event;
use crate::heal::Xheal;
use crate::stats::{DeletionReport, HealCase};

// ---------------------------------------------------------------------------
// Topology deltas and sinks
// ---------------------------------------------------------------------------

/// One structural change to an engine's network graph, as emitted to
/// [`TopologySink`]s.
///
/// Deltas are *label-level* operations: replaying them in order against a
/// copy of the pre-run graph reproduces the engine's graph exactly,
/// including edge labels (see [`DeltaMirror`]). Edge deltas carry the label
/// concerned — `None` is the black (original) label, `Some` a cloud color.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologyDelta {
    /// A node joined the network (adversarial insertion).
    NodeAdded(NodeId),
    /// A node left the network, taking every incident edge with it.
    NodeRemoved(NodeId),
    /// Label `color` was added to edge `(a, b)`, creating the edge if it
    /// did not exist.
    EdgeAdded {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// `None` for the black label, `Some` for a cloud color.
        color: Option<CloudColor>,
    },
    /// Label `color` was stripped from edge `(a, b)`, removing the edge
    /// when that was its last label.
    EdgeRemoved {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// `None` for the black label, `Some` for a cloud color.
        color: Option<CloudColor>,
    },
}

/// A subscriber to an engine's [`TopologyDelta`] stream.
///
/// Register sinks with [`HealingEngine::subscribe`] (or at construction via
/// the builders, e.g. [`Xheal::builder`]). Sinks observe every structural
/// change the engine applies, in application order. They must not assume a
/// delta is *effective*: a stripped label may belong to an edge that already
/// died with a deleted endpoint — replaying such a strip is a no-op.
///
/// To keep a handle on a sink after handing it to an engine, wrap it in
/// `Rc<RefCell<_>>`: the blanket impl below forwards deltas through the
/// shared cell.
pub trait TopologySink {
    /// Called for every structural change, in application order.
    fn on_delta(&mut self, delta: &TopologyDelta);

    /// Called with one whole plan flush of deltas, in application order.
    ///
    /// The grouped plan-application path delivers each flush through this
    /// method; the default forwards delta-by-delta to
    /// [`TopologySink::on_delta`], so sinks observe the identical stream
    /// either way. Batch-aware sinks (e.g. `xheal-monitor`'s incremental
    /// CSR) override it to patch their state once per flush.
    fn on_deltas(&mut self, deltas: &[TopologyDelta]) {
        for delta in deltas {
            self.on_delta(delta);
        }
    }
}

impl<S: TopologySink> TopologySink for Rc<RefCell<S>> {
    fn on_delta(&mut self, delta: &TopologyDelta) {
        self.borrow_mut().on_delta(delta);
    }

    fn on_deltas(&mut self, deltas: &[TopologyDelta]) {
        self.borrow_mut().on_deltas(deltas);
    }
}

/// The set of [`TopologySink`]s registered with an engine.
///
/// Executors own one registry and feed it from the single plan-application
/// code path, so every engine emits the identical stream for the identical
/// schedule. An empty registry costs nothing on the healing hot path
/// (emission is skipped entirely).
#[derive(Default)]
pub struct SinkRegistry {
    sinks: Vec<Box<dyn TopologySink>>,
}

impl SinkRegistry {
    /// Registers a subscriber.
    pub fn register(&mut self, sink: Box<dyn TopologySink>) {
        self.sinks.push(sink);
    }

    /// Number of registered subscribers.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// True when no sink is registered (the zero-overhead fast path).
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }

    /// Broadcasts one delta to every registered sink.
    pub fn emit(&mut self, delta: TopologyDelta) {
        for sink in &mut self.sinks {
            sink.on_delta(&delta);
        }
    }

    /// Broadcasts one whole flush of deltas to every registered sink via
    /// [`TopologySink::on_deltas`]. Callers on the grouped plan path check
    /// [`SinkRegistry::is_empty`] once per flush and skip materializing the
    /// delta slice entirely when no sink is registered.
    pub fn emit_batch(&mut self, deltas: &[TopologyDelta]) {
        for sink in &mut self.sinks {
            sink.on_deltas(deltas);
        }
    }
}

impl fmt::Debug for SinkRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SinkRegistry")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

/// Cloning an engine does **not** clone its subscribers: sinks are stateful
/// observers of one concrete run, so a clone starts with a fresh, empty
/// registry (healing behavior is unaffected — sinks never influence
/// decisions).
impl Clone for SinkRegistry {
    fn clone(&self) -> Self {
        SinkRegistry::default()
    }
}

/// A [`TopologySink`] maintaining a full shadow [`Graph`] purely from the
/// delta stream — the built-in consistency proof that [`TopologyDelta`]
/// emission is complete.
///
/// Seed it with the engine's initial graph; after every applied event the
/// mirror's graph equals the engine's graph bit-for-bit (asserted under
/// arbitrary mixed churn by the `delta_mirror` property suite).
///
/// # Examples
///
/// ```
/// use std::cell::RefCell;
/// use std::rc::Rc;
/// use xheal_core::{DeltaMirror, Event, HealingEngine, Xheal};
/// use xheal_graph::{generators, NodeId};
///
/// let g0 = generators::star(8);
/// let mirror = Rc::new(RefCell::new(DeltaMirror::new(&g0)));
/// let mut net = Xheal::builder()
///     .kappa(4)
///     .sink(Box::new(Rc::clone(&mirror)))
///     .build(&g0);
/// net.apply(&Event::Delete { node: NodeId::new(0) })?;
/// assert_eq!(net.graph(), mirror.borrow().graph());
/// # Ok::<(), xheal_core::HealError>(())
/// ```
#[derive(Clone, Debug)]
pub struct DeltaMirror {
    graph: Graph,
}

impl DeltaMirror {
    /// Starts mirroring from a copy of `initial` (the engine's pre-run
    /// graph).
    pub fn new(initial: &Graph) -> Self {
        DeltaMirror {
            graph: initial.clone(),
        }
    }

    /// The reconstructed graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }
}

impl TopologySink for DeltaMirror {
    fn on_delta(&mut self, delta: &TopologyDelta) {
        match *delta {
            TopologyDelta::NodeAdded(v) => {
                self.graph.add_node(v).expect("mirror: duplicate node");
            }
            TopologyDelta::NodeRemoved(v) => {
                self.graph.remove_node(v).expect("mirror: absent node");
            }
            TopologyDelta::EdgeAdded { a, b, color } => {
                match color {
                    None => self.graph.add_black_edge(a, b),
                    Some(c) => self.graph.add_colored_edge(a, b, c),
                }
                .expect("mirror: edge endpoints are live");
            }
            TopologyDelta::EdgeRemoved { a, b, color } => {
                // Strips of edges that died with a deleted endpoint are
                // no-ops here, exactly as on the engine's graph.
                match color {
                    None => self.graph.strip_black(a, b),
                    Some(c) => self.graph.strip_color(a, b, c),
                };
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Distributed protocol cost (owned by core so outcomes are executor-neutral)
// ---------------------------------------------------------------------------

/// Protocol cost of one repair (the paper's success metrics 4 and 5:
/// recovery time and communication complexity). Produced by the distributed
/// executor (`xheal-dist`), which re-exports this type.
#[derive(Clone, Debug)]
pub struct RepairCost {
    /// Sequence number of the repair (matches the tags on its messages).
    pub repair: u64,
    /// Rounds from kickoff until the last protocol message landed.
    pub rounds: u64,
    /// Messages delivered for this repair.
    pub messages: u64,
    /// Black degree of the deleted node — for batch stages, the dead
    /// component's live black boundary size (Lemma 5's lower-bound unit).
    pub black_degree: usize,
    /// Total degree of the deleted node at deletion time — for batch
    /// stages, the number of victims in the dead component.
    pub degree: usize,
    /// Which healing case applied ([`HealCase::Batch`] for batch stages).
    pub case: HealCase,
    /// Whether the expensive combine operation ran (single deletions only;
    /// batch stages report `false` — see the batch report instead).
    pub combined: bool,
}

/// Measured distributed-execution cost of one applied event: engine-level
/// totals plus the per-repair [`RepairCost`] breakdown (one entry per
/// repair protocol the event launched — a single deletion launches one,
/// a batch one per dead component doing structural work).
///
/// Centralized executors report `None` in their [`Outcome`]s; there is no
/// message protocol to measure.
#[derive(Clone, Debug, Default)]
pub struct DistCost {
    /// Wall-clock engine rounds spent healing this event (concurrent
    /// repairs overlap, so this can be far below the per-repair sum).
    pub rounds: u64,
    /// Messages delivered while healing this event.
    pub messages: u64,
    /// Per-repair cost records, ascending by repair sequence.
    pub repairs: Vec<RepairCost>,
}

// ---------------------------------------------------------------------------
// Outcomes
// ---------------------------------------------------------------------------

/// The structured result of applying one [`Event`] to a [`HealingEngine`]:
/// what kind of repair ran, its accounting, and — for distributed
/// executors — its measured protocol cost.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// An insertion was applied; the model heals nothing (Algorithm 3.1
    /// lines 1–2). Engines whose insertions do structural work (DEX
    /// virtual-node splits and spare takeovers) report its measured cost;
    /// Xheal-family engines report `None` — insertion really is free there.
    Inserted {
        /// Reconfiguration cost of the insertion — `Some` for engines
        /// whose insertions rewire (DEX), `None` otherwise.
        cost: Option<DistCost>,
    },
    /// A single deletion was healed.
    Healed {
        /// Per-deletion accounting, including the healing case taken.
        report: DeletionReport,
        /// Protocol cost — `Some` for distributed executors only.
        cost: Option<DistCost>,
    },
    /// A simultaneous multi-node deletion was healed as one batch repair.
    Batch {
        /// Batch-level accounting.
        report: BatchReport,
        /// Protocol cost — `Some` for distributed executors only.
        cost: Option<DistCost>,
    },
}

impl Outcome {
    /// Colored edges the repair added (0 for insertions).
    pub fn edges_added(&self) -> usize {
        match self {
            Outcome::Inserted { .. } => 0,
            Outcome::Healed { report, .. } => report.edges_added,
            Outcome::Batch { report, .. } => report.edges_added,
        }
    }

    /// Colored-edge labels the repair stripped (0 for insertions).
    pub fn edges_removed(&self) -> usize {
        match self {
            Outcome::Inserted { .. } => 0,
            Outcome::Healed { report, .. } => report.edges_removed,
            Outcome::Batch { report, .. } => report.edges_removed,
        }
    }

    /// Number of nodes the event deleted (0 for insertions).
    pub fn victims(&self) -> usize {
        match self {
            Outcome::Inserted { .. } => 0,
            Outcome::Healed { .. } => 1,
            Outcome::Batch { report, .. } => report.victims,
        }
    }

    /// The measured reconfiguration cost, when the executor reported one
    /// (distributed repairs; DEX insertions).
    pub fn cost(&self) -> Option<&DistCost> {
        match self {
            Outcome::Inserted { cost }
            | Outcome::Healed { cost, .. }
            | Outcome::Batch { cost, .. } => cost.as_ref(),
        }
    }
}

// ---------------------------------------------------------------------------
// The engine trait
// ---------------------------------------------------------------------------

/// A self-healing executor driven one adversarial [`Event`] at a time.
///
/// This is the single public surface the workload runner, the experiment
/// benches, and the cross-validation suite are written against: the
/// centralized [`Xheal`], the distributed `xheal_dist::DistXheal` (over any
/// network engine), and every `xheal-baselines` strategy implement it, so
/// all of them are interchangeable behind `Box<dyn HealingEngine>`.
///
/// Compared to the older [`crate::Healer`] trait (kept for per-method
/// ergonomics), `apply` returns the full structured [`Outcome`] instead of
/// discarding reports, and [`HealingEngine::subscribe`] exposes the
/// topology-delta stream.
///
/// # Examples
///
/// ```
/// use xheal_core::{Event, HealingEngine, Outcome, Xheal, XhealConfig};
/// use xheal_graph::{components, generators, NodeId};
///
/// let mut net = Xheal::new(&generators::star(10), XhealConfig::new(4));
/// let outcome = net.apply(&Event::Delete { node: NodeId::new(0) })?;
/// assert!(matches!(outcome, Outcome::Healed { .. }));
/// assert!(outcome.edges_added() > 0);
/// assert!(components::is_connected(net.graph()));
/// # Ok::<(), xheal_core::HealError>(())
/// ```
pub trait HealingEngine {
    /// Human-readable strategy name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// The current healed network graph `G_t`.
    fn graph(&self) -> &Graph;

    /// Applies one adversarial event and heals the damage, returning the
    /// structured outcome of the repair.
    ///
    /// # Errors
    ///
    /// Implementations reject invalid events before mutating anything:
    /// duplicate or unknown nodes on insertion, absent or duplicated
    /// victims on deletion.
    fn apply(&mut self, event: &Event) -> Result<Outcome, HealError>;

    /// Registers a [`TopologySink`] observing every structural change this
    /// engine applies from now on.
    fn subscribe(&mut self, sink: Box<dyn TopologySink>);

    /// Attaches (or, with `None`, detaches) a structured tracer observing
    /// this engine's repairs: planner phases, action application, protocol
    /// rounds. The default does nothing — baselines without interesting
    /// internal structure stay untraced. With no tracer attached every
    /// instrumentation point in an engine is a single branch on a `None`
    /// handle (see [`xheal_trace::hook`]).
    fn set_tracer(&mut self, tracer: Option<SharedTracer>) {
        let _ = tracer;
    }
}

impl HealingEngine for Xheal {
    fn name(&self) -> &'static str {
        "xheal"
    }

    fn graph(&self) -> &Graph {
        Xheal::graph(self)
    }

    fn apply(&mut self, event: &Event) -> Result<Outcome, HealError> {
        match event {
            Event::Insert { node, neighbors } => {
                self.heal_insert(*node, neighbors)?;
                Ok(Outcome::Inserted { cost: None })
            }
            Event::Delete { node } => Ok(Outcome::Healed {
                report: self.heal_delete(*node)?,
                cost: None,
            }),
            Event::DeleteBatch { nodes } => Ok(Outcome::Batch {
                report: self.heal_delete_batch(nodes)?,
                cost: None,
            }),
        }
    }

    fn subscribe(&mut self, sink: Box<dyn TopologySink>) {
        Xheal::subscribe(self, sink);
    }

    fn set_tracer(&mut self, tracer: Option<SharedTracer>) {
        Xheal::set_tracer(self, tracer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::XhealConfig;
    use xheal_graph::{components, generators};

    fn n(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    #[test]
    fn apply_routes_all_event_kinds() {
        let mut net = Xheal::new(&generators::star(8), XhealConfig::new(4).with_seed(1));
        let ins = net
            .apply(&Event::Insert {
                node: n(100),
                neighbors: vec![n(1)],
            })
            .unwrap();
        assert!(matches!(ins, Outcome::Inserted { cost: None }));
        assert_eq!((ins.victims(), ins.edges_added()), (0, 0));
        assert!(ins.cost().is_none());

        let healed = net.apply(&Event::Delete { node: n(0) }).unwrap();
        let Outcome::Healed { report, cost: None } = &healed else {
            panic!("expected centralized Healed outcome, got {healed:?}");
        };
        assert_eq!(report.case, HealCase::AllBlack);
        assert_eq!(healed.victims(), 1);
        assert_eq!(healed.edges_added(), report.edges_added);

        let batch = net
            .apply(&Event::DeleteBatch {
                nodes: vec![n(2), n(3)],
            })
            .unwrap();
        assert!(matches!(batch, Outcome::Batch { .. }));
        assert_eq!(batch.victims(), 2);
        assert!(components::is_connected(net.graph()));
    }

    #[test]
    fn apply_rejects_bad_events() {
        let mut net = Xheal::new(&generators::cycle(5), XhealConfig::default());
        assert!(net
            .apply(&Event::Insert {
                node: n(0),
                neighbors: vec![],
            })
            .is_err());
        assert!(net.apply(&Event::Delete { node: n(77) }).is_err());
        assert!(net
            .apply(&Event::DeleteBatch {
                nodes: vec![n(1), n(1)],
            })
            .is_err());
        assert_eq!(net.graph().node_count(), 5, "nothing was mutated");
    }

    #[test]
    fn mirror_tracks_engine_through_trait() {
        let g0 = generators::star(10);
        let mirror = Rc::new(RefCell::new(DeltaMirror::new(&g0)));
        let mut net: Box<dyn HealingEngine> = Box::new(
            Xheal::builder()
                .kappa(4)
                .seed(3)
                .sink(Box::new(Rc::clone(&mirror)))
                .build(&g0),
        );
        assert_eq!(net.name(), "xheal");
        let events = [
            Event::Delete { node: n(0) },
            Event::Insert {
                node: n(50),
                neighbors: vec![n(1), n(2)],
            },
            Event::DeleteBatch {
                nodes: vec![n(1), n(4)],
            },
        ];
        for event in &events {
            net.apply(event).unwrap();
            assert_eq!(
                net.graph(),
                mirror.borrow().graph(),
                "diverged on {event:?}"
            );
        }
    }

    #[test]
    fn cloning_an_engine_drops_subscribers() {
        let g0 = generators::star(6);
        let mirror = Rc::new(RefCell::new(DeltaMirror::new(&g0)));
        let mut a = Xheal::builder()
            .kappa(4)
            .sink(Box::new(Rc::clone(&mirror)))
            .build(&g0);
        let mut b = a.clone();
        a.heal_delete(n(0)).unwrap();
        b.heal_delete(n(1)).unwrap();
        // Only `a`'s deletion reached the mirror.
        assert_eq!(a.graph(), mirror.borrow().graph());
    }

    #[test]
    fn sink_registry_reports_size() {
        let mut reg = SinkRegistry::default();
        assert!(reg.is_empty());
        reg.register(Box::new(DeltaMirror::new(&generators::cycle(3))));
        assert_eq!(reg.len(), 1);
        assert!(format!("{reg:?}").contains("sinks"));
        assert!(reg.clone().is_empty(), "clones start unsubscribed");
    }
}
