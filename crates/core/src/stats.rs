//! Cumulative healing statistics (drives the amortized-cost experiments).

/// Which healing case of Algorithm 3.1 a deletion fell into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealCase {
    /// All deleted edges were black (Case 1).
    AllBlack,
    /// Colored edges, all primary (Case 2.1).
    PrimaryOnly,
    /// Some deleted edges were secondary — the node was a bridge (Case 2.2).
    Bridge,
    /// The deleted node had degree ≤ 1 and was simply dropped.
    Dropped,
    /// Part of a multi-node batch repair (the simultaneous-deletions
    /// extension) — used by executors labelling per-stage costs, not by
    /// single-deletion planning.
    Batch,
}

/// Report for a single deletion repair.
#[derive(Clone, Debug)]
pub struct DeletionReport {
    /// Case taken.
    pub case: HealCase,
    /// Colored edges added during the repair.
    pub edges_added: usize,
    /// Colored-edge labels stripped during the repair.
    pub edges_removed: usize,
    /// Whether the expensive combine operation ran.
    pub combined: bool,
    /// Free nodes shared across clouds during the repair.
    pub shares: usize,
    /// Black degree of the deleted node (the Lemma 5 lower-bound unit).
    pub black_degree: usize,
    /// Total degree of the deleted node at deletion time.
    pub degree: usize,
}

/// Cumulative counters across a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HealStats {
    /// Deletions healed.
    pub deletions: usize,
    /// Insertions observed.
    pub insertions: usize,
    /// Total colored edges added.
    pub edges_added: usize,
    /// Total colored-edge labels stripped.
    pub edges_removed: usize,
    /// Secondary clouds built.
    pub secondaries_built: usize,
    /// Combine operations performed.
    pub combines: usize,
    /// Free-node shares performed.
    pub shares: usize,
    /// Sum of black degrees of deleted nodes (Σ deg(v_i), Lemma 5's A(p)·p).
    pub black_degree_sum: usize,
}

impl HealStats {
    /// Lemma 5's amortized lower-bound unit `A(p) = (1/p) Σ deg(v_i)`.
    pub fn amortized_lower_bound(&self) -> f64 {
        if self.deletions == 0 {
            return 0.0;
        }
        self.black_degree_sum as f64 / self.deletions as f64
    }

    /// Total structural work (edges touched) per deletion.
    pub fn work_per_deletion(&self) -> f64 {
        if self.deletions == 0 {
            return 0.0;
        }
        (self.edges_added + self.edges_removed) as f64 / self.deletions as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amortized_bounds_handle_zero_deletions() {
        let s = HealStats::default();
        assert_eq!(s.amortized_lower_bound(), 0.0);
        assert_eq!(s.work_per_deletion(), 0.0);
    }

    #[test]
    fn amortized_lower_bound_averages_black_degrees() {
        let s = HealStats {
            deletions: 4,
            black_degree_sum: 10,
            ..Default::default()
        };
        assert_eq!(s.amortized_lower_bound(), 2.5);
    }
}
