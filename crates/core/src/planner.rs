//! The repair *decisions* of Xheal (Algorithms 3.2–3.6), separated from
//! graph execution.
//!
//! [`RepairPlanner`] owns everything the healing decisions depend on — the
//! cloud registry, per-node membership state, the healer's private
//! randomness, and the cumulative statistics — but never touches the network
//! graph. Each deletion produces a [`RepairPlan`] of explicit
//! [`PlanAction`]s; executors ([`crate::Xheal`] centrally, `xheal-dist` over
//! the LOCAL-model engine) apply those actions to their graph. Because every
//! random draw happens inside the planner, two executors replaying the same
//! schedule with the same seed make bit-identical topology changes.
//!
//! The healing cases themselves live in `shard.rs`, generic over a
//! [`PlanStore`]; this planner is the *direct* store (zero-overhead
//! pass-through). Batch deletions additionally use derived per-cloud /
//! per-component RNG streams and reserved color windows (see `shard.rs`), so
//! the sequential batch path and the component-parallel path
//! ([`crate::ParallelXheal`]) make bit-identical decisions at every thread
//! count.

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

use xheal_expander::{EdgeDelta, MaintainedExpander};
use xheal_graph::{CloudColor, CloudKind, EdgeLabels, FxHashMap, NodeId};
use xheal_pool::WorkerPool;
use xheal_trace::{hook, Layer, SharedTracer};

use crate::batch::{victim_components, BatchRepairPlan, BatchReport, BatchStage, BatchVictim};
use crate::cloud::{Cloud, NodeState};
use crate::config::XhealConfig;
use crate::plan::{PlanAction, RepairPlan};
use crate::shard::{
    self, derive_seed, CompOutcome, CompShard, ComponentInput, PlanStore, EMPTY_FREE,
    SEED_COMPONENT, SEED_DETACH,
};
use crate::stats::{DeletionReport, HealCase, HealStats};

/// The shared decision engine of the centralized and distributed healers.
///
/// # Examples
///
/// ```
/// use xheal_core::{RepairPlanner, XhealConfig};
/// use xheal_graph::{generators, NodeId};
///
/// let mut star = generators::star(8);
/// let mut planner = RepairPlanner::new(star.nodes(), XhealConfig::new(4));
/// // Ask for the plan healing the deletion of the hub.
/// let incident = star.remove_node(NodeId::new(0)).unwrap();
/// let plan = planner.plan_deletion(NodeId::new(0), &incident, incident.len());
/// // One primary cloud over the 7 leaves (Case 1).
/// assert_eq!(plan.actions.len(), 1);
/// assert_eq!(planner.cloud_count(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct RepairPlanner {
    /// Cloud registry. Point-lookup map plus `color_order`, the sorted live
    /// color list maintained on create/delete, so the hot path gets O(1)
    /// access while [`RepairPlanner::cloud_colors`] keeps its promised
    /// ascending output (invariant I9: `color_order` is sorted and holds
    /// exactly the registry's keys).
    clouds: FxHashMap<CloudColor, Cloud>,
    /// Live colors, ascending. Colors are allocated monotonically, so
    /// insertion is an amortized-O(1) push; deletion is a binary-searched
    /// remove.
    color_order: Vec<CloudColor>,
    /// Reverse attachment index: primary color → (secondary color → number
    /// of that secondary's bridges targeting the primary). Lets `combine`
    /// find referencing secondaries without scanning the whole registry.
    attached_to: BTreeMap<CloudColor, BTreeMap<CloudColor, u32>>,
    /// Per-node membership state. Point-lookup only — never iterated — so
    /// the deterministic replay does not depend on its order and the hot
    /// path gets O(1) access.
    nodes: FxHashMap<NodeId, NodeState>,
    config: XhealConfig,
    rng: StdRng,
    next_color: u64,
    stats: HealStats,
    /// Plan buffer of the operation being planned.
    actions: Vec<PlanAction>,
    /// Reusable scratch for per-deletion black-neighbor extraction, so the
    /// churn hot loop allocates nothing per event.
    scratch_black: Vec<NodeId>,
    /// Optional span recorder; `None` (the default) keeps every
    /// instrumentation site a single branch.
    tracer: Option<SharedTracer>,
    /// Monotone repair sequence number; each planned deletion (single or
    /// batch) gets the next one, keying its spans in the forensics ledger.
    repair_seq: u64,
    // Per-operation counters (reset at the start of each deletion).
    op_added: usize,
    op_removed: usize,
    op_shares: usize,
    op_combines: usize,
}

impl RepairPlanner {
    /// Creates a planner for a network initially containing `nodes`, all
    /// cloudless (every existing edge is black, per the model).
    pub fn new(nodes: impl IntoIterator<Item = NodeId>, config: XhealConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        let nodes: FxHashMap<NodeId, NodeState> = nodes
            .into_iter()
            .map(|v| (v, NodeState::default()))
            .collect();
        RepairPlanner {
            clouds: FxHashMap::default(),
            color_order: Vec::new(),
            attached_to: BTreeMap::new(),
            nodes,
            config,
            rng,
            next_color: 0,
            stats: HealStats::default(),
            actions: Vec::new(),
            scratch_black: Vec::new(),
            tracer: None,
            repair_seq: 0,
            op_added: 0,
            op_removed: 0,
            op_shares: 0,
            op_combines: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &XhealConfig {
        &self.config
    }

    /// Cloud expander degree κ.
    pub fn kappa(&self) -> usize {
        self.config.kappa
    }

    /// Cumulative healing statistics.
    pub fn stats(&self) -> &HealStats {
        &self.stats
    }

    /// Attaches (or detaches, with `None`) a tracer recording planner spans.
    /// Executors forward their own handle here so planner and executor spans
    /// of one repair land in the same ledger.
    pub fn set_tracer(&mut self, tracer: Option<SharedTracer>) {
        self.tracer = tracer;
    }

    /// The repair sequence number of the most recently planned deletion
    /// (0 before any).
    pub fn repair_seq(&self) -> u64 {
        self.repair_seq
    }

    /// The repair sequence number the *next* planned deletion will carry —
    /// executors use it to open their wrapping span before planning starts.
    pub fn peek_repair_seq(&self) -> u64 {
        self.repair_seq + 1
    }

    /// All live cloud colors with their kinds, ascending.
    pub fn cloud_colors(&self) -> Vec<(CloudColor, CloudKind)> {
        self.color_order
            .iter()
            .map(|&c| (c, self.clouds[&c].kind()))
            .collect()
    }

    /// Read access to a cloud.
    pub fn cloud(&self, color: CloudColor) -> Option<&Cloud> {
        self.clouds.get(&color)
    }

    /// Read access to a node's membership state.
    pub fn node_state(&self, v: NodeId) -> Option<&NodeState> {
        self.nodes.get(&v)
    }

    /// Number of live clouds.
    pub fn cloud_count(&self) -> usize {
        self.clouds.len()
    }

    /// Read access to the reverse attachment index of one primary (for the
    /// copy-on-write component shard).
    pub(crate) fn base_attached(&self, p: CloudColor) -> Option<&BTreeMap<CloudColor, u32>> {
        self.attached_to.get(&p)
    }

    /// Invariant checks (I8, I9): the reverse attachment index holds exactly
    /// the bridge counts recomputable from the live secondary clouds, and
    /// the maintained color order is sorted and mirrors the registry keys.
    pub(crate) fn validate_attachment_index(&self) -> Result<(), String> {
        if !self.color_order.is_sorted() {
            return Err(format!("color order not ascending: {:?}", self.color_order));
        }
        if self.color_order.len() != self.clouds.len()
            || self
                .color_order
                .iter()
                .any(|c| !self.clouds.contains_key(c))
        {
            return Err(format!(
                "color order {:?} does not mirror the {} registered clouds",
                self.color_order,
                self.clouds.len()
            ));
        }
        let mut recomputed: BTreeMap<CloudColor, BTreeMap<CloudColor, u32>> = BTreeMap::new();
        for (&f, cloud) in &self.clouds {
            if cloud.kind() == CloudKind::Secondary {
                for &p in cloud.attachments().values() {
                    *recomputed.entry(p).or_default().entry(f).or_insert(0) += 1;
                }
            }
        }
        if recomputed != self.attached_to {
            return Err(format!(
                "attachment index {:?} != recomputed {recomputed:?}",
                self.attached_to
            ));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Model events
    // ------------------------------------------------------------------

    /// Records an adversarial insertion. Xheal takes no healing action on
    /// insertions (Algorithm 3.1 lines 1–2), so no plan is produced.
    pub fn note_insert(&mut self, v: NodeId) {
        self.nodes.insert(v, NodeState::default());
        self.stats.insertions += 1;
    }

    /// Plans the repair for the deletion of `v`, whose incident edges at
    /// deletion time were `incident` (with their labels) and whose total
    /// degree was `degree`.
    ///
    /// The planner's cloud/membership state advances to the post-repair
    /// state; the caller must apply the returned plan to its graph to stay
    /// consistent.
    pub fn plan_deletion(
        &mut self,
        v: NodeId,
        incident: &[(NodeId, EdgeLabels)],
        degree: usize,
    ) -> RepairPlan {
        self.reset_op_counters();
        self.actions.clear();
        self.repair_seq += 1;
        let seq = self.repair_seq;
        hook::begin(
            &self.tracer,
            Layer::Planner,
            "plan.single",
            seq,
            degree as u64,
        );

        let state = self.nodes.remove(&v).unwrap_or_default();
        let mut black_nbrs = std::mem::take(&mut self.scratch_black);
        black_nbrs.clear();
        black_nbrs.extend(
            incident
                .iter()
                .filter(|(_, l)| l.is_black())
                .map(|&(u, _)| u),
        );
        let black_degree = black_nbrs.len();
        self.stats.deletions += 1;
        self.stats.black_degree_sum += black_degree;

        let case = if state.is_cloudless() {
            // Case 1: all deleted edges are black.
            if black_nbrs.len() >= 2 {
                shard::create_primary_cloud(self, &black_nbrs);
                HealCase::AllBlack
            } else {
                // Degree <= 1: "the deleted node is just dropped".
                HealCase::Dropped
            }
        } else {
            self.plan_colored_deletion(v, state, &black_nbrs)
        };
        self.scratch_black = black_nbrs;

        let report = DeletionReport {
            case,
            edges_added: self.op_added,
            edges_removed: self.op_removed,
            combined: self.op_combines > 0,
            shares: self.op_shares,
            black_degree,
            degree,
        };
        self.fold_op_counters();
        hook::instant(
            &self.tracer,
            Layer::Planner,
            "plan.case",
            seq,
            case_code(case),
        );
        hook::end(
            &self.tracer,
            Layer::Planner,
            "plan.single",
            seq,
            self.actions.len() as u64,
        );
        RepairPlan {
            actions: std::mem::take(&mut self.actions),
            report,
        }
    }

    // ------------------------------------------------------------------
    // Case 2 machinery (the cases themselves live in shard.rs, generic
    // over the store; this planner is the direct store)
    // ------------------------------------------------------------------

    fn plan_colored_deletion(
        &mut self,
        v: NodeId,
        state: NodeState,
        black_nbrs: &[NodeId],
    ) -> HealCase {
        // FixPrimary: remove v from each of its primary clouds.
        let mut alive_primaries: Vec<CloudColor> = Vec::new();
        for &c in &state.primaries {
            if !self.remove_from_cloud(c, v) {
                alive_primaries.push(c);
            }
        }

        // Black neighbors become singleton primary clouds (Case 2 prose).
        let mut singletons: Vec<CloudColor> = Vec::new();
        for &w in black_nbrs {
            singletons.push(shard::create_primary_cloud(self, &[w]));
        }

        match state.secondary {
            None => {
                // Case 2.1.
                let mut group = alive_primaries;
                group.extend(singletons);
                shard::make_secondary_among(self, &group);
                HealCase::PrimaryOnly
            }
            Some(f) => {
                // Case 2.2: v was the bridge of some primary ci in F.
                let ci = self
                    .clouds
                    .get_mut(&f)
                    .and_then(|cl| cl.attachments_mut().remove(&v));
                if let Some(ci) = ci {
                    self.attach_dec(ci, f);
                }
                let f_emptied = self.remove_from_cloud(f, v);
                let ci_alive = ci.filter(|c| self.clouds.contains_key(c));
                let anchor = if f_emptied {
                    // F died with v; the ci side has no F component to join.
                    ci_alive
                } else {
                    shard::fix_secondary(self, f, ci_alive)
                };

                // Clouds still connected through F need no new secondary.
                let attached_now: BTreeSet<CloudColor> = self
                    .clouds
                    .get(&f)
                    .map(|cl| cl.attachments().values().copied().collect())
                    .unwrap_or_default();

                let mut group: Vec<CloudColor> = alive_primaries
                    .into_iter()
                    .filter(|c| !attached_now.contains(c) && Some(*c) != anchor)
                    .collect();
                group.extend(singletons);
                if let Some(a) = anchor {
                    // Connectivity fix (DESIGN.md §3.2): an F-side anchor
                    // joins the new secondary so the two groups stay linked.
                    if !group.is_empty() {
                        group.push(a);
                    }
                }
                shard::make_secondary_among(self, &group);
                HealCase::Bridge
            }
        }
    }

    // ------------------------------------------------------------------
    // Cloud registry primitives
    // ------------------------------------------------------------------

    /// Registers a cloud, keeping `color_order` sorted. Colors allocate
    /// monotonically, so the common case is a push; `combine` can finish
    /// building its pre-allocated color after deletions, hence the
    /// binary-searched general case.
    fn registry_insert(&mut self, color: CloudColor, cloud: Cloud) {
        let prev = self.clouds.insert(color, cloud);
        debug_assert!(prev.is_none(), "color {color} registered twice");
        self.register_color(color);
    }

    /// Maintains the sorted `color_order` list for a newly registered color.
    fn register_color(&mut self, color: CloudColor) {
        match self.color_order.last() {
            Some(&last) if last >= color => {
                if let Err(pos) = self.color_order.binary_search(&color) {
                    self.color_order.insert(pos, color);
                }
            }
            _ => self.color_order.push(color),
        }
    }

    /// Unregisters a cloud, keeping `color_order` in sync.
    fn registry_remove(&mut self, color: CloudColor) -> Option<Cloud> {
        let cloud = self.clouds.remove(&color)?;
        if let Ok(pos) = self.color_order.binary_search(&color) {
            self.color_order.remove(pos);
        }
        Some(cloud)
    }

    /// Removes `v` from a cloud, returning `true` when the cloud emptied and
    /// was deleted.
    fn remove_from_cloud(&mut self, color: CloudColor, v: NodeId) -> bool {
        let Some(cloud) = self.clouds.get_mut(&color) else {
            return true;
        };
        if !cloud.expander().contains(v) {
            return cloud.is_empty();
        }
        let delta = {
            let rng = &mut self.rng;
            cloud.expander_mut().remove(v, rng)
        };
        let kind = cloud.kind();
        if kind == CloudKind::Primary {
            cloud.free_members_mut().remove(&v);
        }
        self.emit(PlanAction::PatchCloud {
            color,
            removed: vec![v],
            delta,
        });
        let mut freed = false;
        if let Some(st) = self.nodes.get_mut(&v) {
            match kind {
                CloudKind::Primary => {
                    st.primaries.remove(&color);
                }
                CloudKind::Secondary => {
                    if st.secondary == Some(color) {
                        st.secondary = None;
                        freed = true;
                    }
                }
            }
        }
        if freed {
            // Losing its bridge duty makes v free again in its primaries.
            shard::set_free_status(self, v, true);
        }
        let emptied = self.clouds.get(&color).is_some_and(Cloud::is_empty);
        if emptied {
            self.registry_remove(color);
        }
        emptied
    }

    fn reset_op_counters(&mut self) {
        self.op_added = 0;
        self.op_removed = 0;
        self.op_shares = 0;
        self.op_combines = 0;
    }

    fn fold_op_counters(&mut self) {
        self.stats.edges_added += self.op_added;
        self.stats.edges_removed += self.op_removed;
        self.stats.shares += self.op_shares;
        self.stats.combines += self.op_combines;
    }

    // ------------------------------------------------------------------
    // Batch (multi-node) deletion — the decisions of `heal_delete_batch`
    // and the distributed `delete_batch` (see batch.rs for the model).
    // ------------------------------------------------------------------

    /// Plans the simultaneous deletion of every victim in `ctx` (captured by
    /// [`BatchVictim::capture`] *before* the victims left the graph),
    /// producing a staged plan: a detach prologue shared by all dead
    /// components, then one independently executable stage per component.
    ///
    /// The planner's cloud/membership state advances to the post-repair
    /// state; the caller must apply the returned plan to its graph to stay
    /// consistent.
    pub fn plan_batch_deletion(&mut self, ctx: &[BatchVictim]) -> BatchRepairPlan {
        self.plan_batch_in(ctx, None)
    }

    /// [`RepairPlanner::plan_batch_deletion`] with the detach prologue and
    /// per-component healing fanned out over `pool`. Bit-identical to the
    /// sequential path at every thread count (both draw per-cloud /
    /// per-component derived RNG streams and allocate colors from reserved
    /// windows; speculative components that touched state an earlier
    /// component changed are replayed in component order).
    pub(crate) fn plan_batch_deletion_parallel(
        &mut self,
        ctx: &[BatchVictim],
        pool: &WorkerPool,
    ) -> BatchRepairPlan {
        self.plan_batch_in(ctx, Some(pool))
    }

    fn plan_batch_in(&mut self, ctx: &[BatchVictim], pool: Option<&WorkerPool>) -> BatchRepairPlan {
        self.reset_op_counters();
        self.actions.clear();
        self.repair_seq += 1;
        let seq = self.repair_seq;
        hook::begin(
            &self.tracer,
            Layer::Planner,
            "plan.batch",
            seq,
            ctx.len() as u64,
        );
        let secondaries_before = self.stats.secondaries_built;
        // One master draw; everything else derives from it, so the repair
        // streams of distinct clouds/components are independent of execution
        // interleaving.
        let batch_seed = self.rng.next_u64();

        // Phase 0: victim states, lost bridges, and the by-cloud grouping —
        // pure bookkeeping, no RNG, no plan actions.
        let mut states: BTreeMap<NodeId, NodeState> = BTreeMap::new();
        for bv in ctx {
            states.insert(bv.node, self.nodes.remove(&bv.node).unwrap_or_default());
        }
        let mut lost_bridges: Vec<(NodeId, CloudColor, Option<CloudColor>)> = Vec::new();
        let mut by_cloud: BTreeMap<CloudColor, Vec<NodeId>> = BTreeMap::new();
        for (&v, state) in &states {
            for &c in &state.primaries {
                by_cloud.entry(c).or_default().push(v);
            }
            if let Some(f) = state.secondary {
                let ci = self.take_bridge_target(f, v);
                lost_bridges.push((v, f, ci));
                by_cloud.entry(f).or_default().push(v);
            }
        }

        // Phase 1 (detach prologue): remove every victim from every cloud
        // (FixPrimary / the structural part of FixSecondary). Each affected
        // cloud is an independent task with its own derived RNG; the
        // parallel path merges results back in ascending color order, so the
        // emitted prologue is identical either way.
        hook::begin(
            &self.tracer,
            Layer::Planner,
            "plan.detach",
            seq,
            by_cloud.len() as u64,
        );
        match pool {
            None => {
                for (&c, vs) in &by_cloud {
                    self.detach_one(c, vs, batch_seed);
                }
            }
            Some(pool) => self.detach_parallel(&by_cloud, batch_seed, pool, seq),
        }
        hook::end(&self.tracer, Layer::Planner, "plan.detach", seq, 0);
        // Stage boundaries inside the flat action buffer: prologue end,
        // then one checkpoint per component.
        let mut checkpoints: Vec<usize> = vec![self.actions.len()];

        // Phase 2: per dead component, run the healing cases on the merged
        // state. Components draw from derived RNG streams and allocate
        // colors inside reserved windows (prefix sums of a per-component
        // bound), so their decisions do not depend on who ran first — only
        // on what state they *touched*, which the parallel path tracks.
        let components = victim_components(ctx);
        let boundary_of: BTreeMap<NodeId, &[NodeId]> = ctx
            .iter()
            .map(|bv| (bv.node, bv.black_boundary.as_slice()))
            .collect();
        let inputs: Vec<ComponentInput> = components
            .iter()
            .map(|comp| {
                let mut primaries: BTreeSet<CloudColor> = BTreeSet::new();
                let mut boundary: BTreeSet<NodeId> = BTreeSet::new();
                for &v in comp {
                    primaries.extend(states[&v].primaries.iter().copied());
                    boundary.extend(boundary_of[&v].iter().copied());
                }
                let comp_set: BTreeSet<NodeId> = comp.iter().copied().collect();
                let bridges: Vec<(CloudColor, Option<CloudColor>)> = lost_bridges
                    .iter()
                    .filter(|(v, _, _)| comp_set.contains(v))
                    .map(|&(_, f, ci)| (f, ci))
                    .collect();
                ComponentInput {
                    primaries,
                    boundary,
                    bridges,
                }
            })
            .collect();
        let phase2_base = self.next_color;
        let mut bases: Vec<u64> = Vec::with_capacity(inputs.len());
        let mut acc = phase2_base;
        for input in &inputs {
            bases.push(acc);
            acc += input.color_bound();
        }
        let color_end = acc;

        hook::begin(
            &self.tracer,
            Layer::Planner,
            "plan.components",
            seq,
            inputs.len() as u64,
        );
        match pool {
            None => {
                for (i, input) in inputs.iter().enumerate() {
                    hook::begin(
                        &self.tracer,
                        Layer::Planner,
                        "plan.component",
                        seq,
                        i as u64,
                    );
                    let derived =
                        StdRng::seed_from_u64(derive_seed(batch_seed, SEED_COMPONENT, i as u64));
                    let saved = std::mem::replace(&mut self.rng, derived);
                    self.next_color = bases[i];
                    shard::heal_component(self, input);
                    assert!(
                        self.next_color <= bases[i] + input.color_bound(),
                        "component overran its color namespace"
                    );
                    self.rng = saved;
                    checkpoints.push(self.actions.len());
                    hook::end(
                        &self.tracer,
                        Layer::Planner,
                        "plan.component",
                        seq,
                        i as u64,
                    );
                }
            }
            Some(pool) => {
                let mut slots = self.speculate_components(&inputs, &bases, batch_seed, pool, seq);
                // Commit in component order. A speculative outcome whose
                // footprint is disjoint from everything committed so far saw
                // exactly the state a sequential replay would have seen, so
                // it commits verbatim; otherwise replay it here against the
                // current state (the replayed footprint joins the fence like
                // any other, keeping later checks sound).
                let mut fence_colors: BTreeSet<CloudColor> = BTreeSet::new();
                let mut fence_nodes: BTreeSet<NodeId> = BTreeSet::new();
                for (i, input) in inputs.iter().enumerate() {
                    let speculative = slots[i].take();
                    let outcome = match speculative {
                        Some(o) if !o.conflicts_with(&fence_colors, &fence_nodes) => o,
                        _ => {
                            hook::instant(
                                &self.tracer,
                                Layer::Planner,
                                "plan.replay",
                                seq,
                                i as u64,
                            );
                            let mut replay = CompShard::new(
                                &*self,
                                derive_seed(batch_seed, SEED_COMPONENT, i as u64),
                                bases[i],
                                input.color_bound(),
                            );
                            shard::heal_component(&mut replay, input);
                            replay.into_outcome()
                        }
                    };
                    fence_colors.extend(outcome.touched_colors.iter().copied());
                    fence_nodes.extend(outcome.touched_nodes.iter().copied());
                    self.commit_component(outcome);
                    checkpoints.push(self.actions.len());
                }
            }
        }
        hook::end(&self.tracer, Layer::Planner, "plan.components", seq, 0);
        self.next_color = color_end;

        self.stats.deletions += ctx.len();
        self.stats.black_degree_sum += ctx.iter().map(|bv| bv.black_boundary.len()).sum::<usize>();
        let report = BatchReport {
            victims: ctx.len(),
            components: components.len(),
            secondaries_built: self.stats.secondaries_built - secondaries_before,
            combines: self.op_combines,
            edges_added: self.op_added,
            edges_removed: self.op_removed,
        };
        self.fold_op_counters();
        hook::end(
            &self.tracer,
            Layer::Planner,
            "plan.batch",
            seq,
            self.actions.len() as u64,
        );

        // Split the flat buffer into stages at the checkpoints (from the
        // back, so each split is a cheap tail move).
        let mut prologue = std::mem::take(&mut self.actions);
        let mut component_stages: Vec<BatchStage> = Vec::with_capacity(components.len());
        for (i, comp) in components.iter().enumerate().rev() {
            let actions = prologue.split_off(checkpoints[i]);
            component_stages.push(BatchStage {
                component: comp.clone(),
                actions,
            });
        }
        component_stages.reverse();
        let mut stages = Vec::with_capacity(components.len() + 1);
        stages.push(BatchStage {
            component: Vec::new(),
            actions: prologue,
        });
        stages.extend(component_stages);
        BatchRepairPlan { stages, report }
    }

    /// Detaches the victims of one cloud sequentially (same derived RNG the
    /// parallel path uses).
    fn detach_one(&mut self, color: CloudColor, victims: &[NodeId], batch_seed: u64) {
        let Some(mut cloud) = self.clouds.remove(&color) else {
            return;
        };
        let mut rng = StdRng::seed_from_u64(derive_seed(batch_seed, SEED_DETACH, color.as_u64()));
        let (action, emptied) = detach_cloud(color, &mut cloud, victims, &mut rng);
        self.finish_detach(color, cloud, action, emptied);
    }

    /// Fans the per-cloud detach tasks out over `pool`, merging results back
    /// in ascending color order. Clouds are moved out of the registry for
    /// the duration, so tasks share nothing.
    fn detach_parallel(
        &mut self,
        by_cloud: &BTreeMap<CloudColor, Vec<NodeId>>,
        batch_seed: u64,
        pool: &WorkerPool,
        seq: u64,
    ) {
        let mut tasks: Vec<(CloudColor, Cloud, &[NodeId])> = Vec::with_capacity(by_cloud.len());
        for (&c, vs) in by_cloud {
            if let Some(cloud) = self.clouds.remove(&c) {
                tasks.push((c, cloud, vs.as_slice()));
            }
        }
        let tracer = &self.tracer;
        let (tx, rx) = std::sync::mpsc::channel();
        pool.scope(|scope| {
            for (i, (c, mut cloud, vs)) in tasks.into_iter().enumerate() {
                let tx = tx.clone();
                let seed = derive_seed(batch_seed, SEED_DETACH, c.as_u64());
                // Lanes key on *task* identity (the deterministic merge
                // index), never on thread id, so the recorded tree is
                // identical at every thread count.
                let lane = i as u64 + 1;
                scope.spawn(move || {
                    hook::begin_lane(tracer, lane, Layer::Planner, "spec.detach", seq, c.as_u64());
                    let mut rng = StdRng::seed_from_u64(seed);
                    let (action, emptied) = detach_cloud(c, &mut cloud, vs, &mut rng);
                    hook::end_lane(tracer, lane, Layer::Planner, "spec.detach", seq, c.as_u64());
                    let _ = tx.send((i, c, cloud, action, emptied));
                });
            }
        });
        drop(tx);
        let mut results: Vec<(usize, CloudColor, Cloud, Option<PlanAction>, bool)> =
            rx.try_iter().collect();
        results.sort_unstable_by_key(|r| r.0);
        for (_, c, cloud, action, emptied) in results {
            self.finish_detach(c, cloud, action, emptied);
        }
    }

    /// Reinstates (or retires) a detached cloud and records its net patch.
    fn finish_detach(
        &mut self,
        color: CloudColor,
        cloud: Cloud,
        action: Option<PlanAction>,
        emptied: bool,
    ) {
        if let Some(action) = action {
            self.emit(action);
        }
        if emptied {
            if let Ok(pos) = self.color_order.binary_search(&color) {
                self.color_order.remove(pos);
            }
        } else {
            self.clouds.insert(color, cloud);
        }
    }

    /// Runs every component speculatively against the current (post-detach)
    /// state, returning outcomes indexed by component.
    fn speculate_components(
        &self,
        inputs: &[ComponentInput],
        bases: &[u64],
        batch_seed: u64,
        pool: &WorkerPool,
        seq: u64,
    ) -> Vec<Option<CompOutcome>> {
        let mut slots: Vec<Option<CompOutcome>> = Vec::with_capacity(inputs.len());
        slots.resize_with(inputs.len(), || None);
        let base: &RepairPlanner = self;
        let tracer = &self.tracer;
        let (tx, rx) = std::sync::mpsc::channel();
        pool.scope(|scope| {
            for (i, input) in inputs.iter().enumerate() {
                let tx = tx.clone();
                let seed = derive_seed(batch_seed, SEED_COMPONENT, i as u64);
                let color_base = bases[i];
                // Lane = component index, so the speculation spans land in
                // the same slot whichever worker picks the task up.
                let lane = i as u64 + 1;
                scope.spawn(move || {
                    hook::begin_lane(
                        tracer,
                        lane,
                        Layer::Planner,
                        "spec.component",
                        seq,
                        i as u64,
                    );
                    let mut sh = CompShard::new(base, seed, color_base, input.color_bound());
                    shard::heal_component(&mut sh, input);
                    hook::end_lane(
                        tracer,
                        lane,
                        Layer::Planner,
                        "spec.component",
                        seq,
                        i as u64,
                    );
                    let _ = tx.send((i, sh.into_outcome()));
                });
            }
        });
        drop(tx);
        for (i, outcome) in rx.try_iter() {
            slots[i] = Some(outcome);
        }
        slots
    }

    /// Applies one component's overlay outcome to the planner in one pass.
    fn commit_component(&mut self, outcome: CompOutcome) {
        for (c, entry) in outcome.clouds {
            match entry {
                None => {
                    self.registry_remove(c);
                }
                Some(cloud) => {
                    if self.clouds.insert(c, cloud).is_none() {
                        self.register_color(c);
                    }
                }
            }
        }
        for (v, st) in outcome.nodes {
            self.nodes.insert(v, st);
        }
        for (p, m) in outcome.attached {
            if m.is_empty() {
                self.attached_to.remove(&p);
            } else {
                self.attached_to.insert(p, m);
            }
        }
        self.actions.extend(outcome.actions);
        self.op_added += outcome.op_added;
        self.op_removed += outcome.op_removed;
        self.op_shares += outcome.op_shares;
        self.op_combines += outcome.op_combines;
        self.stats.secondaries_built += outcome.secondaries_built;
    }

    /// Removes the attachment entry of a deleted bridge, returning the
    /// primary cloud it was bridging for.
    fn take_bridge_target(&mut self, f: CloudColor, v: NodeId) -> Option<CloudColor> {
        let ci = self
            .clouds
            .get_mut(&f)
            .and_then(|cl| cl.attachments_mut().remove(&v));
        if let Some(ci) = ci {
            self.attach_dec(ci, f);
        }
        ci
    }
}

/// Stable numeric code of a healing case for the `plan.case` instant's `arg`
/// (part of the deterministic trace projection — do not renumber).
fn case_code(case: HealCase) -> u64 {
    match case {
        HealCase::Dropped => 0,
        HealCase::AllBlack => 1,
        HealCase::PrimaryOnly => 2,
        HealCase::Bridge => 3,
        HealCase::Batch => 4,
    }
}

/// Detaches several (already graph-removed) victims from one cloud, applying
/// only the *net* edge delta — intermediate expander rebuilds may transiently
/// reference other still-registered victims, but the final edge set only
/// spans live members. Pure in the cloud + RNG, so the parallel prologue can
/// run it shared-nothing.
fn detach_cloud(
    color: CloudColor,
    cloud: &mut Cloud,
    victims: &[NodeId],
    rng: &mut StdRng,
) -> (Option<PlanAction>, bool) {
    let before = cloud.expander().edges().to_vec();
    let mut detached = Vec::new();
    for &v in victims {
        if cloud.expander().contains(v) {
            let _ = cloud.expander_mut().remove(v, rng);
            cloud.free_members_mut().remove(&v);
            detached.push(v);
        }
    }
    if detached.is_empty() {
        return (None, cloud.is_empty());
    }
    // Both snapshots are sorted, so the net delta is one merge walk (same
    // ascending order the former set-difference produced).
    let delta = EdgeDelta::between(&before, cloud.expander().edges());
    (
        Some(PlanAction::PatchCloud {
            color,
            removed: detached,
            delta,
        }),
        cloud.is_empty(),
    )
}

/// The direct store: the planner itself, with zero indirection overhead.
/// Reads record nothing (there is no speculation to conflict with) and
/// writes go straight to the registry.
impl PlanStore for RepairPlanner {
    fn config(&self) -> &XhealConfig {
        &self.config
    }

    fn contains_cloud(&mut self, c: CloudColor) -> bool {
        self.clouds.contains_key(&c)
    }

    fn cloud_ref(&mut self, c: CloudColor) -> Option<&Cloud> {
        self.clouds.get(&c)
    }

    fn cloud_mut(&mut self, c: CloudColor) -> Option<&mut Cloud> {
        self.clouds.get_mut(&c)
    }

    fn insert_cloud(&mut self, c: CloudColor, cloud: Cloud) {
        self.registry_insert(c, cloud);
    }

    fn remove_cloud(&mut self, c: CloudColor) -> Option<Cloud> {
        self.registry_remove(c)
    }

    fn node_ref(&mut self, v: NodeId) -> Option<&NodeState> {
        self.nodes.get(&v)
    }

    fn node_mut(&mut self, v: NodeId) -> Option<&mut NodeState> {
        self.nodes.get_mut(&v)
    }

    fn attach_inc(&mut self, p: CloudColor, f: CloudColor) {
        *self.attached_to.entry(p).or_default().entry(f).or_insert(0) += 1;
    }

    fn attach_dec(&mut self, p: CloudColor, f: CloudColor) {
        let Some(m) = self.attached_to.get_mut(&p) else {
            debug_assert!(false, "attachment index missing primary {p}");
            return;
        };
        match m.get_mut(&f) {
            Some(c) if *c > 1 => *c -= 1,
            Some(_) => {
                m.remove(&f);
                if m.is_empty() {
                    self.attached_to.remove(&p);
                }
            }
            None => debug_assert!(false, "attachment index missing ({p},{f})"),
        }
    }

    fn attached_secondaries_into(&mut self, p: CloudColor, out: &mut BTreeSet<CloudColor>) {
        if let Some(m) = self.attached_to.get(&p) {
            out.extend(m.keys().copied());
        }
    }

    fn fresh_color(&mut self) -> CloudColor {
        let c = CloudColor::new(self.next_color);
        self.next_color += 1;
        c
    }

    fn build_expander(
        &mut self,
        members: &[NodeId],
    ) -> (MaintainedExpander, Vec<(NodeId, NodeId)>) {
        MaintainedExpander::new(members, self.config.kappa, &mut self.rng)
    }

    fn expander_insert(&mut self, c: CloudColor, v: NodeId) -> EdgeDelta {
        let cloud = self.clouds.get_mut(&c).expect("cloud alive");
        cloud.expander_mut().insert(v, &mut self.rng)
    }

    fn prepare_free_reads(&mut self, _colors: &[CloudColor]) {}

    fn free_set(&self, c: CloudColor) -> &BTreeSet<NodeId> {
        self.clouds
            .get(&c)
            .map(Cloud::free_members)
            .unwrap_or(&EMPTY_FREE)
    }

    fn emit(&mut self, action: PlanAction) {
        let delta = action.delta();
        self.op_added += delta.added.len();
        self.op_removed += delta.removed.len();
        self.actions.push(action);
    }

    fn note_share(&mut self) {
        self.op_shares += 1;
    }

    fn note_combine(&mut self) {
        self.op_combines += 1;
    }

    fn note_secondary_built(&mut self) {
        self.stats.secondaries_built += 1;
    }
}

/// Maximum bipartite matching (Kuhn's algorithm) of clouds to free nodes.
/// Returns one chosen representative per cloud where matchable.
///
/// Adjacency is consumed lazily off each cloud's maintained free set: in the
/// common case (every cloud has an unclaimed free node early in its set) only
/// the first few candidates are ever visited, so huge combined clouds cost
/// nothing here.
pub(crate) fn match_representatives(adjacency: &[&BTreeSet<NodeId>]) -> Vec<Option<NodeId>> {
    let mut owner: BTreeMap<NodeId, usize> = BTreeMap::new();

    fn try_assign(
        i: usize,
        adjacency: &[&BTreeSet<NodeId>],
        owner: &mut BTreeMap<NodeId, usize>,
        visited: &mut BTreeSet<NodeId>,
    ) -> bool {
        for &z in adjacency[i].iter() {
            if visited.contains(&z) {
                continue;
            }
            visited.insert(z);
            let current = owner.get(&z).copied();
            match current {
                None => {
                    owner.insert(z, i);
                    return true;
                }
                Some(j) => {
                    if try_assign(j, adjacency, owner, visited) {
                        owner.insert(z, i);
                        return true;
                    }
                }
            }
        }
        false
    }

    for i in 0..adjacency.len() {
        let mut visited = BTreeSet::new();
        let _ = try_assign(i, adjacency, &mut owner, &mut visited);
    }

    let mut reps = vec![None; adjacency.len()];
    for (z, i) in owner {
        reps[i] = Some(z);
    }
    reps
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    #[test]
    fn match_representatives_prefers_distinct() {
        let a: BTreeSet<NodeId> = [n(1), n(2)].into_iter().collect();
        let b: BTreeSet<NodeId> = [n(1)].into_iter().collect();
        let reps = match_representatives(&[&a, &b]);
        assert_eq!(reps[1], Some(n(1)), "cloud 1 only has node 1");
        assert_eq!(reps[0], Some(n(2)), "cloud 0 must yield node 1");
    }

    #[test]
    fn match_representatives_reports_deficit() {
        let a: BTreeSet<NodeId> = [n(1)].into_iter().collect();
        let b: BTreeSet<NodeId> = [n(1)].into_iter().collect();
        let reps = match_representatives(&[&a, &b]);
        let filled = reps.iter().flatten().count();
        assert_eq!(filled, 1);
    }

    #[test]
    fn plans_carry_every_edge_effect() {
        use xheal_graph::generators;
        let mut star = generators::star(10);
        let mut planner = RepairPlanner::new(star.nodes(), XhealConfig::new(4).with_seed(1));
        let incident = star.remove_node(n(0)).unwrap();
        let plan = planner.plan_deletion(n(0), &incident, incident.len());
        let added: usize = plan.actions.iter().map(|a| a.delta().added.len()).sum();
        assert_eq!(added, plan.report.edges_added);
        assert_eq!(plan.case(), HealCase::AllBlack);
        assert!(plan.participants().len() >= 9);
    }

    #[test]
    fn dropped_deletions_plan_nothing() {
        use xheal_graph::generators;
        let mut path = generators::path(3);
        let mut planner = RepairPlanner::new(path.nodes(), XhealConfig::default());
        let incident = path.remove_node(n(0)).unwrap();
        let plan = planner.plan_deletion(n(0), &incident, 1);
        assert_eq!(plan.case(), HealCase::Dropped);
        assert!(plan.actions.is_empty());
    }

    #[test]
    fn derive_seed_separates_tags_and_keys() {
        let s = 0xDEAD_BEEF_u64;
        let a = derive_seed(s, SEED_DETACH, 0);
        let b = derive_seed(s, SEED_DETACH, 1);
        let c = derive_seed(s, SEED_COMPONENT, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_seed(s, SEED_DETACH, 0), "pure function");
    }

    #[test]
    fn parallel_batch_plan_matches_sequential() {
        use xheal_graph::generators;
        let mut gen_rng = StdRng::seed_from_u64(7);
        let g = generators::erdos_renyi(200, 0.04, &mut gen_rng);
        let mut seq = RepairPlanner::new(g.nodes(), XhealConfig::new(4).with_seed(3));
        let mut par = seq.clone();
        let pool = WorkerPool::new(4);

        // A few rounds so later batches hit colored state.
        let mut graph_a = g.clone();
        let mut graph_b = g.clone();
        for round in 0..6 {
            let victims: Vec<NodeId> = graph_a
                .nodes()
                .filter(|v| (v.as_u64() + round) % 17 == 0)
                .take(8)
                .collect();
            let ctx = BatchVictim::capture(&graph_a, &victims).unwrap();
            for &v in &victims {
                let _ = graph_a.remove_node(v);
                let _ = graph_b.remove_node(v);
            }
            let plan_seq = seq.plan_batch_deletion(&ctx);
            let plan_par = par.plan_batch_deletion_parallel(&ctx, &pool);
            assert_eq!(plan_seq.stages.len(), plan_par.stages.len());
            for (a, b) in plan_seq.stages.iter().zip(plan_par.stages.iter()) {
                assert_eq!(a.component, b.component);
                assert_eq!(a.actions, b.actions);
            }
            plan_seq.apply_to(&mut graph_a);
            plan_par.apply_to(&mut graph_b);
        }
        assert_eq!(seq.cloud_colors(), par.cloud_colors());
        assert_eq!(seq.stats(), par.stats());
    }
}
