//! The repair *decisions* of Xheal (Algorithms 3.2–3.6), separated from
//! graph execution.
//!
//! [`RepairPlanner`] owns everything the healing decisions depend on — the
//! cloud registry, per-node membership state, the healer's private
//! randomness, and the cumulative statistics — but never touches the network
//! graph. Each deletion produces a [`RepairPlan`] of explicit
//! [`PlanAction`]s; executors ([`crate::Xheal`] centrally, `xheal-dist` over
//! the LOCAL-model engine) apply those actions to their graph. Because every
//! random draw happens inside the planner, two executors replaying the same
//! schedule with the same seed make bit-identical topology changes.

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::StdRng;
use rand::SeedableRng;

use xheal_expander::{EdgeDelta, MaintainedExpander};
use xheal_graph::{CloudColor, CloudKind, EdgeLabels, FxHashMap, NodeId};

use crate::batch::{victim_components, BatchRepairPlan, BatchReport, BatchStage, BatchVictim};
use crate::cloud::{Cloud, NodeState};
use crate::config::XhealConfig;
use crate::plan::{PlanAction, RepairPlan};
use crate::stats::{DeletionReport, HealCase, HealStats};

/// The shared decision engine of the centralized and distributed healers.
///
/// # Examples
///
/// ```
/// use xheal_core::{RepairPlanner, XhealConfig};
/// use xheal_graph::{generators, NodeId};
///
/// let mut star = generators::star(8);
/// let mut planner = RepairPlanner::new(star.nodes(), XhealConfig::new(4));
/// // Ask for the plan healing the deletion of the hub.
/// let incident = star.remove_node(NodeId::new(0)).unwrap();
/// let plan = planner.plan_deletion(NodeId::new(0), &incident, incident.len());
/// // One primary cloud over the 7 leaves (Case 1).
/// assert_eq!(plan.actions.len(), 1);
/// assert_eq!(planner.cloud_count(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct RepairPlanner {
    /// Cloud registry. Point-lookup map plus `color_order`, the sorted live
    /// color list maintained on create/delete, so the hot path gets O(1)
    /// access while [`RepairPlanner::cloud_colors`] keeps its promised
    /// ascending output (invariant I9: `color_order` is sorted and holds
    /// exactly the registry's keys).
    clouds: FxHashMap<CloudColor, Cloud>,
    /// Live colors, ascending. Colors are allocated monotonically, so
    /// insertion is an amortized-O(1) push; deletion is a binary-searched
    /// remove.
    color_order: Vec<CloudColor>,
    /// Reverse attachment index: primary color → (secondary color → number
    /// of that secondary's bridges targeting the primary). Lets `combine`
    /// find referencing secondaries without scanning the whole registry.
    attached_to: BTreeMap<CloudColor, BTreeMap<CloudColor, u32>>,
    /// Per-node membership state. Point-lookup only — never iterated — so
    /// the deterministic replay does not depend on its order and the hot
    /// path gets O(1) access.
    nodes: FxHashMap<NodeId, NodeState>,
    config: XhealConfig,
    rng: StdRng,
    next_color: u64,
    stats: HealStats,
    /// Plan buffer of the operation being planned.
    actions: Vec<PlanAction>,
    /// Reusable scratch for per-deletion black-neighbor extraction, so the
    /// churn hot loop allocates nothing per event.
    scratch_black: Vec<NodeId>,
    // Per-operation counters (reset at the start of each deletion).
    op_added: usize,
    op_removed: usize,
    op_shares: usize,
    op_combines: usize,
}

impl RepairPlanner {
    /// Creates a planner for a network initially containing `nodes`, all
    /// cloudless (every existing edge is black, per the model).
    pub fn new(nodes: impl IntoIterator<Item = NodeId>, config: XhealConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        let nodes: FxHashMap<NodeId, NodeState> = nodes
            .into_iter()
            .map(|v| (v, NodeState::default()))
            .collect();
        RepairPlanner {
            clouds: FxHashMap::default(),
            color_order: Vec::new(),
            attached_to: BTreeMap::new(),
            nodes,
            config,
            rng,
            next_color: 0,
            stats: HealStats::default(),
            actions: Vec::new(),
            scratch_black: Vec::new(),
            op_added: 0,
            op_removed: 0,
            op_shares: 0,
            op_combines: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &XhealConfig {
        &self.config
    }

    /// Cloud expander degree κ.
    pub fn kappa(&self) -> usize {
        self.config.kappa
    }

    /// Cumulative healing statistics.
    pub fn stats(&self) -> &HealStats {
        &self.stats
    }

    /// All live cloud colors with their kinds, ascending.
    pub fn cloud_colors(&self) -> Vec<(CloudColor, CloudKind)> {
        self.color_order
            .iter()
            .map(|&c| (c, self.clouds[&c].kind()))
            .collect()
    }

    /// Read access to a cloud.
    pub fn cloud(&self, color: CloudColor) -> Option<&Cloud> {
        self.clouds.get(&color)
    }

    /// Read access to a node's membership state.
    pub fn node_state(&self, v: NodeId) -> Option<&NodeState> {
        self.nodes.get(&v)
    }

    /// Number of live clouds.
    pub fn cloud_count(&self) -> usize {
        self.clouds.len()
    }

    /// Invariant checks (I8, I9): the reverse attachment index holds exactly
    /// the bridge counts recomputable from the live secondary clouds, and
    /// the maintained color order is sorted and mirrors the registry keys.
    pub(crate) fn validate_attachment_index(&self) -> Result<(), String> {
        if !self.color_order.is_sorted() {
            return Err(format!("color order not ascending: {:?}", self.color_order));
        }
        if self.color_order.len() != self.clouds.len()
            || self
                .color_order
                .iter()
                .any(|c| !self.clouds.contains_key(c))
        {
            return Err(format!(
                "color order {:?} does not mirror the {} registered clouds",
                self.color_order,
                self.clouds.len()
            ));
        }
        let mut recomputed: BTreeMap<CloudColor, BTreeMap<CloudColor, u32>> = BTreeMap::new();
        for (&f, cloud) in &self.clouds {
            if cloud.kind() == CloudKind::Secondary {
                for &p in cloud.attachments().values() {
                    *recomputed.entry(p).or_default().entry(f).or_insert(0) += 1;
                }
            }
        }
        if recomputed != self.attached_to {
            return Err(format!(
                "attachment index {:?} != recomputed {recomputed:?}",
                self.attached_to
            ));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Model events
    // ------------------------------------------------------------------

    /// Records an adversarial insertion. Xheal takes no healing action on
    /// insertions (Algorithm 3.1 lines 1–2), so no plan is produced.
    pub fn note_insert(&mut self, v: NodeId) {
        self.nodes.insert(v, NodeState::default());
        self.stats.insertions += 1;
    }

    /// Plans the repair for the deletion of `v`, whose incident edges at
    /// deletion time were `incident` (with their labels) and whose total
    /// degree was `degree`.
    ///
    /// The planner's cloud/membership state advances to the post-repair
    /// state; the caller must apply the returned plan to its graph to stay
    /// consistent.
    pub fn plan_deletion(
        &mut self,
        v: NodeId,
        incident: &[(NodeId, EdgeLabels)],
        degree: usize,
    ) -> RepairPlan {
        self.reset_op_counters();
        self.actions.clear();

        let state = self.nodes.remove(&v).unwrap_or_default();
        let mut black_nbrs = std::mem::take(&mut self.scratch_black);
        black_nbrs.clear();
        black_nbrs.extend(
            incident
                .iter()
                .filter(|(_, l)| l.is_black())
                .map(|&(u, _)| u),
        );
        let black_degree = black_nbrs.len();
        self.stats.deletions += 1;
        self.stats.black_degree_sum += black_degree;

        let case = if state.is_cloudless() {
            // Case 1: all deleted edges are black.
            if black_nbrs.len() >= 2 {
                self.create_primary_cloud(&black_nbrs);
                HealCase::AllBlack
            } else {
                // Degree <= 1: "the deleted node is just dropped".
                HealCase::Dropped
            }
        } else {
            self.plan_colored_deletion(v, state, &black_nbrs)
        };
        self.scratch_black = black_nbrs;

        let report = DeletionReport {
            case,
            edges_added: self.op_added,
            edges_removed: self.op_removed,
            combined: self.op_combines > 0,
            shares: self.op_shares,
            black_degree,
            degree,
        };
        self.fold_op_counters();
        RepairPlan {
            actions: std::mem::take(&mut self.actions),
            report,
        }
    }

    // ------------------------------------------------------------------
    // Case 2 machinery
    // ------------------------------------------------------------------

    fn plan_colored_deletion(
        &mut self,
        v: NodeId,
        state: NodeState,
        black_nbrs: &[NodeId],
    ) -> HealCase {
        // FixPrimary: remove v from each of its primary clouds.
        let mut alive_primaries: Vec<CloudColor> = Vec::new();
        for &c in &state.primaries {
            if !self.remove_from_cloud(c, v) {
                alive_primaries.push(c);
            }
        }

        // Black neighbors become singleton primary clouds (Case 2 prose).
        let mut singletons: Vec<CloudColor> = Vec::new();
        for &w in black_nbrs {
            singletons.push(self.create_primary_cloud(&[w]));
        }

        match state.secondary {
            None => {
                // Case 2.1.
                let mut group = alive_primaries;
                group.extend(singletons);
                self.make_secondary_among(&group);
                HealCase::PrimaryOnly
            }
            Some(f) => {
                // Case 2.2: v was the bridge of some primary ci in F.
                let ci = self
                    .clouds
                    .get_mut(&f)
                    .and_then(|cl| cl.attachments_mut().remove(&v));
                if let Some(ci) = ci {
                    self.attach_index_dec(ci, f);
                }
                let f_emptied = self.remove_from_cloud(f, v);
                let ci_alive = ci.filter(|c| self.clouds.contains_key(c));
                let anchor = if f_emptied {
                    // F died with v; the ci side has no F component to join.
                    ci_alive
                } else {
                    self.fix_secondary(f, ci_alive)
                };

                // Clouds still connected through F need no new secondary.
                let attached_now: BTreeSet<CloudColor> = self
                    .clouds
                    .get(&f)
                    .map(|cl| cl.attachments().values().copied().collect())
                    .unwrap_or_default();

                let mut group: Vec<CloudColor> = alive_primaries
                    .into_iter()
                    .filter(|c| !attached_now.contains(c) && Some(*c) != anchor)
                    .collect();
                group.extend(singletons);
                if let Some(a) = anchor {
                    // Connectivity fix (DESIGN.md §3.2): an F-side anchor
                    // joins the new secondary so the two groups stay linked.
                    if !group.is_empty() {
                        group.push(a);
                    }
                }
                self.make_secondary_among(&group);
                HealCase::Bridge
            }
        }
    }

    /// FixSecondary (Algorithm 3.5): replace the deleted bridge of `ci` in
    /// `f` with a fresh free node, borrowing or combining as needed. Returns
    /// the cloud that anchors the `F`-side component (for the connectivity
    /// fix), or `None` if that side dissolved entirely.
    fn fix_secondary(&mut self, f: CloudColor, ci_alive: Option<CloudColor>) -> Option<CloudColor> {
        let f_primaries: BTreeSet<CloudColor> = {
            let cloud = self.clouds.get(&f).expect("caller checked f alive");
            let mut p: BTreeSet<CloudColor> = cloud.attachments().values().copied().collect();
            if let Some(ci) = ci_alive {
                p.insert(ci);
            }
            p
        };

        if let Some(ci) = ci_alive {
            // Prefer a free node of ci itself.
            let mut pick: Option<(NodeId, bool)> = self.first_free_node_of(ci).map(|z| (z, false));
            if pick.is_none() && !self.config.disable_sharing {
                // Borrow from the other primaries of F (PickFreeNode's "ask
                // neighbor clouds").
                for &c in f_primaries.iter().filter(|&&c| c != ci) {
                    if let Some(z) = self.first_free_node_of(c) {
                        pick = Some((z, true));
                        break;
                    }
                }
            }
            match pick {
                Some((z, shared)) => {
                    if shared {
                        // Sharing adds z to ci itself.
                        self.insert_into_cloud(ci, z);
                        self.op_shares += 1;
                    }
                    self.insert_bridge(f, z, ci);
                }
                None => {
                    // No free node anywhere among F's primaries: combine
                    // them all into one primary cloud (F dissolves inside).
                    return self.combine(&f_primaries);
                }
            }
        }

        // Vacuous secondary check: a secondary with <= 1 member connects
        // nothing; dissolve it and report the survivor's primary as anchor.
        let len = self.clouds.get(&f).map(Cloud::len).unwrap_or(0);
        if len <= 1 {
            let survivor_primary = self
                .clouds
                .get(&f)
                .and_then(|cl| cl.attachments().values().next().copied());
            self.delete_cloud(f);
            return survivor_primary.filter(|c| self.clouds.contains_key(c));
        }
        ci_alive.or_else(|| {
            self.clouds
                .get(&f)
                .and_then(|cl| cl.attachments().values().next().copied())
                .filter(|c| self.clouds.contains_key(c))
        })
    }

    /// MakeSecondary (Algorithm 3.4): connect one free node per cloud of
    /// `group` into a fresh secondary cloud; combine if there are fewer free
    /// nodes than clouds.
    fn make_secondary_among(&mut self, group: &[CloudColor]) -> Option<CloudColor> {
        // Deduplicate and keep only live, non-empty clouds.
        let group: Vec<CloudColor> = {
            let mut seen = BTreeSet::new();
            group
                .iter()
                .copied()
                .filter(|c| self.clouds.get(c).is_some_and(|cl| !cl.is_empty()))
                .filter(|c| seen.insert(*c))
                .collect()
        };
        if group.len() <= 1 {
            return None;
        }
        if self.config.disable_secondary {
            self.combine(&group.iter().copied().collect());
            return None;
        }

        // Distinct representatives: maximum bipartite matching preferring
        // each cloud's own members (over the incrementally maintained free
        // sets — no membership scans), then sharing for any cloud left over.
        let mut reps = {
            let adjacency: Vec<&BTreeSet<NodeId>> =
                group.iter().map(|&c| self.free_set_of(c)).collect();
            match_representatives(&adjacency)
        };
        let deficit = reps.iter().any(Option::is_none);
        let mut union_free: Vec<NodeId> = Vec::new();
        if deficit {
            // Materialize the free-node union (ascending) only when some
            // cloud went unmatched — the slow path.
            let u: BTreeSet<NodeId> = group
                .iter()
                .flat_map(|&c| self.free_set_of(c).iter().copied())
                .collect();
            if u.len() < group.len() {
                // Fewer free nodes than clouds: combine (Case 2.1 prose).
                self.combine(&group.iter().copied().collect());
                return None;
            }
            if self.config.disable_sharing {
                self.combine(&group.iter().copied().collect());
                return None;
            }
            union_free = u.into_iter().collect();
        }
        let mut used: BTreeSet<NodeId> = reps.iter().flatten().copied().collect();
        for (i, rep) in reps.iter_mut().enumerate() {
            if rep.is_none() {
                let z = union_free
                    .iter()
                    .copied()
                    .find(|z| !used.contains(z))
                    .expect("union_free.len() >= group.len() guarantees a spare");
                used.insert(z);
                // Sharing: the borrowed node joins the deficient cloud.
                self.insert_into_cloud(group[i], z);
                self.op_shares += 1;
                *rep = Some(z);
            }
        }

        let members: Vec<NodeId> = reps.iter().map(|r| r.expect("filled")).collect();
        let f = self.create_cloud_raw(CloudKind::Secondary, &members);
        for (i, &rep) in members.iter().enumerate() {
            self.clouds
                .get_mut(&f)
                .expect("just created")
                .attachments_mut()
                .insert(rep, group[i]);
            self.attach_index_inc(group[i], f);
            self.nodes
                .get_mut(&rep)
                .expect("members are live")
                .secondary = Some(f);
            self.set_free_status(rep, false);
        }
        self.stats.secondaries_built += 1;
        Some(f)
    }

    /// Combines a set of primary clouds into one fresh primary cloud
    /// (the paper's expensive amortized operation).
    ///
    /// Secondary clouds all of whose attached primaries lie inside the set
    /// are dissolved (their bridges become free again); secondaries that also
    /// connect outside clouds have their attachments re-pointed at the new
    /// combined cloud.
    fn combine(&mut self, colors: &BTreeSet<CloudColor>) -> Option<CloudColor> {
        self.op_combines += 1;
        let mut all_nodes: BTreeSet<NodeId> = BTreeSet::new();
        for c in colors {
            if let Some(cl) = self.clouds.get(c) {
                all_nodes.extend(cl.members().iter().copied());
            }
        }
        if all_nodes.is_empty() {
            return None;
        }

        // Delete the old primary clouds.
        for &c in colors {
            if self.clouds.contains_key(&c) {
                self.delete_cloud(c);
            }
        }

        // Handle secondaries referencing the combined primaries (found via
        // the reverse attachment index — no registry scan).
        let new_color = self.fresh_color();
        let referencing = self.secondaries_attached_to(colors);
        for fc in referencing {
            let all_inside = self.clouds[&fc]
                .attachments()
                .values()
                .all(|p| colors.contains(p));
            if all_inside {
                // Redundant: the combined cloud connects these directly.
                self.delete_cloud(fc);
            } else {
                let cloud = self.clouds.get_mut(&fc).expect("live");
                let mut old_targets: Vec<CloudColor> = Vec::new();
                for target in cloud.attachments_mut().values_mut() {
                    if colors.contains(target) {
                        old_targets.push(*target);
                        *target = new_color;
                    }
                }
                for p in old_targets {
                    self.attach_index_dec(p, fc);
                    self.attach_index_inc(new_color, fc);
                }
            }
        }

        // Build the combined primary cloud.
        let members: Vec<NodeId> = all_nodes.into_iter().collect();
        self.create_cloud_with_color(new_color, CloudKind::Primary, &members);
        Some(new_color)
    }

    // ------------------------------------------------------------------
    // Cloud registry primitives (every graph effect goes through `emit`)
    // ------------------------------------------------------------------

    fn fresh_color(&mut self) -> CloudColor {
        let c = CloudColor::new(self.next_color);
        self.next_color += 1;
        c
    }

    /// Registers a cloud, keeping `color_order` sorted. Colors allocate
    /// monotonically, so the common case is a push; `combine` can finish
    /// building its pre-allocated color after deletions, hence the
    /// binary-searched general case.
    fn registry_insert(&mut self, color: CloudColor, cloud: Cloud) {
        let prev = self.clouds.insert(color, cloud);
        debug_assert!(prev.is_none(), "color {color} registered twice");
        match self.color_order.last() {
            Some(&last) if last >= color => {
                if let Err(pos) = self.color_order.binary_search(&color) {
                    self.color_order.insert(pos, color);
                }
            }
            _ => self.color_order.push(color),
        }
    }

    /// Unregisters a cloud, keeping `color_order` in sync.
    fn registry_remove(&mut self, color: CloudColor) -> Option<Cloud> {
        let cloud = self.clouds.remove(&color)?;
        if let Ok(pos) = self.color_order.binary_search(&color) {
            self.color_order.remove(pos);
        }
        Some(cloud)
    }

    fn emit(&mut self, action: PlanAction) {
        let delta = action.delta();
        self.op_added += delta.added.len();
        self.op_removed += delta.removed.len();
        self.actions.push(action);
    }

    /// Creates a primary cloud over `members` and registers memberships.
    fn create_primary_cloud(&mut self, members: &[NodeId]) -> CloudColor {
        let color = self.fresh_color();
        self.create_cloud_with_color(color, CloudKind::Primary, members);
        color
    }

    /// Creates a cloud (either kind) without setting secondary attachments.
    fn create_cloud_raw(&mut self, kind: CloudKind, members: &[NodeId]) -> CloudColor {
        let color = self.fresh_color();
        self.create_cloud_with_color(color, kind, members);
        color
    }

    fn create_cloud_with_color(&mut self, color: CloudColor, kind: CloudKind, members: &[NodeId]) {
        let (expander, edges) = MaintainedExpander::new(members, self.config.kappa, &mut self.rng);
        let delta = EdgeDelta {
            added: edges,
            removed: Vec::new(),
        };
        self.registry_insert(color, Cloud::new(kind, expander));
        self.emit(PlanAction::BuildCloud {
            color,
            kind,
            members: members.to_vec(),
            delta,
        });
        if kind == CloudKind::Primary {
            let mut free: Vec<NodeId> = Vec::with_capacity(members.len());
            for &m in members {
                let st = self.nodes.get_mut(&m).expect("members are live");
                st.primaries.insert(color);
                if st.is_free() {
                    free.push(m);
                }
            }
            self.clouds
                .get_mut(&color)
                .expect("just created")
                .free_members_mut()
                .extend(free);
        }
    }

    /// Records one more bridge of secondary `f` targeting primary `p`.
    fn attach_index_inc(&mut self, p: CloudColor, f: CloudColor) {
        *self.attached_to.entry(p).or_default().entry(f).or_insert(0) += 1;
    }

    /// Removes one bridge of secondary `f` targeting primary `p`.
    fn attach_index_dec(&mut self, p: CloudColor, f: CloudColor) {
        let Some(m) = self.attached_to.get_mut(&p) else {
            debug_assert!(false, "attachment index missing primary {p}");
            return;
        };
        match m.get_mut(&f) {
            Some(c) if *c > 1 => *c -= 1,
            Some(_) => {
                m.remove(&f);
                if m.is_empty() {
                    self.attached_to.remove(&p);
                }
            }
            None => debug_assert!(false, "attachment index missing ({p},{f})"),
        }
    }

    /// The live secondary clouds with a bridge into any color of `colors`,
    /// ascending (the set `combine` must dissolve or re-point).
    fn secondaries_attached_to(&self, colors: &BTreeSet<CloudColor>) -> Vec<CloudColor> {
        let mut out: BTreeSet<CloudColor> = BTreeSet::new();
        for c in colors {
            if let Some(m) = self.attached_to.get(c) {
                out.extend(m.keys().copied());
            }
        }
        out.into_iter()
            .filter(|fc| self.clouds.contains_key(fc))
            .collect()
    }

    /// Re-files `v` in the free-member sets of all of its primary clouds
    /// after its secondary duty changed.
    fn set_free_status(&mut self, v: NodeId, free: bool) {
        let Some(st) = self.nodes.get(&v) else {
            return;
        };
        // Membership lists are tiny (a node is in O(1) primaries); clone to
        // release the borrow.
        let primaries: Vec<CloudColor> = st.primaries.iter().copied().collect();
        for c in primaries {
            if let Some(cloud) = self.clouds.get_mut(&c) {
                if free {
                    cloud.free_members_mut().insert(v);
                } else {
                    cloud.free_members_mut().remove(&v);
                }
            }
        }
    }

    /// Removes `v` from a cloud, returning `true` when the cloud emptied and
    /// was deleted.
    fn remove_from_cloud(&mut self, color: CloudColor, v: NodeId) -> bool {
        let Some(cloud) = self.clouds.get_mut(&color) else {
            return true;
        };
        if !cloud.expander().contains(v) {
            return cloud.is_empty();
        }
        let delta = {
            let rng = &mut self.rng;
            cloud.expander_mut().remove(v, rng)
        };
        let kind = cloud.kind();
        if kind == CloudKind::Primary {
            cloud.free_members_mut().remove(&v);
        }
        self.emit(PlanAction::PatchCloud {
            color,
            removed: vec![v],
            delta,
        });
        let mut freed = false;
        if let Some(st) = self.nodes.get_mut(&v) {
            match kind {
                CloudKind::Primary => {
                    st.primaries.remove(&color);
                }
                CloudKind::Secondary => {
                    if st.secondary == Some(color) {
                        st.secondary = None;
                        freed = true;
                    }
                }
            }
        }
        if freed {
            // Losing its bridge duty makes v free again in its primaries.
            self.set_free_status(v, true);
        }
        let emptied = self.clouds.get(&color).is_some_and(Cloud::is_empty);
        if emptied {
            self.registry_remove(color);
        }
        emptied
    }

    /// Adds a live node to a primary cloud (the sharing operation).
    fn insert_into_cloud(&mut self, color: CloudColor, v: NodeId) {
        let cloud = self.clouds.get_mut(&color).expect("cloud alive");
        debug_assert_eq!(
            cloud.kind(),
            CloudKind::Primary,
            "sharing targets primaries"
        );
        if cloud.expander().contains(v) {
            return;
        }
        let delta = {
            let rng = &mut self.rng;
            cloud.expander_mut().insert(v, rng)
        };
        self.emit(PlanAction::ExtendCloud {
            color,
            node: v,
            shared: true,
            delta,
        });
        let st = self.nodes.get_mut(&v).expect("live node");
        st.primaries.insert(color);
        if st.is_free() {
            self.clouds
                .get_mut(&color)
                .expect("cloud alive")
                .free_members_mut()
                .insert(v);
        }
    }

    /// Inserts `z` into secondary `f` as the bridge for primary `ci`.
    fn insert_bridge(&mut self, f: CloudColor, z: NodeId, ci: CloudColor) {
        let cloud = self.clouds.get_mut(&f).expect("secondary alive");
        let delta = {
            let rng = &mut self.rng;
            cloud.expander_mut().insert(z, rng)
        };
        self.emit(PlanAction::ExtendCloud {
            color: f,
            node: z,
            shared: false,
            delta,
        });
        let replaced = self
            .clouds
            .get_mut(&f)
            .expect("secondary alive")
            .attachments_mut()
            .insert(z, ci);
        debug_assert!(replaced.is_none(), "bridge {z} already attached in {f}");
        self.attach_index_inc(ci, f);
        self.nodes.get_mut(&z).expect("live node").secondary = Some(f);
        self.set_free_status(z, false);
    }

    /// Deletes a cloud entirely: strips its edges and clears memberships.
    fn delete_cloud(&mut self, color: CloudColor) {
        let Some(cloud) = self.registry_remove(color) else {
            return;
        };
        if cloud.kind() == CloudKind::Secondary {
            for &p in cloud.attachments().values() {
                self.attach_index_dec(p, color);
            }
        }
        let edges: Vec<(NodeId, NodeId)> = cloud.expander().edges().to_vec();
        self.emit(PlanAction::DissolveCloud {
            color,
            delta: EdgeDelta {
                added: Vec::new(),
                removed: edges,
            },
        });
        for &m in cloud.members() {
            let mut freed = false;
            if let Some(st) = self.nodes.get_mut(&m) {
                match cloud.kind() {
                    CloudKind::Primary => {
                        st.primaries.remove(&color);
                    }
                    CloudKind::Secondary => {
                        if st.secondary == Some(color) {
                            st.secondary = None;
                            freed = true;
                        }
                    }
                }
            }
            if freed {
                self.set_free_status(m, true);
            }
        }
    }

    fn reset_op_counters(&mut self) {
        self.op_added = 0;
        self.op_removed = 0;
        self.op_shares = 0;
        self.op_combines = 0;
    }

    fn fold_op_counters(&mut self) {
        self.stats.edges_added += self.op_added;
        self.stats.edges_removed += self.op_removed;
        self.stats.shares += self.op_shares;
        self.stats.combines += self.op_combines;
    }

    /// The incrementally maintained free-node set of a cloud, ascending
    /// (empty set for dead clouds).
    fn free_set_of(&self, color: CloudColor) -> &BTreeSet<NodeId> {
        static EMPTY: BTreeSet<NodeId> = BTreeSet::new();
        self.clouds
            .get(&color)
            .map(Cloud::free_members)
            .unwrap_or(&EMPTY)
    }

    /// The smallest free node of a cloud — O(log n) off the maintained set
    /// (the FixSecondary hot path only ever takes the first).
    fn first_free_node_of(&self, color: CloudColor) -> Option<NodeId> {
        self.free_set_of(color).first().copied()
    }

    // ------------------------------------------------------------------
    // Batch (multi-node) deletion — the decisions of `heal_delete_batch`
    // and the distributed `delete_batch` (see batch.rs for the model).
    // ------------------------------------------------------------------

    /// Plans the simultaneous deletion of every victim in `ctx` (captured by
    /// [`BatchVictim::capture`] *before* the victims left the graph),
    /// producing a staged plan: a detach prologue shared by all dead
    /// components, then one independently executable stage per component.
    ///
    /// The planner's cloud/membership state advances to the post-repair
    /// state; the caller must apply the returned plan to its graph to stay
    /// consistent.
    pub fn plan_batch_deletion(&mut self, ctx: &[BatchVictim]) -> BatchRepairPlan {
        self.reset_op_counters();
        self.actions.clear();
        let secondaries_before = self.stats.secondaries_built;

        // Prologue: remove every victim from every cloud (FixPrimary / the
        // structural part of FixSecondary), remembering which secondary lost
        // which bridge. Victims are grouped by cloud so each cloud is
        // repaired once, with a net edge delta that never references a dead
        // member.
        let mut states: BTreeMap<NodeId, NodeState> = BTreeMap::new();
        for bv in ctx {
            states.insert(bv.node, self.nodes.remove(&bv.node).unwrap_or_default());
        }
        let mut lost_bridges: Vec<(NodeId, CloudColor, Option<CloudColor>)> = Vec::new();
        let mut by_cloud: BTreeMap<CloudColor, Vec<NodeId>> = BTreeMap::new();
        for (&v, state) in &states {
            for &c in &state.primaries {
                by_cloud.entry(c).or_default().push(v);
            }
            if let Some(f) = state.secondary {
                let ci = self.take_bridge_target(f, v);
                lost_bridges.push((v, f, ci));
                by_cloud.entry(f).or_default().push(v);
            }
        }
        for (c, vs) in &by_cloud {
            self.detach_many(*c, vs);
        }
        // Stage boundaries inside the flat action buffer: prologue end,
        // then one checkpoint per component.
        let mut checkpoints: Vec<usize> = vec![self.actions.len()];

        // Per dead component: run the healing cases on the merged state.
        let components = victim_components(ctx);
        let boundary_of: BTreeMap<NodeId, &[NodeId]> = ctx
            .iter()
            .map(|bv| (bv.node, bv.black_boundary.as_slice()))
            .collect();
        for comp in &components {
            // Union of the component's primary clouds and live boundary.
            let mut primaries: BTreeSet<CloudColor> = BTreeSet::new();
            let mut boundary: BTreeSet<NodeId> = BTreeSet::new();
            for &v in comp {
                primaries.extend(states[&v].primaries.iter().copied());
                boundary.extend(boundary_of[&v].iter().copied());
            }
            let alive: Vec<CloudColor> = primaries
                .into_iter()
                .filter(|c| self.clouds.contains_key(c))
                .collect();

            // Replace each lost bridge of this component (Case 2.2 fixes),
            // collecting anchors that must join the new secondary group.
            let comp_set: BTreeSet<NodeId> = comp.iter().copied().collect();
            let mut anchors: Vec<CloudColor> = Vec::new();
            for &(_, f, ci) in lost_bridges.iter().filter(|(v, _, _)| comp_set.contains(v)) {
                let ci_alive = ci.filter(|c| self.clouds.contains_key(c));
                if self.clouds.contains_key(&f) {
                    if let Some(anchor) = self.fix_secondary(f, ci_alive) {
                        anchors.push(anchor);
                    }
                } else if let Some(a) = ci_alive {
                    anchors.push(a);
                }
            }

            // Boundary nodes become singleton primary clouds; connect
            // everything with one secondary cloud (or combine).
            let mut group: Vec<CloudColor> = alive;
            for &w in &boundary {
                group.push(self.create_primary_cloud(&[w]));
            }
            group.extend(anchors);
            self.make_secondary_among(&group);
            checkpoints.push(self.actions.len());
        }

        self.stats.deletions += ctx.len();
        self.stats.black_degree_sum += ctx.iter().map(|bv| bv.black_boundary.len()).sum::<usize>();
        let report = BatchReport {
            victims: ctx.len(),
            components: components.len(),
            secondaries_built: self.stats.secondaries_built - secondaries_before,
            combines: self.op_combines,
            edges_added: self.op_added,
            edges_removed: self.op_removed,
        };
        self.fold_op_counters();

        // Split the flat buffer into stages at the checkpoints (from the
        // back, so each split is a cheap tail move).
        let mut prologue = std::mem::take(&mut self.actions);
        let mut component_stages: Vec<BatchStage> = Vec::with_capacity(components.len());
        for (i, comp) in components.iter().enumerate().rev() {
            let actions = prologue.split_off(checkpoints[i]);
            component_stages.push(BatchStage {
                component: comp.clone(),
                actions,
            });
        }
        component_stages.reverse();
        let mut stages = Vec::with_capacity(components.len() + 1);
        stages.push(BatchStage {
            component: Vec::new(),
            actions: prologue,
        });
        stages.extend(component_stages);
        BatchRepairPlan { stages, report }
    }

    /// Detaches several (already graph-removed) victims from one cloud,
    /// applying only the *net* edge delta — intermediate expander rebuilds
    /// may transiently reference other still-registered victims, but the
    /// final edge set only spans live members.
    fn detach_many(&mut self, color: CloudColor, victims: &[NodeId]) {
        let Some(cloud) = self.clouds.get_mut(&color) else {
            return;
        };
        let before = cloud.expander().edges().to_vec();
        let mut any = false;
        let mut detached = Vec::new();
        for &v in victims {
            if cloud.expander().contains(v) {
                let _ = cloud.expander_mut().remove(v, &mut self.rng);
                cloud.free_members_mut().remove(&v);
                any = true;
                detached.push(v);
            }
        }
        if any {
            // Both snapshots are sorted, so the net delta is one merge walk
            // (same ascending order the former set-difference produced).
            let delta = EdgeDelta::between(&before, cloud.expander().edges());
            self.emit(PlanAction::PatchCloud {
                color,
                removed: detached,
                delta,
            });
        }
        if self.clouds.get(&color).is_some_and(Cloud::is_empty) {
            self.registry_remove(color);
        }
    }

    /// Removes the attachment entry of a deleted bridge, returning the
    /// primary cloud it was bridging for.
    fn take_bridge_target(&mut self, f: CloudColor, v: NodeId) -> Option<CloudColor> {
        let ci = self
            .clouds
            .get_mut(&f)
            .and_then(|cl| cl.attachments_mut().remove(&v));
        if let Some(ci) = ci {
            self.attach_index_dec(ci, f);
        }
        ci
    }
}

/// Maximum bipartite matching (Kuhn's algorithm) of clouds to free nodes.
/// Returns one chosen representative per cloud where matchable.
///
/// Adjacency is consumed lazily off each cloud's maintained free set: in the
/// common case (every cloud has an unclaimed free node early in its set) only
/// the first few candidates are ever visited, so huge combined clouds cost
/// nothing here.
fn match_representatives(adjacency: &[&BTreeSet<NodeId>]) -> Vec<Option<NodeId>> {
    let mut owner: BTreeMap<NodeId, usize> = BTreeMap::new();

    fn try_assign(
        i: usize,
        adjacency: &[&BTreeSet<NodeId>],
        owner: &mut BTreeMap<NodeId, usize>,
        visited: &mut BTreeSet<NodeId>,
    ) -> bool {
        for &z in adjacency[i].iter() {
            if visited.contains(&z) {
                continue;
            }
            visited.insert(z);
            let current = owner.get(&z).copied();
            match current {
                None => {
                    owner.insert(z, i);
                    return true;
                }
                Some(j) => {
                    if try_assign(j, adjacency, owner, visited) {
                        owner.insert(z, i);
                        return true;
                    }
                }
            }
        }
        false
    }

    for i in 0..adjacency.len() {
        let mut visited = BTreeSet::new();
        let _ = try_assign(i, adjacency, &mut owner, &mut visited);
    }

    let mut reps = vec![None; adjacency.len()];
    for (z, i) in owner {
        reps[i] = Some(z);
    }
    reps
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    #[test]
    fn match_representatives_prefers_distinct() {
        let a: BTreeSet<NodeId> = [n(1), n(2)].into_iter().collect();
        let b: BTreeSet<NodeId> = [n(1)].into_iter().collect();
        let reps = match_representatives(&[&a, &b]);
        assert_eq!(reps[1], Some(n(1)), "cloud 1 only has node 1");
        assert_eq!(reps[0], Some(n(2)), "cloud 0 must yield node 1");
    }

    #[test]
    fn match_representatives_reports_deficit() {
        let a: BTreeSet<NodeId> = [n(1)].into_iter().collect();
        let b: BTreeSet<NodeId> = [n(1)].into_iter().collect();
        let reps = match_representatives(&[&a, &b]);
        let filled = reps.iter().flatten().count();
        assert_eq!(filled, 1);
    }

    #[test]
    fn plans_carry_every_edge_effect() {
        use xheal_graph::generators;
        let mut star = generators::star(10);
        let mut planner = RepairPlanner::new(star.nodes(), XhealConfig::new(4).with_seed(1));
        let incident = star.remove_node(n(0)).unwrap();
        let plan = planner.plan_deletion(n(0), &incident, incident.len());
        let added: usize = plan.actions.iter().map(|a| a.delta().added.len()).sum();
        assert_eq!(added, plan.report.edges_added);
        assert_eq!(plan.case(), HealCase::AllBlack);
        assert!(plan.participants().len() >= 9);
    }

    #[test]
    fn dropped_deletions_plan_nothing() {
        use xheal_graph::generators;
        let mut path = generators::path(3);
        let mut planner = RepairPlanner::new(path.nodes(), XhealConfig::default());
        let incident = path.remove_node(n(0)).unwrap();
        let plan = planner.plan_deletion(n(0), &incident, 1);
        assert_eq!(plan.case(), HealCase::Dropped);
        assert!(plan.actions.is_empty());
    }
}
