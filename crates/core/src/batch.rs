//! Batch (multi-node) deletion — the extension the paper's model section
//! promises: "Our algorithm can be extended to handle multiple
//! insertions/deletions."
//!
//! Deleting several nodes *simultaneously* is not the same as deleting them
//! one at a time: two adjacent victims heal each other's neighborhoods in
//! the sequential case, but in a batch both are gone before any repair runs
//! (consider the path `x–A–B–y` with `{A, B}` deleted: sequential healing
//! connects `x–B` first, batch healing must connect `x–y` directly).
//!
//! The extension therefore groups the victims into connected components of
//! the victim-induced subgraph and heals each dead component as one
//! super-deletion: its live boundary plays the role of `NBR(v)`, the union
//! of the component's primary clouds is repaired and re-linked by a
//! secondary cloud, and every secondary cloud that lost a bridge gets a
//! replacement (Case 2.2 per lost bridge).
//!
//! Like single deletions, the *decisions* live in the planner
//! ([`RepairPlanner::plan_batch_deletion`] turns a captured
//! [`BatchVictim`] context into a staged [`BatchRepairPlan`]) and executors
//! only apply them: [`Xheal::heal_delete_batch`] applies the stages
//! directly, `xheal-dist`'s `delete_batch` runs one message protocol per
//! stage — concurrently — before applying the identical deltas.

use std::collections::BTreeSet;

use xheal_graph::{Graph, NodeId};
use xheal_trace::{hook, Layer};

use crate::error::HealError;
use crate::heal::Xheal;
use crate::plan::PlanAction;

/// Report for one batch healing operation.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Number of victims deleted.
    pub victims: usize,
    /// Connected components the victims formed (each healed independently).
    pub components: usize,
    /// Secondary clouds built during the repair.
    pub secondaries_built: usize,
    /// Combine operations triggered.
    pub combines: usize,
    /// Colored edges added across all stages of the repair.
    pub edges_added: usize,
    /// Colored-edge labels stripped across all stages of the repair.
    pub edges_removed: usize,
}

/// The pre-deletion context of one batch victim, captured from the graph
/// before anything is removed: which *other victims* it was adjacent to
/// (this induces the dead components) and which *live* black neighbors
/// form its share of the repair boundary.
#[derive(Clone, Debug)]
pub struct BatchVictim {
    /// The victim.
    pub node: NodeId,
    /// Fellow victims adjacent to this one (any edge kind).
    pub victim_neighbors: Vec<NodeId>,
    /// Surviving black neighbors — this victim's contribution to `NBR`.
    pub black_boundary: Vec<NodeId>,
}

impl BatchVictim {
    /// Validates `victims` against `graph` — all present, no duplicates —
    /// without capturing context or mutating anything. This is the one
    /// batch-rejection rule every engine shares: [`BatchVictim::capture`]
    /// applies it for Xheal and the distributed executor, and the
    /// baselines' sequential batch approximation calls it directly, so all
    /// engines reject invalid bursts identically.
    ///
    /// # Errors
    ///
    /// [`HealError::NodeMissing`] if any victim is absent; duplicate victims
    /// are rejected the same way (the second occurrence is already gone).
    pub fn validate(graph: &Graph, victims: &[NodeId]) -> Result<(), HealError> {
        Self::victim_set(graph, victims).map(|_| ())
    }

    /// The validated, deduplicated victim set (see [`BatchVictim::validate`]).
    fn victim_set(graph: &Graph, victims: &[NodeId]) -> Result<BTreeSet<NodeId>, HealError> {
        let mut set: BTreeSet<NodeId> = BTreeSet::new();
        for &v in victims {
            if !set.insert(v) || !graph.contains_node(v) {
                return Err(HealError::NodeMissing(v));
            }
        }
        Ok(set)
    }

    /// Validates `victims` against `graph` and captures the per-victim
    /// context the planner needs, ascending by node id.
    ///
    /// # Errors
    ///
    /// As in [`BatchVictim::validate`]. Nothing is mutated.
    pub fn capture(graph: &Graph, victims: &[NodeId]) -> Result<Vec<BatchVictim>, HealError> {
        let set = Self::victim_set(graph, victims)?;
        Ok(set
            .iter()
            .map(|&v| {
                let mut victim_neighbors = Vec::new();
                let mut black_boundary = Vec::new();
                for (u, labels) in graph.neighbors_labeled(v) {
                    if set.contains(&u) {
                        victim_neighbors.push(u);
                    } else if labels.is_black() {
                        black_boundary.push(u);
                    }
                }
                BatchVictim {
                    node: v,
                    victim_neighbors,
                    black_boundary,
                }
            })
            .collect())
    }
}

/// One independently executable stage of a batch repair.
#[derive(Clone, Debug)]
pub struct BatchStage {
    /// The dead component this stage repairs, ascending — empty for the
    /// *detach prologue* (removing every victim from every cloud), which is
    /// shared by all components and must run first.
    pub component: Vec<NodeId>,
    /// The structural steps, in execution order.
    pub actions: Vec<PlanAction>,
}

/// The full decision record of one batch deletion: an ordered prologue plus
/// one stage per dead component. Stages after the prologue touch disjoint
/// victim components and may execute concurrently — which is exactly what
/// the distributed executor does.
#[derive(Clone, Debug)]
pub struct BatchRepairPlan {
    /// Prologue first, then one stage per dead component (component order).
    pub stages: Vec<BatchStage>,
    /// Batch-level accounting (also folded into the planner's stats).
    pub report: BatchReport,
}

impl BatchRepairPlan {
    /// All actions across all stages, in execution order.
    pub fn actions(&self) -> impl Iterator<Item = &PlanAction> {
        self.stages.iter().flat_map(|s| s.actions.iter())
    }

    /// Applies every stage to `graph`, in order.
    pub fn apply_to(&self, graph: &mut Graph) {
        self.apply_streamed(graph, &mut crate::engine::SinkRegistry::default());
    }

    /// Applies every stage to `graph`, in order, emitting the
    /// [`crate::TopologyDelta`] stream to `sinks`.
    ///
    /// Convenience wrapper over [`BatchRepairPlan::apply_streamed_with`]
    /// with a throwaway scratch.
    pub fn apply_streamed(&self, graph: &mut Graph, sinks: &mut crate::engine::SinkRegistry) {
        self.apply_streamed_with(graph, sinks, &mut crate::plan::ApplyScratch::default());
    }

    /// Applies all stages as grouped mutation batches through
    /// [`xheal_graph::Graph::apply_delta`] — the memory-wall fast path.
    /// Mutations across the prologue and every component stage accumulate
    /// into shared sequence-ordered batches (chunked past the accumulation
    /// cap so the op buffer stays cache-resident; per-pair interleavings
    /// such as the prologue detaching an edge a later stage re-adds stay
    /// bit-identical to stage-by-stage application), and the
    /// [`crate::TopologyDelta`] stream is emitted in exactly the order the
    /// per-action path would produce.
    pub fn apply_streamed_with(
        &self,
        graph: &mut Graph,
        sinks: &mut crate::engine::SinkRegistry,
        scratch: &mut crate::plan::ApplyScratch,
    ) {
        scratch.begin();
        for action in self.actions() {
            if scratch.should_flush() {
                scratch.flush(graph, sinks);
            }
            scratch.push_action(action);
        }
        scratch.flush(graph, sinks);
    }
}

/// Connected components of the victim set under pre-deletion adjacency,
/// each ascending, in ascending order of smallest member.
pub(crate) fn victim_components(victims: &[BatchVictim]) -> Vec<Vec<NodeId>> {
    let index: std::collections::BTreeMap<NodeId, usize> = victims
        .iter()
        .enumerate()
        .map(|(i, bv)| (bv.node, i))
        .collect();
    let mut seen: BTreeSet<NodeId> = BTreeSet::new();
    let mut out = Vec::new();
    for bv in victims {
        if seen.contains(&bv.node) {
            continue;
        }
        let mut comp = Vec::new();
        let mut stack = vec![bv.node];
        seen.insert(bv.node);
        while let Some(v) = stack.pop() {
            comp.push(v);
            for &u in &victims[index[&v]].victim_neighbors {
                if seen.insert(u) {
                    stack.push(u);
                }
            }
        }
        comp.sort_unstable();
        out.push(comp);
    }
    out
}

impl Xheal {
    /// Deletes all `victims` simultaneously, then heals each dead component
    /// in one repair (the multi-deletion extension).
    ///
    /// # Errors
    ///
    /// [`HealError::NodeMissing`] if any victim is absent (checked before
    /// any mutation); duplicate victims are rejected the same way.
    pub fn heal_delete_batch(&mut self, victims: &[NodeId]) -> Result<BatchReport, HealError> {
        let ctx = BatchVictim::capture(self.graph(), victims)?;
        let (graph, planner, sinks, scratch, tracer) = self.batch_parts();
        let seq = planner.peek_repair_seq();
        hook::begin(
            tracer,
            Layer::Executor,
            "exec.batch",
            seq,
            victims.len() as u64,
        );
        for bv in &ctx {
            let _ = graph.remove_node(bv.node);
            if !sinks.is_empty() {
                sinks.emit(crate::engine::TopologyDelta::NodeRemoved(bv.node));
            }
        }
        let plan = planner.plan_batch_deletion(&ctx);
        hook::begin(
            tracer,
            Layer::Executor,
            "exec.apply",
            seq,
            plan.stages.len() as u64,
        );
        plan.apply_streamed_with(graph, sinks, scratch);
        hook::end(tracer, Layer::Executor, "exec.apply", seq, 0);
        hook::end(tracer, Layer::Executor, "exec.batch", seq, 0);
        Ok(plan.report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::RepairPlanner;
    use crate::{invariants, XhealConfig};
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use xheal_graph::{components, generators};

    fn n(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    #[test]
    fn adjacent_victims_on_a_path_reconnect_endpoints() {
        // x - A - B - y: deleting {A, B} simultaneously must connect x to y.
        let g = generators::path(4); // 0 - 1 - 2 - 3
        let mut x = Xheal::new(&g, XhealConfig::new(4).with_seed(1));
        let report = x.heal_delete_batch(&[n(1), n(2)]).unwrap();
        assert_eq!(report.victims, 2);
        assert_eq!(report.components, 1, "adjacent victims form one component");
        assert!(components::is_connected(x.graph()));
        assert!(x.graph().has_edge(n(0), n(3)) || x.graph().node_count() < 2);
        invariants::check_invariants(&x).unwrap();
    }

    #[test]
    fn disjoint_victims_heal_independently() {
        let g = generators::cycle(12);
        let mut x = Xheal::new(&g, XhealConfig::new(4).with_seed(2));
        let report = x.heal_delete_batch(&[n(0), n(6)]).unwrap();
        assert_eq!(report.components, 2);
        assert!(components::is_connected(x.graph()));
        invariants::check_invariants(&x).unwrap();
    }

    #[test]
    fn duplicate_and_missing_victims_rejected() {
        let g = generators::cycle(5);
        let mut x = Xheal::new(&g, XhealConfig::default());
        assert!(x.heal_delete_batch(&[n(0), n(0)]).is_err());
        assert!(x.heal_delete_batch(&[n(99)]).is_err());
        // Nothing was mutated.
        assert_eq!(x.graph().node_count(), 5);
    }

    #[test]
    fn star_core_batch_deletion() {
        // Delete the hub and three leaves at once.
        let g = generators::star(12);
        let mut x = Xheal::new(&g, XhealConfig::new(4).with_seed(3));
        x.heal_delete_batch(&[n(0), n(1), n(2), n(3)]).unwrap();
        assert!(components::is_connected(x.graph()));
        assert_eq!(x.graph().node_count(), 8);
        invariants::check_invariants(&x).unwrap();
    }

    #[test]
    fn random_batches_keep_invariants_and_connectivity() {
        let mut rng = StdRng::seed_from_u64(44);
        let g0 = generators::connected_erdos_renyi(48, 0.09, &mut rng);
        let mut x = Xheal::new(&g0, XhealConfig::new(4).with_seed(9));
        for round in 0..8 {
            let nodes = x.graph().node_vec();
            if nodes.len() <= 10 {
                break;
            }
            let mut victims: BTreeSet<NodeId> = BTreeSet::new();
            for _ in 0..rng.random_range(2..=4usize) {
                victims.insert(nodes[rng.random_range(0..nodes.len())]);
            }
            let victims: Vec<NodeId> = victims.into_iter().collect();
            x.heal_delete_batch(&victims).unwrap();
            assert!(
                components::is_connected(x.graph()),
                "round {round}: disconnected after batch {victims:?}"
            );
            invariants::check_invariants(&x).unwrap_or_else(|e| panic!("round {round}: {e}"));
        }
    }

    #[test]
    fn batch_after_sequential_history_handles_bridges() {
        // Build up secondary clouds with sequential deletions, then batch-
        // delete two nodes including a bridge.
        let mut rng = StdRng::seed_from_u64(5);
        let g0 = generators::connected_erdos_renyi(36, 0.1, &mut rng);
        let mut x = Xheal::new(&g0, XhealConfig::new(4).with_seed(21));
        let mut bridge = None;
        for i in 0..25 {
            let nodes = x.graph().node_vec();
            x.heal_delete(nodes[(i * 3) % nodes.len()]).unwrap();
            if let Some(&(f, _)) = x
                .cloud_colors()
                .iter()
                .find(|&&(_, k)| k == xheal_graph::CloudKind::Secondary)
            {
                bridge = x.cloud(f).unwrap().members().iter().next().copied();
                break;
            }
        }
        let bridge = bridge.expect("secondary appears");
        let other = x
            .graph()
            .node_vec()
            .into_iter()
            .find(|&v| v != bridge)
            .unwrap();
        x.heal_delete_batch(&[bridge, other]).unwrap();
        assert!(components::is_connected(x.graph()));
        invariants::check_invariants(&x).unwrap();
    }

    #[test]
    fn adjacent_victims_spanning_two_clouds() {
        // Two stars joined by a black bridge edge between leaves; deleting
        // both hubs creates two clouds; then batch-delete the two adjacent
        // bridge-edge endpoints — one member of each cloud, forming a single
        // dead component that spans both clouds.
        let mut g = generators::star(6); // hub 0, leaves 1..=5
        for i in 10..16u64 {
            g.add_node(n(i)).unwrap();
        }
        for i in 11..16u64 {
            g.add_black_edge(n(10), n(i)).unwrap(); // hub 10, leaves 11..=15
        }
        g.add_black_edge(n(1), n(11)).unwrap(); // the inter-star bridge edge
        let mut x = Xheal::new(&g, XhealConfig::new(4).with_seed(8));
        x.heal_delete(n(0)).unwrap(); // cloud A over 1..=5
        x.heal_delete(n(10)).unwrap(); // cloud B over 11..=15
        assert!(x.cloud_count() >= 2, "two primary clouds expected");
        let report = x.heal_delete_batch(&[n(1), n(11)]).unwrap();
        assert_eq!(report.components, 1, "adjacent victims are one component");
        assert!(components::is_connected(x.graph()));
        invariants::check_invariants(&x).unwrap();
    }

    #[test]
    fn batch_deleting_an_entire_cloud() {
        // A star whose leaves (the future cloud) all die at once; two
        // outside nodes hang off leaves and must be re-linked by the repair.
        let mut g = generators::star(6); // hub 0, leaves 1..=5
        g.add_node(n(100)).unwrap();
        g.add_node(n(101)).unwrap();
        g.add_black_edge(n(100), n(1)).unwrap();
        g.add_black_edge(n(101), n(3)).unwrap();
        let mut x = Xheal::new(&g, XhealConfig::new(4).with_seed(13));
        x.heal_delete(n(0)).unwrap(); // cloud over leaves 1..=5
        assert_eq!(x.cloud_count(), 1);
        let report = x
            .heal_delete_batch(&[n(1), n(2), n(3), n(4), n(5)])
            .unwrap();
        assert_eq!(report.victims, 5);
        assert_eq!(x.graph().node_count(), 2);
        assert!(
            components::is_connected(x.graph()),
            "outside nodes must be re-linked after their cloud died"
        );
        invariants::check_invariants(&x).unwrap();
    }

    #[test]
    fn batch_of_all_but_min_nodes() {
        // Delete everything except two survivors in one batch.
        let g = generators::cycle(12);
        let mut x = Xheal::new(&g, XhealConfig::new(4).with_seed(17));
        let victims: Vec<NodeId> = (0..10).map(n).collect();
        let report = x.heal_delete_batch(&victims).unwrap();
        assert_eq!(report.victims, 10);
        assert_eq!(x.graph().node_count(), 2);
        assert!(
            components::is_connected(x.graph()),
            "the two survivors must stay connected"
        );
        invariants::check_invariants(&x).unwrap();
    }

    #[test]
    fn batch_plan_stages_split_prologue_and_components() {
        let g = generators::cycle(12);
        let ctx = BatchVictim::capture(&g, &[n(0), n(6)]).unwrap();
        let comps = victim_components(&ctx);
        assert_eq!(comps, vec![vec![n(0)], vec![n(6)]]);
        let mut planner = RepairPlanner::new(g.nodes(), XhealConfig::new(4).with_seed(1));
        let plan = planner.plan_batch_deletion(&ctx);
        assert_eq!(plan.stages.len(), 3, "prologue + two components");
        assert!(plan.stages[0].component.is_empty(), "prologue first");
        assert_eq!(plan.stages[1].component, vec![n(0)]);
        assert_eq!(plan.stages[2].component, vec![n(6)]);
        // Edge accounting across stages matches the folded stats.
        let added: usize = plan.actions().map(|a| a.delta().added.len()).sum();
        assert_eq!(added, planner.stats().edges_added);
    }

    #[test]
    fn capture_rejects_without_mutation() {
        let g = generators::cycle(4);
        assert_eq!(
            BatchVictim::capture(&g, &[n(1), n(1)]).unwrap_err(),
            HealError::NodeMissing(n(1))
        );
        assert_eq!(
            BatchVictim::capture(&g, &[n(44)]).unwrap_err(),
            HealError::NodeMissing(n(44))
        );
        let ctx = BatchVictim::capture(&g, &[n(2), n(1)]).unwrap();
        assert_eq!(ctx[0].node, n(1), "context is ascending");
        assert_eq!(ctx[0].victim_neighbors, vec![n(2)]);
        assert_eq!(ctx[0].black_boundary, vec![n(0)]);
    }
}
