//! Batch (multi-node) deletion — the extension the paper's model section
//! promises: "Our algorithm can be extended to handle multiple
//! insertions/deletions."
//!
//! Deleting several nodes *simultaneously* is not the same as deleting them
//! one at a time: two adjacent victims heal each other's neighborhoods in
//! the sequential case, but in a batch both are gone before any repair runs
//! (consider the path `x–A–B–y` with `{A, B}` deleted: sequential healing
//! connects `x–B` first, batch healing must connect `x–y` directly).
//!
//! The extension therefore groups the victims into connected components of
//! the victim-induced subgraph and heals each dead component as one
//! super-deletion: its live boundary plays the role of `NBR(v)`, the union
//! of the component's primary clouds is repaired and re-linked by a
//! secondary cloud, and every secondary cloud that lost a bridge gets a
//! replacement (Case 2.2 per lost bridge).

use std::collections::{BTreeMap, BTreeSet};

use xheal_graph::{CloudColor, NodeId};

use crate::cloud::NodeState;
use crate::error::HealError;
use crate::heal::Xheal;
use crate::stats::HealStats;

/// Report for one batch healing operation.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Number of victims deleted.
    pub victims: usize,
    /// Connected components the victims formed (each healed independently).
    pub components: usize,
    /// Secondary clouds built during the repair.
    pub secondaries_built: usize,
    /// Combine operations triggered.
    pub combines: usize,
}

impl Xheal {
    /// Deletes all `victims` simultaneously, then heals each dead component
    /// in one repair (the multi-deletion extension).
    ///
    /// # Errors
    ///
    /// [`HealError::NodeMissing`] if any victim is absent (checked before
    /// any mutation); duplicate victims are rejected the same way.
    pub fn heal_delete_batch(&mut self, victims: &[NodeId]) -> Result<BatchReport, HealError> {
        let set: BTreeSet<NodeId> = victims.iter().copied().collect();
        if set.len() != victims.len() {
            // A duplicate means the second occurrence is already missing.
            return Err(HealError::NodeMissing(
                *victims.first().expect("non-empty dup"),
            ));
        }
        for &v in &set {
            if !self.graph().contains_node(v) {
                return Err(HealError::NodeMissing(v));
            }
        }
        let stats_before = self.stats().clone();

        // Victim adjacency (for components) and live boundaries, captured
        // before any removal.
        let mut victim_adj: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        let mut boundary_black: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        for &v in &set {
            let mut adj = Vec::new();
            let mut black = Vec::new();
            for (u, labels) in self.graph().neighbors_labeled(v) {
                if set.contains(&u) {
                    adj.push(u);
                } else if labels.is_black() {
                    black.push(u);
                }
            }
            victim_adj.insert(v, adj);
            boundary_black.insert(v, black);
        }

        // Phase 1: remove every victim from the graph and detach it from
        // every cloud (FixPrimary / the structural part of FixSecondary),
        // remembering which secondary lost which bridge.
        self.batch_planner().batch_begin();
        let mut states: BTreeMap<NodeId, NodeState> = BTreeMap::new();
        let mut lost_bridges: Vec<(NodeId, CloudColor, Option<CloudColor>)> = Vec::new();
        for &v in &set {
            self.batch_remove_node(v);
            states.insert(v, self.batch_planner().batch_take_state(v));
        }
        // Group victims by cloud so each cloud is repaired once, with a net
        // edge delta that never references a dead member.
        let mut by_cloud: BTreeMap<CloudColor, Vec<NodeId>> = BTreeMap::new();
        for (&v, state) in &states {
            for &c in &state.primaries {
                by_cloud.entry(c).or_default().push(v);
            }
            if let Some(f) = state.secondary {
                let ci = self.batch_planner().batch_take_bridge_target(f, v);
                lost_bridges.push((v, f, ci));
                by_cloud.entry(f).or_default().push(v);
            }
        }
        for (c, vs) in &by_cloud {
            self.batch_planner().batch_detach_many(*c, vs);
        }

        // Phase 2: per dead component, run the healing cases on the merged
        // state.
        let components = victim_components(&set, &victim_adj);
        for comp in &components {
            // Union of the component's primary clouds and live boundary.
            let mut primaries: BTreeSet<CloudColor> = BTreeSet::new();
            let mut boundary: BTreeSet<NodeId> = BTreeSet::new();
            for &v in comp {
                primaries.extend(states[&v].primaries.iter().copied());
                boundary.extend(boundary_black[&v].iter().copied());
            }
            let alive: Vec<CloudColor> = primaries
                .into_iter()
                .filter(|c| self.cloud(*c).is_some())
                .collect();

            // Replace each lost bridge of this component (Case 2.2 fixes),
            // collecting anchors that must join the new secondary group.
            let comp_set: BTreeSet<NodeId> = comp.iter().copied().collect();
            let mut anchors: Vec<CloudColor> = Vec::new();
            for &(victim, f, ci) in lost_bridges.iter().filter(|(v, _, _)| comp_set.contains(v)) {
                let _ = victim;
                let ci_alive = ci.filter(|c| self.cloud(*c).is_some());
                if self.cloud(f).is_some() {
                    if let Some(anchor) = self.batch_planner().batch_fix_secondary(f, ci_alive) {
                        anchors.push(anchor);
                    }
                } else if let Some(a) = ci_alive {
                    anchors.push(a);
                }
            }

            // Boundary nodes become singleton primary clouds; connect
            // everything with one secondary cloud (or combine).
            let mut group: Vec<CloudColor> = alive;
            for &w in &boundary {
                group.push(self.batch_planner().batch_singleton(w));
            }
            group.extend(anchors);
            self.batch_planner().batch_make_secondary(&group);
        }

        let black_degree_sum: usize = boundary_black.values().map(Vec::len).sum();
        self.batch_planner()
            .batch_finish(set.len(), black_degree_sum);
        self.batch_apply_pending();
        let s: &HealStats = self.stats();
        let report = BatchReport {
            victims: set.len(),
            components: components.len(),
            secondaries_built: s.secondaries_built - stats_before.secondaries_built,
            combines: s.combines - stats_before.combines,
        };
        Ok(report)
    }
}

/// Connected components of the victim set under pre-deletion adjacency.
fn victim_components(
    set: &BTreeSet<NodeId>,
    adj: &BTreeMap<NodeId, Vec<NodeId>>,
) -> Vec<Vec<NodeId>> {
    let mut seen: BTreeSet<NodeId> = BTreeSet::new();
    let mut out = Vec::new();
    for &start in set {
        if seen.contains(&start) {
            continue;
        }
        let mut comp = Vec::new();
        let mut stack = vec![start];
        seen.insert(start);
        while let Some(v) = stack.pop() {
            comp.push(v);
            for &u in &adj[&v] {
                if seen.insert(u) {
                    stack.push(u);
                }
            }
        }
        comp.sort_unstable();
        out.push(comp);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{invariants, XhealConfig};
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use xheal_graph::{components, generators};

    fn n(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    #[test]
    fn adjacent_victims_on_a_path_reconnect_endpoints() {
        // x - A - B - y: deleting {A, B} simultaneously must connect x to y.
        let g = generators::path(4); // 0 - 1 - 2 - 3
        let mut x = Xheal::new(&g, XhealConfig::new(4).with_seed(1));
        let report = x.heal_delete_batch(&[n(1), n(2)]).unwrap();
        assert_eq!(report.victims, 2);
        assert_eq!(report.components, 1, "adjacent victims form one component");
        assert!(components::is_connected(x.graph()));
        assert!(x.graph().has_edge(n(0), n(3)) || x.graph().node_count() < 2);
        invariants::check_invariants(&x).unwrap();
    }

    #[test]
    fn disjoint_victims_heal_independently() {
        let g = generators::cycle(12);
        let mut x = Xheal::new(&g, XhealConfig::new(4).with_seed(2));
        let report = x.heal_delete_batch(&[n(0), n(6)]).unwrap();
        assert_eq!(report.components, 2);
        assert!(components::is_connected(x.graph()));
        invariants::check_invariants(&x).unwrap();
    }

    #[test]
    fn duplicate_and_missing_victims_rejected() {
        let g = generators::cycle(5);
        let mut x = Xheal::new(&g, XhealConfig::default());
        assert!(x.heal_delete_batch(&[n(0), n(0)]).is_err());
        assert!(x.heal_delete_batch(&[n(99)]).is_err());
        // Nothing was mutated.
        assert_eq!(x.graph().node_count(), 5);
    }

    #[test]
    fn star_core_batch_deletion() {
        // Delete the hub and three leaves at once.
        let g = generators::star(12);
        let mut x = Xheal::new(&g, XhealConfig::new(4).with_seed(3));
        x.heal_delete_batch(&[n(0), n(1), n(2), n(3)]).unwrap();
        assert!(components::is_connected(x.graph()));
        assert_eq!(x.graph().node_count(), 8);
        invariants::check_invariants(&x).unwrap();
    }

    #[test]
    fn random_batches_keep_invariants_and_connectivity() {
        let mut rng = StdRng::seed_from_u64(44);
        let g0 = generators::connected_erdos_renyi(48, 0.09, &mut rng);
        let mut x = Xheal::new(&g0, XhealConfig::new(4).with_seed(9));
        for round in 0..8 {
            let nodes = x.graph().node_vec();
            if nodes.len() <= 10 {
                break;
            }
            let mut victims: BTreeSet<NodeId> = BTreeSet::new();
            for _ in 0..rng.random_range(2..=4usize) {
                victims.insert(nodes[rng.random_range(0..nodes.len())]);
            }
            let victims: Vec<NodeId> = victims.into_iter().collect();
            x.heal_delete_batch(&victims).unwrap();
            assert!(
                components::is_connected(x.graph()),
                "round {round}: disconnected after batch {victims:?}"
            );
            invariants::check_invariants(&x).unwrap_or_else(|e| panic!("round {round}: {e}"));
        }
    }

    #[test]
    fn batch_after_sequential_history_handles_bridges() {
        // Build up secondary clouds with sequential deletions, then batch-
        // delete two nodes including a bridge.
        let mut rng = StdRng::seed_from_u64(5);
        let g0 = generators::connected_erdos_renyi(36, 0.1, &mut rng);
        let mut x = Xheal::new(&g0, XhealConfig::new(4).with_seed(21));
        let mut bridge = None;
        for i in 0..25 {
            let nodes = x.graph().node_vec();
            x.heal_delete(nodes[(i * 3) % nodes.len()]).unwrap();
            if let Some(&(f, _)) = x
                .cloud_colors()
                .iter()
                .find(|&&(_, k)| k == xheal_graph::CloudKind::Secondary)
            {
                bridge = x.cloud(f).unwrap().members().iter().next().copied();
                break;
            }
        }
        let bridge = bridge.expect("secondary appears");
        let other = x
            .graph()
            .node_vec()
            .into_iter()
            .find(|&v| v != bridge)
            .unwrap();
        x.heal_delete_batch(&[bridge, other]).unwrap();
        assert!(components::is_connected(x.graph()));
        invariants::check_invariants(&x).unwrap();
    }
}
