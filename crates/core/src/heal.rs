//! The Xheal healing algorithm (Algorithm 3.1–3.6 of the paper).
//!
//! High-level structure per deletion of node `v`:
//!
//! - **Case 1** — all deleted edges black: build one primary expander cloud
//!   over `NBR(v)` (`MakeCloud`).
//! - **Case 2.1** — colored edges, all primary: repair each affected primary
//!   cloud (`FixPrimary`), turn each black neighbor into a singleton primary
//!   cloud, then connect one *free* node per affected cloud into a new
//!   secondary cloud (`MakeSecondary`) — sharing free nodes across clouds
//!   when a cloud has none, and *combining* all affected clouds into one
//!   primary cloud when fewer free nodes exist than clouds.
//! - **Case 2.2** — `v` was a bridge of primary `C_i` inside secondary `F`:
//!   repair the primaries, replace `v` in `F` with a fresh free node from
//!   `C_i` (`FixSecondary`, borrowing or combining as above), then connect
//!   the remaining affected clouds (plus an anchor on the `F` side — see
//!   DESIGN.md §3.2 for this connectivity fix) with a new secondary cloud.

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::StdRng;
use rand::SeedableRng;

use xheal_expander::{EdgeDelta, MaintainedExpander};
use xheal_graph::{CloudColor, CloudKind, Graph, NodeId};

use crate::cloud::{Cloud, NodeState};
use crate::config::XhealConfig;
use crate::error::HealError;
use crate::stats::{DeletionReport, HealCase, HealStats};

/// The Xheal self-healing network state: the live graph plus the cloud
/// registry, healing deletions as they arrive.
///
/// # Examples
///
/// ```
/// use xheal_core::{Xheal, XhealConfig};
/// use xheal_graph::{components, generators, NodeId};
///
/// // A star: the worst case for tree-style healers.
/// let mut net = Xheal::new(&generators::star(12), XhealConfig::default());
/// net.heal_delete(NodeId::new(0))?; // kill the center
/// assert!(components::is_connected(net.graph()));
/// # Ok::<(), xheal_core::HealError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Xheal {
    graph: Graph,
    clouds: BTreeMap<CloudColor, Cloud>,
    nodes: BTreeMap<NodeId, NodeState>,
    config: XhealConfig,
    rng: StdRng,
    next_color: u64,
    stats: HealStats,
    // Per-operation counters (reset at the start of each deletion).
    op_added: usize,
    op_removed: usize,
    op_shares: usize,
    op_combines: usize,
}

impl Xheal {
    /// Wraps an initial network. All existing edges are treated as black
    /// (original) edges, per the model.
    pub fn new(initial: &Graph, config: XhealConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        let nodes = initial.nodes().map(|v| (v, NodeState::default())).collect();
        Xheal {
            graph: initial.clone(),
            clouds: BTreeMap::new(),
            nodes,
            config,
            rng,
            next_color: 0,
            stats: HealStats::default(),
            op_added: 0,
            op_removed: 0,
            op_shares: 0,
            op_combines: 0,
        }
    }

    /// The current (healed) network graph `G_t`.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The configuration in force.
    pub fn config(&self) -> &XhealConfig {
        &self.config
    }

    /// Cloud expander degree κ.
    pub fn kappa(&self) -> usize {
        self.config.kappa
    }

    /// Cumulative healing statistics.
    pub fn stats(&self) -> &HealStats {
        &self.stats
    }

    /// All live cloud colors with their kinds.
    pub fn cloud_colors(&self) -> Vec<(CloudColor, CloudKind)> {
        self.clouds.iter().map(|(&c, cl)| (c, cl.kind())).collect()
    }

    /// Read access to a cloud.
    pub fn cloud(&self, color: CloudColor) -> Option<&Cloud> {
        self.clouds.get(&color)
    }

    /// Read access to a node's membership state.
    pub fn node_state(&self, v: NodeId) -> Option<&NodeState> {
        self.nodes.get(&v)
    }

    /// Number of live clouds.
    pub fn cloud_count(&self) -> usize {
        self.clouds.len()
    }

    // ------------------------------------------------------------------
    // Model events
    // ------------------------------------------------------------------

    /// Adversarial insertion: a new node `v` with black edges to
    /// `neighbors`. Xheal takes no healing action (Algorithm 3.1 lines 1–2).
    ///
    /// # Errors
    ///
    /// [`HealError::NodeExists`] if `v` is present;
    /// [`HealError::NeighborMissing`] if any neighbor is absent.
    pub fn heal_insert(&mut self, v: NodeId, neighbors: &[NodeId]) -> Result<(), HealError> {
        if self.graph.contains_node(v) {
            return Err(HealError::NodeExists(v));
        }
        for &u in neighbors {
            if !self.graph.contains_node(u) {
                return Err(HealError::NeighborMissing(u));
            }
        }
        self.graph.add_node(v).expect("checked fresh");
        for &u in neighbors {
            if u != v {
                // Duplicate neighbors tolerated: adding black twice is a no-op.
                let _ = self.graph.add_black_edge(v, u);
            }
        }
        self.nodes.insert(v, NodeState::default());
        self.stats.insertions += 1;
        Ok(())
    }

    /// Adversarial deletion of `v`, followed by the Xheal repair.
    ///
    /// # Errors
    ///
    /// [`HealError::NodeMissing`] if `v` is not in the network.
    pub fn heal_delete(&mut self, v: NodeId) -> Result<DeletionReport, HealError> {
        if !self.graph.contains_node(v) {
            return Err(HealError::NodeMissing(v));
        }
        self.reset_op_counters();

        let degree = self.graph.degree(v).expect("checked present");
        let incident = self.graph.remove_node(v).expect("checked present");
        let state = self.nodes.remove(&v).unwrap_or_default();
        let black_nbrs: Vec<NodeId> = incident
            .iter()
            .filter(|(_, l)| l.is_black())
            .map(|&(u, _)| u)
            .collect();
        let black_degree = black_nbrs.len();
        self.stats.deletions += 1;
        self.stats.black_degree_sum += black_degree;

        let case = if state.is_cloudless() {
            // Case 1: all deleted edges are black.
            if black_nbrs.len() >= 2 {
                self.create_primary_cloud(&black_nbrs);
                HealCase::AllBlack
            } else {
                // Degree <= 1: "the deleted node is just dropped".
                HealCase::Dropped
            }
        } else {
            self.heal_colored_deletion(v, state, &black_nbrs)
        };

        let report = DeletionReport {
            case,
            edges_added: self.op_added,
            edges_removed: self.op_removed,
            combined: self.op_combines > 0,
            shares: self.op_shares,
            black_degree,
            degree,
        };
        self.fold_op_counters();
        Ok(report)
    }

    // ------------------------------------------------------------------
    // Case 2 machinery
    // ------------------------------------------------------------------

    fn heal_colored_deletion(
        &mut self,
        v: NodeId,
        state: NodeState,
        black_nbrs: &[NodeId],
    ) -> HealCase {
        // FixPrimary: remove v from each of its primary clouds.
        let mut alive_primaries: Vec<CloudColor> = Vec::new();
        for &c in &state.primaries {
            if !self.remove_from_cloud(c, v) {
                alive_primaries.push(c);
            }
        }

        // Black neighbors become singleton primary clouds (Case 2 prose).
        let mut singletons: Vec<CloudColor> = Vec::new();
        for &w in black_nbrs {
            singletons.push(self.create_primary_cloud(&[w]));
        }

        match state.secondary {
            None => {
                // Case 2.1.
                let mut group = alive_primaries;
                group.extend(singletons);
                self.make_secondary_among(&group);
                HealCase::PrimaryOnly
            }
            Some(f) => {
                // Case 2.2: v was the bridge of some primary ci in F.
                let ci = self
                    .clouds
                    .get_mut(&f)
                    .and_then(|cl| cl.attachments_mut().remove(&v));
                let f_emptied = self.remove_from_cloud(f, v);
                let ci_alive = ci.filter(|c| self.clouds.contains_key(c));
                let anchor = if f_emptied {
                    // F died with v; the ci side has no F component to join.
                    ci_alive
                } else {
                    self.fix_secondary(f, ci_alive)
                };

                // Clouds still connected through F need no new secondary.
                let attached_now: BTreeSet<CloudColor> = self
                    .clouds
                    .get(&f)
                    .map(|cl| cl.attachments().values().copied().collect())
                    .unwrap_or_default();

                let mut group: Vec<CloudColor> = alive_primaries
                    .into_iter()
                    .filter(|c| !attached_now.contains(c) && Some(*c) != anchor)
                    .collect();
                group.extend(singletons);
                if let Some(a) = anchor {
                    // Connectivity fix (DESIGN.md §3.2): an F-side anchor
                    // joins the new secondary so the two groups stay linked.
                    if !group.is_empty() {
                        group.push(a);
                    }
                }
                self.make_secondary_among(&group);
                HealCase::Bridge
            }
        }
    }

    /// FixSecondary (Algorithm 3.5): replace the deleted bridge of `ci` in
    /// `f` with a fresh free node, borrowing or combining as needed. Returns
    /// the cloud that anchors the `F`-side component (for the connectivity
    /// fix), or `None` if that side dissolved entirely.
    fn fix_secondary(
        &mut self,
        f: CloudColor,
        ci_alive: Option<CloudColor>,
    ) -> Option<CloudColor> {
        let f_primaries: BTreeSet<CloudColor> = {
            let cloud = self.clouds.get(&f).expect("caller checked f alive");
            let mut p: BTreeSet<CloudColor> = cloud.attachments().values().copied().collect();
            if let Some(ci) = ci_alive {
                p.insert(ci);
            }
            p
        };

        if let Some(ci) = ci_alive {
            // Prefer a free node of ci itself.
            let mut pick: Option<(NodeId, bool)> = self
                .free_nodes_of(ci)
                .first()
                .map(|&z| (z, false));
            if pick.is_none() && !self.config.disable_sharing {
                // Borrow from the other primaries of F (PickFreeNode's "ask
                // neighbor clouds").
                for &c in f_primaries.iter().filter(|&&c| c != ci) {
                    if let Some(&z) = self.free_nodes_of(c).first() {
                        pick = Some((z, true));
                        break;
                    }
                }
            }
            match pick {
                Some((z, shared)) => {
                    if shared {
                        // Sharing adds z to ci itself.
                        self.insert_into_cloud(ci, z);
                        self.op_shares += 1;
                    }
                    self.insert_bridge(f, z, ci);
                }
                None => {
                    // No free node anywhere among F's primaries: combine
                    // them all into one primary cloud (F dissolves inside).
                    return self.combine(&f_primaries);
                }
            }
        }

        // Vacuous secondary check: a secondary with <= 1 member connects
        // nothing; dissolve it and report the survivor's primary as anchor.
        let len = self.clouds.get(&f).map(Cloud::len).unwrap_or(0);
        if len <= 1 {
            let survivor_primary = self
                .clouds
                .get(&f)
                .and_then(|cl| cl.attachments().values().next().copied());
            self.delete_cloud(f);
            return survivor_primary.filter(|c| self.clouds.contains_key(c));
        }
        ci_alive.or_else(|| {
            self.clouds
                .get(&f)
                .and_then(|cl| cl.attachments().values().next().copied())
                .filter(|c| self.clouds.contains_key(c))
        })
    }

    /// MakeSecondary (Algorithm 3.4): connect one free node per cloud of
    /// `group` into a fresh secondary cloud; combine if there are fewer free
    /// nodes than clouds.
    fn make_secondary_among(&mut self, group: &[CloudColor]) -> Option<CloudColor> {
        // Deduplicate and keep only live, non-empty clouds.
        let group: Vec<CloudColor> = {
            let mut seen = BTreeSet::new();
            group
                .iter()
                .copied()
                .filter(|c| self.clouds.get(c).is_some_and(|cl| !cl.is_empty()))
                .filter(|c| seen.insert(*c))
                .collect()
        };
        if group.len() <= 1 {
            return None;
        }
        if self.config.disable_secondary {
            self.combine(&group.iter().copied().collect());
            return None;
        }

        // Free nodes per cloud and overall.
        let adjacency: Vec<Vec<NodeId>> =
            group.iter().map(|&c| self.free_nodes_of(c)).collect();
        let union_free: BTreeSet<NodeId> = adjacency.iter().flatten().copied().collect();
        if union_free.len() < group.len() {
            // Fewer free nodes than clouds: combine (Case 2.1 prose).
            self.combine(&group.iter().copied().collect());
            return None;
        }

        // Distinct representatives: maximum bipartite matching preferring
        // each cloud's own members, then sharing for any cloud left over.
        let mut reps = match_representatives(&group, &adjacency);
        let mut used: BTreeSet<NodeId> = reps.iter().flatten().copied().collect();
        for (i, rep) in reps.iter_mut().enumerate() {
            if rep.is_none() {
                if self.config.disable_sharing {
                    self.combine(&group.iter().copied().collect());
                    return None;
                }
                let z = union_free
                    .iter()
                    .copied()
                    .find(|z| !used.contains(z))
                    .expect("union_free.len() >= group.len() guarantees a spare");
                used.insert(z);
                // Sharing: the borrowed node joins the deficient cloud.
                self.insert_into_cloud(group[i], z);
                self.op_shares += 1;
                *rep = Some(z);
            }
        }

        let members: Vec<NodeId> = reps.iter().map(|r| r.expect("filled")).collect();
        let f = self.create_cloud_raw(CloudKind::Secondary, &members);
        for (i, &rep) in members.iter().enumerate() {
            self.clouds
                .get_mut(&f)
                .expect("just created")
                .attachments_mut()
                .insert(rep, group[i]);
            self.nodes
                .get_mut(&rep)
                .expect("members are live")
                .secondary = Some(f);
        }
        self.stats.secondaries_built += 1;
        Some(f)
    }

    /// Combines a set of primary clouds into one fresh primary cloud
    /// (the paper's expensive amortized operation).
    ///
    /// Secondary clouds all of whose attached primaries lie inside the set
    /// are dissolved (their bridges become free again); secondaries that also
    /// connect outside clouds have their attachments re-pointed at the new
    /// combined cloud.
    fn combine(&mut self, colors: &BTreeSet<CloudColor>) -> Option<CloudColor> {
        self.op_combines += 1;
        let mut all_nodes: BTreeSet<NodeId> = BTreeSet::new();
        for c in colors {
            if let Some(cl) = self.clouds.get(c) {
                all_nodes.extend(cl.members().iter().copied());
            }
        }
        if all_nodes.is_empty() {
            return None;
        }

        // Delete the old primary clouds.
        for &c in colors {
            if self.clouds.contains_key(&c) {
                self.delete_cloud(c);
            }
        }

        // Handle secondaries referencing the combined primaries.
        let new_color = self.fresh_color();
        let referencing: Vec<CloudColor> = self
            .clouds
            .iter()
            .filter(|(_, cl)| {
                cl.kind() == CloudKind::Secondary
                    && cl.attachments().values().any(|p| colors.contains(p))
            })
            .map(|(&c, _)| c)
            .collect();
        for fc in referencing {
            let all_inside = self.clouds[&fc]
                .attachments()
                .values()
                .all(|p| colors.contains(p));
            if all_inside {
                // Redundant: the combined cloud connects these directly.
                self.delete_cloud(fc);
            } else {
                let cloud = self.clouds.get_mut(&fc).expect("live");
                for target in cloud.attachments_mut().values_mut() {
                    if colors.contains(target) {
                        *target = new_color;
                    }
                }
            }
        }

        // Build the combined primary cloud.
        let members: Vec<NodeId> = all_nodes.into_iter().collect();
        self.create_cloud_with_color(new_color, CloudKind::Primary, &members);
        Some(new_color)
    }

    // ------------------------------------------------------------------
    // Cloud registry primitives
    // ------------------------------------------------------------------

    fn fresh_color(&mut self) -> CloudColor {
        let c = CloudColor::new(self.next_color);
        self.next_color += 1;
        c
    }

    fn apply_delta(&mut self, color: CloudColor, delta: &EdgeDelta) {
        for &(u, w) in &delta.removed {
            self.graph.strip_color(u, w, color);
            self.op_removed += 1;
        }
        for &(u, w) in &delta.added {
            self.graph
                .add_colored_edge(u, w, color)
                .expect("cloud members are live nodes");
            self.op_added += 1;
        }
    }

    /// Creates a primary cloud over `members` and registers memberships.
    fn create_primary_cloud(&mut self, members: &[NodeId]) -> CloudColor {
        let color = self.fresh_color();
        self.create_cloud_with_color(color, CloudKind::Primary, members);
        color
    }

    /// Creates a cloud (either kind) without setting secondary attachments.
    fn create_cloud_raw(&mut self, kind: CloudKind, members: &[NodeId]) -> CloudColor {
        let color = self.fresh_color();
        self.create_cloud_with_color(color, kind, members);
        color
    }

    fn create_cloud_with_color(
        &mut self,
        color: CloudColor,
        kind: CloudKind,
        members: &[NodeId],
    ) {
        let (expander, edges) = MaintainedExpander::new(members, self.config.kappa, &mut self.rng);
        let delta = EdgeDelta { added: edges, removed: Vec::new() };
        self.clouds.insert(color, Cloud::new(kind, expander));
        self.apply_delta(color, &delta);
        if kind == CloudKind::Primary {
            for &m in members {
                self.nodes
                    .get_mut(&m)
                    .expect("members are live")
                    .primaries
                    .insert(color);
            }
        }
    }

    /// Removes `v` from a cloud, returning `true` when the cloud emptied and
    /// was deleted.
    fn remove_from_cloud(&mut self, color: CloudColor, v: NodeId) -> bool {
        let Some(cloud) = self.clouds.get_mut(&color) else { return true };
        if !cloud.expander().contains(v) {
            return cloud.is_empty();
        }
        let delta = {
            let rng = &mut self.rng;
            cloud.expander_mut().remove(v, rng)
        };
        let kind = cloud.kind();
        self.apply_delta(color, &delta);
        if let Some(st) = self.nodes.get_mut(&v) {
            match kind {
                CloudKind::Primary => {
                    st.primaries.remove(&color);
                }
                CloudKind::Secondary => {
                    if st.secondary == Some(color) {
                        st.secondary = None;
                    }
                }
            }
        }
        let emptied = self.clouds.get(&color).is_some_and(Cloud::is_empty);
        if emptied {
            self.clouds.remove(&color);
        }
        emptied
    }

    /// Adds a live node to a primary cloud (the sharing operation).
    fn insert_into_cloud(&mut self, color: CloudColor, v: NodeId) {
        let cloud = self.clouds.get_mut(&color).expect("cloud alive");
        debug_assert_eq!(cloud.kind(), CloudKind::Primary, "sharing targets primaries");
        if cloud.expander().contains(v) {
            return;
        }
        let delta = {
            let rng = &mut self.rng;
            cloud.expander_mut().insert(v, rng)
        };
        self.apply_delta(color, &delta);
        self.nodes
            .get_mut(&v)
            .expect("live node")
            .primaries
            .insert(color);
    }

    /// Inserts `z` into secondary `f` as the bridge for primary `ci`.
    fn insert_bridge(&mut self, f: CloudColor, z: NodeId, ci: CloudColor) {
        let cloud = self.clouds.get_mut(&f).expect("secondary alive");
        let delta = {
            let rng = &mut self.rng;
            cloud.expander_mut().insert(z, rng)
        };
        self.apply_delta(f, &delta);
        self.clouds
            .get_mut(&f)
            .expect("secondary alive")
            .attachments_mut()
            .insert(z, ci);
        self.nodes.get_mut(&z).expect("live node").secondary = Some(f);
    }

    /// Deletes a cloud entirely: strips its edges and clears memberships.
    fn delete_cloud(&mut self, color: CloudColor) {
        let Some(cloud) = self.clouds.remove(&color) else { return };
        let edges: Vec<(NodeId, NodeId)> = cloud.expander().edges().iter().copied().collect();
        for (u, w) in edges {
            self.graph.strip_color(u, w, color);
            self.op_removed += 1;
        }
        for &m in cloud.members() {
            if let Some(st) = self.nodes.get_mut(&m) {
                match cloud.kind() {
                    CloudKind::Primary => {
                        st.primaries.remove(&color);
                    }
                    CloudKind::Secondary => {
                        if st.secondary == Some(color) {
                            st.secondary = None;
                        }
                    }
                }
            }
        }
    }

    fn reset_op_counters(&mut self) {
        self.op_added = 0;
        self.op_removed = 0;
        self.op_shares = 0;
        self.op_combines = 0;
    }

    fn fold_op_counters(&mut self) {
        self.stats.edges_added += self.op_added;
        self.stats.edges_removed += self.op_removed;
        self.stats.shares += self.op_shares;
        self.stats.combines += self.op_combines;
    }

    // ------------------------------------------------------------------
    // Batch-deletion support (crate-internal; see batch.rs)
    // ------------------------------------------------------------------

    pub(crate) fn batch_begin(&mut self) {
        self.reset_op_counters();
    }

    pub(crate) fn batch_remove_node(&mut self, v: NodeId) {
        let _ = self.graph.remove_node(v);
    }

    pub(crate) fn batch_take_state(&mut self, v: NodeId) -> NodeState {
        self.nodes.remove(&v).unwrap_or_default()
    }

    /// Detaches several (already graph-removed) victims from one cloud,
    /// applying only the *net* edge delta — intermediate expander rebuilds
    /// may transiently reference other still-registered victims, but the
    /// final edge set only spans live members.
    pub(crate) fn batch_detach_many(&mut self, color: CloudColor, victims: &[NodeId]) {
        let Some(cloud) = self.clouds.get_mut(&color) else { return };
        let before = cloud.expander().edges().clone();
        let mut any = false;
        for &v in victims {
            if cloud.expander().contains(v) {
                let _ = cloud.expander_mut().remove(v, &mut self.rng);
                any = true;
            }
        }
        if any {
            let after = cloud.expander().edges().clone();
            let delta = EdgeDelta {
                added: after.difference(&before).copied().collect(),
                removed: before.difference(&after).copied().collect(),
            };
            self.apply_delta(color, &delta);
        }
        if self.clouds.get(&color).is_some_and(Cloud::is_empty) {
            self.clouds.remove(&color);
        }
    }

    /// Removes the attachment entry of a deleted bridge, returning the
    /// primary cloud it was bridging for.
    pub(crate) fn batch_take_bridge_target(
        &mut self,
        f: CloudColor,
        v: NodeId,
    ) -> Option<CloudColor> {
        self.clouds
            .get_mut(&f)
            .and_then(|cl| cl.attachments_mut().remove(&v))
    }

    pub(crate) fn batch_fix_secondary(
        &mut self,
        f: CloudColor,
        ci_alive: Option<CloudColor>,
    ) -> Option<CloudColor> {
        self.fix_secondary(f, ci_alive)
    }

    pub(crate) fn batch_singleton(&mut self, w: NodeId) -> CloudColor {
        self.create_primary_cloud(&[w])
    }

    pub(crate) fn batch_make_secondary(&mut self, group: &[CloudColor]) {
        self.make_secondary_among(group);
    }

    pub(crate) fn batch_finish(&mut self, victims: usize, black_degree_sum: usize) {
        self.stats.deletions += victims;
        self.stats.black_degree_sum += black_degree_sum;
        self.fold_op_counters();
    }

    /// Free nodes (no secondary duty) of a cloud, ascending.
    fn free_nodes_of(&self, color: CloudColor) -> Vec<NodeId> {
        let Some(cloud) = self.clouds.get(&color) else { return Vec::new() };
        cloud
            .members()
            .iter()
            .copied()
            .filter(|m| self.nodes.get(m).is_some_and(NodeState::is_free))
            .collect()
    }
}

/// Maximum bipartite matching (Kuhn's algorithm) of clouds to free nodes.
/// Returns one chosen representative per cloud where matchable.
fn match_representatives(
    group: &[CloudColor],
    adjacency: &[Vec<NodeId>],
) -> Vec<Option<NodeId>> {
    let mut owner: BTreeMap<NodeId, usize> = BTreeMap::new();

    fn try_assign(
        i: usize,
        adjacency: &[Vec<NodeId>],
        owner: &mut BTreeMap<NodeId, usize>,
        visited: &mut BTreeSet<NodeId>,
    ) -> bool {
        for &z in &adjacency[i] {
            if visited.contains(&z) {
                continue;
            }
            visited.insert(z);
            let current = owner.get(&z).copied();
            match current {
                None => {
                    owner.insert(z, i);
                    return true;
                }
                Some(j) => {
                    if try_assign(j, adjacency, owner, visited) {
                        owner.insert(z, i);
                        return true;
                    }
                }
            }
        }
        false
    }

    for i in 0..group.len() {
        let mut visited = BTreeSet::new();
        let _ = try_assign(i, adjacency, &mut owner, &mut visited);
    }

    let mut reps = vec![None; group.len()];
    for (z, i) in owner {
        reps[i] = Some(z);
    }
    reps
}

#[cfg(test)]
mod tests {
    use super::*;
    use xheal_graph::{components, generators};

    fn n(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    #[test]
    fn match_representatives_prefers_distinct() {
        let g = [CloudColor::new(0), CloudColor::new(1)];
        let adj = vec![vec![n(1), n(2)], vec![n(1)]];
        let reps = match_representatives(&g, &adj);
        assert_eq!(reps[1], Some(n(1)), "cloud 1 only has node 1");
        assert_eq!(reps[0], Some(n(2)), "cloud 0 must yield node 1");
    }

    #[test]
    fn match_representatives_reports_deficit() {
        let g = [CloudColor::new(0), CloudColor::new(1)];
        let adj = vec![vec![n(1)], vec![n(1)]];
        let reps = match_representatives(&g, &adj);
        let filled = reps.iter().flatten().count();
        assert_eq!(filled, 1);
    }

    #[test]
    fn case1_star_center_deletion_builds_primary_cloud() {
        let mut x = Xheal::new(&generators::star(10), XhealConfig::new(4).with_seed(1));
        let report = x.heal_delete(n(0)).unwrap();
        assert_eq!(report.case, HealCase::AllBlack);
        assert!(components::is_connected(x.graph()));
        assert_eq!(x.cloud_count(), 1);
        let (color, kind) = x.cloud_colors()[0];
        assert_eq!(kind, CloudKind::Primary);
        assert_eq!(x.cloud(color).unwrap().len(), 9);
        // All 9 ex-leaves are members of the new cloud.
        for i in 1..10 {
            assert!(x.node_state(n(i)).unwrap().primaries.contains(&color));
        }
    }

    #[test]
    fn degree_one_deletion_is_dropped() {
        let mut x = Xheal::new(&generators::path(3), XhealConfig::default());
        let report = x.heal_delete(n(0)).unwrap();
        assert_eq!(report.case, HealCase::Dropped);
        assert_eq!(x.cloud_count(), 0);
        assert!(components::is_connected(x.graph()));
    }

    #[test]
    fn insert_then_delete_roundtrip() {
        let mut x = Xheal::new(&generators::cycle(6), XhealConfig::default());
        x.heal_insert(n(100), &[n(0), n(3)]).unwrap();
        assert_eq!(x.graph().black_degree(n(100)), Some(2));
        x.heal_delete(n(100)).unwrap();
        assert!(!x.graph().contains_node(n(100)));
        assert!(components::is_connected(x.graph()));
    }

    #[test]
    fn insert_errors() {
        let mut x = Xheal::new(&generators::cycle(4), XhealConfig::default());
        assert_eq!(
            x.heal_insert(n(0), &[]),
            Err(HealError::NodeExists(n(0)))
        );
        assert_eq!(
            x.heal_insert(n(9), &[n(77)]),
            Err(HealError::NeighborMissing(n(77)))
        );
        assert_eq!(
            x.heal_delete(n(42)).map(|_| ()).unwrap_err(),
            HealError::NodeMissing(n(42))
        );
    }

    #[test]
    fn case21_member_deletion_fixes_cloud_and_builds_secondary() {
        // Star deletion creates one cloud; deleting a cloud member with black
        // edges exercises Case 2.1 with singletons.
        let mut g = generators::star(8);
        // Extra black edge between leaf 1 and a fresh outside node 50.
        g.add_node(n(50)).unwrap();
        g.add_black_edge(n(1), n(50)).unwrap();
        let mut x = Xheal::new(&g, XhealConfig::new(4).with_seed(3));
        x.heal_delete(n(0)).unwrap(); // case 1: cloud over leaves 1..8
        let report = x.heal_delete(n(1)).unwrap(); // case 2.1: in cloud + black nbr 50
        assert_eq!(report.case, HealCase::PrimaryOnly);
        assert!(components::is_connected(x.graph()));
        // Node 50's singleton cloud and the repaired primary should be linked
        // by a secondary cloud (or combined).
        let has_secondary = x
            .cloud_colors()
            .iter()
            .any(|&(_, k)| k == CloudKind::Secondary);
        assert!(has_secondary || report.combined);
    }

    #[test]
    fn repeated_deletions_keep_network_connected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let g = generators::connected_erdos_renyi(40, 0.08, &mut rng);
        let mut x = Xheal::new(&g, XhealConfig::new(4).with_seed(11));
        for i in 0..30 {
            let victim = x.graph().node_vec()[i % x.graph().node_count()];
            x.heal_delete(victim).unwrap();
            assert!(
                components::is_connected(x.graph()),
                "disconnected after deleting {victim}"
            );
            x.graph().validate().unwrap();
        }
        assert_eq!(x.graph().node_count(), 10);
    }

    #[test]
    fn bridge_deletion_case22_keeps_connectivity() {
        // Construct a scenario with a secondary cloud, then delete a bridge.
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let g = generators::connected_erdos_renyi(30, 0.1, &mut rng);
        let mut x = Xheal::new(&g, XhealConfig::new(4).with_seed(17));
        // Delete until a secondary cloud exists.
        let mut bridge: Option<NodeId> = None;
        for i in 0..25 {
            let victim = x.graph().node_vec()[(i * 3) % x.graph().node_count()];
            x.heal_delete(victim).unwrap();
            if let Some((f, _)) = x
                .cloud_colors()
                .iter()
                .find(|&&(_, k)| k == CloudKind::Secondary)
            {
                bridge = x.cloud(*f).unwrap().members().iter().next().copied();
                break;
            }
        }
        let bridge = bridge.expect("secondary cloud should appear under churn");
        let report = x.heal_delete(bridge).unwrap();
        assert_eq!(report.case, HealCase::Bridge);
        assert!(components::is_connected(x.graph()));
    }

    #[test]
    fn stats_accumulate() {
        let mut x = Xheal::new(&generators::star(10), XhealConfig::default());
        x.heal_insert(n(100), &[n(1)]).unwrap();
        x.heal_delete(n(0)).unwrap();
        let s = x.stats();
        assert_eq!(s.insertions, 1);
        assert_eq!(s.deletions, 1);
        assert!(s.edges_added > 0);
        assert!(s.amortized_lower_bound() >= 9.0);
    }
}
