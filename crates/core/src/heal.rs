//! The centralized Xheal executor.
//!
//! All healing *decisions* (Algorithms 3.1–3.6 of the paper: primary and
//! secondary cloud choice, free-node bridging, cloud sharing, combining)
//! live in [`RepairPlanner`]; [`Xheal`] is the thin centralized executor
//! that feeds deletions to the planner and applies the resulting
//! [`RepairPlan`]s to the network graph. The distributed executor
//! (`xheal-dist`) drives the identical planner over a message-passing
//! engine, which is why the two produce bit-identical topologies on
//! identical schedules.

use xheal_graph::{CloudColor, CloudKind, EdgeLabels, Graph, NodeId};
use xheal_trace::{hook, Layer, SharedTracer};

use crate::cloud::{Cloud, NodeState};
use crate::config::XhealConfig;
use crate::engine::{SinkRegistry, TopologyDelta, TopologySink};
use crate::error::HealError;
use crate::plan::ApplyScratch;
use crate::planner::RepairPlanner;
use crate::stats::{DeletionReport, HealStats};

/// The Xheal self-healing network state: the live graph plus the repair
/// planner, healing deletions as they arrive.
///
/// # Examples
///
/// ```
/// use xheal_core::{Xheal, XhealConfig};
/// use xheal_graph::{components, generators, NodeId};
///
/// // A star: the worst case for tree-style healers.
/// let mut net = Xheal::new(&generators::star(12), XhealConfig::default());
/// net.heal_delete(NodeId::new(0))?; // kill the center
/// assert!(components::is_connected(net.graph()));
/// # Ok::<(), xheal_core::HealError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Xheal {
    graph: Graph,
    planner: RepairPlanner,
    /// Topology-delta subscribers (cloning the healer drops them).
    sinks: SinkRegistry,
    /// Reusable incident-edge buffer for the deletion hot loop.
    scratch_incident: Vec<(NodeId, EdgeLabels)>,
    /// Reusable grouped-application buffers for plan flushes.
    scratch_apply: ApplyScratch,
    /// Optional span recorder shared with the planner; `None` keeps every
    /// instrumentation site a single branch.
    tracer: Option<SharedTracer>,
}

impl Xheal {
    /// Wraps an initial network. All existing edges are treated as black
    /// (original) edges, per the model.
    pub fn new(initial: &Graph, config: XhealConfig) -> Self {
        Xheal {
            graph: initial.clone(),
            planner: RepairPlanner::new(initial.nodes(), config),
            sinks: SinkRegistry::default(),
            scratch_incident: Vec::new(),
            scratch_apply: ApplyScratch::default(),
            tracer: None,
        }
    }

    /// Attaches (or detaches, with `None`) a tracer recording executor and
    /// planner spans. The handle is forwarded to the planner so one ledger
    /// holds both layers of each repair.
    pub fn set_tracer(&mut self, tracer: Option<SharedTracer>) {
        self.planner.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Starts a builder composing configuration, seeding, and topology
    /// sinks before wrapping a network.
    ///
    /// # Examples
    ///
    /// ```
    /// use xheal_core::Xheal;
    /// use xheal_graph::generators;
    ///
    /// let net = Xheal::builder().kappa(4).seed(7).build(&generators::star(8));
    /// assert_eq!(net.kappa(), 4);
    /// ```
    pub fn builder() -> XhealBuilder {
        XhealBuilder::default()
    }

    /// Registers a [`TopologySink`] observing every structural change this
    /// healer applies from now on (see [`crate::HealingEngine::subscribe`]).
    pub fn subscribe(&mut self, sink: Box<dyn TopologySink>) {
        self.sinks.register(sink);
    }

    /// The current (healed) network graph `G_t`.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The decision engine (cloud registry, stats, randomness).
    pub fn planner(&self) -> &RepairPlanner {
        &self.planner
    }

    /// The configuration in force.
    pub fn config(&self) -> &XhealConfig {
        self.planner.config()
    }

    /// Cloud expander degree κ.
    pub fn kappa(&self) -> usize {
        self.planner.kappa()
    }

    /// Cumulative healing statistics.
    pub fn stats(&self) -> &HealStats {
        self.planner.stats()
    }

    /// All live cloud colors with their kinds.
    pub fn cloud_colors(&self) -> Vec<(CloudColor, CloudKind)> {
        self.planner.cloud_colors()
    }

    /// Read access to a cloud.
    pub fn cloud(&self, color: CloudColor) -> Option<&Cloud> {
        self.planner.cloud(color)
    }

    /// Read access to a node's membership state.
    pub fn node_state(&self, v: NodeId) -> Option<&NodeState> {
        self.planner.node_state(v)
    }

    /// Number of live clouds.
    pub fn cloud_count(&self) -> usize {
        self.planner.cloud_count()
    }

    // ------------------------------------------------------------------
    // Model events
    // ------------------------------------------------------------------

    /// Adversarial insertion: a new node `v` with black edges to
    /// `neighbors`. Xheal takes no healing action (Algorithm 3.1 lines 1–2).
    ///
    /// # Errors
    ///
    /// [`HealError::NodeExists`] if `v` is present;
    /// [`HealError::NeighborMissing`] if any neighbor is absent.
    pub fn heal_insert(&mut self, v: NodeId, neighbors: &[NodeId]) -> Result<(), HealError> {
        if self.graph.contains_node(v) {
            return Err(HealError::NodeExists(v));
        }
        for &u in neighbors {
            if !self.graph.contains_node(u) {
                return Err(HealError::NeighborMissing(u));
            }
        }
        self.graph.add_node(v).expect("checked fresh");
        if !self.sinks.is_empty() {
            self.sinks.emit(TopologyDelta::NodeAdded(v));
        }
        for &u in neighbors {
            if u != v {
                // Duplicate neighbors tolerated: adding black twice is a no-op.
                let created = self.graph.add_black_edge(v, u).unwrap_or(false);
                if created && !self.sinks.is_empty() {
                    self.sinks.emit(TopologyDelta::EdgeAdded {
                        a: v,
                        b: u,
                        color: None,
                    });
                }
            }
        }
        self.planner.note_insert(v);
        hook::instant(
            &self.tracer,
            Layer::Executor,
            "exec.insert",
            0,
            neighbors.len() as u64,
        );
        Ok(())
    }

    /// Adversarial deletion of `v`, followed by the Xheal repair: the
    /// planner decides, this executor applies.
    ///
    /// # Errors
    ///
    /// [`HealError::NodeMissing`] if `v` is not in the network.
    pub fn heal_delete(&mut self, v: NodeId) -> Result<DeletionReport, HealError> {
        if !self.graph.contains_node(v) {
            return Err(HealError::NodeMissing(v));
        }
        let seq = self.planner.peek_repair_seq();
        hook::begin(
            &self.tracer,
            Layer::Executor,
            "exec.repair",
            seq,
            v.as_u64(),
        );
        let degree = self.graph.degree(v).expect("checked present");
        let mut incident = std::mem::take(&mut self.scratch_incident);
        incident.clear();
        self.graph
            .remove_node_into(v, &mut incident)
            .expect("checked present");
        if !self.sinks.is_empty() {
            self.sinks.emit(TopologyDelta::NodeRemoved(v));
        }
        let plan = self.planner.plan_deletion(v, &incident, degree);
        self.scratch_incident = incident;
        hook::begin(
            &self.tracer,
            Layer::Executor,
            "exec.apply",
            seq,
            plan.actions.len() as u64,
        );
        plan.apply_streamed_with(&mut self.graph, &mut self.sinks, &mut self.scratch_apply);
        hook::end(&self.tracer, Layer::Executor, "exec.apply", seq, 0);
        hook::end(&self.tracer, Layer::Executor, "exec.repair", seq, 0);
        Ok(plan.report)
    }

    // ------------------------------------------------------------------
    // Batch-deletion support (crate-internal; see batch.rs)
    // ------------------------------------------------------------------

    /// Simultaneous access to the graph, the planner, the sink registry,
    /// the grouped-apply scratch, and the tracer handle for the batch
    /// executor, which must mutate the first four around one planning call
    /// while recording its own spans.
    pub(crate) fn batch_parts(
        &mut self,
    ) -> (
        &mut Graph,
        &mut RepairPlanner,
        &mut SinkRegistry,
        &mut ApplyScratch,
        &Option<SharedTracer>,
    ) {
        (
            &mut self.graph,
            &mut self.planner,
            &mut self.sinks,
            &mut self.scratch_apply,
            &self.tracer,
        )
    }
}

/// Builder for [`Xheal`]: composes κ, seeding, ablation switches, and
/// topology sinks without breaking [`XhealConfig`] (which it wraps).
///
/// # Examples
///
/// ```
/// use std::cell::RefCell;
/// use std::rc::Rc;
/// use xheal_core::{DeltaMirror, Xheal};
/// use xheal_graph::generators;
///
/// let g0 = generators::cycle(8);
/// let mirror = Rc::new(RefCell::new(DeltaMirror::new(&g0)));
/// let net = Xheal::builder()
///     .kappa(4)
///     .seed(7)
///     .sink(Box::new(Rc::clone(&mirror)))
///     .build(&g0);
/// assert_eq!(net.config().seed, 7);
/// ```
#[derive(Debug, Default)]
pub struct XhealBuilder {
    config: XhealConfig,
    sinks: SinkRegistry,
}

impl XhealBuilder {
    /// Sets the cloud expander degree κ.
    ///
    /// # Panics
    ///
    /// Panics if `kappa` is odd or less than 2 (see [`XhealConfig::new`]).
    #[must_use]
    pub fn kappa(mut self, kappa: usize) -> Self {
        self.config = self.config.with_kappa(kappa);
        self
    }

    /// Sets the healer randomness seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Replaces the whole configuration (keeping any registered sinks).
    #[must_use]
    pub fn config(mut self, config: XhealConfig) -> Self {
        self.config = config;
        self
    }

    /// Disables secondary clouds (ablation).
    #[must_use]
    pub fn without_secondary_clouds(mut self) -> Self {
        self.config.disable_secondary = true;
        self
    }

    /// Disables free-node sharing (ablation).
    #[must_use]
    pub fn without_sharing(mut self) -> Self {
        self.config.disable_sharing = true;
        self
    }

    /// Registers a [`TopologySink`] the healer starts with.
    #[must_use]
    pub fn sink(mut self, sink: Box<dyn TopologySink>) -> Self {
        self.sinks.register(sink);
        self
    }

    /// Wraps `initial`, consuming the builder.
    pub fn build(self, initial: &Graph) -> Xheal {
        let mut net = Xheal::new(initial, self.config);
        net.sinks = self.sinks;
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use xheal_graph::{components, generators};

    use crate::stats::HealCase;

    fn n(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    #[test]
    fn case1_star_center_deletion_builds_primary_cloud() {
        let mut x = Xheal::new(&generators::star(10), XhealConfig::new(4).with_seed(1));
        let report = x.heal_delete(n(0)).unwrap();
        assert_eq!(report.case, HealCase::AllBlack);
        assert!(components::is_connected(x.graph()));
        assert_eq!(x.cloud_count(), 1);
        let (color, kind) = x.cloud_colors()[0];
        assert_eq!(kind, CloudKind::Primary);
        assert_eq!(x.cloud(color).unwrap().len(), 9);
        // All 9 ex-leaves are members of the new cloud.
        for i in 1..10 {
            assert!(x.node_state(n(i)).unwrap().primaries.contains(&color));
        }
    }

    #[test]
    fn degree_one_deletion_is_dropped() {
        let mut x = Xheal::new(&generators::path(3), XhealConfig::default());
        let report = x.heal_delete(n(0)).unwrap();
        assert_eq!(report.case, HealCase::Dropped);
        assert_eq!(x.cloud_count(), 0);
        assert!(components::is_connected(x.graph()));
    }

    #[test]
    fn insert_then_delete_roundtrip() {
        let mut x = Xheal::new(&generators::cycle(6), XhealConfig::default());
        x.heal_insert(n(100), &[n(0), n(3)]).unwrap();
        assert_eq!(x.graph().black_degree(n(100)), Some(2));
        x.heal_delete(n(100)).unwrap();
        assert!(!x.graph().contains_node(n(100)));
        assert!(components::is_connected(x.graph()));
    }

    #[test]
    fn insert_errors() {
        let mut x = Xheal::new(&generators::cycle(4), XhealConfig::default());
        assert_eq!(x.heal_insert(n(0), &[]), Err(HealError::NodeExists(n(0))));
        assert_eq!(
            x.heal_insert(n(9), &[n(77)]),
            Err(HealError::NeighborMissing(n(77)))
        );
        assert_eq!(
            x.heal_delete(n(42)).map(|_| ()).unwrap_err(),
            HealError::NodeMissing(n(42))
        );
    }

    #[test]
    fn case21_member_deletion_fixes_cloud_and_builds_secondary() {
        // Star deletion creates one cloud; deleting a cloud member with black
        // edges exercises Case 2.1 with singletons.
        let mut g = generators::star(8);
        // Extra black edge between leaf 1 and a fresh outside node 50.
        g.add_node(n(50)).unwrap();
        g.add_black_edge(n(1), n(50)).unwrap();
        let mut x = Xheal::new(&g, XhealConfig::new(4).with_seed(3));
        x.heal_delete(n(0)).unwrap(); // case 1: cloud over leaves 1..8
        let report = x.heal_delete(n(1)).unwrap(); // case 2.1: in cloud + black nbr 50
        assert_eq!(report.case, HealCase::PrimaryOnly);
        assert!(components::is_connected(x.graph()));
        // Node 50's singleton cloud and the repaired primary should be linked
        // by a secondary cloud (or combined).
        let has_secondary = x
            .cloud_colors()
            .iter()
            .any(|&(_, k)| k == CloudKind::Secondary);
        assert!(has_secondary || report.combined);
    }

    #[test]
    fn repeated_deletions_keep_network_connected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let g = generators::connected_erdos_renyi(40, 0.08, &mut rng);
        let mut x = Xheal::new(&g, XhealConfig::new(4).with_seed(11));
        for i in 0..30 {
            let victim = x.graph().node_vec()[i % x.graph().node_count()];
            x.heal_delete(victim).unwrap();
            assert!(
                components::is_connected(x.graph()),
                "disconnected after deleting {victim}"
            );
            x.graph().validate().unwrap();
        }
        assert_eq!(x.graph().node_count(), 10);
    }

    #[test]
    fn bridge_deletion_case22_keeps_connectivity() {
        // Construct a scenario with a secondary cloud, then delete a bridge.
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let g = generators::connected_erdos_renyi(30, 0.1, &mut rng);
        let mut x = Xheal::new(&g, XhealConfig::new(4).with_seed(17));
        // Delete until a secondary cloud exists.
        let mut bridge: Option<NodeId> = None;
        for i in 0..25 {
            let victim = x.graph().node_vec()[(i * 3) % x.graph().node_count()];
            x.heal_delete(victim).unwrap();
            if let Some((f, _)) = x
                .cloud_colors()
                .iter()
                .find(|&&(_, k)| k == CloudKind::Secondary)
            {
                bridge = x.cloud(*f).unwrap().members().iter().next().copied();
                break;
            }
        }
        let bridge = bridge.expect("secondary cloud should appear under churn");
        let report = x.heal_delete(bridge).unwrap();
        assert_eq!(report.case, HealCase::Bridge);
        assert!(components::is_connected(x.graph()));
    }

    #[test]
    fn stats_accumulate() {
        let mut x = Xheal::new(&generators::star(10), XhealConfig::default());
        x.heal_insert(n(100), &[n(1)]).unwrap();
        x.heal_delete(n(0)).unwrap();
        let s = x.stats();
        assert_eq!(s.insertions, 1);
        assert_eq!(s.deletions, 1);
        assert!(s.edges_added > 0);
        assert!(s.amortized_lower_bound() >= 9.0);
    }

    #[test]
    fn report_matches_planner_stats() {
        let mut x = Xheal::new(&generators::star(16), XhealConfig::new(6).with_seed(2));
        let report = x.heal_delete(n(0)).unwrap();
        assert_eq!(report.edges_added, x.stats().edges_added);
        assert_eq!(report.edges_removed, x.stats().edges_removed);
        assert_eq!(x.planner().stats(), x.stats());
    }
}
