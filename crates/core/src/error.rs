//! Error type shared by all healers.

use std::error::Error;
use std::fmt;

use xheal_graph::NodeId;

/// Errors returned by healing operations (adversary-event preconditions).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HealError {
    /// Insertion of a node that already exists.
    NodeExists(NodeId),
    /// Deletion of a node that is not in the network.
    NodeMissing(NodeId),
    /// Insertion referencing a neighbor that is not in the network.
    NeighborMissing(NodeId),
}

impl fmt::Display for HealError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HealError::NodeExists(v) => write!(f, "node {v} already exists"),
            HealError::NodeMissing(v) => write!(f, "node {v} is not in the network"),
            HealError::NeighborMissing(v) => write!(f, "neighbor {v} is not in the network"),
        }
    }
}

impl Error for HealError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = HealError::NodeMissing(NodeId::new(3));
        assert_eq!(e.to_string(), "node n3 is not in the network");
    }
}
