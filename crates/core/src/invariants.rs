//! Structural invariants of the Xheal state (DESIGN.md §5).
//!
//! These are checked after every heal in the test suites and property tests;
//! each corresponds to a structural fact the paper's analysis relies on.

use std::collections::{BTreeMap, BTreeSet};

use xheal_graph::{CloudColor, CloudKind, NodeId};

use crate::cloud::NodeState;
use crate::heal::Xheal;

/// Checks all structural invariants, returning the first violation found.
///
/// - **I2** cloud members are live graph nodes; every cloud edge is present
///   in the graph carrying the cloud's color;
/// - **I3** a node's `secondary` field matches the secondary cloud's
///   attachment map, and each bridge's target primary is one of its own
///   primary clouds;
/// - **I4** every secondary cloud has at least 2 members and its attachment
///   keys are exactly its member set;
/// - **I5** membership symmetry: `node.primaries` contains a color iff that
///   primary cloud contains the node;
/// - **I6** every color on any graph edge belongs to a live cloud that lists
///   the edge;
/// - **I7** each primary cloud's maintained free-member set is exactly its
///   members with no secondary duty (the incremental bookkeeping never
///   drifts from a recomputation);
/// - **I8** the planner's reverse attachment index matches the bridge
///   counts recomputed from the live secondary clouds.
pub fn check_invariants(x: &Xheal) -> Result<(), String> {
    x.planner().validate_attachment_index()?;
    let graph = x.graph();

    // Collect node -> primaries from the cloud side for the symmetry check.
    let mut from_clouds: BTreeMap<NodeId, Vec<CloudColor>> = BTreeMap::new();

    for (color, kind) in x.cloud_colors() {
        let cloud = x.cloud(color).expect("listed cloud exists");
        if cloud.is_empty() {
            return Err(format!("cloud {color} is empty but registered"));
        }
        for &m in cloud.members() {
            if !graph.contains_node(m) {
                return Err(format!("cloud {color} member {m} not in graph"));
            }
            if kind == CloudKind::Primary {
                from_clouds.entry(m).or_default().push(color);
            }
        }
        // I2: installed edges present with the right color.
        for &(u, w) in cloud.expander().edges() {
            match graph.edge_labels(u, w) {
                Some(l) if l.has_color(color) => {}
                Some(_) => {
                    return Err(format!("edge ({u},{w}) missing color {color} of its cloud"))
                }
                None => return Err(format!("cloud {color} edge ({u},{w}) absent from graph")),
            }
        }
        // I7: maintained free sets match a recomputation from node states.
        if kind == CloudKind::Primary {
            let recomputed: BTreeSet<NodeId> = cloud
                .members()
                .iter()
                .copied()
                .filter(|m| x.node_state(*m).is_some_and(NodeState::is_free))
                .collect();
            if &recomputed != cloud.free_members() {
                return Err(format!(
                    "cloud {color}: free set {:?} != recomputed {recomputed:?}",
                    cloud.free_members()
                ));
            }
        }
        // I4: secondary structure.
        if kind == CloudKind::Secondary {
            if cloud.len() < 2 {
                return Err(format!("secondary {color} has {} member(s)", cloud.len()));
            }
            if cloud.attachments().len() != cloud.len() {
                return Err(format!(
                    "secondary {color}: {} attachments for {} members",
                    cloud.attachments().len(),
                    cloud.len()
                ));
            }
            for (&bridge, &prim) in cloud.attachments() {
                if !cloud.members().contains(&bridge) {
                    return Err(format!(
                        "secondary {color}: attachment key {bridge} not a member"
                    ));
                }
                let st = x
                    .node_state(bridge)
                    .ok_or_else(|| format!("bridge {bridge} has no node state"))?;
                if st.secondary != Some(color) {
                    return Err(format!(
                        "bridge {bridge}: secondary field {:?} != cloud {color}",
                        st.secondary
                    ));
                }
                match x.cloud(prim) {
                    None => {
                        return Err(format!(
                            "secondary {color}: bridge {bridge} targets dead primary {prim}"
                        ))
                    }
                    Some(p) => {
                        if p.kind() != CloudKind::Primary {
                            return Err(format!("secondary {color}: target {prim} is not primary"));
                        }
                        if !p.members().contains(&bridge) {
                            return Err(format!(
                                "bridge {bridge} not a member of its primary {prim}"
                            ));
                        }
                    }
                }
            }
        }
    }

    // I3 + I5 from the node side.
    for v in graph.nodes() {
        let st = x
            .node_state(v)
            .ok_or_else(|| format!("live node {v} missing state"))?;
        let mut from_cloud_side = from_clouds.remove(&v).unwrap_or_default();
        from_cloud_side.sort_unstable();
        let from_node_side: Vec<CloudColor> = st.primaries.iter().copied().collect();
        if from_cloud_side != from_node_side {
            return Err(format!(
                "node {v}: primaries {from_node_side:?} but clouds say {from_cloud_side:?}"
            ));
        }
        if let Some(f) = st.secondary {
            let cloud = x
                .cloud(f)
                .ok_or_else(|| format!("node {v} references dead secondary {f}"))?;
            if !cloud.attachments().contains_key(&v) {
                return Err(format!("node {v} not attached in its secondary {f}"));
            }
        }
    }
    if let Some((orphan, colors)) = from_clouds.into_iter().next() {
        return Err(format!(
            "cloud-side membership for absent node {orphan}: {colors:?}"
        ));
    }

    // I6: every edge color belongs to a live cloud listing the edge.
    for (u, w, labels) in graph.edges() {
        for &c in labels.colors() {
            match x.cloud(c) {
                None => return Err(format!("edge ({u},{w}) carries dead color {c}")),
                Some(cloud) => {
                    let key = if u < w { (u, w) } else { (w, u) };
                    if cloud.expander().edges().binary_search(&key).is_err() {
                        return Err(format!(
                            "edge ({u},{w}) carries color {c} not in that cloud's edge set"
                        ));
                    }
                }
            }
        }
    }

    graph.validate().map_err(|e| format!("graph invalid: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Xheal, XhealConfig};
    use xheal_graph::generators;

    #[test]
    fn fresh_network_satisfies_invariants() {
        let x = Xheal::new(&generators::cycle(8), XhealConfig::default());
        check_invariants(&x).unwrap();
    }

    #[test]
    fn invariants_hold_across_heavy_churn() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::connected_erdos_renyi(36, 0.09, &mut rng);
        let mut x = Xheal::new(&g, XhealConfig::new(4).with_seed(23));
        let mut next_id = 100u64;
        for step in 0..80 {
            if rng.random::<f64>() < 0.35 && x.graph().node_count() > 0 {
                // Insert with 1..=3 random neighbors.
                let nodes = x.graph().node_vec();
                let mut nbrs = Vec::new();
                for _ in 0..rng.random_range(1..=3usize.min(nodes.len())) {
                    nbrs.push(nodes[rng.random_range(0..nodes.len())]);
                }
                nbrs.dedup();
                x.heal_insert(NodeId::new(next_id), &nbrs).unwrap();
                next_id += 1;
            } else if x.graph().node_count() > 3 {
                let nodes = x.graph().node_vec();
                let victim = nodes[rng.random_range(0..nodes.len())];
                x.heal_delete(victim).unwrap();
            }
            check_invariants(&x).unwrap_or_else(|e| panic!("step {step}: {e}"));
        }
    }
}
