//! Cloud and per-node bookkeeping state.

use std::collections::{BTreeMap, BTreeSet};

use xheal_expander::MaintainedExpander;
use xheal_graph::{CloudColor, CloudKind, NodeId};

/// One expander cloud: its kind, its maintained expander topology, and (for
/// secondary clouds) the bridge attachments.
#[derive(Clone, Debug)]
pub struct Cloud {
    kind: CloudKind,
    expander: MaintainedExpander,
    /// Secondary clouds only: which primary cloud each member bridges for.
    /// Keys are exactly the expander members (invariant I4).
    attachments: BTreeMap<NodeId, CloudColor>,
    /// Primary clouds only: the members currently *free* (no secondary
    /// duty), maintained incrementally by the planner so free-node picks
    /// never scan the full membership. Invariant I7:
    /// `free_members = members ∩ {v | v.secondary == None}`.
    free_members: BTreeSet<NodeId>,
}

impl Cloud {
    pub(crate) fn new(kind: CloudKind, expander: MaintainedExpander) -> Self {
        Cloud {
            kind,
            expander,
            attachments: BTreeMap::new(),
            free_members: BTreeSet::new(),
        }
    }

    /// Primary or secondary.
    pub fn kind(&self) -> CloudKind {
        self.kind
    }

    /// The underlying expander structure.
    pub fn expander(&self) -> &MaintainedExpander {
        &self.expander
    }

    pub(crate) fn expander_mut(&mut self) -> &mut MaintainedExpander {
        &mut self.expander
    }

    /// Members of the cloud.
    pub fn members(&self) -> &BTreeSet<NodeId> {
        self.expander.members()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.expander.len()
    }

    /// True when the cloud has no members.
    pub fn is_empty(&self) -> bool {
        self.expander.is_empty()
    }

    /// Bridge attachments (secondary clouds): member → the primary cloud it
    /// bridges for.
    pub fn attachments(&self) -> &BTreeMap<NodeId, CloudColor> {
        &self.attachments
    }

    pub(crate) fn attachments_mut(&mut self) -> &mut BTreeMap<NodeId, CloudColor> {
        &mut self.attachments
    }

    /// Members with no secondary duty, ascending (primary clouds; empty for
    /// secondaries). Maintained incrementally — reading it is free.
    pub fn free_members(&self) -> &BTreeSet<NodeId> {
        &self.free_members
    }

    pub(crate) fn free_members_mut(&mut self) -> &mut BTreeSet<NodeId> {
        &mut self.free_members
    }
}

/// Per-node cloud membership state.
///
/// A node is *free* (available for bridge duty) exactly when it belongs to no
/// secondary cloud — the paper's "free nodes are nodes that belong to only
/// primary clouds".
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeState {
    /// Primary clouds this node belongs to (a node can be in many — Figure 2
    /// of the paper).
    pub primaries: BTreeSet<CloudColor>,
    /// The at-most-one secondary cloud this node belongs to.
    pub secondary: Option<CloudColor>,
}

impl NodeState {
    /// Is this node free (no secondary duties)?
    pub fn is_free(&self) -> bool {
        self.secondary.is_none()
    }

    /// Does the node belong to no cloud at all?
    pub fn is_cloudless(&self) -> bool {
        self.primaries.is_empty() && self.secondary.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_state_freeness() {
        let mut s = NodeState::default();
        assert!(s.is_free());
        assert!(s.is_cloudless());
        s.primaries.insert(CloudColor::new(1));
        assert!(s.is_free(), "primary membership keeps a node free");
        assert!(!s.is_cloudless());
        s.secondary = Some(CloudColor::new(2));
        assert!(!s.is_free());
    }
}
