//! Configuration of the Xheal healer.

/// Tunable parameters of [`crate::Xheal`].
///
/// `kappa` is the paper's κ: the target degree of every expander cloud
/// (clouds with at most `κ + 1` members are cliques). It must be even because
/// the Law–Siu H-graph construction is 2d-regular with `d = κ / 2`.
///
/// The two `disable_*` flags are ablation switches for experiment E10; both
/// default to `false` (the paper's algorithm).
///
/// # Examples
///
/// ```
/// use xheal_core::XhealConfig;
/// let cfg = XhealConfig::new(6).with_seed(42);
/// assert_eq!(cfg.kappa, 6);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XhealConfig {
    /// Cloud expander degree κ (even, ≥ 2). Default 6 (`d = 3` Hamilton
    /// cycles), comfortably satisfying the paper's "expansion α > 2" w.h.p.
    pub kappa: usize,
    /// Seed for the healer's private randomness (the adversary is oblivious
    /// to it, per the model in Section 2).
    pub seed: u64,
    /// Ablation: never build secondary clouds — always combine affected
    /// primary clouds into one (the expensive operation the secondary-cloud
    /// machinery exists to amortize).
    pub disable_secondary: bool,
    /// Ablation: never share free nodes between clouds; a cloud without its
    /// own free node forces combining.
    pub disable_sharing: bool,
}

impl XhealConfig {
    /// Creates a config with the given κ and default seed 0.
    ///
    /// # Panics
    ///
    /// Panics if `kappa` is odd or less than 2.
    pub fn new(kappa: usize) -> Self {
        assert!(kappa >= 2 && kappa % 2 == 0, "kappa must be even and >= 2");
        XhealConfig {
            kappa,
            seed: 0,
            disable_secondary: false,
            disable_sharing: false,
        }
    }

    /// Sets the healer randomness seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets κ, keeping every other field (the builders' kappa setter).
    ///
    /// # Panics
    ///
    /// Panics if `kappa` is odd or less than 2, as in [`XhealConfig::new`].
    #[must_use]
    pub fn with_kappa(mut self, kappa: usize) -> Self {
        assert!(kappa >= 2 && kappa % 2 == 0, "kappa must be even and >= 2");
        self.kappa = kappa;
        self
    }

    /// Disables secondary clouds (ablation).
    #[must_use]
    pub fn without_secondary_clouds(mut self) -> Self {
        self.disable_secondary = true;
        self
    }

    /// Disables free-node sharing (ablation).
    #[must_use]
    pub fn without_sharing(mut self) -> Self {
        self.disable_sharing = true;
        self
    }
}

impl Default for XhealConfig {
    fn default() -> Self {
        XhealConfig::new(6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_kappa_six() {
        let c = XhealConfig::default();
        assert_eq!(c.kappa, 6);
        assert!(!c.disable_secondary);
        assert!(!c.disable_sharing);
    }

    #[test]
    fn builder_chains() {
        let c = XhealConfig::new(4)
            .with_seed(9)
            .without_secondary_clouds()
            .without_sharing();
        assert_eq!((c.kappa, c.seed), (4, 9));
        assert!(c.disable_secondary && c.disable_sharing);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_kappa_rejected() {
        let _ = XhealConfig::new(5);
    }
}
