//! # xheal-core
//!
//! The Xheal self-healing algorithm of *Xheal: Localized Self-healing using
//! Expanders* (Pandurangan & Trehan, PODC 2011).
//!
//! Xheal repairs adversarial node deletions by installing κ-regular expander
//! *clouds* among the affected nodes: a **primary cloud** replaces the ball
//! around a deleted node, and **secondary clouds** stitch together the
//! primary clouds a deleted node belonged to — bridged by *free nodes*,
//! shared across clouds when scarce, and collapsed (*combined*) into a single
//! primary cloud when they run out. The result (the paper's Theorem 2)
//! preserves connectivity, edge expansion, O(log n) stretch, and per-node
//! degree up to an O(κ) factor relative to the insertion-only graph `G'`.
//!
//! Entry points:
//!
//! - [`HealingEngine`]: the unified executor API — event-driven
//!   [`HealingEngine::apply`] consuming [`Event`]s and returning structured
//!   [`Outcome`]s, implemented by every executor (this crate's [`Xheal`],
//!   `xheal-dist`'s `DistXheal`, and all `xheal-baselines` strategies);
//! - [`TopologySink`] / [`TopologyDelta`]: the subscription layer — every
//!   structural change streams to registered sinks; [`DeltaMirror`] is the
//!   built-in shadow-graph consumer;
//! - [`Xheal`]: the centralized healing network state ([`Xheal::builder`],
//!   [`Xheal::heal_insert`], [`Xheal::heal_delete`],
//!   [`Xheal::heal_delete_batch`]);
//! - [`Healer`]: the older per-method strategy trait (kept for ergonomic
//!   direct calls; new drivers should use [`HealingEngine`]);
//! - [`XhealConfig`]: κ, seeding, and ablation switches;
//! - [`RepairPlanner`] / [`RepairPlan`]: healing decisions as data, shared
//!   verbatim by the centralized and distributed executors;
//! - [`EngineRegistry`]: name-keyed engine constructors, so arena/sweep
//!   drivers can build fresh engines of every flavor over one graph;
//! - [`invariants::check_invariants`]: structural self-checks used heavily
//!   by the test suites.
//!
//! # Examples
//!
//! ```
//! use xheal_core::{Healer, Xheal, XhealConfig};
//! use xheal_graph::{components, generators, NodeId};
//!
//! let mut net = Xheal::new(&generators::star(16), XhealConfig::new(4));
//! net.on_delete(NodeId::new(0))?; // adversary kills the hub
//! assert!(components::is_connected(net.graph()));
//! // The repair installed an expander among the 15 orphaned leaves.
//! assert!(net.graph().edge_count() >= 15);
//! # Ok::<(), xheal_core::HealError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod cloud;
mod config;
mod engine;
mod error;
mod event;
mod heal;
mod healer;
pub mod invariants;
mod parallel;
mod plan;
mod planner;
mod registry;
mod shard;
mod stats;

pub use batch::{BatchRepairPlan, BatchReport, BatchStage, BatchVictim};
pub use cloud::{Cloud, NodeState};
pub use config::XhealConfig;
pub use engine::{
    DeltaMirror, DistCost, HealingEngine, Outcome, RepairCost, SinkRegistry, TopologyDelta,
    TopologySink,
};
pub use error::HealError;
pub use event::Event;
pub use heal::{Xheal, XhealBuilder};
pub use healer::Healer;
pub use parallel::ParallelXheal;
pub use plan::{ApplyScratch, PlanAction, RepairPlan};
pub use planner::RepairPlanner;
pub use registry::{EngineBuilder, EngineRegistry};
pub use stats::{DeletionReport, HealCase, HealStats};
