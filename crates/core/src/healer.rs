//! The `Healer` trait: the common interface of Xheal and every baseline.
//!
//! The insert/delete/repair model (Figure 1 of the paper) drives any healer
//! through the same two adversarial events; workloads and experiments are
//! written against this trait so Xheal and the baselines are interchangeable.

use xheal_graph::{Graph, NodeId};

use crate::error::HealError;
use crate::heal::Xheal;

/// A self-healing strategy reacting to adversarial node insertions and
/// deletions.
pub trait Healer {
    /// Human-readable strategy name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// The current healed network graph `G_t`.
    fn graph(&self) -> &Graph;

    /// Handles an adversarial insertion of `v` with black edges to
    /// `neighbors`.
    ///
    /// # Errors
    ///
    /// Implementations reject duplicate nodes and unknown neighbors.
    fn on_insert(&mut self, v: NodeId, neighbors: &[NodeId]) -> Result<(), HealError>;

    /// Handles an adversarial deletion of `v` and repairs the network.
    ///
    /// # Errors
    ///
    /// Implementations reject deletion of absent nodes.
    fn on_delete(&mut self, v: NodeId) -> Result<(), HealError>;

    /// Handles the simultaneous adversarial deletion of several nodes.
    ///
    /// The default falls back to deleting them one at a time — a *sequential
    /// approximation* that lets every baseline run burst workloads; healers
    /// with a genuine simultaneous-deletion repair (Xheal's batch extension)
    /// override it.
    ///
    /// # Errors
    ///
    /// Implementations reject absent or duplicated victims.
    fn on_delete_batch(&mut self, victims: &[NodeId]) -> Result<(), HealError> {
        for &v in victims {
            self.on_delete(v)?;
        }
        Ok(())
    }
}

impl Healer for Xheal {
    fn name(&self) -> &'static str {
        "xheal"
    }

    fn graph(&self) -> &Graph {
        Xheal::graph(self)
    }

    fn on_insert(&mut self, v: NodeId, neighbors: &[NodeId]) -> Result<(), HealError> {
        self.heal_insert(v, neighbors)
    }

    fn on_delete(&mut self, v: NodeId) -> Result<(), HealError> {
        self.heal_delete(v).map(|_| ())
    }

    fn on_delete_batch(&mut self, victims: &[NodeId]) -> Result<(), HealError> {
        self.heal_delete_batch(victims).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::XhealConfig;
    use xheal_graph::generators;

    #[test]
    fn xheal_implements_healer() {
        let mut h: Box<dyn Healer> =
            Box::new(Xheal::new(&generators::star(6), XhealConfig::default()));
        assert_eq!(h.name(), "xheal");
        h.on_delete(NodeId::new(0)).unwrap();
        assert!(xheal_graph::components::is_connected(h.graph()));
        assert!(h.on_delete(NodeId::new(0)).is_err());
    }
}
