//! [`ParallelXheal`]: the component-parallel batch executor.
//!
//! Wraps a sequential [`Xheal`] plus a persistent [`WorkerPool`]. Insertions
//! and single deletions delegate unchanged (they are already O(polylog)
//! local); batch deletions fan the detach prologue out per affected cloud
//! and the per-component healing out per dead component, speculating each
//! component against the post-prologue planner snapshot and replaying the
//! few that conflicted (see `shard.rs` for the store/footprint machinery).
//!
//! The parallel executor is *bit-identical* to sequential [`Xheal`] at every
//! thread count: same topology fingerprints, same plans, same statistics,
//! same [`crate::TopologyDelta`] stream — deltas are merged deterministically
//! in repair order (ascending cloud color in the prologue, component order
//! in phase 2) before they reach the graph or any sink.

use xheal_graph::{CloudColor, CloudKind, Graph, NodeId};
use xheal_pool::WorkerPool;
use xheal_trace::{hook, Layer, SharedTracer};

use crate::batch::{BatchReport, BatchVictim};
use crate::cloud::{Cloud, NodeState};
use crate::config::XhealConfig;
use crate::engine::{HealingEngine, Outcome, TopologyDelta, TopologySink};
use crate::error::HealError;
use crate::event::Event;
use crate::heal::{Xheal, XhealBuilder};
use crate::planner::RepairPlanner;
use crate::stats::{DeletionReport, HealStats};

/// A healing network whose batch repairs run component-parallel on a
/// reusable worker pool, bit-identical to sequential [`Xheal`].
///
/// # Examples
///
/// ```
/// use xheal_core::{ParallelXheal, Xheal, XhealConfig};
/// use xheal_graph::{generators, NodeId};
///
/// let g0 = generators::cycle(64);
/// let mut seq = Xheal::new(&g0, XhealConfig::new(4).with_seed(2));
/// let mut par = ParallelXheal::new(&g0, XhealConfig::new(4).with_seed(2), 4);
/// let victims: Vec<NodeId> = (0..8).map(|i| NodeId::new(i * 8)).collect();
/// seq.heal_delete_batch(&victims)?;
/// par.heal_delete_batch(&victims)?;
/// assert!(seq.graph() == par.graph());
/// # Ok::<(), xheal_core::HealError>(())
/// ```
#[derive(Debug)]
pub struct ParallelXheal {
    inner: Xheal,
    pool: WorkerPool,
}

impl ParallelXheal {
    /// Wraps `initial` with `threads` worker threads (clamped to at least 1).
    pub fn new(initial: &Graph, config: XhealConfig, threads: usize) -> Self {
        ParallelXheal {
            inner: Xheal::new(initial, config),
            pool: WorkerPool::new(threads),
        }
    }

    /// Builds from an already-configured sequential engine (keeps its
    /// sinks, planner state, and graph).
    pub fn from_sequential(inner: Xheal, threads: usize) -> Self {
        ParallelXheal {
            inner,
            pool: WorkerPool::new(threads),
        }
    }

    /// Number of worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The wrapped sequential engine (read-only).
    pub fn as_sequential(&self) -> &Xheal {
        &self.inner
    }

    /// The healed network graph.
    pub fn graph(&self) -> &Graph {
        self.inner.graph()
    }

    /// The shared decision engine.
    pub fn planner(&self) -> &RepairPlanner {
        self.inner.planner()
    }

    /// Cumulative healing statistics.
    pub fn stats(&self) -> &HealStats {
        self.inner.stats()
    }

    /// All live cloud colors with their kinds, ascending.
    pub fn cloud_colors(&self) -> Vec<(CloudColor, CloudKind)> {
        self.inner.cloud_colors()
    }

    /// Read access to a cloud.
    pub fn cloud(&self, color: CloudColor) -> Option<&Cloud> {
        self.inner.cloud(color)
    }

    /// Read access to a node's membership state.
    pub fn node_state(&self, v: NodeId) -> Option<&NodeState> {
        self.inner.node_state(v)
    }

    /// Registers a [`TopologySink`].
    pub fn subscribe(&mut self, sink: Box<dyn TopologySink>) {
        self.inner.subscribe(sink);
    }

    /// Attaches (or detaches, with `None`) a tracer recording executor and
    /// planner spans, including the per-component speculation lanes.
    pub fn set_tracer(&mut self, tracer: Option<SharedTracer>) {
        self.inner.set_tracer(tracer);
    }

    /// Handles an adversarial insertion (delegates to the sequential path —
    /// insertions do no healing work).
    pub fn heal_insert(&mut self, v: NodeId, neighbors: &[NodeId]) -> Result<(), HealError> {
        self.inner.heal_insert(v, neighbors)
    }

    /// Heals a single deletion (delegates — one deletion is one component).
    pub fn heal_delete(&mut self, v: NodeId) -> Result<DeletionReport, HealError> {
        self.inner.heal_delete(v)
    }

    /// Heals the simultaneous deletion of `victims`, planning the detach
    /// prologue and every dead component on the worker pool.
    pub fn heal_delete_batch(&mut self, victims: &[NodeId]) -> Result<BatchReport, HealError> {
        let ctx = BatchVictim::capture(self.inner.graph(), victims)?;
        let pool = &self.pool;
        let (graph, planner, sinks, scratch, tracer) = self.inner.batch_parts();
        let seq = planner.peek_repair_seq();
        hook::begin(
            tracer,
            Layer::Executor,
            "exec.batch",
            seq,
            victims.len() as u64,
        );
        for bv in &ctx {
            let _ = graph.remove_node(bv.node);
            if !sinks.is_empty() {
                sinks.emit(TopologyDelta::NodeRemoved(bv.node));
            }
        }
        let plan = planner.plan_batch_deletion_parallel(&ctx, pool);
        hook::begin(
            tracer,
            Layer::Executor,
            "exec.apply",
            seq,
            plan.stages.len() as u64,
        );
        plan.apply_streamed_with(graph, sinks, scratch);
        hook::end(tracer, Layer::Executor, "exec.apply", seq, 0);
        hook::end(tracer, Layer::Executor, "exec.batch", seq, 0);
        Ok(plan.report)
    }
}

impl HealingEngine for ParallelXheal {
    fn name(&self) -> &'static str {
        "xheal-par"
    }

    fn graph(&self) -> &Graph {
        ParallelXheal::graph(self)
    }

    fn apply(&mut self, event: &Event) -> Result<Outcome, HealError> {
        match event {
            Event::Insert { node, neighbors } => {
                self.heal_insert(*node, neighbors)?;
                Ok(Outcome::Inserted { cost: None })
            }
            Event::Delete { node } => Ok(Outcome::Healed {
                report: self.heal_delete(*node)?,
                cost: None,
            }),
            Event::DeleteBatch { nodes } => Ok(Outcome::Batch {
                report: self.heal_delete_batch(nodes)?,
                cost: None,
            }),
        }
    }

    fn subscribe(&mut self, sink: Box<dyn TopologySink>) {
        ParallelXheal::subscribe(self, sink);
    }

    fn set_tracer(&mut self, tracer: Option<SharedTracer>) {
        ParallelXheal::set_tracer(self, tracer);
    }
}

impl XhealBuilder {
    /// Wraps `initial` in a [`ParallelXheal`] with `threads` workers,
    /// consuming the builder (keeps any registered sinks).
    pub fn build_parallel(self, initial: &Graph, threads: usize) -> ParallelXheal {
        ParallelXheal::from_sequential(self.build(initial), threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DeltaMirror;
    use crate::invariants;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::cell::RefCell;
    use std::rc::Rc;
    use xheal_graph::generators;

    fn n(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    fn run_schedule(engine: &mut dyn HealingEngine, rounds: u64) {
        for round in 0..rounds {
            // A scattered batch, an insert, and a single delete per round —
            // exercises every event kind against colored state.
            let victims: Vec<NodeId> = engine
                .graph()
                .nodes()
                .filter(|v| (v.as_u64() + round) % 23 == 0)
                .take(6)
                .collect();
            if victims.len() >= 2 {
                engine
                    .apply(&Event::DeleteBatch { nodes: victims })
                    .unwrap();
            }
            let anchor = engine.graph().nodes().next().unwrap();
            engine
                .apply(&Event::Insert {
                    node: n(10_000 + round),
                    neighbors: vec![anchor],
                })
                .unwrap();
            let lone = engine.graph().nodes().nth(3);
            if let Some(v) = lone {
                engine.apply(&Event::Delete { node: v }).unwrap();
            }
        }
    }

    #[test]
    fn parallel_engine_is_bit_identical_to_sequential() {
        let g0 = generators::random_regular(160, 6, &mut StdRng::seed_from_u64(11));
        for threads in [1, 2, 4] {
            let mut seq = Xheal::new(&g0, XhealConfig::new(4).with_seed(5));
            let mut par = ParallelXheal::new(&g0, XhealConfig::new(4).with_seed(5), threads);
            run_schedule(&mut seq, 8);
            run_schedule(&mut par, 8);
            assert!(seq.graph() == par.graph(), "threads={threads}");
            assert_eq!(seq.cloud_colors(), par.cloud_colors());
            assert_eq!(seq.stats(), par.stats());
            invariants::check_invariants(par.as_sequential()).unwrap();
        }
    }

    #[test]
    fn parallel_engine_streams_identical_deltas() {
        let g0 = generators::random_regular(96, 6, &mut StdRng::seed_from_u64(3));
        let mirror = Rc::new(RefCell::new(DeltaMirror::new(&g0)));
        let mut par = Xheal::builder()
            .kappa(4)
            .seed(9)
            .sink(Box::new(Rc::clone(&mirror)))
            .build_parallel(&g0, 4);
        let victims: Vec<NodeId> = (0..10).map(n).collect();
        par.heal_delete_batch(&victims).unwrap();
        assert!(par.graph() == mirror.borrow().graph());
    }
}
