//! Explicit repair plans: the decisions of one healing operation as data.
//!
//! [`crate::RepairPlanner`] turns a deletion into a [`RepairPlan`] — an
//! ordered list of [`PlanAction`]s describing exactly which expander clouds
//! are built, patched, extended, or dissolved, with the edge delta each step
//! must apply to the network graph. Executors interpret the plan:
//!
//! - [`crate::Xheal`] applies the deltas directly to its [`xheal_graph::Graph`]
//!   (the centralized model);
//! - `xheal-dist` replays every action as a probe/grant/link message exchange
//!   over the LOCAL-model engine before applying the same deltas, so both
//!   executors produce bit-identical topologies from one plan.

use std::collections::BTreeSet;

use xheal_expander::EdgeDelta;
use xheal_graph::{CloudColor, CloudKind, DeltaScratch, EdgeMutation, Graph, NodeId};

use crate::engine::{SinkRegistry, TopologyDelta};
use crate::stats::{DeletionReport, HealCase};

/// Reusable working memory for grouped plan application
/// ([`RepairPlan::apply_streamed_with`] and the batch flush): the flattened
/// mutation list, the materialized delta slice for sink emission, and the
/// graph-level [`DeltaScratch`]. Executors own one and thread it through
/// their hot loops so steady-state plan application allocates nothing.
#[derive(Debug, Default)]
pub struct ApplyScratch {
    ops: Vec<EdgeMutation>,
    deltas: Vec<TopologyDelta>,
    graph: DeltaScratch,
}

/// Accumulation cap (in mutations) before an intermediate flush. Mature
/// small-network plans can rewire most of the graph in one plan; unbounded
/// accumulation would stream megabytes of ops through three passes (copy,
/// validate, apply) and cost ~17 % on such schedules. Capped at ~96 KiB of
/// ops the buffer stays L2-resident, while typical plans (well under the
/// cap) still flush exactly once. Chunked flushing is sequence-preserving,
/// so the graph and the emitted delta stream are bit-identical either way.
const FLUSH_CAP: usize = 4096;

impl ApplyScratch {
    /// Resets the accumulated mutation batch (buffer capacity is kept).
    pub(crate) fn begin(&mut self) {
        self.ops.clear();
    }

    /// Whether the accumulated batch has outgrown [`FLUSH_CAP`] and should
    /// be flushed before the next action is pushed.
    pub(crate) fn should_flush(&self) -> bool {
        self.ops.len() >= FLUSH_CAP
    }

    /// Flushes the accumulated mutation batch in `self.ops` through
    /// [`Graph::apply_delta`], then emits the corresponding
    /// [`TopologyDelta`] stream (in original op order) as one batch.
    ///
    /// With no sinks registered the delta slice is never materialized —
    /// one branch per flush instead of one check per mutation.
    pub(crate) fn flush(&mut self, graph: &mut Graph, sinks: &mut SinkRegistry) {
        if self.ops.is_empty() {
            return;
        }
        graph
            .apply_delta(&self.ops, &mut self.graph)
            .expect("cloud members are live nodes");
        if !sinks.is_empty() {
            self.deltas.clear();
            self.deltas.reserve(self.ops.len());
            self.deltas.extend(self.ops.iter().map(|op| {
                if op.add {
                    TopologyDelta::EdgeAdded {
                        a: op.a,
                        b: op.b,
                        color: op.color,
                    }
                } else {
                    TopologyDelta::EdgeRemoved {
                        a: op.a,
                        b: op.b,
                        color: op.color,
                    }
                }
            }));
            sinks.emit_batch(&self.deltas);
        }
        self.ops.clear();
    }

    /// Appends one action's edge rewiring (strips first, then adds — the
    /// exact order the sequential path applies and emits).
    pub(crate) fn push_action(&mut self, action: &PlanAction) {
        let color = Some(action.color());
        let delta = action.delta();
        self.ops.reserve(delta.removed.len() + delta.added.len());
        for &(u, w) in &delta.removed {
            self.ops.push(EdgeMutation {
                a: u,
                b: w,
                color,
                add: false,
            });
        }
        for &(u, w) in &delta.added {
            self.ops.push(EdgeMutation {
                a: u,
                b: w,
                color,
                add: true,
            });
        }
    }
}

impl Clone for ApplyScratch {
    /// Cloning yields a fresh, empty scratch: contents are transient
    /// per-flush working state, not data.
    fn clone(&self) -> Self {
        ApplyScratch::default()
    }
}

/// One structural step of a repair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanAction {
    /// Install a fresh expander cloud over `members`.
    BuildCloud {
        /// Color of the new cloud.
        color: CloudColor,
        /// Primary or secondary.
        kind: CloudKind,
        /// The member set, ascending.
        members: Vec<NodeId>,
        /// Edges to install (colored `color`).
        delta: EdgeDelta,
    },
    /// Re-splice a cloud after members departed.
    PatchCloud {
        /// Color of the patched cloud.
        color: CloudColor,
        /// The members that left (often the deleted node).
        removed: Vec<NodeId>,
        /// Edge rewiring to apply.
        delta: EdgeDelta,
    },
    /// Add one node to an existing cloud (free-node sharing or bridge
    /// replacement).
    ExtendCloud {
        /// Color of the extended cloud.
        color: CloudColor,
        /// The joining node.
        node: NodeId,
        /// True when the node was borrowed from a sibling cloud (sharing).
        shared: bool,
        /// Edge rewiring to apply.
        delta: EdgeDelta,
    },
    /// Remove a cloud entirely (combine inputs, vacuous secondaries).
    DissolveCloud {
        /// Color of the dissolved cloud.
        color: CloudColor,
        /// Its edges, all to be stripped (`delta.added` is empty).
        delta: EdgeDelta,
    },
}

impl PlanAction {
    /// The edge rewiring this action applies to the graph.
    pub fn delta(&self) -> &EdgeDelta {
        match self {
            PlanAction::BuildCloud { delta, .. }
            | PlanAction::PatchCloud { delta, .. }
            | PlanAction::ExtendCloud { delta, .. }
            | PlanAction::DissolveCloud { delta, .. } => delta,
        }
    }

    /// The cloud this action concerns.
    pub fn color(&self) -> CloudColor {
        match self {
            PlanAction::BuildCloud { color, .. }
            | PlanAction::PatchCloud { color, .. }
            | PlanAction::ExtendCloud { color, .. }
            | PlanAction::DissolveCloud { color, .. } => *color,
        }
    }

    /// Every node named by this step: cloud members plus all endpoints of
    /// its edge delta. Endpoints of *removed* edges may already be deleted
    /// from the network (the repair's victim); executors must filter
    /// against live membership before addressing them.
    pub fn participants(&self) -> BTreeSet<NodeId> {
        let mut out = BTreeSet::new();
        match self {
            PlanAction::BuildCloud { members, .. } => out.extend(members.iter().copied()),
            PlanAction::ExtendCloud { node, .. } => {
                out.insert(*node);
            }
            PlanAction::PatchCloud { .. } | PlanAction::DissolveCloud { .. } => {}
        }
        let delta = self.delta();
        for &(u, w) in delta.added.iter().chain(delta.removed.iter()) {
            out.insert(u);
            out.insert(w);
        }
        out
    }

    /// Applies this action's edge rewiring to `graph`: strip the removed
    /// edges' color, then install the added edges. Both executors go
    /// through here — that single code path is what makes the centralized
    /// and distributed topologies bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if an added edge references a node absent from `graph`
    /// (cloud members are always live).
    pub fn apply_to(&self, graph: &mut Graph) {
        self.apply_streamed(graph, &mut SinkRegistry::default());
    }

    /// Like [`PlanAction::apply_to`], additionally emitting one
    /// [`TopologyDelta`] per label change to `sinks`.
    ///
    /// This is the *sequential reference path*: one strip/add (two binary
    /// searches and a list edit) per edge, in plan order. Whole-plan
    /// application goes through the grouped bulk path
    /// ([`RepairPlan::apply_streamed_with`]), which is bit-identical to
    /// replaying this method action by action — the `grouped_apply`
    /// integration suite pins that equivalence.
    ///
    /// # Panics
    ///
    /// Panics if an added edge references a node absent from `graph`.
    pub fn apply_streamed(&self, graph: &mut Graph, sinks: &mut SinkRegistry) {
        let color = self.color();
        let delta = self.delta();
        if sinks.is_empty() {
            for &(u, w) in &delta.removed {
                // Endpoints may already be gone from the graph (the deleted
                // node's cloud edges); stripping is then a no-op.
                graph.strip_color(u, w, color);
            }
            for &(u, w) in &delta.added {
                graph
                    .add_colored_edge(u, w, color)
                    .expect("cloud members are live nodes");
            }
            return;
        }
        for &(u, w) in &delta.removed {
            graph.strip_color(u, w, color);
            // Emitted even when the edge already died with a deleted
            // endpoint: replaying the strip is a no-op there too, so
            // mirrors stay exact.
            sinks.emit(TopologyDelta::EdgeRemoved {
                a: u,
                b: w,
                color: Some(color),
            });
        }
        for &(u, w) in &delta.added {
            graph
                .add_colored_edge(u, w, color)
                .expect("cloud members are live nodes");
            sinks.emit(TopologyDelta::EdgeAdded {
                a: u,
                b: w,
                color: Some(color),
            });
        }
    }
}

/// The full decision record of one deletion repair.
#[derive(Clone, Debug)]
pub struct RepairPlan {
    /// The structural steps, in execution order.
    pub actions: Vec<PlanAction>,
    /// Per-deletion accounting, including the healing case taken (also
    /// folded into the planner's stats).
    pub report: DeletionReport,
}

impl RepairPlan {
    /// Which healing case of Algorithm 3.1 applied.
    pub fn case(&self) -> HealCase {
        self.report.case
    }

    /// All nodes that participate in any action of the plan (see
    /// [`PlanAction::participants`] for the liveness caveat).
    pub fn participants(&self) -> BTreeSet<NodeId> {
        self.actions.iter().flat_map(|a| a.participants()).collect()
    }

    /// Applies every action to `graph`, in order.
    pub fn apply_to(&self, graph: &mut Graph) {
        self.apply_streamed(graph, &mut SinkRegistry::default());
    }

    /// Applies every action to `graph`, in order, emitting the
    /// [`TopologyDelta`] stream to `sinks`.
    ///
    /// Convenience wrapper over [`RepairPlan::apply_streamed_with`] with a
    /// throwaway scratch; executor hot loops thread a persistent
    /// [`ApplyScratch`] instead.
    pub fn apply_streamed(&self, graph: &mut Graph, sinks: &mut SinkRegistry) {
        self.apply_streamed_with(graph, sinks, &mut ApplyScratch::default());
    }

    /// Applies the whole plan as grouped mutation batches through
    /// [`Graph::apply_delta`] (one batch for typical plans; plans past the
    /// accumulation cap flush in sequence-ordered chunks so the op buffer
    /// stays cache-resident). The emitted [`TopologyDelta`] stream is
    /// bit-identical — same deltas, same order — to replaying
    /// [`PlanAction::apply_streamed`] action by action, as is the
    /// resulting graph.
    ///
    /// # Panics
    ///
    /// Panics if an added edge references a node absent from `graph`
    /// (cloud members are always live).
    pub fn apply_streamed_with(
        &self,
        graph: &mut Graph,
        sinks: &mut SinkRegistry,
        scratch: &mut ApplyScratch,
    ) {
        scratch.begin();
        for action in &self.actions {
            if scratch.should_flush() {
                scratch.flush(graph, sinks);
            }
            scratch.push_action(action);
        }
        scratch.flush(graph, sinks);
    }

    /// The largest member set among clouds this plan builds (0 when none):
    /// drives the gossip-round count of the distributed executor.
    pub fn max_built_cloud(&self) -> usize {
        self.actions
            .iter()
            .map(|a| match a {
                PlanAction::BuildCloud { members, .. } => members.len(),
                _ => 0,
            })
            .max()
            .unwrap_or(0)
    }
}
