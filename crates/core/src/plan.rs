//! Explicit repair plans: the decisions of one healing operation as data.
//!
//! [`crate::RepairPlanner`] turns a deletion into a [`RepairPlan`] — an
//! ordered list of [`PlanAction`]s describing exactly which expander clouds
//! are built, patched, extended, or dissolved, with the edge delta each step
//! must apply to the network graph. Executors interpret the plan:
//!
//! - [`crate::Xheal`] applies the deltas directly to its [`xheal_graph::Graph`]
//!   (the centralized model);
//! - `xheal-dist` replays every action as a probe/grant/link message exchange
//!   over the LOCAL-model engine before applying the same deltas, so both
//!   executors produce bit-identical topologies from one plan.

use std::collections::BTreeSet;

use xheal_expander::EdgeDelta;
use xheal_graph::{CloudColor, CloudKind, Graph, NodeId};

use crate::engine::{SinkRegistry, TopologyDelta};
use crate::stats::{DeletionReport, HealCase};

/// One structural step of a repair.
#[derive(Clone, Debug)]
pub enum PlanAction {
    /// Install a fresh expander cloud over `members`.
    BuildCloud {
        /// Color of the new cloud.
        color: CloudColor,
        /// Primary or secondary.
        kind: CloudKind,
        /// The member set, ascending.
        members: Vec<NodeId>,
        /// Edges to install (colored `color`).
        delta: EdgeDelta,
    },
    /// Re-splice a cloud after members departed.
    PatchCloud {
        /// Color of the patched cloud.
        color: CloudColor,
        /// The members that left (often the deleted node).
        removed: Vec<NodeId>,
        /// Edge rewiring to apply.
        delta: EdgeDelta,
    },
    /// Add one node to an existing cloud (free-node sharing or bridge
    /// replacement).
    ExtendCloud {
        /// Color of the extended cloud.
        color: CloudColor,
        /// The joining node.
        node: NodeId,
        /// True when the node was borrowed from a sibling cloud (sharing).
        shared: bool,
        /// Edge rewiring to apply.
        delta: EdgeDelta,
    },
    /// Remove a cloud entirely (combine inputs, vacuous secondaries).
    DissolveCloud {
        /// Color of the dissolved cloud.
        color: CloudColor,
        /// Its edges, all to be stripped (`delta.added` is empty).
        delta: EdgeDelta,
    },
}

impl PlanAction {
    /// The edge rewiring this action applies to the graph.
    pub fn delta(&self) -> &EdgeDelta {
        match self {
            PlanAction::BuildCloud { delta, .. }
            | PlanAction::PatchCloud { delta, .. }
            | PlanAction::ExtendCloud { delta, .. }
            | PlanAction::DissolveCloud { delta, .. } => delta,
        }
    }

    /// The cloud this action concerns.
    pub fn color(&self) -> CloudColor {
        match self {
            PlanAction::BuildCloud { color, .. }
            | PlanAction::PatchCloud { color, .. }
            | PlanAction::ExtendCloud { color, .. }
            | PlanAction::DissolveCloud { color, .. } => *color,
        }
    }

    /// Every node named by this step: cloud members plus all endpoints of
    /// its edge delta. Endpoints of *removed* edges may already be deleted
    /// from the network (the repair's victim); executors must filter
    /// against live membership before addressing them.
    pub fn participants(&self) -> BTreeSet<NodeId> {
        let mut out = BTreeSet::new();
        match self {
            PlanAction::BuildCloud { members, .. } => out.extend(members.iter().copied()),
            PlanAction::ExtendCloud { node, .. } => {
                out.insert(*node);
            }
            PlanAction::PatchCloud { .. } | PlanAction::DissolveCloud { .. } => {}
        }
        let delta = self.delta();
        for &(u, w) in delta.added.iter().chain(delta.removed.iter()) {
            out.insert(u);
            out.insert(w);
        }
        out
    }

    /// Applies this action's edge rewiring to `graph`: strip the removed
    /// edges' color, then install the added edges. Both executors go
    /// through here — that single code path is what makes the centralized
    /// and distributed topologies bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if an added edge references a node absent from `graph`
    /// (cloud members are always live).
    pub fn apply_to(&self, graph: &mut Graph) {
        self.apply_streamed(graph, &mut SinkRegistry::default());
    }

    /// Like [`PlanAction::apply_to`], additionally emitting one
    /// [`TopologyDelta`] per label change to `sinks` — the subscription
    /// layer's single emission point for plan application. With no sinks
    /// registered this is exactly `apply_to` (no extra work on the hot
    /// path).
    ///
    /// # Panics
    ///
    /// Panics if an added edge references a node absent from `graph`.
    pub fn apply_streamed(&self, graph: &mut Graph, sinks: &mut SinkRegistry) {
        let color = self.color();
        let delta = self.delta();
        if sinks.is_empty() {
            for &(u, w) in &delta.removed {
                // Endpoints may already be gone from the graph (the deleted
                // node's cloud edges); stripping is then a no-op.
                graph.strip_color(u, w, color);
            }
            for &(u, w) in &delta.added {
                graph
                    .add_colored_edge(u, w, color)
                    .expect("cloud members are live nodes");
            }
            return;
        }
        for &(u, w) in &delta.removed {
            graph.strip_color(u, w, color);
            // Emitted even when the edge already died with a deleted
            // endpoint: replaying the strip is a no-op there too, so
            // mirrors stay exact.
            sinks.emit(TopologyDelta::EdgeRemoved {
                a: u,
                b: w,
                color: Some(color),
            });
        }
        for &(u, w) in &delta.added {
            graph
                .add_colored_edge(u, w, color)
                .expect("cloud members are live nodes");
            sinks.emit(TopologyDelta::EdgeAdded {
                a: u,
                b: w,
                color: Some(color),
            });
        }
    }
}

/// The full decision record of one deletion repair.
#[derive(Clone, Debug)]
pub struct RepairPlan {
    /// The structural steps, in execution order.
    pub actions: Vec<PlanAction>,
    /// Per-deletion accounting, including the healing case taken (also
    /// folded into the planner's stats).
    pub report: DeletionReport,
}

impl RepairPlan {
    /// Which healing case of Algorithm 3.1 applied.
    pub fn case(&self) -> HealCase {
        self.report.case
    }

    /// All nodes that participate in any action of the plan (see
    /// [`PlanAction::participants`] for the liveness caveat).
    pub fn participants(&self) -> BTreeSet<NodeId> {
        self.actions.iter().flat_map(|a| a.participants()).collect()
    }

    /// Applies every action to `graph`, in order.
    pub fn apply_to(&self, graph: &mut Graph) {
        self.apply_streamed(graph, &mut SinkRegistry::default());
    }

    /// Applies every action to `graph`, in order, emitting the
    /// [`TopologyDelta`] stream to `sinks`.
    pub fn apply_streamed(&self, graph: &mut Graph, sinks: &mut SinkRegistry) {
        for action in &self.actions {
            action.apply_streamed(graph, sinks);
        }
    }

    /// The largest member set among clouds this plan builds (0 when none):
    /// drives the gossip-round count of the distributed executor.
    pub fn max_built_cloud(&self) -> usize {
        self.actions
            .iter()
            .map(|a| match a {
                PlanAction::BuildCloud { members, .. } => members.len(),
                _ => 0,
            })
            .max()
            .unwrap_or(0)
    }
}
