//! A name-keyed registry of [`HealingEngine`] constructors.
//!
//! The arena harness (and any sweep driver) needs to build *fresh* engines of
//! every flavor over the same initial graph, repeatedly and by name. Engine
//! crates sit above `xheal-core` in the dependency graph, so the registry
//! stores type-erased builder closures: each maps `(initial graph, seed)` to
//! a boxed engine. `xheal-workload`'s `arena::standard_registry` populates
//! one with every engine in the workspace.
//!
//! Registry keys are distinct even where engine *names* collide (the sync
//! and async distributed executors both answer `"xheal-dist"` from
//! [`HealingEngine::name`]); tables should label rows by registry key.

use std::collections::BTreeMap;

use crate::engine::HealingEngine;
use xheal_graph::Graph;

/// A type-erased engine constructor: builds a fresh engine over an initial
/// graph, with all internal randomness derived from `seed`.
pub type EngineBuilder = Box<dyn Fn(&Graph, u64) -> Box<dyn HealingEngine>>;

/// Name-keyed collection of [`EngineBuilder`]s, iterated in key order.
///
/// # Examples
///
/// ```
/// use xheal_core::{EngineRegistry, Xheal, XhealConfig};
/// use xheal_graph::generators;
///
/// let mut reg = EngineRegistry::new();
/// reg.register("xheal", |g, seed| {
///     Box::new(Xheal::new(g, XhealConfig::new(4).with_seed(seed)))
/// });
/// let engine = reg.build("xheal", &generators::cycle(8), 7).unwrap();
/// assert_eq!(engine.name(), "xheal");
/// ```
#[derive(Default)]
pub struct EngineRegistry {
    builders: BTreeMap<String, EngineBuilder>,
}

impl EngineRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `builder` under `key`, replacing any previous entry.
    pub fn register(
        &mut self,
        key: impl Into<String>,
        builder: impl Fn(&Graph, u64) -> Box<dyn HealingEngine> + 'static,
    ) {
        self.builders.insert(key.into(), Box::new(builder));
    }

    /// Registered keys, ascending.
    pub fn keys(&self) -> Vec<&str> {
        self.builders.keys().map(String::as_str).collect()
    }

    /// Number of registered builders.
    pub fn len(&self) -> usize {
        self.builders.len()
    }

    /// Whether no builders are registered.
    pub fn is_empty(&self) -> bool {
        self.builders.is_empty()
    }

    /// Builds a fresh engine for `key` over `initial`, or `None` if the key
    /// is unknown.
    pub fn build(&self, key: &str, initial: &Graph, seed: u64) -> Option<Box<dyn HealingEngine>> {
        self.builders.get(key).map(|b| b(initial, seed))
    }

    /// Builds one fresh engine per registered key, in key order.
    pub fn build_all(&self, initial: &Graph, seed: u64) -> Vec<(String, Box<dyn HealingEngine>)> {
        self.builders
            .iter()
            .map(|(k, b)| (k.clone(), b(initial, seed)))
            .collect()
    }
}

impl std::fmt::Debug for EngineRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineRegistry")
            .field("keys", &self.keys())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Xheal, XhealConfig};
    use xheal_graph::generators;

    #[test]
    fn register_build_and_iterate_in_key_order() {
        let mut reg = EngineRegistry::new();
        assert!(reg.is_empty());
        reg.register("b-engine", |g, s| {
            Box::new(Xheal::new(g, XhealConfig::new(4).with_seed(s)))
        });
        reg.register("a-engine", |g, s| {
            Box::new(Xheal::new(g, XhealConfig::new(6).with_seed(s)))
        });
        assert_eq!(reg.keys(), ["a-engine", "b-engine"]);
        assert_eq!(reg.len(), 2);
        let g0 = generators::cycle(10);
        assert!(reg.build("missing", &g0, 0).is_none());
        let built = reg.build_all(&g0, 3);
        assert_eq!(built.len(), 2);
        assert_eq!(built[0].0, "a-engine");
        assert_eq!(built[0].1.graph(), &g0);
    }

    #[test]
    fn replacing_a_key_keeps_len() {
        let mut reg = EngineRegistry::new();
        for _ in 0..2 {
            reg.register("x", |g, s| {
                Box::new(Xheal::new(g, XhealConfig::new(4).with_seed(s)))
            });
        }
        assert_eq!(reg.len(), 1);
    }
}
